/root/repo/target/debug/deps/fig13-30d4b845aa3a6eed.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-30d4b845aa3a6eed: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
