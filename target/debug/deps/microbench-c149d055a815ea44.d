/root/repo/target/debug/deps/microbench-c149d055a815ea44.d: crates/bench/src/bin/microbench.rs

/root/repo/target/debug/deps/microbench-c149d055a815ea44: crates/bench/src/bin/microbench.rs

crates/bench/src/bin/microbench.rs:
