/root/repo/target/debug/deps/fam_sim-bd9da738de28e829.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/window.rs

/root/repo/target/debug/deps/fam_sim-bd9da738de28e829: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/window.rs

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/event.rs:
crates/sim/src/fault.rs:
crates/sim/src/resource.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/window.rs:
