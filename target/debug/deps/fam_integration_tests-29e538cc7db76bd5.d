/root/repo/target/debug/deps/fam_integration_tests-29e538cc7db76bd5.d: tests/src/lib.rs

/root/repo/target/debug/deps/fam_integration_tests-29e538cc7db76bd5: tests/src/lib.rs

tests/src/lib.rs:
