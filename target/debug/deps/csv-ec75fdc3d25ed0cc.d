/root/repo/target/debug/deps/csv-ec75fdc3d25ed0cc.d: crates/bench/src/bin/csv.rs

/root/repo/target/debug/deps/csv-ec75fdc3d25ed0cc: crates/bench/src/bin/csv.rs

crates/bench/src/bin/csv.rs:
