/root/repo/target/debug/deps/table3-382730151cbb8478.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-382730151cbb8478: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
