/root/repo/target/debug/deps/quickstart-d79a953e74520bf1.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-d79a953e74520bf1: examples/quickstart.rs

examples/quickstart.rs:
