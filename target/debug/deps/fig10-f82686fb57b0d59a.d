/root/repo/target/debug/deps/fig10-f82686fb57b0d59a.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-f82686fb57b0d59a: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
