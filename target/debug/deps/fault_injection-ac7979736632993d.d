/root/repo/target/debug/deps/fault_injection-ac7979736632993d.d: tests/tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-ac7979736632993d: tests/tests/fault_injection.rs

tests/tests/fault_injection.rs:
