/root/repo/target/debug/deps/fam_fabric-34453063db1f3276.d: crates/fabric/src/lib.rs crates/fabric/src/packet.rs

/root/repo/target/debug/deps/fam_fabric-34453063db1f3276: crates/fabric/src/lib.rs crates/fabric/src/packet.rs

crates/fabric/src/lib.rs:
crates/fabric/src/packet.rs:
