/root/repo/target/debug/deps/deact_sim-6522ec3db2e3c132.d: crates/core/src/bin/deact-sim.rs

/root/repo/target/debug/deps/deact_sim-6522ec3db2e3c132: crates/core/src/bin/deact-sim.rs

crates/core/src/bin/deact-sim.rs:
