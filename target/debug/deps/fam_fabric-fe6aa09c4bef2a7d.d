/root/repo/target/debug/deps/fam_fabric-fe6aa09c4bef2a7d.d: crates/fabric/src/lib.rs crates/fabric/src/packet.rs

/root/repo/target/debug/deps/libfam_fabric-fe6aa09c4bef2a7d.rlib: crates/fabric/src/lib.rs crates/fabric/src/packet.rs

/root/repo/target/debug/deps/libfam_fabric-fe6aa09c4bef2a7d.rmeta: crates/fabric/src/lib.rs crates/fabric/src/packet.rs

crates/fabric/src/lib.rs:
crates/fabric/src/packet.rs:
