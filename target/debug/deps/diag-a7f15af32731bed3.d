/root/repo/target/debug/deps/diag-a7f15af32731bed3.d: crates/bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-a7f15af32731bed3: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
