/root/repo/target/debug/deps/fam_broker-65fbd391e84a2e68.d: crates/broker/src/lib.rs crates/broker/src/acm.rs crates/broker/src/broker.rs crates/broker/src/layout.rs crates/broker/src/logical.rs

/root/repo/target/debug/deps/fam_broker-65fbd391e84a2e68: crates/broker/src/lib.rs crates/broker/src/acm.rs crates/broker/src/broker.rs crates/broker/src/layout.rs crates/broker/src/logical.rs

crates/broker/src/lib.rs:
crates/broker/src/acm.rs:
crates/broker/src/broker.rs:
crates/broker/src/layout.rs:
crates/broker/src/logical.rs:
