/root/repo/target/debug/deps/table2-19164a126bc9e7f7.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-19164a126bc9e7f7: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
