/root/repo/target/debug/deps/fam_sim-75d1c5130db389b9.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/window.rs

/root/repo/target/debug/deps/libfam_sim-75d1c5130db389b9.rlib: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/window.rs

/root/repo/target/debug/deps/libfam_sim-75d1c5130db389b9.rmeta: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/window.rs

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/event.rs:
crates/sim/src/fault.rs:
crates/sim/src/resource.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/window.rs:
