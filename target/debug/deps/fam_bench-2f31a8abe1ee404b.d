/root/repo/target/debug/deps/fam_bench-2f31a8abe1ee404b.d: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/paper.rs

/root/repo/target/debug/deps/libfam_bench-2f31a8abe1ee404b.rlib: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/paper.rs

/root/repo/target/debug/deps/libfam_bench-2f31a8abe1ee404b.rmeta: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/figs.rs:
crates/bench/src/paper.rs:
