/root/repo/target/debug/deps/fig14-a06c6ec9425dce5c.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-a06c6ec9425dce5c: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
