/root/repo/target/debug/deps/fam_workloads-263e632a08420617.d: crates/workloads/src/lib.rs crates/workloads/src/generator.rs crates/workloads/src/profiles.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/libfam_workloads-263e632a08420617.rlib: crates/workloads/src/lib.rs crates/workloads/src/generator.rs crates/workloads/src/profiles.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/libfam_workloads-263e632a08420617.rmeta: crates/workloads/src/lib.rs crates/workloads/src/generator.rs crates/workloads/src/profiles.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/profiles.rs:
crates/workloads/src/trace.rs:
