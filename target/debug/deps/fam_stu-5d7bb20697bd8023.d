/root/repo/target/debug/deps/fam_stu-5d7bb20697bd8023.d: crates/stu/src/lib.rs crates/stu/src/cache.rs crates/stu/src/unit.rs

/root/repo/target/debug/deps/fam_stu-5d7bb20697bd8023: crates/stu/src/lib.rs crates/stu/src/cache.rs crates/stu/src/unit.rs

crates/stu/src/lib.rs:
crates/stu/src/cache.rs:
crates/stu/src/unit.rs:
