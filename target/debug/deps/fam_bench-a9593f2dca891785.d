/root/repo/target/debug/deps/fam_bench-a9593f2dca891785.d: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/paper.rs

/root/repo/target/debug/deps/fam_bench-a9593f2dca891785: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/figs.rs:
crates/bench/src/paper.rs:
