/root/repo/target/debug/deps/fam_mem-5a5d6d5b132c7366.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/hierarchy.rs crates/mem/src/nvm.rs

/root/repo/target/debug/deps/libfam_mem-5a5d6d5b132c7366.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/hierarchy.rs crates/mem/src/nvm.rs

/root/repo/target/debug/deps/libfam_mem-5a5d6d5b132c7366.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/hierarchy.rs crates/mem/src/nvm.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/nvm.rs:
