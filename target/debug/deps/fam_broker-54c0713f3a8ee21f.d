/root/repo/target/debug/deps/fam_broker-54c0713f3a8ee21f.d: crates/broker/src/lib.rs crates/broker/src/acm.rs crates/broker/src/broker.rs crates/broker/src/layout.rs crates/broker/src/logical.rs

/root/repo/target/debug/deps/libfam_broker-54c0713f3a8ee21f.rlib: crates/broker/src/lib.rs crates/broker/src/acm.rs crates/broker/src/broker.rs crates/broker/src/layout.rs crates/broker/src/logical.rs

/root/repo/target/debug/deps/libfam_broker-54c0713f3a8ee21f.rmeta: crates/broker/src/lib.rs crates/broker/src/acm.rs crates/broker/src/broker.rs crates/broker/src/layout.rs crates/broker/src/logical.rs

crates/broker/src/lib.rs:
crates/broker/src/acm.rs:
crates/broker/src/broker.rs:
crates/broker/src/layout.rs:
crates/broker/src/logical.rs:
