/root/repo/target/debug/deps/trace_replay-bcca2aba3136c262.d: examples/trace_replay.rs

/root/repo/target/debug/deps/trace_replay-bcca2aba3136c262: examples/trace_replay.rs

examples/trace_replay.rs:
