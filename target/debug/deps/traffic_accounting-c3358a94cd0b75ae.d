/root/repo/target/debug/deps/traffic_accounting-c3358a94cd0b75ae.d: tests/tests/traffic_accounting.rs

/root/repo/target/debug/deps/traffic_accounting-c3358a94cd0b75ae: tests/tests/traffic_accounting.rs

tests/tests/traffic_accounting.rs:
