/root/repo/target/debug/deps/fam_mem-fc64a62fcbfe825d.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/hierarchy.rs crates/mem/src/nvm.rs

/root/repo/target/debug/deps/fam_mem-fc64a62fcbfe825d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/hierarchy.rs crates/mem/src/nvm.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/nvm.rs:
