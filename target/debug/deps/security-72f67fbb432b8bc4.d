/root/repo/target/debug/deps/security-72f67fbb432b8bc4.d: tests/tests/security.rs

/root/repo/target/debug/deps/security-72f67fbb432b8bc4: tests/tests/security.rs

tests/tests/security.rs:
