/root/repo/target/debug/deps/all-e132aa6e33a56efc.d: crates/bench/src/bin/all.rs

/root/repo/target/debug/deps/all-e132aa6e33a56efc: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
