/root/repo/target/debug/deps/end_to_end-581f6f912c64e726.d: tests/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-581f6f912c64e726: tests/tests/end_to_end.rs

tests/tests/end_to_end.rs:
