/root/repo/target/debug/deps/deact-da2a6409614a71fb.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/node.rs crates/core/src/scheme.rs crates/core/src/system.rs crates/core/src/translator.rs

/root/repo/target/debug/deps/libdeact-da2a6409614a71fb.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/node.rs crates/core/src/scheme.rs crates/core/src/system.rs crates/core/src/translator.rs

/root/repo/target/debug/deps/libdeact-da2a6409614a71fb.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/node.rs crates/core/src/scheme.rs crates/core/src/system.rs crates/core/src/translator.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/metrics.rs:
crates/core/src/node.rs:
crates/core/src/scheme.rs:
crates/core/src/system.rs:
crates/core/src/translator.rs:
