/root/repo/target/debug/deps/assoc-22f7f49601b47e58.d: crates/bench/src/bin/assoc.rs

/root/repo/target/debug/deps/assoc-22f7f49601b47e58: crates/bench/src/bin/assoc.rs

crates/bench/src/bin/assoc.rs:
