/root/repo/target/debug/deps/table1-eaf72bd8d615e444.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-eaf72bd8d615e444: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
