/root/repo/target/debug/deps/multi_tenant_isolation-0bdce5be34196bec.d: examples/multi_tenant_isolation.rs

/root/repo/target/debug/deps/multi_tenant_isolation-0bdce5be34196bec: examples/multi_tenant_isolation.rs

examples/multi_tenant_isolation.rs:
