/root/repo/target/debug/deps/fig11-f02c5098143f8df7.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-f02c5098143f8df7: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
