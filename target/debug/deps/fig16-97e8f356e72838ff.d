/root/repo/target/debug/deps/fig16-97e8f356e72838ff.d: crates/bench/src/bin/fig16.rs

/root/repo/target/debug/deps/fig16-97e8f356e72838ff: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
