/root/repo/target/debug/deps/fam_vm-17cd45e958f73be3.d: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/page_table.rs crates/vm/src/ptw_cache.rs crates/vm/src/tlb.rs crates/vm/src/walker.rs

/root/repo/target/debug/deps/libfam_vm-17cd45e958f73be3.rlib: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/page_table.rs crates/vm/src/ptw_cache.rs crates/vm/src/tlb.rs crates/vm/src/walker.rs

/root/repo/target/debug/deps/libfam_vm-17cd45e958f73be3.rmeta: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/page_table.rs crates/vm/src/ptw_cache.rs crates/vm/src/tlb.rs crates/vm/src/walker.rs

crates/vm/src/lib.rs:
crates/vm/src/addr.rs:
crates/vm/src/page_table.rs:
crates/vm/src/ptw_cache.rs:
crates/vm/src/tlb.rs:
crates/vm/src/walker.rs:
