/root/repo/target/debug/deps/fig15-43da851ba6992245.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-43da851ba6992245: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
