/root/repo/target/debug/deps/fam_integration_tests-20e9eeefc4539597.d: tests/src/lib.rs

/root/repo/target/debug/deps/libfam_integration_tests-20e9eeefc4539597.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libfam_integration_tests-20e9eeefc4539597.rmeta: tests/src/lib.rs

tests/src/lib.rs:
