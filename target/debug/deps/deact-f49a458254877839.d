/root/repo/target/debug/deps/deact-f49a458254877839.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/node.rs crates/core/src/scheme.rs crates/core/src/system.rs crates/core/src/translator.rs

/root/repo/target/debug/deps/deact-f49a458254877839: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/node.rs crates/core/src/scheme.rs crates/core/src/system.rs crates/core/src/translator.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/metrics.rs:
crates/core/src/node.rs:
crates/core/src/scheme.rs:
crates/core/src/system.rs:
crates/core/src/translator.rs:
