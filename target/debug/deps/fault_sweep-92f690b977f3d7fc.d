/root/repo/target/debug/deps/fault_sweep-92f690b977f3d7fc.d: examples/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-92f690b977f3d7fc: examples/fault_sweep.rs

examples/fault_sweep.rs:
