/root/repo/target/debug/deps/fam_vm-e569b46c65c9f3a4.d: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/page_table.rs crates/vm/src/ptw_cache.rs crates/vm/src/tlb.rs crates/vm/src/walker.rs

/root/repo/target/debug/deps/fam_vm-e569b46c65c9f3a4: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/page_table.rs crates/vm/src/ptw_cache.rs crates/vm/src/tlb.rs crates/vm/src/walker.rs

crates/vm/src/lib.rs:
crates/vm/src/addr.rs:
crates/vm/src/page_table.rs:
crates/vm/src/ptw_cache.rs:
crates/vm/src/tlb.rs:
crates/vm/src/walker.rs:
