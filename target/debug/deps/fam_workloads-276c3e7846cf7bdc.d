/root/repo/target/debug/deps/fam_workloads-276c3e7846cf7bdc.d: crates/workloads/src/lib.rs crates/workloads/src/generator.rs crates/workloads/src/profiles.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/fam_workloads-276c3e7846cf7bdc: crates/workloads/src/lib.rs crates/workloads/src/generator.rs crates/workloads/src/profiles.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/profiles.rs:
crates/workloads/src/trace.rs:
