/root/repo/target/debug/deps/fig12-f71b0f5847c3dd43.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-f71b0f5847c3dd43: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
