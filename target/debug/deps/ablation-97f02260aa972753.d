/root/repo/target/debug/deps/ablation-97f02260aa972753.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-97f02260aa972753: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
