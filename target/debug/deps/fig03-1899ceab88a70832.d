/root/repo/target/debug/deps/fig03-1899ceab88a70832.d: crates/bench/src/bin/fig03.rs

/root/repo/target/debug/deps/fig03-1899ceab88a70832: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
