/root/repo/target/debug/deps/fig04-95425f0a9e7c243e.d: crates/bench/src/bin/fig04.rs

/root/repo/target/debug/deps/fig04-95425f0a9e7c243e: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
