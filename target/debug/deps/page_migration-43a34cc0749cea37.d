/root/repo/target/debug/deps/page_migration-43a34cc0749cea37.d: examples/page_migration.rs

/root/repo/target/debug/deps/page_migration-43a34cc0749cea37: examples/page_migration.rs

examples/page_migration.rs:
