/root/repo/target/debug/deps/fabric_sweep-8d801fec34981348.d: examples/fabric_sweep.rs

/root/repo/target/debug/deps/fabric_sweep-8d801fec34981348: examples/fabric_sweep.rs

examples/fabric_sweep.rs:
