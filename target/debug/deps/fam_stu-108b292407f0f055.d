/root/repo/target/debug/deps/fam_stu-108b292407f0f055.d: crates/stu/src/lib.rs crates/stu/src/cache.rs crates/stu/src/unit.rs

/root/repo/target/debug/deps/libfam_stu-108b292407f0f055.rlib: crates/stu/src/lib.rs crates/stu/src/cache.rs crates/stu/src/unit.rs

/root/repo/target/debug/deps/libfam_stu-108b292407f0f055.rmeta: crates/stu/src/lib.rs crates/stu/src/cache.rs crates/stu/src/unit.rs

crates/stu/src/lib.rs:
crates/stu/src/cache.rs:
crates/stu/src/unit.rs:
