/root/repo/target/debug/deps/properties-540ac32cd9ae9860.d: tests/tests/properties.rs

/root/repo/target/debug/deps/properties-540ac32cd9ae9860: tests/tests/properties.rs

tests/tests/properties.rs:
