/root/repo/target/debug/deps/fig09-405250f4d1d70679.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/fig09-405250f4d1d70679: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
