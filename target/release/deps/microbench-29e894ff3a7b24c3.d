/root/repo/target/release/deps/microbench-29e894ff3a7b24c3.d: crates/bench/src/bin/microbench.rs Cargo.toml

/root/repo/target/release/deps/libmicrobench-29e894ff3a7b24c3.rmeta: crates/bench/src/bin/microbench.rs Cargo.toml

crates/bench/src/bin/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
