/root/repo/target/release/deps/microbench-38f6cc6008d59ceb.d: crates/bench/src/bin/microbench.rs

/root/repo/target/release/deps/microbench-38f6cc6008d59ceb: crates/bench/src/bin/microbench.rs

crates/bench/src/bin/microbench.rs:
