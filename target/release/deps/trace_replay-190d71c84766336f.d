/root/repo/target/release/deps/trace_replay-190d71c84766336f.d: examples/trace_replay.rs

/root/repo/target/release/deps/trace_replay-190d71c84766336f: examples/trace_replay.rs

examples/trace_replay.rs:
