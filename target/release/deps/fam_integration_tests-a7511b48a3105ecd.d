/root/repo/target/release/deps/fam_integration_tests-a7511b48a3105ecd.d: tests/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libfam_integration_tests-a7511b48a3105ecd.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
