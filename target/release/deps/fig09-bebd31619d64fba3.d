/root/repo/target/release/deps/fig09-bebd31619d64fba3.d: crates/bench/src/bin/fig09.rs

/root/repo/target/release/deps/fig09-bebd31619d64fba3: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
