/root/repo/target/release/deps/traffic_accounting-e49878d2ad0e0fcc.d: tests/tests/traffic_accounting.rs

/root/repo/target/release/deps/traffic_accounting-e49878d2ad0e0fcc: tests/tests/traffic_accounting.rs

tests/tests/traffic_accounting.rs:
