/root/repo/target/release/deps/ablation-765cb0681385ab3a.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-765cb0681385ab3a: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
