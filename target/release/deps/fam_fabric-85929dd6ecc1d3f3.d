/root/repo/target/release/deps/fam_fabric-85929dd6ecc1d3f3.d: crates/fabric/src/lib.rs crates/fabric/src/packet.rs

/root/repo/target/release/deps/libfam_fabric-85929dd6ecc1d3f3.rlib: crates/fabric/src/lib.rs crates/fabric/src/packet.rs

/root/repo/target/release/deps/libfam_fabric-85929dd6ecc1d3f3.rmeta: crates/fabric/src/lib.rs crates/fabric/src/packet.rs

crates/fabric/src/lib.rs:
crates/fabric/src/packet.rs:
