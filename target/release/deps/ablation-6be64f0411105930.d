/root/repo/target/release/deps/ablation-6be64f0411105930.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/release/deps/libablation-6be64f0411105930.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
