/root/repo/target/release/deps/fig11-fe584928cced747e.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-fe584928cced747e: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
