/root/repo/target/release/deps/fig13-10d7d1968b49783d.d: crates/bench/src/bin/fig13.rs Cargo.toml

/root/repo/target/release/deps/libfig13-10d7d1968b49783d.rmeta: crates/bench/src/bin/fig13.rs Cargo.toml

crates/bench/src/bin/fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
