/root/repo/target/release/deps/fig13-0bf95c46e8685fac.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-0bf95c46e8685fac: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
