/root/repo/target/release/deps/fig14-faa398e3853b882f.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-faa398e3853b882f: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
