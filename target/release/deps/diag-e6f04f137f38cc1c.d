/root/repo/target/release/deps/diag-e6f04f137f38cc1c.d: crates/bench/src/bin/diag.rs Cargo.toml

/root/repo/target/release/deps/libdiag-e6f04f137f38cc1c.rmeta: crates/bench/src/bin/diag.rs Cargo.toml

crates/bench/src/bin/diag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
