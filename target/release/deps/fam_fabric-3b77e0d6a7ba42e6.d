/root/repo/target/release/deps/fam_fabric-3b77e0d6a7ba42e6.d: crates/fabric/src/lib.rs crates/fabric/src/packet.rs

/root/repo/target/release/deps/fam_fabric-3b77e0d6a7ba42e6: crates/fabric/src/lib.rs crates/fabric/src/packet.rs

crates/fabric/src/lib.rs:
crates/fabric/src/packet.rs:
