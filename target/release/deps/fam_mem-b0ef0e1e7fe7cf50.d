/root/repo/target/release/deps/fam_mem-b0ef0e1e7fe7cf50.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/hierarchy.rs crates/mem/src/nvm.rs Cargo.toml

/root/repo/target/release/deps/libfam_mem-b0ef0e1e7fe7cf50.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/hierarchy.rs crates/mem/src/nvm.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/nvm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
