/root/repo/target/release/deps/fig16-a37324d29b4251f9.d: crates/bench/src/bin/fig16.rs

/root/repo/target/release/deps/fig16-a37324d29b4251f9: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
