/root/repo/target/release/deps/properties-3572bb0c925d279b.d: tests/tests/properties.rs

/root/repo/target/release/deps/properties-3572bb0c925d279b: tests/tests/properties.rs

tests/tests/properties.rs:
