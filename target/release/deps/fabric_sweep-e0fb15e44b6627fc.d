/root/repo/target/release/deps/fabric_sweep-e0fb15e44b6627fc.d: examples/fabric_sweep.rs

/root/repo/target/release/deps/fabric_sweep-e0fb15e44b6627fc: examples/fabric_sweep.rs

examples/fabric_sweep.rs:
