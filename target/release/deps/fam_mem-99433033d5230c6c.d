/root/repo/target/release/deps/fam_mem-99433033d5230c6c.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/hierarchy.rs crates/mem/src/nvm.rs Cargo.toml

/root/repo/target/release/deps/libfam_mem-99433033d5230c6c.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/hierarchy.rs crates/mem/src/nvm.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/nvm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
