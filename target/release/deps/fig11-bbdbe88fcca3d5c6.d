/root/repo/target/release/deps/fig11-bbdbe88fcca3d5c6.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/release/deps/libfig11-bbdbe88fcca3d5c6.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
