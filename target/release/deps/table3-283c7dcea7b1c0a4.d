/root/repo/target/release/deps/table3-283c7dcea7b1c0a4.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-283c7dcea7b1c0a4: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
