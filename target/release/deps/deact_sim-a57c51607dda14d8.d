/root/repo/target/release/deps/deact_sim-a57c51607dda14d8.d: crates/core/src/bin/deact-sim.rs

/root/repo/target/release/deps/deact_sim-a57c51607dda14d8: crates/core/src/bin/deact-sim.rs

crates/core/src/bin/deact-sim.rs:
