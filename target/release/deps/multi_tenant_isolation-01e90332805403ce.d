/root/repo/target/release/deps/multi_tenant_isolation-01e90332805403ce.d: examples/multi_tenant_isolation.rs Cargo.toml

/root/repo/target/release/deps/libmulti_tenant_isolation-01e90332805403ce.rmeta: examples/multi_tenant_isolation.rs Cargo.toml

examples/multi_tenant_isolation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
