/root/repo/target/release/deps/diag-2567643b0f976bab.d: crates/bench/src/bin/diag.rs Cargo.toml

/root/repo/target/release/deps/libdiag-2567643b0f976bab.rmeta: crates/bench/src/bin/diag.rs Cargo.toml

crates/bench/src/bin/diag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
