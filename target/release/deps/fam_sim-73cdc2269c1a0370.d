/root/repo/target/release/deps/fam_sim-73cdc2269c1a0370.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/window.rs

/root/repo/target/release/deps/fam_sim-73cdc2269c1a0370: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/window.rs

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/event.rs:
crates/sim/src/fault.rs:
crates/sim/src/resource.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/window.rs:
