/root/repo/target/release/deps/end_to_end-73a5650839724c8e.d: tests/tests/end_to_end.rs Cargo.toml

/root/repo/target/release/deps/libend_to_end-73a5650839724c8e.rmeta: tests/tests/end_to_end.rs Cargo.toml

tests/tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
