/root/repo/target/release/deps/fam_integration_tests-14ae33ea2075a1d7.d: tests/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libfam_integration_tests-14ae33ea2075a1d7.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
