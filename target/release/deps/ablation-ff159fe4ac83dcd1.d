/root/repo/target/release/deps/ablation-ff159fe4ac83dcd1.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-ff159fe4ac83dcd1: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
