/root/repo/target/release/deps/fig09-ff92468416994afa.d: crates/bench/src/bin/fig09.rs Cargo.toml

/root/repo/target/release/deps/libfig09-ff92468416994afa.rmeta: crates/bench/src/bin/fig09.rs Cargo.toml

crates/bench/src/bin/fig09.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
