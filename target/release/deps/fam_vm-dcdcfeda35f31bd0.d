/root/repo/target/release/deps/fam_vm-dcdcfeda35f31bd0.d: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/page_table.rs crates/vm/src/ptw_cache.rs crates/vm/src/tlb.rs crates/vm/src/walker.rs

/root/repo/target/release/deps/fam_vm-dcdcfeda35f31bd0: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/page_table.rs crates/vm/src/ptw_cache.rs crates/vm/src/tlb.rs crates/vm/src/walker.rs

crates/vm/src/lib.rs:
crates/vm/src/addr.rs:
crates/vm/src/page_table.rs:
crates/vm/src/ptw_cache.rs:
crates/vm/src/tlb.rs:
crates/vm/src/walker.rs:
