/root/repo/target/release/deps/fig11-aab30ab0278e69e4.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/release/deps/libfig11-aab30ab0278e69e4.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
