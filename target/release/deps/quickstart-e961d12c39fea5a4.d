/root/repo/target/release/deps/quickstart-e961d12c39fea5a4.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/deps/libquickstart-e961d12c39fea5a4.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
