/root/repo/target/release/deps/fam_workloads-148a169f6c303d96.d: crates/workloads/src/lib.rs crates/workloads/src/generator.rs crates/workloads/src/profiles.rs crates/workloads/src/trace.rs Cargo.toml

/root/repo/target/release/deps/libfam_workloads-148a169f6c303d96.rmeta: crates/workloads/src/lib.rs crates/workloads/src/generator.rs crates/workloads/src/profiles.rs crates/workloads/src/trace.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/profiles.rs:
crates/workloads/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
