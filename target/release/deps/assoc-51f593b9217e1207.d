/root/repo/target/release/deps/assoc-51f593b9217e1207.d: crates/bench/src/bin/assoc.rs

/root/repo/target/release/deps/assoc-51f593b9217e1207: crates/bench/src/bin/assoc.rs

crates/bench/src/bin/assoc.rs:
