/root/repo/target/release/deps/page_migration-41ad55940e84f97c.d: examples/page_migration.rs

/root/repo/target/release/deps/page_migration-41ad55940e84f97c: examples/page_migration.rs

examples/page_migration.rs:
