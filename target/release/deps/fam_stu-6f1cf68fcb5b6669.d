/root/repo/target/release/deps/fam_stu-6f1cf68fcb5b6669.d: crates/stu/src/lib.rs crates/stu/src/cache.rs crates/stu/src/unit.rs

/root/repo/target/release/deps/fam_stu-6f1cf68fcb5b6669: crates/stu/src/lib.rs crates/stu/src/cache.rs crates/stu/src/unit.rs

crates/stu/src/lib.rs:
crates/stu/src/cache.rs:
crates/stu/src/unit.rs:
