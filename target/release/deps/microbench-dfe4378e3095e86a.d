/root/repo/target/release/deps/microbench-dfe4378e3095e86a.d: crates/bench/src/bin/microbench.rs Cargo.toml

/root/repo/target/release/deps/libmicrobench-dfe4378e3095e86a.rmeta: crates/bench/src/bin/microbench.rs Cargo.toml

crates/bench/src/bin/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
