/root/repo/target/release/deps/fam_workloads-a1c3bc42828018de.d: crates/workloads/src/lib.rs crates/workloads/src/generator.rs crates/workloads/src/profiles.rs crates/workloads/src/trace.rs Cargo.toml

/root/repo/target/release/deps/libfam_workloads-a1c3bc42828018de.rmeta: crates/workloads/src/lib.rs crates/workloads/src/generator.rs crates/workloads/src/profiles.rs crates/workloads/src/trace.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/profiles.rs:
crates/workloads/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
