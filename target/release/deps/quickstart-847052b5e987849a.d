/root/repo/target/release/deps/quickstart-847052b5e987849a.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-847052b5e987849a: examples/quickstart.rs

examples/quickstart.rs:
