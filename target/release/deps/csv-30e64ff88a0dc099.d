/root/repo/target/release/deps/csv-30e64ff88a0dc099.d: crates/bench/src/bin/csv.rs Cargo.toml

/root/repo/target/release/deps/libcsv-30e64ff88a0dc099.rmeta: crates/bench/src/bin/csv.rs Cargo.toml

crates/bench/src/bin/csv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
