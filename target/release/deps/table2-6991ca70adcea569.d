/root/repo/target/release/deps/table2-6991ca70adcea569.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-6991ca70adcea569: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
