/root/repo/target/release/deps/csv-9fdade7ba0e55ca9.d: crates/bench/src/bin/csv.rs Cargo.toml

/root/repo/target/release/deps/libcsv-9fdade7ba0e55ca9.rmeta: crates/bench/src/bin/csv.rs Cargo.toml

crates/bench/src/bin/csv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
