/root/repo/target/release/deps/fabric_sweep-9c0fe955ee508b50.d: examples/fabric_sweep.rs

/root/repo/target/release/deps/fabric_sweep-9c0fe955ee508b50: examples/fabric_sweep.rs

examples/fabric_sweep.rs:
