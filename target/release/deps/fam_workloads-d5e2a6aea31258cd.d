/root/repo/target/release/deps/fam_workloads-d5e2a6aea31258cd.d: crates/workloads/src/lib.rs crates/workloads/src/generator.rs crates/workloads/src/profiles.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/fam_workloads-d5e2a6aea31258cd: crates/workloads/src/lib.rs crates/workloads/src/generator.rs crates/workloads/src/profiles.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/profiles.rs:
crates/workloads/src/trace.rs:
