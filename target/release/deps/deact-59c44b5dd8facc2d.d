/root/repo/target/release/deps/deact-59c44b5dd8facc2d.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/node.rs crates/core/src/scheme.rs crates/core/src/system.rs crates/core/src/translator.rs

/root/repo/target/release/deps/libdeact-59c44b5dd8facc2d.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/node.rs crates/core/src/scheme.rs crates/core/src/system.rs crates/core/src/translator.rs

/root/repo/target/release/deps/libdeact-59c44b5dd8facc2d.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/node.rs crates/core/src/scheme.rs crates/core/src/system.rs crates/core/src/translator.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/metrics.rs:
crates/core/src/node.rs:
crates/core/src/scheme.rs:
crates/core/src/system.rs:
crates/core/src/translator.rs:
