/root/repo/target/release/deps/fig03-8757065a02dc2f0c.d: crates/bench/src/bin/fig03.rs

/root/repo/target/release/deps/fig03-8757065a02dc2f0c: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
