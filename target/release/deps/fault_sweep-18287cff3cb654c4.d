/root/repo/target/release/deps/fault_sweep-18287cff3cb654c4.d: examples/fault_sweep.rs Cargo.toml

/root/repo/target/release/deps/libfault_sweep-18287cff3cb654c4.rmeta: examples/fault_sweep.rs Cargo.toml

examples/fault_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
