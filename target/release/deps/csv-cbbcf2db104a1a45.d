/root/repo/target/release/deps/csv-cbbcf2db104a1a45.d: crates/bench/src/bin/csv.rs

/root/repo/target/release/deps/csv-cbbcf2db104a1a45: crates/bench/src/bin/csv.rs

crates/bench/src/bin/csv.rs:
