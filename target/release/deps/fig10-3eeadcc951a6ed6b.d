/root/repo/target/release/deps/fig10-3eeadcc951a6ed6b.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-3eeadcc951a6ed6b: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
