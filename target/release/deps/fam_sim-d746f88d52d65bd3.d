/root/repo/target/release/deps/fam_sim-d746f88d52d65bd3.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/window.rs Cargo.toml

/root/repo/target/release/deps/libfam_sim-d746f88d52d65bd3.rmeta: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/window.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/event.rs:
crates/sim/src/fault.rs:
crates/sim/src/resource.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
