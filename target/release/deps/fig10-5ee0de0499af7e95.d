/root/repo/target/release/deps/fig10-5ee0de0499af7e95.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/release/deps/libfig10-5ee0de0499af7e95.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
