/root/repo/target/release/deps/fam_mem-70ca03c95fd9efbb.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/hierarchy.rs crates/mem/src/nvm.rs

/root/repo/target/release/deps/fam_mem-70ca03c95fd9efbb: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/hierarchy.rs crates/mem/src/nvm.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/nvm.rs:
