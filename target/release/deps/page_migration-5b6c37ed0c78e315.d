/root/repo/target/release/deps/page_migration-5b6c37ed0c78e315.d: examples/page_migration.rs

/root/repo/target/release/deps/page_migration-5b6c37ed0c78e315: examples/page_migration.rs

examples/page_migration.rs:
