/root/repo/target/release/deps/fig15-dece4669367c666d.d: crates/bench/src/bin/fig15.rs

/root/repo/target/release/deps/fig15-dece4669367c666d: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
