/root/repo/target/release/deps/fig10-4807d3d19b1e6d8a.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/release/deps/libfig10-4807d3d19b1e6d8a.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
