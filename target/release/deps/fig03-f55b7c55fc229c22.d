/root/repo/target/release/deps/fig03-f55b7c55fc229c22.d: crates/bench/src/bin/fig03.rs Cargo.toml

/root/repo/target/release/deps/libfig03-f55b7c55fc229c22.rmeta: crates/bench/src/bin/fig03.rs Cargo.toml

crates/bench/src/bin/fig03.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
