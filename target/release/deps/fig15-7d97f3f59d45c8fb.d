/root/repo/target/release/deps/fig15-7d97f3f59d45c8fb.d: crates/bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/release/deps/libfig15-7d97f3f59d45c8fb.rmeta: crates/bench/src/bin/fig15.rs Cargo.toml

crates/bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
