/root/repo/target/release/deps/security-6fb8ca87a01269cd.d: tests/tests/security.rs

/root/repo/target/release/deps/security-6fb8ca87a01269cd: tests/tests/security.rs

tests/tests/security.rs:
