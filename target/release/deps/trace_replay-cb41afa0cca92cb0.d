/root/repo/target/release/deps/trace_replay-cb41afa0cca92cb0.d: examples/trace_replay.rs Cargo.toml

/root/repo/target/release/deps/libtrace_replay-cb41afa0cca92cb0.rmeta: examples/trace_replay.rs Cargo.toml

examples/trace_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
