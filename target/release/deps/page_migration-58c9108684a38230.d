/root/repo/target/release/deps/page_migration-58c9108684a38230.d: examples/page_migration.rs Cargo.toml

/root/repo/target/release/deps/libpage_migration-58c9108684a38230.rmeta: examples/page_migration.rs Cargo.toml

examples/page_migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
