/root/repo/target/release/deps/multi_tenant_isolation-c17e9b79cc64c875.d: examples/multi_tenant_isolation.rs

/root/repo/target/release/deps/multi_tenant_isolation-c17e9b79cc64c875: examples/multi_tenant_isolation.rs

examples/multi_tenant_isolation.rs:
