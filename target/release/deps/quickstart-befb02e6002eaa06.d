/root/repo/target/release/deps/quickstart-befb02e6002eaa06.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/deps/libquickstart-befb02e6002eaa06.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
