/root/repo/target/release/deps/fig16-2fca189e6b40a2f2.d: crates/bench/src/bin/fig16.rs Cargo.toml

/root/repo/target/release/deps/libfig16-2fca189e6b40a2f2.rmeta: crates/bench/src/bin/fig16.rs Cargo.toml

crates/bench/src/bin/fig16.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
