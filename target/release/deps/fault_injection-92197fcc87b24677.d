/root/repo/target/release/deps/fault_injection-92197fcc87b24677.d: tests/tests/fault_injection.rs

/root/repo/target/release/deps/fault_injection-92197fcc87b24677: tests/tests/fault_injection.rs

tests/tests/fault_injection.rs:
