/root/repo/target/release/deps/fig15-2947afa31ac9b395.d: crates/bench/src/bin/fig15.rs

/root/repo/target/release/deps/fig15-2947afa31ac9b395: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
