/root/repo/target/release/deps/fam_vm-8508acd36eba9aef.d: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/page_table.rs crates/vm/src/ptw_cache.rs crates/vm/src/tlb.rs crates/vm/src/walker.rs Cargo.toml

/root/repo/target/release/deps/libfam_vm-8508acd36eba9aef.rmeta: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/page_table.rs crates/vm/src/ptw_cache.rs crates/vm/src/tlb.rs crates/vm/src/walker.rs Cargo.toml

crates/vm/src/lib.rs:
crates/vm/src/addr.rs:
crates/vm/src/page_table.rs:
crates/vm/src/ptw_cache.rs:
crates/vm/src/tlb.rs:
crates/vm/src/walker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
