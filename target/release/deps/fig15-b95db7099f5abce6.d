/root/repo/target/release/deps/fig15-b95db7099f5abce6.d: crates/bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/release/deps/libfig15-b95db7099f5abce6.rmeta: crates/bench/src/bin/fig15.rs Cargo.toml

crates/bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
