/root/repo/target/release/deps/fam_stu-0b0f77c71f078e0a.d: crates/stu/src/lib.rs crates/stu/src/cache.rs crates/stu/src/unit.rs

/root/repo/target/release/deps/libfam_stu-0b0f77c71f078e0a.rlib: crates/stu/src/lib.rs crates/stu/src/cache.rs crates/stu/src/unit.rs

/root/repo/target/release/deps/libfam_stu-0b0f77c71f078e0a.rmeta: crates/stu/src/lib.rs crates/stu/src/cache.rs crates/stu/src/unit.rs

crates/stu/src/lib.rs:
crates/stu/src/cache.rs:
crates/stu/src/unit.rs:
