/root/repo/target/release/deps/fault_sweep-ff53ca156fcc60ed.d: examples/fault_sweep.rs

/root/repo/target/release/deps/fault_sweep-ff53ca156fcc60ed: examples/fault_sweep.rs

examples/fault_sweep.rs:
