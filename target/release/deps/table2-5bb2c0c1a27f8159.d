/root/repo/target/release/deps/table2-5bb2c0c1a27f8159.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-5bb2c0c1a27f8159: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
