/root/repo/target/release/deps/end_to_end-a62ff9e1cc54067d.d: tests/tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-a62ff9e1cc54067d: tests/tests/end_to_end.rs

tests/tests/end_to_end.rs:
