/root/repo/target/release/deps/fam_broker-03e6bb2be86d29a6.d: crates/broker/src/lib.rs crates/broker/src/acm.rs crates/broker/src/broker.rs crates/broker/src/layout.rs crates/broker/src/logical.rs

/root/repo/target/release/deps/libfam_broker-03e6bb2be86d29a6.rlib: crates/broker/src/lib.rs crates/broker/src/acm.rs crates/broker/src/broker.rs crates/broker/src/layout.rs crates/broker/src/logical.rs

/root/repo/target/release/deps/libfam_broker-03e6bb2be86d29a6.rmeta: crates/broker/src/lib.rs crates/broker/src/acm.rs crates/broker/src/broker.rs crates/broker/src/layout.rs crates/broker/src/logical.rs

crates/broker/src/lib.rs:
crates/broker/src/acm.rs:
crates/broker/src/broker.rs:
crates/broker/src/layout.rs:
crates/broker/src/logical.rs:
