/root/repo/target/release/deps/fig16-4a22fce5d4e3f9bb.d: crates/bench/src/bin/fig16.rs Cargo.toml

/root/repo/target/release/deps/libfig16-4a22fce5d4e3f9bb.rmeta: crates/bench/src/bin/fig16.rs Cargo.toml

crates/bench/src/bin/fig16.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
