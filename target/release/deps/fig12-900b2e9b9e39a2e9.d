/root/repo/target/release/deps/fig12-900b2e9b9e39a2e9.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-900b2e9b9e39a2e9: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
