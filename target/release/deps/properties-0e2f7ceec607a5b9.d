/root/repo/target/release/deps/properties-0e2f7ceec607a5b9.d: tests/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-0e2f7ceec607a5b9.rmeta: tests/tests/properties.rs Cargo.toml

tests/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
