/root/repo/target/release/deps/fig16-cb9b33728b90eb64.d: crates/bench/src/bin/fig16.rs

/root/repo/target/release/deps/fig16-cb9b33728b90eb64: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
