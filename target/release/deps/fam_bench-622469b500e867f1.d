/root/repo/target/release/deps/fam_bench-622469b500e867f1.d: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/paper.rs Cargo.toml

/root/repo/target/release/deps/libfam_bench-622469b500e867f1.rmeta: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/paper.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figs.rs:
crates/bench/src/paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
