/root/repo/target/release/deps/all-67d669df1d10280b.d: crates/bench/src/bin/all.rs Cargo.toml

/root/repo/target/release/deps/liball-67d669df1d10280b.rmeta: crates/bench/src/bin/all.rs Cargo.toml

crates/bench/src/bin/all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
