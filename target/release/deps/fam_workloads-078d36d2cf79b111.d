/root/repo/target/release/deps/fam_workloads-078d36d2cf79b111.d: crates/workloads/src/lib.rs crates/workloads/src/generator.rs crates/workloads/src/profiles.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/libfam_workloads-078d36d2cf79b111.rlib: crates/workloads/src/lib.rs crates/workloads/src/generator.rs crates/workloads/src/profiles.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/libfam_workloads-078d36d2cf79b111.rmeta: crates/workloads/src/lib.rs crates/workloads/src/generator.rs crates/workloads/src/profiles.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/profiles.rs:
crates/workloads/src/trace.rs:
