/root/repo/target/release/deps/fam_integration_tests-35fc6ef55e8c4b76.d: tests/src/lib.rs

/root/repo/target/release/deps/libfam_integration_tests-35fc6ef55e8c4b76.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libfam_integration_tests-35fc6ef55e8c4b76.rmeta: tests/src/lib.rs

tests/src/lib.rs:
