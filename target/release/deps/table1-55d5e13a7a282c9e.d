/root/repo/target/release/deps/table1-55d5e13a7a282c9e.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/release/deps/libtable1-55d5e13a7a282c9e.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
