/root/repo/target/release/deps/fabric_sweep-1a0be7ce88de8302.d: examples/fabric_sweep.rs Cargo.toml

/root/repo/target/release/deps/libfabric_sweep-1a0be7ce88de8302.rmeta: examples/fabric_sweep.rs Cargo.toml

examples/fabric_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
