/root/repo/target/release/deps/fam_stu-9ebf85d8c50579a9.d: crates/stu/src/lib.rs crates/stu/src/cache.rs crates/stu/src/unit.rs Cargo.toml

/root/repo/target/release/deps/libfam_stu-9ebf85d8c50579a9.rmeta: crates/stu/src/lib.rs crates/stu/src/cache.rs crates/stu/src/unit.rs Cargo.toml

crates/stu/src/lib.rs:
crates/stu/src/cache.rs:
crates/stu/src/unit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
