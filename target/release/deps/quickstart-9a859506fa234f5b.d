/root/repo/target/release/deps/quickstart-9a859506fa234f5b.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-9a859506fa234f5b: examples/quickstart.rs

examples/quickstart.rs:
