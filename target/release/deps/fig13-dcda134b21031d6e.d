/root/repo/target/release/deps/fig13-dcda134b21031d6e.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-dcda134b21031d6e: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
