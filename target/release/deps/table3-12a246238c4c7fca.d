/root/repo/target/release/deps/table3-12a246238c4c7fca.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-12a246238c4c7fca: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
