/root/repo/target/release/deps/table1-e9527efa311bc422.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-e9527efa311bc422: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
