/root/repo/target/release/deps/all-666626a3e41da146.d: crates/bench/src/bin/all.rs

/root/repo/target/release/deps/all-666626a3e41da146: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
