/root/repo/target/release/deps/fam_bench-e68cc3371803c3bc.d: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/paper.rs

/root/repo/target/release/deps/libfam_bench-e68cc3371803c3bc.rlib: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/paper.rs

/root/repo/target/release/deps/libfam_bench-e68cc3371803c3bc.rmeta: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/figs.rs:
crates/bench/src/paper.rs:
