/root/repo/target/release/deps/fault_sweep-1f7111b5cc96387d.d: examples/fault_sweep.rs

/root/repo/target/release/deps/fault_sweep-1f7111b5cc96387d: examples/fault_sweep.rs

examples/fault_sweep.rs:
