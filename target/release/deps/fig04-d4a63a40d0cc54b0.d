/root/repo/target/release/deps/fig04-d4a63a40d0cc54b0.d: crates/bench/src/bin/fig04.rs

/root/repo/target/release/deps/fig04-d4a63a40d0cc54b0: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
