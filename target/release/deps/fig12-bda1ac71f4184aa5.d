/root/repo/target/release/deps/fig12-bda1ac71f4184aa5.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-bda1ac71f4184aa5: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
