/root/repo/target/release/deps/all-75da9ba85003b684.d: crates/bench/src/bin/all.rs

/root/repo/target/release/deps/all-75da9ba85003b684: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
