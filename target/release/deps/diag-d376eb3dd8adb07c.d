/root/repo/target/release/deps/diag-d376eb3dd8adb07c.d: crates/bench/src/bin/diag.rs

/root/repo/target/release/deps/diag-d376eb3dd8adb07c: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
