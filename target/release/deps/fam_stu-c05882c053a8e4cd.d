/root/repo/target/release/deps/fam_stu-c05882c053a8e4cd.d: crates/stu/src/lib.rs crates/stu/src/cache.rs crates/stu/src/unit.rs Cargo.toml

/root/repo/target/release/deps/libfam_stu-c05882c053a8e4cd.rmeta: crates/stu/src/lib.rs crates/stu/src/cache.rs crates/stu/src/unit.rs Cargo.toml

crates/stu/src/lib.rs:
crates/stu/src/cache.rs:
crates/stu/src/unit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
