/root/repo/target/release/deps/assoc-38f95e4b35a179b4.d: crates/bench/src/bin/assoc.rs

/root/repo/target/release/deps/assoc-38f95e4b35a179b4: crates/bench/src/bin/assoc.rs

crates/bench/src/bin/assoc.rs:
