/root/repo/target/release/deps/fig09-f4796e7795db8e1f.d: crates/bench/src/bin/fig09.rs Cargo.toml

/root/repo/target/release/deps/libfig09-f4796e7795db8e1f.rmeta: crates/bench/src/bin/fig09.rs Cargo.toml

crates/bench/src/bin/fig09.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
