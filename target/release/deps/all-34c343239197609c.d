/root/repo/target/release/deps/all-34c343239197609c.d: crates/bench/src/bin/all.rs Cargo.toml

/root/repo/target/release/deps/liball-34c343239197609c.rmeta: crates/bench/src/bin/all.rs Cargo.toml

crates/bench/src/bin/all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
