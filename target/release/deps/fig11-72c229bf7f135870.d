/root/repo/target/release/deps/fig11-72c229bf7f135870.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-72c229bf7f135870: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
