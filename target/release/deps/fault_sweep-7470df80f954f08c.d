/root/repo/target/release/deps/fault_sweep-7470df80f954f08c.d: examples/fault_sweep.rs Cargo.toml

/root/repo/target/release/deps/libfault_sweep-7470df80f954f08c.rmeta: examples/fault_sweep.rs Cargo.toml

examples/fault_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
