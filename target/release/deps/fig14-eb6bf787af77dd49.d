/root/repo/target/release/deps/fig14-eb6bf787af77dd49.d: crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/target/release/deps/libfig14-eb6bf787af77dd49.rmeta: crates/bench/src/bin/fig14.rs Cargo.toml

crates/bench/src/bin/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
