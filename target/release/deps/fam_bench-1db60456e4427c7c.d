/root/repo/target/release/deps/fam_bench-1db60456e4427c7c.d: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/paper.rs Cargo.toml

/root/repo/target/release/deps/libfam_bench-1db60456e4427c7c.rmeta: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/paper.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figs.rs:
crates/bench/src/paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
