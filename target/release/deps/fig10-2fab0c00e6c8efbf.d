/root/repo/target/release/deps/fig10-2fab0c00e6c8efbf.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-2fab0c00e6c8efbf: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
