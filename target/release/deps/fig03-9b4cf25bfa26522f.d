/root/repo/target/release/deps/fig03-9b4cf25bfa26522f.d: crates/bench/src/bin/fig03.rs Cargo.toml

/root/repo/target/release/deps/libfig03-9b4cf25bfa26522f.rmeta: crates/bench/src/bin/fig03.rs Cargo.toml

crates/bench/src/bin/fig03.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
