/root/repo/target/release/deps/table2-3b46629af6307107.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/release/deps/libtable2-3b46629af6307107.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
