/root/repo/target/release/deps/fault_injection-372dad044856f371.d: tests/tests/fault_injection.rs Cargo.toml

/root/repo/target/release/deps/libfault_injection-372dad044856f371.rmeta: tests/tests/fault_injection.rs Cargo.toml

tests/tests/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
