/root/repo/target/release/deps/fam_bench-988f4f057bb34c69.d: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/paper.rs

/root/repo/target/release/deps/fam_bench-988f4f057bb34c69: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/figs.rs:
crates/bench/src/paper.rs:
