/root/repo/target/release/deps/trace_replay-b269840aa99244ba.d: examples/trace_replay.rs

/root/repo/target/release/deps/trace_replay-b269840aa99244ba: examples/trace_replay.rs

examples/trace_replay.rs:
