/root/repo/target/release/deps/trace_replay-72cde951f6f716a3.d: examples/trace_replay.rs Cargo.toml

/root/repo/target/release/deps/libtrace_replay-72cde951f6f716a3.rmeta: examples/trace_replay.rs Cargo.toml

examples/trace_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
