/root/repo/target/release/deps/fam_mem-a555ba4e3e5f6433.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/hierarchy.rs crates/mem/src/nvm.rs

/root/repo/target/release/deps/libfam_mem-a555ba4e3e5f6433.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/hierarchy.rs crates/mem/src/nvm.rs

/root/repo/target/release/deps/libfam_mem-a555ba4e3e5f6433.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/hierarchy.rs crates/mem/src/nvm.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/nvm.rs:
