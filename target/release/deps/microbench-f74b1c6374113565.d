/root/repo/target/release/deps/microbench-f74b1c6374113565.d: crates/bench/src/bin/microbench.rs

/root/repo/target/release/deps/microbench-f74b1c6374113565: crates/bench/src/bin/microbench.rs

crates/bench/src/bin/microbench.rs:
