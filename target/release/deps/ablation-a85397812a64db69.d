/root/repo/target/release/deps/ablation-a85397812a64db69.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/release/deps/libablation-a85397812a64db69.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
