/root/repo/target/release/deps/fig12-91891f5d7924b4cd.d: crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/release/deps/libfig12-91891f5d7924b4cd.rmeta: crates/bench/src/bin/fig12.rs Cargo.toml

crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
