/root/repo/target/release/deps/assoc-36f162d16c6d3c07.d: crates/bench/src/bin/assoc.rs Cargo.toml

/root/repo/target/release/deps/libassoc-36f162d16c6d3c07.rmeta: crates/bench/src/bin/assoc.rs Cargo.toml

crates/bench/src/bin/assoc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
