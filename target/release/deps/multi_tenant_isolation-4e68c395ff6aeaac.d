/root/repo/target/release/deps/multi_tenant_isolation-4e68c395ff6aeaac.d: examples/multi_tenant_isolation.rs Cargo.toml

/root/repo/target/release/deps/libmulti_tenant_isolation-4e68c395ff6aeaac.rmeta: examples/multi_tenant_isolation.rs Cargo.toml

examples/multi_tenant_isolation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
