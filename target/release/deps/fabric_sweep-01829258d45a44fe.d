/root/repo/target/release/deps/fabric_sweep-01829258d45a44fe.d: examples/fabric_sweep.rs Cargo.toml

/root/repo/target/release/deps/libfabric_sweep-01829258d45a44fe.rmeta: examples/fabric_sweep.rs Cargo.toml

examples/fabric_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
