/root/repo/target/release/deps/fam_broker-b27ddc4258ea5e6e.d: crates/broker/src/lib.rs crates/broker/src/acm.rs crates/broker/src/broker.rs crates/broker/src/layout.rs crates/broker/src/logical.rs Cargo.toml

/root/repo/target/release/deps/libfam_broker-b27ddc4258ea5e6e.rmeta: crates/broker/src/lib.rs crates/broker/src/acm.rs crates/broker/src/broker.rs crates/broker/src/layout.rs crates/broker/src/logical.rs Cargo.toml

crates/broker/src/lib.rs:
crates/broker/src/acm.rs:
crates/broker/src/broker.rs:
crates/broker/src/layout.rs:
crates/broker/src/logical.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
