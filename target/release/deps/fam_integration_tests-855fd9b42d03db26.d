/root/repo/target/release/deps/fam_integration_tests-855fd9b42d03db26.d: tests/src/lib.rs

/root/repo/target/release/deps/fam_integration_tests-855fd9b42d03db26: tests/src/lib.rs

tests/src/lib.rs:
