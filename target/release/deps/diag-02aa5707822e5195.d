/root/repo/target/release/deps/diag-02aa5707822e5195.d: crates/bench/src/bin/diag.rs

/root/repo/target/release/deps/diag-02aa5707822e5195: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
