/root/repo/target/release/deps/fig09-e247d33ada37585f.d: crates/bench/src/bin/fig09.rs

/root/repo/target/release/deps/fig09-e247d33ada37585f: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
