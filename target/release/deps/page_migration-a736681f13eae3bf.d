/root/repo/target/release/deps/page_migration-a736681f13eae3bf.d: examples/page_migration.rs Cargo.toml

/root/repo/target/release/deps/libpage_migration-a736681f13eae3bf.rmeta: examples/page_migration.rs Cargo.toml

examples/page_migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
