/root/repo/target/release/deps/fig03-bbed4c5c537f9983.d: crates/bench/src/bin/fig03.rs

/root/repo/target/release/deps/fig03-bbed4c5c537f9983: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
