/root/repo/target/release/deps/fam_vm-659b9c482ac9429e.d: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/page_table.rs crates/vm/src/ptw_cache.rs crates/vm/src/tlb.rs crates/vm/src/walker.rs

/root/repo/target/release/deps/libfam_vm-659b9c482ac9429e.rlib: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/page_table.rs crates/vm/src/ptw_cache.rs crates/vm/src/tlb.rs crates/vm/src/walker.rs

/root/repo/target/release/deps/libfam_vm-659b9c482ac9429e.rmeta: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/page_table.rs crates/vm/src/ptw_cache.rs crates/vm/src/tlb.rs crates/vm/src/walker.rs

crates/vm/src/lib.rs:
crates/vm/src/addr.rs:
crates/vm/src/page_table.rs:
crates/vm/src/ptw_cache.rs:
crates/vm/src/tlb.rs:
crates/vm/src/walker.rs:
