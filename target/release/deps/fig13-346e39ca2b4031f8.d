/root/repo/target/release/deps/fig13-346e39ca2b4031f8.d: crates/bench/src/bin/fig13.rs Cargo.toml

/root/repo/target/release/deps/libfig13-346e39ca2b4031f8.rmeta: crates/bench/src/bin/fig13.rs Cargo.toml

crates/bench/src/bin/fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
