/root/repo/target/release/deps/fig04-c1cdfbf7d0e54592.d: crates/bench/src/bin/fig04.rs

/root/repo/target/release/deps/fig04-c1cdfbf7d0e54592: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
