/root/repo/target/release/deps/deact_sim-9c6b417325a6dc88.d: crates/core/src/bin/deact-sim.rs

/root/repo/target/release/deps/deact_sim-9c6b417325a6dc88: crates/core/src/bin/deact-sim.rs

crates/core/src/bin/deact-sim.rs:
