/root/repo/target/release/deps/csv-cb1f91f8805e19aa.d: crates/bench/src/bin/csv.rs

/root/repo/target/release/deps/csv-cb1f91f8805e19aa: crates/bench/src/bin/csv.rs

crates/bench/src/bin/csv.rs:
