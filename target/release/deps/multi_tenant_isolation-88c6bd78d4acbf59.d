/root/repo/target/release/deps/multi_tenant_isolation-88c6bd78d4acbf59.d: examples/multi_tenant_isolation.rs

/root/repo/target/release/deps/multi_tenant_isolation-88c6bd78d4acbf59: examples/multi_tenant_isolation.rs

examples/multi_tenant_isolation.rs:
