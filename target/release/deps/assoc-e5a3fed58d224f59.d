/root/repo/target/release/deps/assoc-e5a3fed58d224f59.d: crates/bench/src/bin/assoc.rs Cargo.toml

/root/repo/target/release/deps/libassoc-e5a3fed58d224f59.rmeta: crates/bench/src/bin/assoc.rs Cargo.toml

crates/bench/src/bin/assoc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
