/root/repo/target/release/deps/fig04-5c308829d719e38e.d: crates/bench/src/bin/fig04.rs Cargo.toml

/root/repo/target/release/deps/libfig04-5c308829d719e38e.rmeta: crates/bench/src/bin/fig04.rs Cargo.toml

crates/bench/src/bin/fig04.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
