/root/repo/target/release/deps/deact-07defb06efe0acce.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/node.rs crates/core/src/scheme.rs crates/core/src/system.rs crates/core/src/translator.rs Cargo.toml

/root/repo/target/release/deps/libdeact-07defb06efe0acce.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/node.rs crates/core/src/scheme.rs crates/core/src/system.rs crates/core/src/translator.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/metrics.rs:
crates/core/src/node.rs:
crates/core/src/scheme.rs:
crates/core/src/system.rs:
crates/core/src/translator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
