/root/repo/target/release/deps/fig14-c931b6566e98c29f.d: crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/target/release/deps/libfig14-c931b6566e98c29f.rmeta: crates/bench/src/bin/fig14.rs Cargo.toml

crates/bench/src/bin/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
