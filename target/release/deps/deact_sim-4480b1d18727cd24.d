/root/repo/target/release/deps/deact_sim-4480b1d18727cd24.d: crates/core/src/bin/deact-sim.rs Cargo.toml

/root/repo/target/release/deps/libdeact_sim-4480b1d18727cd24.rmeta: crates/core/src/bin/deact-sim.rs Cargo.toml

crates/core/src/bin/deact-sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
