/root/repo/target/release/deps/fam_fabric-9a41d009b723c2aa.d: crates/fabric/src/lib.rs crates/fabric/src/packet.rs Cargo.toml

/root/repo/target/release/deps/libfam_fabric-9a41d009b723c2aa.rmeta: crates/fabric/src/lib.rs crates/fabric/src/packet.rs Cargo.toml

crates/fabric/src/lib.rs:
crates/fabric/src/packet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
