/root/repo/target/release/deps/traffic_accounting-861118a3acda2469.d: tests/tests/traffic_accounting.rs Cargo.toml

/root/repo/target/release/deps/libtraffic_accounting-861118a3acda2469.rmeta: tests/tests/traffic_accounting.rs Cargo.toml

tests/tests/traffic_accounting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
