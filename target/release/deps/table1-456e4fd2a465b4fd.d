/root/repo/target/release/deps/table1-456e4fd2a465b4fd.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/release/deps/libtable1-456e4fd2a465b4fd.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
