/root/repo/target/release/deps/table3-7ff97d0169ea337f.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/release/deps/libtable3-7ff97d0169ea337f.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
