/root/repo/target/release/deps/fig12-15471acbedff5900.d: crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/release/deps/libfig12-15471acbedff5900.rmeta: crates/bench/src/bin/fig12.rs Cargo.toml

crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
