/root/repo/target/release/deps/fig14-5fcb197bec67a5d1.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-5fcb197bec67a5d1: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
