/root/repo/target/release/deps/table1-fabfccee4672f1ad.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-fabfccee4672f1ad: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
