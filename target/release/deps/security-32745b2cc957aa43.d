/root/repo/target/release/deps/security-32745b2cc957aa43.d: tests/tests/security.rs Cargo.toml

/root/repo/target/release/deps/libsecurity-32745b2cc957aa43.rmeta: tests/tests/security.rs Cargo.toml

tests/tests/security.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
