/root/repo/target/release/deps/fam_broker-8bb1d15f2c8f928a.d: crates/broker/src/lib.rs crates/broker/src/acm.rs crates/broker/src/broker.rs crates/broker/src/layout.rs crates/broker/src/logical.rs

/root/repo/target/release/deps/fam_broker-8bb1d15f2c8f928a: crates/broker/src/lib.rs crates/broker/src/acm.rs crates/broker/src/broker.rs crates/broker/src/layout.rs crates/broker/src/logical.rs

crates/broker/src/lib.rs:
crates/broker/src/acm.rs:
crates/broker/src/broker.rs:
crates/broker/src/layout.rs:
crates/broker/src/logical.rs:
