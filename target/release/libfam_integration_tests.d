/root/repo/target/release/libfam_integration_tests.rlib: /root/repo/tests/src/lib.rs
