//! Scheduler-equivalence and parallel-determinism guarantees.
//!
//! The event-queue scheduler ([`deact::System::try_run`]) replaced the
//! seed's all-cores rescan ([`deact::System::try_run_scan`]) purely as
//! a complexity optimisation: O(log n) heap maintenance per reference
//! instead of O(n) sweeps. These tests pin down that the optimisation
//! changed *nothing else* — fixed-seed reports are bit-identical
//! between the two schedulers, across schemes, node counts, and fault
//! injection — and that the pool-parallel sweep engine returns exactly
//! what a serial sweep returns.

use deact::{RunReport, Scheme, System, SystemConfig};
use fam_sim::FaultConfig;
use fam_workloads::Workload;

fn reports_for(cfg: SystemConfig, bench: &str) -> (RunReport, RunReport) {
    let w = Workload::by_name(bench).expect("table3 benchmark");
    let heap = System::new(cfg, &w).try_run().expect("heap run completes");
    let scan = System::new(cfg, &w)
        .try_run_scan()
        .expect("scan run completes");
    (heap, scan)
}

fn assert_equivalent(cfg: SystemConfig, bench: &str, label: &str) {
    let (heap, scan) = reports_for(cfg, bench);
    assert_eq!(heap, scan, "{label}: schedulers must be bit-identical");
}

#[test]
fn heap_scheduler_matches_scan_single_node() {
    for scheme in Scheme::ALL {
        let cfg = SystemConfig::paper_default()
            .with_scheme(scheme)
            .with_refs_per_core(3_000)
            .with_seed(17);
        assert_equivalent(cfg, "astar", &format!("1-node {scheme}"));
    }
}

#[test]
fn heap_scheduler_matches_scan_eight_nodes_four_cores() {
    // The configuration where the scan's O(nodes × cores) cost — and
    // any tie-break divergence — would be most visible: 32 cores
    // contending for one fabric and FAM pool.
    let cfg = SystemConfig::paper_default()
        .with_scheme(Scheme::DeactN)
        .with_nodes(8)
        .with_fam_modules(8)
        .with_refs_per_core(600)
        .with_seed(99);
    assert_equivalent(cfg, "pf", "8x4-core DeACT-N");
    assert_equivalent(cfg.with_scheme(Scheme::IFam), "pf", "8x4-core I-FAM");
}

#[test]
fn heap_scheduler_matches_scan_translation_hostile_workload() {
    let cfg = SystemConfig::paper_default()
        .with_scheme(Scheme::IFam)
        .with_refs_per_core(4_000)
        .with_seed(5);
    assert_equivalent(cfg, "sssp", "sssp I-FAM");
}

#[test]
fn heap_scheduler_matches_scan_under_fault_injection() {
    // Fault recovery exercises the retry/backoff paths and the
    // corruption scratch buffer; the schedulers must still agree.
    let cfg = SystemConfig::paper_default()
        .with_scheme(Scheme::DeactN)
        .with_refs_per_core(2_000)
        .with_seed(23)
        .with_fault_injection(FaultConfig::transient(7));
    assert_equivalent(cfg, "canl", "faulty DeACT-N");
}

#[test]
fn heap_scheduler_is_deterministic_across_repeats() {
    let cfg = SystemConfig::paper_default()
        .with_scheme(Scheme::DeactW)
        .with_nodes(2)
        .with_refs_per_core(1_500)
        .with_seed(3);
    let w = Workload::by_name("dc").unwrap();
    let a = System::new(cfg, &w).try_run().unwrap();
    let b = System::new(cfg, &w).try_run().unwrap();
    assert_eq!(a, b);
}
