//! End-to-end contracts of permanent-failure survival: quarantine,
//! evacuation, translation shootdown, and degraded-mode operation.
//!
//! The unit layers pin the mechanisms (`fam_stu::Stu::shootdown`,
//! `TlbHierarchy::invalidate_stale`, the broker's
//! `quarantine_and_evacuate`); these tests pin the *system* promises:
//!
//! 1. A FAM module dying mid-run never panics the simulation — every
//!    scheme completes degraded with a populated [`DegradationReport`].
//! 2. After the broadcast shootdown, no survivor ever consumes a stale
//!    translation into a quarantined page: re-accesses re-walk. The
//!    access paths assert that benign workloads never trip access
//!    control, so a stale cached FAM address slipping through would
//!    abort the run — completion *is* the proof, and the extra page
//!    faults are the re-walk evidence.
//! 3. Severed links (media intact) evacuate instead of losing data:
//!    zero poisoned accesses, and the workload's instruction count is
//!    untouched — recovery changes timing, never the work performed.
//! 4. Arming a persistent fault that never strikes is free: the report
//!    is bit-identical to one without it.

use deact::{run_benchmark, try_run_benchmark, Scheme, SimError, System, SystemConfig};
use fam_sim::{FaultConfig, PersistentFault};
use fam_workloads::Workload;

/// Two nodes over two FAM modules: killing module 1 leaves a survivor
/// to evacuate to.
fn chaos(scheme: Scheme) -> SystemConfig {
    SystemConfig::paper_default()
        .with_scheme(scheme)
        .with_nodes(2)
        .with_fam_modules(2)
        .with_refs_per_core(3_000)
        .with_seed(11)
}

const STRIKE_AT: u64 = 500;

#[test]
fn every_scheme_survives_every_persistent_fault_class() {
    for fault in [
        PersistentFault::NodeDead { module: 1 },
        PersistentFault::LinkSevered { module: 1 },
        PersistentFault::MediaFailed {
            first_page: 0,
            pages: 256,
        },
    ] {
        for scheme in Scheme::ALL {
            let cfg =
                chaos(scheme).with_fault_injection(FaultConfig::persistent_only(11, fault, 500));
            let r = run_benchmark("sssp", cfg);
            let d = &r.degradation;
            assert!(!d.is_zero(), "{fault:?}/{scheme}: fault never struck");
            assert!(d.pages_quarantined > 0, "{fault:?}/{scheme}");
            assert!(d.recovery_cycles > 0, "{fault:?}/{scheme}");
            assert!(d.capacity_pages_remaining > 0, "{fault:?}/{scheme}");
            assert!(r.ipc > 0.0, "{fault:?}/{scheme}: the run completes");
        }
    }
}

#[test]
fn shootdown_forces_rewalks_instead_of_stale_hits() {
    for scheme in Scheme::ALL {
        let clean = run_benchmark("sssp", chaos(scheme));
        let killed = run_benchmark(
            "sssp",
            chaos(scheme).with_fault_injection(FaultConfig::persistent_only(
                11,
                PersistentFault::NodeDead { module: 1 },
                STRIKE_AT,
            )),
        );
        let d = &killed.degradation;
        // The broadcast walk visits every surviving node and pays the
        // management round trips even when a node had nothing cached.
        assert!(d.shootdown_cycles > 0, "{scheme}: shootdown was free?");
        assert!(d.pages_lost > 0, "{scheme}: a dead module loses pages");
        // Lost pages poison their next touch and demand-map a fresh
        // page — so the degraded run must observe *more* page faults
        // than the clean one: the invalidated entries really re-walked
        // rather than serving a stale FAM address.
        assert!(d.poisoned_accesses > 0, "{scheme}");
        assert!(
            killed.faults > clean.faults,
            "{scheme}: lost pages must re-fault ({} vs {})",
            killed.faults,
            clean.faults
        );
        assert_eq!(
            clean.instructions, killed.instructions,
            "{scheme}: degradation changes timing, never the work performed"
        );
    }
}

#[test]
fn severed_links_evacuate_without_data_loss() {
    for scheme in Scheme::ALL {
        let r = run_benchmark(
            "sssp",
            chaos(scheme).with_fault_injection(FaultConfig::persistent_only(
                11,
                PersistentFault::LinkSevered { module: 1 },
                STRIKE_AT,
            )),
        );
        let d = &r.degradation;
        assert!(d.pages_evacuated > 0, "{scheme}: nothing evacuated");
        assert_eq!(d.pages_lost, 0, "{scheme}: the media was intact");
        assert_eq!(d.poisoned_accesses, 0, "{scheme}: no data was lost");
        assert!(d.evacuation_cycles > 0, "{scheme}: evacuation is not free");
    }
}

#[test]
fn halt_on_data_loss_is_a_typed_error_not_a_panic() {
    let cfg = chaos(Scheme::IFam)
        .with_halt_on_data_loss(true)
        .with_fault_injection(FaultConfig::persistent_only(
            11,
            PersistentFault::NodeDead { module: 1 },
            STRIKE_AT,
        ));
    let err = try_run_benchmark("sssp", cfg).unwrap_err();
    assert!(matches!(err, SimError::DataLoss { .. }), "{err}");
    assert!(err.to_string().contains("permanent failure"), "{err}");
}

#[test]
fn replayed_trace_survives_node_death_like_the_synthetic_run() {
    // Replay composes with chaos: recording captures the address
    // stream only (faults strike at FAM-op ordinals, orthogonal to
    // where the refs come from), so a replayed trace under
    // `--kill-node` must reproduce the synthetic chaos run bit for
    // bit — DegradationReport included — on the sequential and
    // sharded engines alike.
    let cfg = chaos(Scheme::DeactN).with_fault_injection(FaultConfig::persistent_only(
        11,
        PersistentFault::NodeDead { module: 1 },
        STRIKE_AT,
    ));
    let w = Workload::by_name("sssp").unwrap();
    let path = std::env::temp_dir().join(format!("famt-degraded-{}.famt", std::process::id()));
    let mut streams = System::synthetic_streams(&cfg, &w);
    fam_workloads::trace::record_streams(
        std::io::BufWriter::new(std::fs::File::create(&path).unwrap()),
        &mut streams,
        cfg.refs_per_core,
    )
    .unwrap();
    let synthetic = run_benchmark("sssp", cfg);
    for threads in [1usize, 2] {
        let streams =
            fam_workloads::trace::replay_streams(&path, cfg.nodes, cfg.cores_per_node).unwrap();
        let replayed = System::with_streams(cfg, "sssp", streams)
            .try_run_parallel(threads)
            .expect("replayed chaos run completes degraded");
        assert_eq!(
            replayed, synthetic,
            "{threads}t: replayed chaos run diverged from synthetic"
        );
    }
    let d = &synthetic.degradation;
    assert!(!d.is_zero() && d.pages_quarantined > 0 && d.pages_lost > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn armed_but_unstruck_persistent_fault_is_free() {
    for scheme in [Scheme::EFam, Scheme::DeactN] {
        let baseline = run_benchmark(
            "sssp",
            chaos(scheme).with_fault_injection(FaultConfig::transient(11)),
        );
        let armed = run_benchmark(
            "sssp",
            chaos(scheme).with_fault_injection(
                FaultConfig::transient(11)
                    .with_persistent(PersistentFault::NodeDead { module: 1 }, u64::MAX),
            ),
        );
        assert!(armed.degradation.is_zero(), "{scheme}");
        assert_eq!(
            baseline, armed,
            "{scheme}: an armed-but-unstruck fault must cost nothing"
        );
    }
}
