//! The host-time profiler's cross-crate contracts.
//!
//! The profiler makes the same promise the tracer and fault injector
//! do — *zero overhead when off, observation-only when on* — but with
//! a stronger mechanism: it reads only the host clock
//! (`std::time::Instant`), never the simulated one, so a profiled run
//! is bit-identical to an unprofiled run *by construction*, not by
//! care. These tests prove that across every engine, with tracing and
//! fault injection layered on, and also exercise the end-of-run
//! conservation audit and metrics registry on real runs.
//!
//! The profiler's enable switch is process-global and `report()`
//! drains the global accumulator whenever the switch is on, so every
//! test in this file — even the audit/registry ones, whose runs would
//! otherwise steal a concurrently-profiled run's spans — serializes
//! on [`LOCK`]. (The harness runs `#[test]` fns of one binary
//! concurrently; files are separate processes, so the lock's scope is
//! exactly right.)

use std::sync::Mutex;

use deact::{RunReport, Scheme, System, SystemConfig};
use fam_sim::{profile, FaultConfig, ProfileReport, TraceConfig};
use fam_workloads::Workload;

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes a test against the process-global profiler state.
fn serialized() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn base(scheme: Scheme) -> SystemConfig {
    SystemConfig::paper_default()
        .with_scheme(scheme)
        .with_refs_per_core(1_500)
        .with_seed(0x9F0F)
}

/// Runs `cfg` under the named engine.
fn run_engine(cfg: SystemConfig, engine: &str) -> RunReport {
    let w = Workload::by_name("astar").expect("table3 benchmark");
    let mut sys = System::new(cfg, &w);
    match engine {
        "fast" => sys.try_run(),
        "exact" => sys.try_run_exact(),
        "parallel" => sys.try_run_parallel(2),
        _ => unreachable!(),
    }
    .expect("run completes")
}

/// The whole differential matrix in one test: engines × tracing ×
/// fault injection, profiler off vs. on. The *only* permitted
/// difference is the profile block itself (excluded from
/// `RunReport`'s `PartialEq`, like the latency block) — and the
/// equality assertion below would catch any simulated-time drift.
#[test]
fn profiled_runs_are_bit_identical_across_engines_tracing_and_faults() {
    let _guard = serialized();
    let variants: Vec<(&str, SystemConfig)> = vec![
        ("plain", base(Scheme::DeactN)),
        (
            "traced",
            base(Scheme::DeactN).with_trace(TraceConfig::full()),
        ),
        (
            "faulty",
            base(Scheme::DeactN).with_fault_injection(FaultConfig::transient(0xFA)),
        ),
        ("efam", base(Scheme::EFam)),
    ];
    for engine in ["fast", "exact", "parallel"] {
        for (name, cfg) in &variants {
            let off = run_engine(*cfg, engine);
            assert!(
                off.profile.is_empty(),
                "{engine}/{name}: disabled profiler must leave the report empty"
            );
            profile::set_enabled(true);
            let on = run_engine(*cfg, engine);
            profile::set_enabled(false);
            assert!(
                !on.profile.is_empty(),
                "{engine}/{name}: enabled profiler must capture spans"
            );
            assert!(
                on.profile.total_self_ns() > 0,
                "{engine}/{name}: captured spans must carry host time"
            );
            assert_eq!(
                off, on,
                "{engine}/{name}: profiling must not perturb the simulation"
            );
        }
    }
    // Leftover spans from the final enabled run must not leak into a
    // later take: the report is attached at `report()` time.
    assert!(profile::take_report().is_empty());
}

/// The folded-stack exporter emits one line per observed path, each
/// `phase(;phase)* <self_ns>` — the format inferno/speedscope ingest.
#[test]
fn folded_stack_lines_are_well_formed() {
    let _guard = serialized();
    let mut report = ProfileReport::default();
    // Build the report from a real (tiny) run rather than hand-rolled
    // state, serialized against the matrix test via the global switch
    // being toggled there — keep this run's spans separable by doing
    // the whole thing while enabled and taking the report directly.
    profile::set_enabled(true);
    {
        let _outer = profile::span(profile::PhaseId::SchedDispatch);
        let _inner = profile::span(profile::PhaseId::Tlb);
    }
    report.merge(&profile::take_report());
    profile::set_enabled(false);
    let folded = report.to_folded();
    assert!(
        folded.lines().any(|l| l.starts_with("sched-dispatch;tlb ")),
        "nested span must fold under its parent: {folded:?}"
    );
    for line in folded.lines() {
        let (stack, ns) = line.rsplit_once(' ').expect("stack SPACE ns");
        assert!(!stack.is_empty());
        ns.parse::<u64>().expect("self-time in integer ns");
    }
}

/// The conservation audit holds on a multi-node, multi-module,
/// multi-scheme smoke of the figure-suite shape, on both engines.
#[test]
fn conservation_audit_passes_on_figure_suite_smoke() {
    let _guard = serialized();
    for scheme in Scheme::ALL {
        let cfg = SystemConfig::paper_default()
            .with_scheme(scheme)
            .with_nodes(4)
            .with_fam_modules(2)
            .with_refs_per_core(1_000)
            .with_seed(0xF16);
        let w = Workload::by_name("sssp").expect("table3 benchmark");
        let mut sys = System::new(cfg, &w);
        sys.try_run_parallel(2).expect("run completes");
        let audit = sys.audit();
        assert!(audit.passed(), "{scheme}: {audit}");
        assert_eq!(
            audit.checks.len(),
            6,
            "{scheme}: all six invariants checked"
        );
    }
}

/// The audit's fault-dependent checks stay meaningful (not skipped)
/// under transient injection, and degrade to skips — never false
/// failures — under a permanent kill.
#[test]
fn conservation_audit_gates_follow_the_fault_regime() {
    let _guard = serialized();
    let w = Workload::by_name("sssp").expect("table3 benchmark");

    let cfg = base(Scheme::DeactN).with_fault_injection(FaultConfig::transient(0xFA));
    let mut sys = System::new(cfg, &w);
    let r = sys.try_run().expect("run completes");
    assert!(r.recovery.injected_total() > 0, "faults must fire");
    let audit = sys.audit();
    assert!(audit.passed(), "{audit}");
    let drop_check = audit
        .checks
        .iter()
        .find(|c| c.name == "drop-accounting")
        .expect("check present");
    assert!(
        !drop_check.detail.starts_with("skipped"),
        "transient injection must keep drop accounting live: {}",
        drop_check.detail
    );

    let killed = SystemConfig::paper_default()
        .with_scheme(Scheme::DeactN)
        .with_fam_modules(2)
        .with_refs_per_core(2_000)
        .with_seed(0x9F0F)
        .with_fault_injection(
            FaultConfig::transient(0xFA)
                .with_persistent(fam_sim::PersistentFault::NodeDead { module: 1 }, 500),
        );
    let mut sys = System::new(killed, &w);
    sys.try_run().expect("survives degraded");
    let audit = sys.audit();
    assert!(audit.passed(), "{audit}");
    assert!(audit.checks.iter().any(|c| c.detail.starts_with("skipped")));
}

/// The registry snapshot exposes stable names, and its `diff` isolates
/// one run's worth of work from accumulated state.
#[test]
fn registry_snapshot_diff_isolates_a_run() {
    let _guard = serialized();
    let w = Workload::by_name("astar").expect("table3 benchmark");
    let mut sys = System::new(base(Scheme::DeactN), &w);
    let before = sys.metrics();
    sys.try_run().expect("run completes");
    let after = sys.metrics();
    let delta = after.diff(&before);
    let refs: u64 = delta
        .counter_value("node0/refs_done")
        .expect("named counter");
    assert_eq!(refs, 1_500 * 4, "refs_per_core x cores_per_node");
    assert!(delta.counter_value("fabric/traversals").unwrap_or(0) > 0);
    // Merging the delta back onto the baseline reproduces the final
    // snapshot for every counter.
    let mut rebuilt = before.snapshot();
    rebuilt.merge(&delta);
    assert_eq!(
        rebuilt.counter_value("node0/refs_done"),
        after.counter_value("node0/refs_done")
    );
}
