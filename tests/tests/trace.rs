//! The tracing subsystem's cross-crate contracts.
//!
//! The headline guarantee mirrors the fault injector's: tracing is
//! *zero-overhead when off*. A disabled tracer costs one branch per
//! event site and changes nothing — proven here the same way
//! `scheduler.rs` proves scheduler equivalence, by comparing fixed-seed
//! [`RunReport`]s bit for bit. The other tests cover the bounded ring's
//! drop accounting, the Chrome trace-event exporter's output, and the
//! windowed time series' books balancing against the run report.

use deact::{RunReport, Scheme, System, SystemConfig};
use fam_sim::trace::{validate_chrome_json, write_chrome_trace};
use fam_sim::{FaultConfig, LatencyBreakdown, TraceConfig, Track};
use fam_workloads::Workload;

fn run_with(cfg: SystemConfig) -> RunReport {
    let w = Workload::by_name("astar").expect("table3 benchmark");
    System::new(cfg, &w).try_run().expect("run completes")
}

fn base(scheme: Scheme) -> SystemConfig {
    SystemConfig::paper_default()
        .with_scheme(scheme)
        .with_refs_per_core(2_000)
        .with_seed(0x7ACE)
}

#[test]
fn traced_runs_are_bit_identical_to_untraced_runs() {
    for scheme in Scheme::ALL {
        let untraced = run_with(base(scheme));
        let mut traced = run_with(base(scheme).with_trace(TraceConfig::full()));
        assert!(
            !traced.latency.is_empty(),
            "{scheme}: a traced run must measure something"
        );
        // The *only* permitted difference is the latency block itself.
        traced.latency = LatencyBreakdown::default();
        assert_eq!(
            untraced, traced,
            "{scheme}: tracing must not perturb the simulation"
        );
    }
}

#[test]
fn traced_runs_are_bit_identical_under_fault_injection() {
    // The retry/backoff event sites sit inside the recovery loop; prove
    // they are observation-only even when that loop is exercised.
    let cfg = base(Scheme::DeactN).with_fault_injection(FaultConfig::transient(0xFA));
    let untraced = run_with(cfg);
    let mut traced = run_with(cfg.with_trace(TraceConfig::full()));
    assert!(untraced.recovery.retries > 0, "profile must inject faults");
    traced.latency = LatencyBreakdown::default();
    assert_eq!(untraced, traced);
}

#[test]
fn untraced_reports_carry_an_empty_breakdown() {
    let r = run_with(base(Scheme::DeactN));
    assert!(r.latency.is_empty());
    assert_eq!(r.latency, LatencyBreakdown::default());
}

#[test]
fn ring_overflow_is_counted_not_silent() {
    let w = Workload::by_name("astar").expect("table3 benchmark");
    let cfg = base(Scheme::DeactN).with_trace(TraceConfig::full().with_ring_capacity(64));
    let mut sys = System::new(cfg, &w);
    sys.try_run().expect("run completes");
    let t = sys.tracer();
    assert_eq!(t.retained(), 64, "ring fills to capacity");
    assert!(t.recorded() > 64, "the run emits more events than fit");
    assert_eq!(
        t.dropped(),
        t.recorded() - t.retained() as u64,
        "every overwritten event is accounted for"
    );
}

#[test]
fn chrome_trace_export_is_well_formed_and_spans_the_pipeline() {
    let w = Workload::by_name("astar").expect("table3 benchmark");
    let cfg = base(Scheme::DeactN).with_trace(TraceConfig::full());
    let mut sys = System::new(cfg, &w);
    sys.try_run().expect("run completes");

    let mut buf = Vec::new();
    write_chrome_trace(&mut buf, sys.tracer(), 2000).expect("write succeeds");
    let text = String::from_utf8(buf).expect("exporter emits UTF-8");
    let events = validate_chrome_json(&text).expect("exporter emits valid JSON");
    assert!(events > 0, "a DeACT-N run must produce events");

    // The acceptance demo: at least one request's span set reaches
    // node → fabric → STU → NVM. Request ids live in `args.req`, so
    // scan the retained events directly.
    let crosses_pipeline = sys.tracer().events().any(|ev| {
        ev.req.is_traced()
            && matches!(ev.track, Track::Nvm(_))
            && sys
                .tracer()
                .events()
                .any(|e| e.req == ev.req && matches!(e.track, Track::Node(_)))
            && sys
                .tracer()
                .events()
                .any(|e| e.req == ev.req && matches!(e.track, Track::Stu(_)))
            && sys
                .tracer()
                .events()
                .any(|e| e.req == ev.req && matches!(e.track, Track::Fabric(_)))
    });
    assert!(
        crosses_pipeline,
        "some request must span node, fabric, STU and NVM tracks"
    );

    // The exporter's self-description matches the tracer's books.
    assert!(text.contains("\"schema\": \"deact-trace-v1\""));
    assert!(text.contains(&format!("\"recorded\": {}", sys.tracer().recorded())));
    assert!(text.contains(&format!("\"dropped\": {}", sys.tracer().dropped())));
}

#[test]
fn window_series_books_balance_against_the_report() {
    let w = Workload::by_name("astar").expect("table3 benchmark");
    let cfg = base(Scheme::DeactN).with_trace(TraceConfig::full().with_window_cycles(1 << 16));
    let mut sys = System::new(cfg, &w);
    let report = sys.try_run().expect("run completes");
    let series = sys.tracer().series();
    assert!(!series.samples().is_empty());
    let instructions: u64 = series.samples().iter().map(|s| s.instructions).sum();
    let fam_total: u64 = series.samples().iter().map(|s| s.fam_total).sum();
    let fam_at: u64 = series.samples().iter().map(|s| s.fam_at).sum();
    assert_eq!(instructions, report.instructions);
    assert_eq!(fam_total, report.fam.total());
    assert_eq!(fam_at, report.fam.at_total());
}
