//! Bit-identity guarantees of the batched fast-path engine.
//!
//! [`deact::System::try_run`] retires locally-provable references in a
//! fused per-node sweep — no scheduler-heap pop/push, no per-reference
//! allocation — and falls back to the preserved exact engine
//! ([`deact::System::try_run_exact`]) for everything else. Like the
//! parallel engine before it (`tests/parallel.rs`), the split must
//! change *nothing observable*: these tests run the differential
//! matrix — fast path vs. exact vs. parallel at 1 and 4 threads —
//! across all four schemes, tracing on and off, and transient plus
//! persistent fault schedules, asserting the fixed-seed reports are
//! bit-identical everywhere.

use deact::{Scheme, System, SystemConfig};
use fam_sim::{FaultConfig, PersistentFault, TraceConfig};
use fam_workloads::Workload;

fn base_cfg(scheme: Scheme) -> SystemConfig {
    SystemConfig::paper_default()
        .with_scheme(scheme)
        .with_seed(31)
}

/// Runs `bench` under every engine and asserts the reports all match
/// the exact engine's, bit for bit.
fn assert_matrix(cfg: SystemConfig, bench: &str, label: &str) {
    let w = Workload::by_name(bench).expect("table3 benchmark");
    let exact = System::new(cfg, &w).try_run_exact().expect("exact run");
    let fast = System::new(cfg, &w).try_run().expect("fast-path run");
    assert_eq!(
        fast, exact,
        "{label}: fast path diverged from the exact engine"
    );
    for threads in [1, 4] {
        let par = System::new(cfg, &w)
            .try_run_parallel(threads)
            .expect("parallel run");
        assert_eq!(
            par, exact,
            "{label}/{threads}t: parallel engine diverged from exact"
        );
    }
}

#[test]
fn fast_path_matches_exact_all_schemes() {
    for scheme in Scheme::ALL {
        let cfg = base_cfg(scheme).with_refs_per_core(2_000);
        assert_matrix(cfg, "sssp", &format!("sssp {scheme}"));
    }
}

#[test]
fn fast_path_matches_exact_all_schemes_multi_node() {
    // Locality classification is per node; multi-node runs exercise
    // the remote-reference fall-through and the fabric trunk.
    for scheme in Scheme::ALL {
        let cfg = base_cfg(scheme)
            .with_nodes(4)
            .with_fam_modules(4)
            .with_refs_per_core(600);
        assert_matrix(cfg, "astar", &format!("4-node astar {scheme}"));
    }
}

#[test]
fn fast_path_matches_exact_with_tracing() {
    // The fast path must feed the tracer the same records the exact
    // scheduler would have, in the same order.
    for trace in [TraceConfig::breakdown_only(), TraceConfig::full()] {
        for scheme in [Scheme::DeactN, Scheme::DeactW] {
            let cfg = base_cfg(scheme).with_refs_per_core(1_200).with_trace(trace);
            assert_matrix(cfg, "dc", &format!("traced dc {scheme}"));
        }
    }
}

#[test]
fn fast_path_matches_exact_under_transient_faults() {
    // Injected faults draw from the shared injector RNG on every FAM
    // round trip; a reference wrongly retired on the fast path would
    // skip a draw and desynchronise the whole schedule.
    for scheme in [Scheme::IFam, Scheme::DeactN] {
        let cfg = base_cfg(scheme)
            .with_refs_per_core(1_500)
            .with_fault_injection(FaultConfig::transient(7));
        assert_matrix(cfg, "canl", &format!("faulty canl {scheme}"));
    }
}

#[test]
fn fast_path_matches_exact_under_persistent_faults() {
    // Permanent failures rewrite translation state mid-run (broker
    // evacuation, shootdown, degraded mode) — exactly the state the
    // fast-path classifier probes.
    for fault in [
        PersistentFault::NodeDead { module: 1 },
        PersistentFault::MediaFailed {
            first_page: 0,
            pages: 256,
        },
    ] {
        for scheme in [Scheme::EFam, Scheme::DeactN] {
            let cfg = base_cfg(scheme)
                .with_nodes(2)
                .with_fam_modules(2)
                .with_refs_per_core(1_500)
                .with_fault_injection(FaultConfig::transient(7).with_persistent(fault, 400));
            let w = Workload::by_name("sssp").unwrap();
            let exact = System::new(cfg, &w).try_run_exact().expect("exact run");
            assert!(
                !exact.degradation.is_zero(),
                "{fault:?}/{scheme}: the persistent fault never struck"
            );
            assert_matrix(cfg, "sssp", &format!("{fault:?} sssp {scheme}"));
        }
    }
}

#[test]
fn fast_path_matches_exact_with_faults_and_tracing_together() {
    let cfg = base_cfg(Scheme::IFam)
        .with_refs_per_core(1_200)
        .with_fault_injection(FaultConfig::transient(3))
        .with_trace(TraceConfig::full());
    assert_matrix(cfg, "pf", "faulty traced pf I-FAM");
}

#[test]
fn coverage_is_an_engine_diagnostic_not_a_result() {
    // The exact engine reports zero coverage by construction; the fast
    // path reports whatever it actually retired. Both are equal as
    // reports because coverage is excluded from comparison.
    let cfg = base_cfg(Scheme::DeactN).with_refs_per_core(2_000);
    let w = Workload::by_name("sssp").unwrap();
    let exact = System::new(cfg, &w).try_run_exact().expect("exact run");
    let fast = System::new(cfg, &w).try_run().expect("fast-path run");
    assert_eq!(
        exact.fast_path_coverage, 0.0,
        "exact engine has no fast path"
    );
    assert!(
        (0.0..=1.0).contains(&fast.fast_path_coverage),
        "coverage is a fraction, got {}",
        fast.fast_path_coverage
    );
    assert_eq!(fast, exact, "coverage must not affect report equality");
}
