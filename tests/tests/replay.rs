//! Trace replay is a first-class citizen of every engine.
//!
//! The differential matrix pins the tentpole contract: `record` →
//! `replay` through a FAMT v2 file on disk produces a [`RunReport`]
//! bit-identical to the live synthetic run, on the fast-path, exact,
//! and sharded-parallel engines, at 1/2/4 threads, tracing on and
//! off, for every Table III workload. The property and corpus tests
//! pin the streamed [`fam_workloads::TraceReader`] against the
//! one-shot decoder through randomized chunk sizes and a malformed-
//! input corpus.

use std::fs::File;
use std::io::{self, BufWriter};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use deact::{RunReport, Scheme, System, SystemConfig};
use fam_sim::{SimRng, TraceConfig};
use fam_workloads::trace::{
    read_records, read_trace, record_streams, replay_streams, synthesize_bursty, write_trace,
    write_trace_v2, BurstConfig, TraceRecord,
};
use fam_workloads::{table3, MemRef, StreamedReplay, TraceReader, Workload};

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A collision-free temp path (pid + per-process counter) — the
/// workspace is dependency-free, so no tempfile crate.
fn temp_trace(tag: &str) -> PathBuf {
    let n = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("famt-replay-{}-{n}-{tag}.famt", std::process::id()))
}

fn base_cfg() -> SystemConfig {
    SystemConfig::paper_default()
        .with_scheme(Scheme::DeactN)
        .with_nodes(2)
        .with_fam_modules(2)
        .with_refs_per_core(250)
        .with_seed(31)
}

/// Records `w`'s synthetic streams for `cfg` to a fresh temp file —
/// exactly the streams a live run executes, drawn via
/// [`System::synthetic_streams`].
fn record_to_file(cfg: &SystemConfig, w: &Workload, tag: &str) -> PathBuf {
    let path = temp_trace(tag);
    let mut streams = System::synthetic_streams(cfg, w);
    let file = File::create(&path).expect("temp trace file");
    record_streams(BufWriter::new(file), &mut streams, cfg.refs_per_core).expect("record trace");
    path
}

fn replayed_system(cfg: SystemConfig, label: &str, path: &PathBuf) -> System {
    let streams =
        replay_streams(path, cfg.nodes, cfg.cores_per_node).expect("replay streams from file");
    System::with_streams(cfg, label, streams)
}

/// Every engine × thread count on the replayed trace must reproduce
/// the live exact run bit for bit.
fn assert_replay_matrix(cfg: SystemConfig, w: &Workload, path: &PathBuf, label: &str) -> RunReport {
    let live = System::new(cfg, w).try_run_exact().expect("live exact run");
    let exact = replayed_system(cfg, w.name, path)
        .try_run_exact()
        .expect("replayed exact run");
    assert_eq!(exact, live, "{label}: replayed exact diverged from live");
    let fast = replayed_system(cfg, w.name, path)
        .try_run()
        .expect("replayed fast-path run");
    assert_eq!(fast, live, "{label}: replayed fast path diverged from live");
    for threads in [1usize, 2, 4] {
        let par = replayed_system(cfg, w.name, path)
            .try_run_parallel(threads)
            .expect("replayed parallel run");
        assert_eq!(
            par, live,
            "{label}/{threads}t: replayed parallel diverged from live"
        );
    }
    live
}

#[test]
fn record_then_replay_is_bit_identical_for_every_workload() {
    let cfg = base_cfg();
    let total_refs = cfg.refs_per_core * (cfg.nodes * cfg.cores_per_node) as u64;
    for w in table3() {
        let path = record_to_file(&cfg, &w, w.name);
        let report = assert_replay_matrix(cfg, &w, &path, w.name);
        // Non-vacuity: the matrix must compare real runs, not empty
        // ones.
        assert_eq!(report.refs_per_core, cfg.refs_per_core, "{}", w.name);
        assert!(report.instructions >= total_refs, "{}", w.name);
        assert!(report.cycles > 0 && report.ipc > 0.0, "{}", w.name);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn record_then_replay_is_bit_identical_with_tracing() {
    // Tracing draws request ids per reference; a replayed stream must
    // feed the tracer the same records in the same order.
    let cfg = base_cfg().with_trace(TraceConfig::breakdown_only());
    for w in [
        Workload::by_name("sssp").unwrap(),
        Workload::by_name("mcf").unwrap(),
    ] {
        let path = record_to_file(&cfg, &w, &format!("traced-{}", w.name));
        let report = assert_replay_matrix(cfg, &w, &path, &format!("traced {}", w.name));
        assert!(
            !report.latency.is_empty(),
            "{}: tracing was supposed to be on",
            w.name
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn replay_matches_across_schemes() {
    // The trace is scheme-independent (it captures the address
    // stream, not the translation behavior), so one recording must
    // replay bit-identically under every scheme.
    let w = Workload::by_name("astar").unwrap();
    for scheme in Scheme::ALL {
        let cfg = base_cfg().with_scheme(scheme);
        let path = record_to_file(&cfg, &w, &format!("scheme-{scheme}"));
        assert_replay_matrix(cfg, &w, &path, &format!("astar {scheme}"));
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn replay_runs_longer_than_the_trace_by_wrapping() {
    // Record 100 refs/core, replay 400: the file wraps like looping a
    // kernel, deterministically across engines.
    let w = Workload::by_name("sssp").unwrap();
    let record_cfg = base_cfg().with_refs_per_core(100);
    let path = record_to_file(&record_cfg, &w, "wrap");
    let long_cfg = base_cfg().with_refs_per_core(400);
    let exact = replayed_system(long_cfg, "sssp", &path)
        .try_run_exact()
        .expect("wrapped exact run");
    let fast = replayed_system(long_cfg, "sssp", &path)
        .try_run()
        .expect("wrapped fast run");
    assert_eq!(fast, exact);
    let mut system = replayed_system(long_cfg, "sssp", &path);
    let par = system.try_run_parallel(2).expect("wrapped parallel run");
    assert_eq!(par, exact);
    // Each core consumed its 100-record rank slice at least 4 times.
    let metrics = system.metrics();
    let wraps: u64 = (0..long_cfg.nodes)
        .map(|n| {
            metrics
                .counter_value(&format!("node{n}/replay_wraps"))
                .unwrap_or(0)
        })
        .sum();
    assert!(
        wraps >= 3 * (long_cfg.nodes * long_cfg.cores_per_node) as u64,
        "expected every core to wrap, saw {wraps} wraps"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn bursty_synthesized_trace_replays_bit_identically() {
    // The bursty synthesizer's output is a normal v2 trace: the full
    // engine matrix must agree on it too (here live == replayed is
    // vacuous, so compare engines against the replayed exact run).
    let cfg = base_cfg().with_refs_per_core(300);
    let path = temp_trace("bursty");
    let burst = BurstConfig::new(31).with_phase_refs(64);
    synthesize_bursty(
        BufWriter::new(File::create(&path).expect("temp trace file")),
        &burst,
        cfg.nodes,
        cfg.cores_per_node,
        cfg.refs_per_core,
    )
    .expect("synthesize bursty trace");
    let exact = replayed_system(cfg, "bursty", &path)
        .try_run_exact()
        .expect("bursty exact run");
    let fast = replayed_system(cfg, "bursty", &path)
        .try_run()
        .expect("bursty fast run");
    assert_eq!(fast, exact);
    for threads in [2usize, 4] {
        let par = replayed_system(cfg, "bursty", &path)
            .try_run_parallel(threads)
            .expect("bursty parallel run");
        assert_eq!(par, exact, "bursty/{threads}t");
    }
    assert!(exact.cycles > 0);
    std::fs::remove_file(&path).ok();
}

/// Streams a buffer through [`TraceReader`] with the given chunk
/// size, collecting either all records or the first error.
fn stream_all(buf: &[u8], chunk: usize) -> io::Result<Vec<TraceRecord>> {
    let mut rd = TraceReader::with_chunk_size(buf, chunk)?;
    let mut out = Vec::new();
    while let Some(rec) = rd.next_record()? {
        out.push(rec);
    }
    Ok(out)
}

#[test]
fn streamed_reader_agrees_with_one_shot_at_random_chunk_sizes() {
    let mut rng = SimRng::seeded(0xC4A2);
    let refs: Vec<MemRef> = Workload::by_name("mcf")
        .unwrap()
        .generator(7)
        .take_refs(257);
    let records: Vec<TraceRecord> = refs
        .iter()
        .enumerate()
        .map(|(i, &mem)| TraceRecord {
            rank: (i % 5) as u16,
            mem,
        })
        .collect();
    let mut v1 = Vec::new();
    write_trace(&mut v1, &refs).unwrap();
    let mut v2 = Vec::new();
    write_trace_v2(&mut v2, 5, &records).unwrap();
    // Deliberate boundary chunk sizes: header splitting (1..16) and
    // RECORD_BYTES±1 for both record widths (12..16), plus random
    // sizes up to past the whole-file length.
    let mut chunks: Vec<usize> = (1..=17).collect();
    for _ in 0..40 {
        chunks.push(rng.below(v2.len() as u64 + 64) as usize + 1);
    }
    for &chunk in &chunks {
        let oneshot_v1 = read_records(v1.as_slice()).unwrap();
        assert_eq!(
            stream_all(&v1, chunk).unwrap(),
            oneshot_v1,
            "v1 diverged at chunk {chunk}"
        );
        let oneshot_v2 = read_records(v2.as_slice()).unwrap();
        assert_eq!(
            stream_all(&v2, chunk).unwrap(),
            oneshot_v2,
            "v2 diverged at chunk {chunk}"
        );
    }
    // v1 records carry rank 0 and the untagged view matches.
    assert_eq!(read_trace(v1.as_slice()).unwrap(), refs);
    assert!(read_records(v1.as_slice())
        .unwrap()
        .iter()
        .all(|r| r.rank == 0));
}

#[test]
fn streamed_replay_wraps_identically_at_any_chunk_size() {
    let refs: Vec<MemRef> = Workload::by_name("pf").unwrap().generator(9).take_refs(33);
    let path = temp_trace("chunk-wrap");
    write_trace(File::create(&path).expect("temp trace file"), &refs).unwrap();
    let mut rng = SimRng::seeded(0x11);
    for _ in 0..12 {
        let chunk = rng.below(600) as usize + 1;
        let mut replay =
            StreamedReplay::open_with_chunk(&path, None, chunk).expect("open replay source");
        for i in 0..100usize {
            assert_eq!(replay.next_ref(), refs[i % 33], "chunk {chunk}, ref {i}");
        }
        assert_eq!(replay.wraps(), 100 / 33, "chunk {chunk}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_and_corrupt_traces_return_invalid_data_everywhere() {
    let refs: Vec<MemRef> = Workload::by_name("mcf").unwrap().generator(3).take_refs(20);
    let mut good = Vec::new();
    write_trace(&mut good, &refs).unwrap();

    // The corpus: every malformed shape the format can take. Each
    // entry must surface as InvalidData — never a panic, never an
    // unbounded allocation — from the one-shot reader, and (where the
    // header parses differently) the same from the streamed reader.
    let mut corpus: Vec<(String, Vec<u8>)> = Vec::new();
    for cut in [0usize, 3, 7, 13] {
        corpus.push((format!("truncated header at {cut}"), good[..cut].to_vec()));
    }
    corpus.push(("bad magic".into(), {
        let mut b = good.clone();
        b[..4].copy_from_slice(b"NOPE");
        b
    }));
    corpus.push(("unsupported version 99".into(), {
        let mut b = good.clone();
        b[4] = 99;
        b
    }));
    corpus.push(("body one byte short".into(), {
        let mut b = good.clone();
        b.pop();
        b
    }));
    corpus.push(("trailing byte".into(), {
        let mut b = good.clone();
        b.push(0xEE);
        b
    }));
    corpus.push(("count larger than body".into(), {
        let mut b = good.clone();
        b[6..14].copy_from_slice(&1_000u64.to_le_bytes());
        b
    }));
    // count * RECORD_BYTES wraps u64: without checked_mul the product
    // is small enough to pass a naive length check while
    // count-as-usize would demand an absurd preallocation.
    let overflow_count = (u64::MAX / 13) + 2;
    corpus.push(("overflowing record count".into(), {
        let mut b = good[..14].to_vec();
        b[6..14].copy_from_slice(&overflow_count.to_le_bytes());
        let body = (overflow_count.wrapping_mul(13)) as usize;
        b.extend(std::iter::repeat_n(0u8, body));
        b
    }));
    corpus.push(("huge count, empty body".into(), {
        let mut b = good[..14].to_vec();
        b[6..14].copy_from_slice(&u64::MAX.to_le_bytes());
        b
    }));
    // v2 with a record rank beyond the declared rank count.
    corpus.push(("rank out of range".into(), {
        let records: Vec<TraceRecord> = refs
            .iter()
            .map(|&mem| TraceRecord { rank: 0, mem })
            .collect();
        let mut b = Vec::new();
        write_trace_v2(&mut b, 1, &records).unwrap();
        let last = b.len() - 2;
        b[last..].copy_from_slice(&7u16.to_le_bytes());
        b
    }));

    for (name, bytes) in &corpus {
        let err = read_trace(bytes.as_slice()).expect_err(name);
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{name}");
        let streamed = stream_all(bytes, 5).expect_err(name);
        assert_eq!(
            streamed.kind(),
            io::ErrorKind::InvalidData,
            "streamed {name}"
        );
        // A file-backed replay source must reject it at open.
        let path = temp_trace("corpus");
        std::fs::write(&path, bytes).unwrap();
        let opened = StreamedReplay::open(&path, None).expect_err(name);
        assert_eq!(opened.kind(), io::ErrorKind::InvalidData, "replay {name}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn streamed_reader_memory_is_bounded_by_the_chunk_size() {
    // A trace of 200k records (~2.9 MB) streams through a 4 KiB
    // buffer: the reader's entire state is its fixed chunk buffer, so
    // decoding never allocates proportional to trace length.
    let path = temp_trace("bounded");
    let w = Workload::by_name("sssp").unwrap();
    let refs = w.generator(1).take_refs(200_000);
    write_trace(
        BufWriter::new(File::create(&path).expect("temp trace file")),
        &refs,
    )
    .unwrap();
    let mut rd =
        TraceReader::with_chunk_size(File::open(&path).unwrap(), 4096).expect("open reader");
    assert_eq!(rd.buffer_bytes(), 4096);
    let mut n = 0u64;
    while let Some(rec) = rd.next_record().expect("well-formed trace") {
        assert_eq!(rec.mem, refs[n as usize]);
        n += 1;
    }
    assert_eq!(n, 200_000);
    assert_eq!(rd.buffer_bytes(), 4096);
    std::fs::remove_file(&path).ok();
}

#[test]
fn replay_streams_rejects_topology_mismatch_and_missing_file() {
    let cfg = base_cfg();
    let w = Workload::by_name("sssp").unwrap();
    let path = record_to_file(&cfg.with_refs_per_core(10), &w, "topology");
    // Recorded for 2×4 ranks; a 4-node topology wants 16.
    let err = replay_streams(&path, 4, 4).expect_err("topology mismatch");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(replay_streams("/nonexistent/trace.famt", 1, 1).is_err());
    std::fs::remove_file(&path).ok();
}
