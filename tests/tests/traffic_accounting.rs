//! Conservation and accounting invariants on full-system runs: every
//! request the report claims reached the FAM must be visible in the
//! device counters, and scheme-specific traffic classes must be empty
//! where the scheme has no such mechanism.

use deact::{run_benchmark, Scheme, SystemConfig};

fn cfg(scheme: Scheme) -> SystemConfig {
    SystemConfig::paper_default()
        .with_scheme(scheme)
        .with_refs_per_core(10_000)
        .with_seed(0xACC7)
}

#[test]
fn efam_traffic_classes() {
    let r = run_benchmark("dc", cfg(Scheme::EFam));
    assert_eq!(r.fam.at_walk_reads, 0, "no STU, no walks");
    assert_eq!(r.fam.at_acm_reads, 0, "no ACM in E-FAM");
    assert_eq!(r.fam.at_bitmap_reads, 0);
    assert!(r.fam.at_pte_reads > 0, "PTE pages live in FAM");
    assert!(r.fam.data_reads > 0);
}

#[test]
fn ifam_traffic_classes() {
    let r = run_benchmark("dc", cfg(Scheme::IFam));
    assert!(r.fam.at_walk_reads > 0, "STU walks the system table");
    assert_eq!(r.fam.at_pte_reads, 0, "node PT stays in local DRAM");
    assert_eq!(r.fam.at_acm_reads, 0, "ACM is coupled into the STU entry");
}

#[test]
fn deact_traffic_classes() {
    let r = run_benchmark("dc", cfg(Scheme::DeactN));
    assert!(r.fam.at_acm_reads > 0, "decoupled ACM is fetched from FAM");
    assert_eq!(r.fam.at_pte_reads, 0);
    assert_eq!(
        r.fam.at_bitmap_reads, 0,
        "no shared pages in single-tenant benchmarks"
    );
    assert!(
        r.dram_reads > r.fam.data_reads / 2,
        "translation cache reads DRAM"
    );
}

#[test]
fn at_percentages_are_consistent() {
    for scheme in Scheme::ALL {
        let r = run_benchmark("cc", cfg(scheme));
        let pct = r.fam.at_percent();
        assert!((0.0..=100.0).contains(&pct), "{scheme}: {pct}");
        let manual = r.fam.at_total() as f64 * 100.0 / r.fam.total() as f64;
        assert!((pct - manual).abs() < 1e-9, "{scheme}");
    }
}

#[test]
fn data_request_counts_are_scheme_independent() {
    // The same reference stream produces the same cache-miss pattern,
    // so the *data* traffic at FAM must be nearly identical across
    // secure schemes (translation traffic is what differs).
    let i = run_benchmark("cc", cfg(Scheme::IFam));
    let n = run_benchmark("cc", cfg(Scheme::DeactN));
    let diff = (i.fam.data_reads as f64 - n.fam.data_reads as f64).abs() / i.fam.data_reads as f64;
    assert!(
        diff < 0.01,
        "data reads diverge: {} vs {}",
        i.fam.data_reads,
        n.fam.data_reads
    );
}

#[test]
fn mpki_is_positive_and_sane() {
    for bench in ["astar", "sssp"] {
        let r = run_benchmark(bench, cfg(Scheme::EFam));
        assert!(r.mpki > 1.0, "{bench}: mpki {}", r.mpki);
        assert!(r.mpki < 500.0, "{bench}: mpki {}", r.mpki);
    }
}

#[test]
fn faults_bounded_by_touched_pages() {
    let r = run_benchmark("astar", cfg(Scheme::DeactN));
    // Each touched page faults at most twice (node-level + system
    // demand map); footprint bounds touched pages.
    let w = fam_workloads::Workload::by_name("astar").unwrap();
    assert!(r.faults <= 2 * 4 * w.footprint_pages + 1000);
    assert!(r.faults > 0);
}

#[test]
fn tlb_hit_rate_tracks_locality_class() {
    let streaming = run_benchmark("mg", cfg(Scheme::EFam));
    let scatter = run_benchmark("sssp", cfg(Scheme::EFam));
    assert!(
        streaming.tlb_hit_rate > scatter.tlb_hit_rate,
        "streaming {} !> scatter {}",
        streaming.tlb_hit_rate,
        scatter.tlb_hit_rate
    );
    assert!(streaming.tlb_hit_rate > 0.9);
}

#[test]
fn writebacks_appear_for_write_heavy_workloads() {
    let r = run_benchmark("sp", cfg(Scheme::EFam)); // 40% writes
    assert!(r.fam.writebacks > 0, "dirty lines must be written back");
}
