//! Bit-identity guarantees of the intra-run parallel engine.
//!
//! [`deact::System::try_run_parallel`] splits each epoch into a
//! sharded retirement phase that runs concurrently — node-local
//! references always, FAM-bound references on the epoch's leader node
//! over per-module ports and device timelines — and a shared-resource
//! commit phase that drains sequentially in global `(ready, slot)`
//! order. These tests pin down that the split changed *nothing
//! observable*: fixed-seed reports are bit-identical to the
//! sequential engines ([`deact::System::try_run`] and the exact
//! scheduler [`deact::System::try_run_exact`]) across all four
//! schemes, node counts, fault injection, and tracing — and invariant
//! in the thread count, so results never depend on the machine they
//! ran on. Where the sharded FAM path is the subject, the tests also
//! assert it actually fired, so they cannot pass vacuously.

use deact::{RunReport, Scheme, System, SystemConfig};
use fam_sim::{FaultConfig, PersistentFault, TraceConfig};
use fam_workloads::Workload;

fn reports_for(cfg: SystemConfig, bench: &str, threads: usize) -> (RunReport, RunReport) {
    let w = Workload::by_name(bench).expect("table3 benchmark");
    let seq = System::new(cfg, &w).try_run().expect("sequential run");
    let par = System::new(cfg, &w)
        .try_run_parallel(threads)
        .expect("parallel run");
    (seq, par)
}

fn assert_equivalent(cfg: SystemConfig, bench: &str, threads: usize, label: &str) {
    let (seq, par) = reports_for(cfg, bench, threads);
    assert_eq!(seq, par, "{label}: engines must be bit-identical");
}

fn nodes_cfg(scheme: Scheme, nodes: usize) -> SystemConfig {
    SystemConfig::paper_default()
        .with_scheme(scheme)
        .with_nodes(nodes)
        .with_fam_modules(nodes.max(1))
        .with_seed(31)
}

#[test]
fn parallel_matches_sequential_all_schemes_single_node() {
    for scheme in Scheme::ALL {
        let cfg = nodes_cfg(scheme, 1).with_refs_per_core(2_000);
        assert_equivalent(cfg, "astar", 4, &format!("1-node {scheme}"));
    }
}

#[test]
fn parallel_matches_sequential_all_schemes_four_nodes() {
    for scheme in Scheme::ALL {
        let cfg = nodes_cfg(scheme, 4).with_refs_per_core(800);
        assert_equivalent(cfg, "pf", 4, &format!("4-node {scheme}"));
    }
}

#[test]
fn parallel_matches_sequential_all_schemes_sixteen_nodes() {
    // The target configuration of the speedup criterion: 16 nodes, 64
    // cores, maximal cross-node contention for the fabric trunk.
    for scheme in Scheme::ALL {
        let cfg = nodes_cfg(scheme, 16).with_refs_per_core(300);
        assert_equivalent(cfg, "sssp", 4, &format!("16-node {scheme}"));
    }
}

#[test]
fn parallel_matches_sequential_under_fault_injection() {
    // Injected faults draw from the shared injector RNG on every FAM
    // round trip, so the draw *order* is observable — the commit phase
    // must replay it exactly.
    for nodes in [4, 16] {
        let cfg = nodes_cfg(Scheme::DeactN, nodes)
            .with_refs_per_core(500)
            .with_fault_injection(FaultConfig::transient(7));
        assert_equivalent(cfg, "canl", 4, &format!("faulty {nodes}-node DeACT-N"));
    }
}

#[test]
fn parallel_matches_sequential_with_tracing() {
    // Latency breakdowns and window series merge from per-node shard
    // tracers; the merged report (including the per-stage histograms)
    // must equal the sequential tracer's.
    for trace in [TraceConfig::breakdown_only(), TraceConfig::full()] {
        let cfg = nodes_cfg(Scheme::DeactW, 4)
            .with_refs_per_core(600)
            .with_trace(trace);
        assert_equivalent(cfg, "dc", 4, "traced 4-node DeACT-W");
        let efam = nodes_cfg(Scheme::EFam, 4)
            .with_refs_per_core(600)
            .with_trace(trace);
        assert_equivalent(efam, "dc", 4, "traced 4-node E-FAM");
    }
}

#[test]
fn parallel_matches_sequential_with_faults_and_tracing_together() {
    let cfg = nodes_cfg(Scheme::IFam, 4)
        .with_refs_per_core(500)
        .with_fault_injection(FaultConfig::transient(3))
        .with_trace(TraceConfig::full());
    assert_equivalent(cfg, "pf", 4, "faulty traced 4-node I-FAM");
}

#[test]
fn parallel_report_is_thread_count_invariant() {
    let cfg = nodes_cfg(Scheme::DeactN, 4).with_refs_per_core(600);
    let w = Workload::by_name("astar").unwrap();
    let two = System::new(cfg, &w).run_parallel(2);
    let four = System::new(cfg, &w).run_parallel(4);
    let eight = System::new(cfg, &w).run_parallel(8);
    assert_eq!(two, four, "2 vs 4 threads");
    assert_eq!(four, eight, "4 vs 8 threads");
}

#[test]
fn persistent_faults_are_thread_and_tracing_invariant() {
    // The property the recovery protocol must not break: a permanent
    // failure mid-run — retry-budget burn, broker evacuation, table
    // rewrites, broadcast shootdown, degraded-mode poisoning — yields
    // the *same* fault schedule and the *same* DegradationReport (and
    // indeed the same whole report, bit for bit) no matter how the
    // epochs were threaded or whether the tracer watched.
    for fault in [
        PersistentFault::NodeDead { module: 1 },
        PersistentFault::LinkSevered { module: 1 },
        PersistentFault::MediaFailed {
            first_page: 0,
            pages: 256,
        },
    ] {
        for scheme in [Scheme::EFam, Scheme::DeactN] {
            let cfg = nodes_cfg(scheme, 2)
                .with_refs_per_core(2_000)
                .with_fault_injection(FaultConfig::transient(7).with_persistent(fault, 400));
            let w = Workload::by_name("sssp").unwrap();
            let seq = System::new(cfg, &w).try_run().expect("sequential run");
            assert!(
                !seq.degradation.is_zero(),
                "{fault:?}/{scheme}: the persistent fault never struck"
            );
            for threads in [1, 2, 4] {
                let par = System::new(cfg, &w)
                    .try_run_parallel(threads)
                    .expect("parallel run");
                assert_eq!(
                    seq.degradation, par.degradation,
                    "{fault:?}/{scheme}/{threads}t: degradation reports diverge"
                );
                assert_eq!(
                    seq, par,
                    "{fault:?}/{scheme}/{threads}t: engines must be bit-identical"
                );
            }
            let traced = System::new(cfg.with_trace(TraceConfig::full()), &w)
                .try_run_parallel(4)
                .expect("traced parallel run");
            assert_eq!(
                seq.degradation, traced.degradation,
                "{fault:?}/{scheme}: tracing changed the degradation report"
            );
        }
    }
}

#[test]
fn sharded_fam_retirement_matches_the_exact_engine() {
    // The tentpole guarantee, pinned against the *exact* scheduler
    // (no fused fast path anywhere): with per-module ports and device
    // timelines, the leader node's shard retires FAM-bound references
    // itself, and the fixed-seed report still cannot be told apart
    // from the exact sequential one at any thread count. The metrics
    // check keeps the test honest — if admission regressed to zero,
    // bit-identity would hold trivially and prove nothing.
    for scheme in Scheme::ALL {
        let cfg = nodes_cfg(scheme, 4).with_refs_per_core(1_500);
        let w = Workload::by_name("sssp").expect("table3 benchmark");
        let exact = System::new(cfg, &w).try_run_exact().expect("exact run");
        for threads in [1, 2, 4] {
            let mut sys = System::new(cfg, &w);
            let par = sys.try_run_parallel(threads).expect("parallel run");
            assert_eq!(exact, par, "{scheme}/{threads}t vs exact engine");
            if threads > 1 {
                let fam = sys
                    .metrics()
                    .counter_value("parallel/fam_refs")
                    .unwrap_or(0);
                assert!(fam > 0, "{scheme}: the shard-FAM path never fired");
                assert!(
                    par.parallel_phase_coverage > 0.0,
                    "{scheme}: coverage must reflect the shard retirements"
                );
            }
        }
    }
}

#[test]
fn sharded_fam_retirement_with_tracing_matches_the_exact_engine() {
    // Shard-FAM retirements emit their own fabric/NVM/STU trace events
    // and window samples from shard-local traffic deltas; the merged
    // latency breakdown must equal the exact tracer's.
    for trace in [TraceConfig::breakdown_only(), TraceConfig::full()] {
        for scheme in [Scheme::IFam, Scheme::DeactN] {
            let cfg = nodes_cfg(scheme, 4)
                .with_refs_per_core(1_000)
                .with_trace(trace);
            let w = Workload::by_name("sssp").expect("table3 benchmark");
            let exact = System::new(cfg, &w).try_run_exact().expect("exact run");
            for threads in [2, 4] {
                let mut sys = System::new(cfg, &w);
                let par = sys.try_run_parallel(threads).expect("parallel run");
                assert_eq!(exact, par, "traced {scheme}/{threads}t vs exact engine");
                let fam = sys
                    .metrics()
                    .counter_value("parallel/fam_refs")
                    .unwrap_or(0);
                assert!(fam > 0, "traced {scheme}: the shard-FAM path never fired");
            }
        }
    }
}

#[test]
fn sharded_engine_under_faults_matches_the_exact_engine() {
    // Fault injection disables shard-FAM admission for the whole run
    // (injector state is consumed in global reference order); the
    // engine must both honour that gate and stay bit-identical to the
    // exact scheduler through transient bursts and a mid-run
    // persistent strike.
    let transient = FaultConfig::transient(7);
    let persistent =
        FaultConfig::transient(7).with_persistent(PersistentFault::NodeDead { module: 1 }, 400);
    for (label, fc) in [("transient", transient), ("persistent", persistent)] {
        for scheme in [Scheme::EFam, Scheme::DeactN] {
            let cfg = nodes_cfg(scheme, 4)
                .with_refs_per_core(800)
                .with_fault_injection(fc);
            let w = Workload::by_name("sssp").expect("table3 benchmark");
            let exact = System::new(cfg, &w).try_run_exact().expect("exact run");
            for threads in [1, 2, 4] {
                let mut sys = System::new(cfg, &w);
                let par = sys.try_run_parallel(threads).expect("parallel run");
                assert_eq!(exact, par, "{label}/{scheme}/{threads}t vs exact engine");
                let fam = sys
                    .metrics()
                    .counter_value("parallel/fam_refs")
                    .unwrap_or(0);
                assert_eq!(
                    fam, 0,
                    "{label}/{scheme}: faulty runs must not shard FAM work"
                );
            }
        }
    }
}

#[test]
fn one_thread_delegates_to_the_sequential_engine() {
    let cfg = nodes_cfg(Scheme::EFam, 2).with_refs_per_core(800);
    assert_equivalent(cfg, "sssp", 1, "1-thread 2-node E-FAM");
}
