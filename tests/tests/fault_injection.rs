//! End-to-end contracts of the fault-injection and recovery layer.
//!
//! Three promises are on trial here:
//!
//! 1. **Determinism** — the same seed produces bit-identical fault
//!    schedules and identical end-to-end reports, run after run.
//! 2. **Zero overhead off** — a default (injection-disabled) run is
//!    indistinguishable from an explicitly-disabled one, and its
//!    recovery block is all-zero.
//! 3. **Graceful degradation** — under the transient profile the
//!    retry/NACK machinery recovers every injected fault within
//!    budget, and the run always completes.

use deact::{run_benchmark, try_run_benchmark, Scheme, SimError, SystemConfig};
use fam_sim::{FaultConfig, FaultInjector};

fn quick() -> SystemConfig {
    SystemConfig::paper_default()
        .with_refs_per_core(5_000)
        .with_seed(11)
}

/// Drains a fixed draw pattern from an injector and fingerprints it.
fn schedule_fingerprint(seed: u64) -> Vec<u64> {
    let mut inj = FaultInjector::new(FaultConfig::transient(seed));
    let mut fp = Vec::new();
    for i in 0..2_000u64 {
        fp.push(match inj.fabric_fault() {
            None => 0,
            Some(fam_sim::FabricFault::Drop) => 1,
            Some(fam_sim::FabricFault::Corrupt) => 2,
        });
        if i % 3 == 0 {
            fp.push(u64::from(inj.stale_translation()));
        }
        if i % 5 == 0 {
            fp.push(inj.stu_stall().map_or(0, |d| d.0));
        }
        if i % 7 == 0 {
            fp.push(inj.link_up_at(fam_sim::Cycle(i * 10_000)).0);
        }
    }
    fp
}

#[test]
fn same_seed_means_identical_fault_schedule() {
    assert_eq!(schedule_fingerprint(42), schedule_fingerprint(42));
    assert_ne!(
        schedule_fingerprint(42),
        schedule_fingerprint(43),
        "different seeds must diverge"
    );
}

#[test]
fn same_seed_means_identical_end_to_end_reports() {
    let cfg = quick().with_fault_injection(FaultConfig::transient(9));
    for scheme in [Scheme::IFam, Scheme::DeactN] {
        let a = run_benchmark("mcf", cfg.with_scheme(scheme));
        let b = run_benchmark("mcf", cfg.with_scheme(scheme));
        assert_eq!(a.cycles, b.cycles, "{scheme}");
        assert_eq!(a.instructions, b.instructions, "{scheme}");
        assert_eq!(a.fam, b.fam, "{scheme}");
        assert_eq!(a.recovery, b.recovery, "{scheme}");
        assert!(
            a.recovery.injected_total() > 0,
            "{scheme}: the transient profile must actually inject"
        );
    }
}

#[test]
fn disabled_injection_is_zero_overhead() {
    for scheme in Scheme::ALL {
        let default_run = run_benchmark("astar", quick().with_scheme(scheme));
        let explicit = run_benchmark(
            "astar",
            quick()
                .with_scheme(scheme)
                .with_fault_injection(FaultConfig::disabled()),
        );
        assert_eq!(default_run.cycles, explicit.cycles, "{scheme}");
        assert_eq!(default_run.fam, explicit.fam, "{scheme}");
        assert!(
            default_run.recovery.is_zero(),
            "{scheme}: disabled injection must report all-zero recovery"
        );
        assert_eq!(default_run.recovery, explicit.recovery, "{scheme}");
    }
}

#[test]
fn transient_profile_recovers_every_fault() {
    // The transient profile's fault rates sit well inside the retry
    // budget (4 attempts, ~2% per-attempt fault rate), so recovery
    // must be total: faults happened, every one was absorbed.
    let cfg = quick().with_fault_injection(FaultConfig::transient(3));
    for scheme in Scheme::ALL {
        let r = run_benchmark("mcf", cfg.with_scheme(scheme));
        let f = &r.recovery;
        assert!(f.injected_total() > 0, "{scheme}: profile must inject");
        assert!(f.recovered > 0, "{scheme}: recoveries must be observed");
        assert_eq!(f.fatal, 0, "{scheme}: transient faults must all recover");
        assert_eq!(f.recovery_rate(), 1.0, "{scheme}");
        assert!(r.ipc > 0.0, "{scheme}: the run completes");
    }
}

#[test]
fn faults_cost_cycles_but_not_correctness() {
    let clean = run_benchmark("mcf", quick().with_scheme(Scheme::DeactN));
    let faulty = run_benchmark(
        "mcf",
        quick()
            .with_scheme(Scheme::DeactN)
            .with_fault_injection(FaultConfig::transient(3)),
    );
    assert!(
        faulty.cycles > clean.cycles,
        "injected faults must cost time ({} vs {})",
        faulty.cycles,
        clean.cycles
    );
    assert_eq!(
        clean.instructions, faulty.instructions,
        "faults change timing, never the work performed"
    );
}

#[test]
fn stale_nacks_force_walks_on_deact_only() {
    let cfg = quick().with_fault_injection(FaultConfig::transient(5));
    let deact = run_benchmark("mcf", cfg.with_scheme(Scheme::DeactN));
    assert!(
        deact.recovery.nacks_stale > 0,
        "DeACT caches unverified translations, so stale NACKs must fire"
    );
    let ifam = run_benchmark("mcf", cfg.with_scheme(Scheme::IFam));
    assert_eq!(
        ifam.recovery.nacks_stale, 0,
        "I-FAM translations are verified at the STU; staleness cannot occur"
    );
}

#[test]
fn unknown_benchmark_is_a_typed_error() {
    let err = try_run_benchmark("doom", quick()).unwrap_err();
    assert!(matches!(err, SimError::UnknownBenchmark { .. }));
    let msg = err.to_string();
    assert!(msg.contains("unknown benchmark doom"), "{msg}");
    assert!(msg.contains("deact-sim list"), "{msg}");
}

#[test]
fn fam_exhaustion_is_a_typed_error_not_a_panic() {
    // 1 MB of FAM (a few hundred pages after metadata) cannot hold
    // any workload's footprint.
    let cfg = quick().with_scheme(Scheme::EFam).with_fam_bytes(1 << 20);
    let err = try_run_benchmark("mcf", cfg).unwrap_err();
    assert!(matches!(err, SimError::FamExhausted { .. }), "{err}");
    assert!(err.to_string().contains("fam_bytes"), "{err}");
}
