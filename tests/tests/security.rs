//! Cross-crate security properties: the access-control half of the
//! paper must hold regardless of what the performance half does.

use fam_broker::{AccessKind, AcmWidth, BrokerConfig, JobId, MemoryBroker};
use fam_fabric::packet::{Packet, PacketKind};
use fam_sim::RequestId;
use fam_stu::{Stu, StuConfig, StuOrganization};
use fam_vm::{NodeId, PtFlags};

fn broker() -> MemoryBroker {
    MemoryBroker::new(BrokerConfig {
        fam_bytes: 4 << 30,
        ..BrokerConfig::default()
    })
}

fn stu(org: StuOrganization) -> Stu {
    Stu::new(StuConfig {
        organization: org,
        ..StuConfig::default()
    })
}

#[test]
fn forged_pretranslated_requests_are_denied_for_every_organisation() {
    let mut b = broker();
    let victim = b.register_node().unwrap();
    let attacker = b.register_node().unwrap();
    let page = b.demand_map(victim, 0x10).unwrap();

    for org in [StuOrganization::DeactW, StuOrganization::DeactN] {
        let mut s = stu(org);
        for kind in [AccessKind::Read, AccessKind::Write, AccessKind::Execute] {
            let v = s.verify(&b, attacker, page, kind, RequestId::UNTRACED);
            assert!(!v.allowed, "{org:?}/{kind:?} leaked");
        }
        // The rightful owner still gets through (RW, not X).
        assert!(
            s.verify(&b, victim, page, AccessKind::Read, RequestId::UNTRACED)
                .allowed
        );
        assert!(
            s.verify(&b, victim, page, AccessKind::Write, RequestId::UNTRACED)
                .allowed
        );
        assert!(
            !s.verify(&b, victim, page, AccessKind::Execute, RequestId::UNTRACED)
                .allowed
        );
    }
}

#[test]
fn ifam_attacker_cannot_reach_foreign_mappings() {
    let mut b = broker();
    let victim = b.register_node().unwrap();
    let attacker = b.register_node().unwrap();
    b.demand_map(victim, 0x10).unwrap();

    // The attacker's own system table has no mapping for that node
    // page, so the walk faults instead of leaking the victim's page.
    let mut s = stu(StuOrganization::IFam);
    assert!(s
        .ifam_access(&b, attacker, 0x10, AccessKind::Read, RequestId::UNTRACED)
        .is_err());
}

#[test]
fn stale_stu_cache_cannot_outlive_migration_if_invalidated() {
    let mut b = broker();
    let old = b.register_node().unwrap();
    let new = b.register_node().unwrap();
    let page = b.demand_map(old, 0x20).unwrap();

    let mut s = stu(StuOrganization::DeactN);
    assert!(
        s.verify(&b, old, page, AccessKind::Read, RequestId::UNTRACED)
            .allowed
    );

    let report = b.migrate_node(old, new).unwrap();
    assert_eq!(report.pages_moved, 1);
    s.invalidate_page(page); // the §VI shootdown

    // Ground truth moved; a re-verify (with cold cache) denies the old
    // node and allows the new one.
    assert!(
        !s.verify(&b, old, page, AccessKind::Read, RequestId::UNTRACED)
            .allowed
    );
    assert!(
        s.verify(&b, new, page, AccessKind::Read, RequestId::UNTRACED)
            .allowed
    );
}

#[test]
fn wire_packets_cannot_smuggle_reserved_node_ids() {
    // A forged packet claiming the shared-page marker as its source
    // must not decode.
    let good = Packet {
        kind: PacketKind::Read,
        source: NodeId::new(1),
        addr: 0x1234,
        verified: true,
        tag: 0,
    };
    let mut raw = good.encode();
    raw[2] = 0x3F;
    raw[3] = 0xFF;
    // Tampering without fixing the trailer trips the CRC first…
    assert!(Packet::decode(&raw).is_err());
    // …and even a forger who re-seals the checksum is caught by the
    // node-id range check.
    let body = raw.len() - 2;
    let crc = fam_fabric::packet::crc16(&raw[..body]).to_be_bytes();
    raw[body..].copy_from_slice(&crc);
    assert!(Packet::decode(&raw).is_err());
}

#[test]
fn shared_segment_permissions_are_exact() {
    let mut b = broker();
    let writer = b.register_node().unwrap();
    let reader = b.register_node().unwrap();
    let outsider = b.register_node().unwrap();
    let seg = b
        .share_segment(
            4,
            &[
                (writer, PtFlags::rw(), 0x100),
                (reader, PtFlags::ro(), 0x200),
            ],
        )
        .unwrap();

    for page in seg.fam_pages() {
        assert!(b.check_access(writer, page, AccessKind::Write));
        assert!(b.check_access(reader, page, AccessKind::Read));
        assert!(!b.check_access(reader, page, AccessKind::Write));
        assert!(!b.check_access(outsider, page, AccessKind::Read));
    }
}

#[test]
fn revocation_takes_effect_for_later_verifications() {
    let mut b = broker();
    let member = b.register_node().unwrap();
    let seg = b
        .share_segment(2, &[(member, PtFlags::ro(), 0x100)])
        .unwrap();
    assert!(b.check_access(member, seg.first_page, AccessKind::Read));

    // Revoke via the region bitmap; a fresh STU observes the change.
    b.revoke_shared(seg.region, member);
    let mut s = stu(StuOrganization::DeactN);
    assert!(
        !s.verify(
            &b,
            member,
            seg.first_page,
            AccessKind::Read,
            RequestId::UNTRACED
        )
        .allowed
    );
}

#[test]
fn logical_node_ids_survive_double_migration() {
    let mut b = broker();
    let n0 = b.register_node().unwrap();
    let n1 = b.register_node().unwrap();
    let n2 = b.register_node().unwrap();
    let job = JobId(7);
    let logical = b.logical_nodes().assign(job, n0);
    b.logical_nodes().migrate(job, n1).unwrap();
    b.logical_nodes().migrate(job, n2).unwrap();
    assert_eq!(b.logical_nodes().physical(logical), Some(n2));
}

#[test]
fn acm_width_bounds_node_registration() {
    let mut b = MemoryBroker::new(BrokerConfig {
        fam_bytes: 1 << 30,
        acm_width: AcmWidth::W8,
        max_nodes: 1000,
        ..BrokerConfig::default()
    });
    // 8-bit ACM: 6-bit node field, marker reserved -> max id 62.
    let mut registered = 0;
    while b.register_node().is_ok() {
        registered += 1;
    }
    assert_eq!(registered, 63);
}
