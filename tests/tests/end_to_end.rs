//! End-to-end scheme behaviour across the whole stack: the qualitative
//! claims of the paper must hold on full-system runs.

use deact::{run_benchmark, Scheme, SystemConfig};

fn cfg(scheme: Scheme) -> SystemConfig {
    SystemConfig::paper_default()
        .with_scheme(scheme)
        .with_refs_per_core(20_000)
        .with_seed(0xE2E)
}

#[test]
fn every_scheme_completes_every_benchmark_class() {
    // One representative per behaviour class: pointer-chaser,
    // strided sweep, hot-set graph, streaming.
    for bench in ["canl", "cactus", "bc", "mg"] {
        for scheme in Scheme::ALL {
            let r = run_benchmark(bench, cfg(scheme).with_refs_per_core(3_000));
            assert!(r.ipc > 0.0, "{bench}/{scheme}");
            assert!(r.instructions > 0, "{bench}/{scheme}");
            assert_eq!(r.scheme, scheme);
            assert_eq!(r.workload, bench);
        }
    }
}

#[test]
fn ifam_slowdown_ordering_matches_fig3() {
    // Fig. 3: translation-hostile benchmarks (cactus) suffer far more
    // from indirection than streaming ones (mg).
    let slowdown = |bench: &str| {
        let e = run_benchmark(bench, cfg(Scheme::EFam));
        let i = run_benchmark(bench, cfg(Scheme::IFam));
        e.ipc / i.ipc
    };
    let cactus = slowdown("cactus");
    let mg = slowdown("mg");
    assert!(
        cactus > 3.0 * mg,
        "cactus slowdown {cactus:.1}x should dwarf mg {mg:.1}x"
    );
    assert!(
        mg < 2.0,
        "streaming barely cares about indirection: {mg:.1}x"
    );
}

#[test]
fn deact_recovers_most_of_ifam_loss_on_scatter_workloads() {
    // The headline (§V-C): DeACT-N speeds up I-FAM substantially on
    // benchmarks that stress translation.
    for bench in ["canl", "sssp", "bc"] {
        let i = run_benchmark(bench, cfg(Scheme::IFam));
        let n = run_benchmark(bench, cfg(Scheme::DeactN));
        let speedup = n.speedup_over(&i);
        assert!(speedup > 1.3, "{bench}: DeACT-N speedup only {speedup:.2}x");
    }
}

#[test]
fn deact_does_not_help_streaming_benchmarks_much() {
    // §V-C: "DeACT either does not improve or degrades the performance
    // for bc, lu, mg and sp" — the DRAM lookup per FAM access has to
    // be paid by everyone.
    let i = run_benchmark("mg", cfg(Scheme::IFam));
    let n = run_benchmark("mg", cfg(Scheme::DeactN));
    let speedup = n.speedup_over(&i);
    assert!(
        (0.7..1.3).contains(&speedup),
        "mg speedup should be near 1.0, got {speedup:.2}"
    );
}

#[test]
fn at_traffic_collapses_under_deact_n_relative_to_ifam() {
    // Fig. 11's direction: AT requests at the FAM fall from I-FAM to
    // DeACT-N for reuse-heavy workloads (cold sweeps like cactus need
    // longer runs for the translation cache to warm, see fig11).
    let i = run_benchmark("mcf", cfg(Scheme::IFam));
    let n = run_benchmark("mcf", cfg(Scheme::DeactN));
    assert!(
        i.fam.at_walk_reads as f64 > 1.5 * n.fam.at_walk_reads as f64,
        "walk traffic: I-FAM {} vs DeACT-N {}",
        i.fam.at_walk_reads,
        n.fam.at_walk_reads
    );
}

#[test]
fn translation_hit_rate_gap_matches_fig10() {
    // Fig. 10: the in-DRAM translation cache beats the STU's 1024
    // entries on every benchmark whose footprint exceeds STU reach.
    for bench in ["mcf", "canl", "dc"] {
        let i = run_benchmark(bench, cfg(Scheme::IFam));
        let n = run_benchmark(bench, cfg(Scheme::DeactN));
        assert!(
            n.translation_hit_rate.unwrap() > i.translation_hit_rate.unwrap(),
            "{bench}: DeACT {:.2} !> I-FAM {:.2}",
            n.translation_hit_rate.unwrap(),
            i.translation_hit_rate.unwrap()
        );
    }
}

#[test]
fn acm_hit_rate_ordering_matches_fig9() {
    // Fig. 9: DeACT-N >= DeACT-W on random-allocation workloads.
    for bench in ["mcf", "canl", "bc"] {
        let w = run_benchmark(bench, cfg(Scheme::DeactW));
        let n = run_benchmark(bench, cfg(Scheme::DeactN));
        assert!(
            n.acm_hit_rate.unwrap() + 1e-9 >= w.acm_hit_rate.unwrap(),
            "{bench}: N {:.2} < W {:.2}",
            n.acm_hit_rate.unwrap(),
            w.acm_hit_rate.unwrap()
        );
    }
}

#[test]
fn runs_are_bit_reproducible() {
    let a = run_benchmark("pf", cfg(Scheme::DeactN));
    let b = run_benchmark("pf", cfg(Scheme::DeactN));
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.fam, b.fam);
    assert_eq!(a.dram_reads, b.dram_reads);
    let c = run_benchmark("pf", cfg(Scheme::DeactN).with_seed(999));
    assert_ne!(a.cycles, c.cycles, "different seed, different run");
}

#[test]
fn smaller_stu_hurts_ifam_more_than_deact() {
    // The Fig. 13 mechanism: DeACT's translations do not live in the
    // STU, so shrinking it mainly punishes I-FAM.
    let base = cfg(Scheme::IFam);
    let i_big = run_benchmark("dc", base.with_stu_entries(4096));
    let i_small = run_benchmark("dc", base.with_stu_entries(256));
    let n_big = run_benchmark(
        "dc",
        base.with_scheme(Scheme::DeactN).with_stu_entries(4096),
    );
    let n_small = run_benchmark("dc", base.with_scheme(Scheme::DeactN).with_stu_entries(256));
    let ifam_loss = i_big.ipc / i_small.ipc;
    let deact_loss = n_big.ipc / n_small.ipc;
    assert!(
        ifam_loss > deact_loss,
        "shrinking STU: I-FAM lost {ifam_loss:.2}x, DeACT {deact_loss:.2}x"
    );
}

#[test]
fn higher_fabric_latency_increases_deact_advantage() {
    // Fig. 15's direction.
    let speedup_at = |ns: u64| {
        let c = cfg(Scheme::IFam).with_fabric_latency_ns(ns);
        let i = run_benchmark("pf", c);
        let n = run_benchmark("pf", c.with_scheme(Scheme::DeactN));
        n.speedup_over(&i)
    };
    let fast = speedup_at(100);
    let slow = speedup_at(6000);
    assert!(
        slow > fast,
        "speedup should grow with fabric latency: {fast:.2}x @100ns vs {slow:.2}x @6us"
    );
}

#[test]
fn multi_node_contention_increases_deact_advantage() {
    // Fig. 16's direction.
    let speedup_at = |nodes: usize| {
        let c = cfg(Scheme::IFam)
            .with_nodes(nodes)
            .with_refs_per_core(8_000);
        let i = run_benchmark("dc", c);
        let n = run_benchmark("dc", c.with_scheme(Scheme::DeactN));
        n.speedup_over(&i)
    };
    let one = speedup_at(1);
    let eight = speedup_at(8);
    assert!(
        eight > one * 0.95,
        "speedup should not shrink with node count: {one:.2}x @1 vs {eight:.2}x @8"
    );
}

#[test]
fn skip_read_checks_only_helps() {
    let base = cfg(Scheme::DeactN);
    let checked = run_benchmark("canl", base);
    let skipped = run_benchmark("canl", base.with_skip_read_checks(true));
    assert!(skipped.ipc >= checked.ipc);
    assert!(skipped.fam.at_acm_reads < checked.fam.at_acm_reads);
}

#[test]
fn instructions_match_workload_density() {
    // refs * (mean gap + 1) per core, within stochastic tolerance.
    let r = run_benchmark("mcf", cfg(Scheme::EFam));
    let per_core = r.instructions as f64 / 4.0;
    let w = fam_workloads::Workload::by_name("mcf").unwrap();
    let expected = 20_000.0 * (w.mean_gap_instrs() as f64 + 1.5);
    assert!(
        (per_core / expected - 1.0).abs() < 0.1,
        "instructions {per_core} vs expected {expected}"
    );
}

#[test]
fn lru_translation_cache_hits_at_least_as_often_but_writes_more() {
    let base = cfg(Scheme::DeactN);
    let random = run_benchmark("mcf", base);
    let lru = run_benchmark("mcf", base.with_translation_cache_lru(true));
    assert!(
        lru.translation_hit_rate.unwrap() >= random.translation_hit_rate.unwrap() - 0.02,
        "LRU {:.3} vs random {:.3}",
        lru.translation_hit_rate.unwrap(),
        random.translation_hit_rate.unwrap()
    );
    assert!(
        lru.dram_writes > random.dram_writes,
        "LRU recency updates cost DRAM writes: {} !> {}",
        lru.dram_writes,
        random.dram_writes
    );
}

#[test]
fn trace_replay_drives_the_full_system() {
    let c = cfg(Scheme::DeactN).with_refs_per_core(2_000);
    let w = fam_workloads::Workload::by_name("pf").unwrap();
    let traces: Vec<Vec<Vec<fam_workloads::MemRef>>> = (0..c.nodes)
        .map(|_| {
            (0..c.cores_per_node)
                .map(|core| w.generator(core as u64).take_refs(2_000))
                .collect()
        })
        .collect();
    let r = deact::System::from_traces(c, "pf-trace", traces).run();
    assert_eq!(r.workload, "pf-trace");
    assert!(r.ipc > 0.0);
    assert!(r.fam.data_reads > 0);
}

#[test]
fn shared_segment_traffic_shows_bitmap_fetches() {
    // §VI "Shared Pages": two nodes touch a common segment; DeACT's
    // verification fetches the 1 GB-region bitmap for shared pages.
    let mut w = fam_workloads::Workload::by_name("dc").unwrap();
    w.shared_fraction = 0.25;
    w.shared_pages = 64;
    let c = cfg(Scheme::DeactN)
        .with_nodes(2)
        .with_refs_per_core(5_000)
        .with_shared_segment_pages(64);
    let r = deact::System::new(c, &w).run();
    assert!(
        r.fam.at_bitmap_reads > 0,
        "shared pages must trigger bitmap fetches"
    );
    assert!(r.ipc > 0.0);

    // The same workload without sharing fetches no bitmaps.
    let mut w2 = w;
    w2.shared_fraction = 0.0;
    let r2 = deact::System::new(
        cfg(Scheme::DeactN).with_nodes(2).with_refs_per_core(5_000),
        &w2,
    )
    .run();
    assert_eq!(r2.fam.at_bitmap_reads, 0);
}

#[test]
fn shared_segment_works_under_every_scheme() {
    let mut w = fam_workloads::Workload::by_name("pf").unwrap();
    w.shared_fraction = 0.2;
    w.shared_pages = 32;
    for scheme in Scheme::ALL {
        let c = cfg(scheme)
            .with_refs_per_core(2_000)
            .with_shared_segment_pages(32);
        let r = deact::System::new(c, &w).run();
        assert!(r.ipc > 0.0, "{scheme}");
    }
}
