//! Property-based tests on the substrates' core invariants.

use std::collections::HashMap;

use fam_broker::{AcmEntry, AcmWidth, FamLayout};
use fam_fabric::packet::{Packet, PacketKind};
use fam_mem::{CacheConfig, Replacement, SetAssocCache};
use fam_sim::{Cycle, Resource, Window};
use fam_vm::{FamAddr, NodeId, PageTable, PtFlags, VirtAddr, PAGE_BYTES};
use proptest::prelude::*;

proptest! {
    /// A page table agrees with a plain map under any interleaving of
    /// map / unmap / protect operations.
    #[test]
    fn page_table_matches_reference_model(
        ops in prop::collection::vec(
            (0u8..3, 0u64..512, 1u64..1_000_000), 1..200
        )
    ) {
        let mut pt = PageTable::new(0);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut next = 0x100_0000u64;
        let mut alloc = move |_: usize| {
            // Local copy of a bump allocator.
            let a = next;
            next += PAGE_BYTES;
            a
        };
        for (op, vpage, target) in ops {
            // Spread vpages across levels to exercise the radix.
            let vpage = vpage * 0x4_0421;
            match op {
                0 => {
                    pt.map(vpage, target, PtFlags::rw(), &mut alloc);
                    model.insert(vpage, target);
                }
                1 => {
                    pt.unmap(vpage);
                    model.remove(&vpage);
                }
                _ => {
                    let did = pt.protect(vpage, PtFlags::ro());
                    prop_assert_eq!(did, model.contains_key(&vpage));
                }
            }
            prop_assert_eq!(pt.mapped_pages(), model.len() as u64);
        }
        for (vpage, target) in &model {
            prop_assert_eq!(pt.translate(*vpage).map(|p| p.target_page), Some(*target));
        }
    }

    /// A set-associative cache never exceeds its capacity and always
    /// hits on the most recently inserted key.
    #[test]
    fn cache_capacity_and_recency(
        keys in prop::collection::vec(0u64..10_000, 1..500),
        sets in 1usize..32,
        ways in 1usize..8,
    ) {
        let mut c: SetAssocCache<u64> =
            SetAssocCache::new(CacheConfig::new(sets, ways, Replacement::Lru));
        for &k in &keys {
            c.insert(k, k * 2);
            prop_assert!(c.len() <= sets * ways);
            prop_assert_eq!(c.get(k), Some(&(k * 2)), "MRU key must be resident");
        }
    }

    /// Backfilled resource schedules never overlap more than the
    /// resource allows: total busy time is conserved.
    #[test]
    fn resource_busy_time_is_conserved(
        arrivals in prop::collection::vec(0u64..100_000, 1..200),
        occ in 1u64..50,
    ) {
        let mut r = Resource::new(occ);
        for &a in &arrivals {
            let start = r.acquire(Cycle(a));
            prop_assert!(start >= Cycle(a));
        }
        prop_assert_eq!(r.busy_cycles().0, occ * arrivals.len() as u64);
        prop_assert_eq!(r.requests(), arrivals.len() as u64);
    }

    /// The outstanding window never admits more than `capacity`
    /// operations whose lifetimes overlap, under monotone arrivals.
    #[test]
    fn window_bounds_concurrency(
        gaps in prop::collection::vec(0u64..100, 32..200),
        latency in 1u64..5_000,
        capacity in 1usize..64,
    ) {
        let mut w = Window::new(capacity);
        let mut now = 0u64;
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for g in gaps {
            now += g;
            let start = w.admit(Cycle(now)).0.max(now);
            w.record_completion(Cycle(start + latency));
            intervals.push((start, start + latency));
        }
        // At every start, the number of other ops strictly containing
        // that instant must be below capacity.
        for &(s, _) in &intervals {
            let live = intervals
                .iter()
                .filter(|&&(a, b)| a <= s && s < b)
                .count();
            prop_assert!(
                live <= capacity,
                "{live} concurrent ops exceed capacity {capacity}"
            );
        }
    }

    /// ACM addresses are injective per page and stay inside the
    /// metadata region.
    #[test]
    fn acm_addresses_injective(
        pages in prop::collection::vec(0u64..100_000, 1..100),
    ) {
        let layout = FamLayout::new(2 << 30, AcmWidth::W16);
        let mut seen = HashMap::new();
        for p in pages {
            let p = p % layout.usable_pages();
            let addr = layout.acm_addr(FamAddr(p * PAGE_BYTES));
            prop_assert!(addr >= layout.acm_base());
            prop_assert!(addr < layout.bitmap_base());
            if let Some(prev) = seen.insert(addr, p) {
                prop_assert_eq!(prev, p, "two pages share an ACM address");
            }
        }
    }

    /// ACM entries round-trip their owner and permissions at every
    /// width.
    #[test]
    fn acm_entry_roundtrip(id in 0u16..62, perm in 0u8..4) {
        let flags = match perm {
            0 => PtFlags::ro(),
            1 => PtFlags::rw(),
            2 => PtFlags::rx(),
            _ => PtFlags::rwx(),
        };
        for width in [AcmWidth::W8, AcmWidth::W16, AcmWidth::W32] {
            let e = AcmEntry::owned(width, NodeId::new(id), flags);
            prop_assert_eq!(e.owner(), Some(NodeId::new(id)));
            prop_assert_eq!(e.flags().writable(), flags.writable());
            prop_assert_eq!(e.flags().executable(), flags.executable());
            let back = AcmEntry::from_raw(width, e.raw());
            prop_assert_eq!(back, e);
        }
    }

    /// Fabric packets round-trip any field combination.
    #[test]
    fn packet_roundtrip(
        kind_code in 0u8..4,
        node in 0u16..0x3FFE,
        addr in any::<u64>(),
        verified in any::<bool>(),
        tag in any::<u16>(),
    ) {
        let kind = match kind_code {
            0 => PacketKind::Read,
            1 => PacketKind::Write,
            2 => PacketKind::TranslationRequest,
            _ => PacketKind::TranslationResponse,
        };
        let p = Packet { kind, source: NodeId::new(node), addr, verified, tag };
        prop_assert_eq!(Packet::decode(p.encode()), Ok(p));
    }

    /// Virtual addresses decompose and reassemble exactly.
    #[test]
    fn address_roundtrip(raw in any::<u64>()) {
        let raw = raw >> 16; // stay within 48-bit VA space
        let a = VirtAddr(raw);
        prop_assert_eq!(VirtAddr::from_page(a.page(), a.offset()), a);
    }
}

proptest! {
    /// Inclusion invariant: any line resident in a private L1/L2 is
    /// also resident in the shared L3, under arbitrary access streams.
    #[test]
    fn hierarchy_inclusion_holds(
        accesses in prop::collection::vec((0usize..2, 0u64..64, any::<bool>()), 1..300)
    ) {
        use fam_mem::{CacheHierarchy, HierarchyConfig};
        let mut h = CacheHierarchy::new(2, HierarchyConfig {
            l1_bytes: 4 * 64,
            l1_ways: 2,
            l1_latency: 1,
            l2_bytes: 8 * 64,
            l2_ways: 2,
            l2_latency: 2,
            l3_bytes: 16 * 64,
            l3_ways: 2,
            l3_latency: 3,
        });
        let mut touched = std::collections::HashSet::new();
        for (core, line, write) in accesses {
            h.access(core, line, write);
            touched.insert(line);
        }
        // `contains` checks all levels; a line in L1/L2 but evicted
        // from L3 would have been back-invalidated, so any still-
        // resident line must be L3-resident. We verify through the
        // public surface: re-access every touched line and confirm the
        // hierarchy never reports an L1/L2 hit for a line the L3 lost.
        for line in touched {
            let resident = h.contains(line);
            let r = h.access(0, line, false);
            if !resident {
                prop_assert_eq!(r.level, None, "line {} hit despite eviction", line);
            }
        }
    }

    /// DeACT-W resident groups behave exactly like a model keyed by
    /// `page / coverage`: filling any page makes its whole aligned
    /// group resident and nothing else.
    #[test]
    fn deact_w_group_model(pages in prop::collection::vec(0u64..512, 1..64)) {
        use fam_stu::{StuCache, StuConfig, StuOrganization};
        let config = StuConfig {
            sets: 64,
            ways: 8,
            organization: StuOrganization::DeactW,
            ..StuConfig::default()
        };
        let coverage = config.deact_w_coverage();
        let mut stu = StuCache::new(config);
        let mut model: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for p in &pages {
            stu.acm_fill(*p);
            model.insert(p / coverage);
        }
        // 512 pages = 128 groups fit comfortably in 512 ways: the
        // model is exact (no evictions).
        for page in 0u64..512 {
            prop_assert_eq!(
                stu.acm_lookup(page),
                model.contains(&(page / coverage)),
                "page {}", page
            );
        }
    }
}
