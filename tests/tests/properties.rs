//! Property-style tests on the substrates' core invariants.
//!
//! Each test drives its invariant with hundreds of randomized
//! operations drawn from a fixed-seed [`SimRng`], so the coverage of a
//! property-based suite is kept while every run is bit-identical and
//! dependency-free.

use std::collections::{HashMap, HashSet};

use fam_broker::{AcmEntry, AcmWidth, FamLayout};
use fam_fabric::packet::{Packet, PacketKind};
use fam_mem::{CacheConfig, Replacement, SetAssocCache};
use fam_sim::{Cycle, Resource, SimRng, Window};
use fam_vm::{FamAddr, NodeId, PageTable, PtFlags, VirtAddr, PAGE_BYTES};

/// Number of randomized trials per property.
const TRIALS: u64 = 32;

/// A page table agrees with a plain map under any interleaving of
/// map / unmap / protect operations.
#[test]
fn page_table_matches_reference_model() {
    let mut rng = SimRng::seeded(0xA11CE);
    for _ in 0..TRIALS {
        let mut pt = PageTable::new(0);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut next = 0x100_0000u64;
        let mut alloc = move |_: usize| {
            // Local copy of a bump allocator.
            let a = next;
            next += PAGE_BYTES;
            a
        };
        let ops = 1 + rng.below(200);
        for _ in 0..ops {
            let op = rng.below(3);
            // Spread vpages across levels to exercise the radix.
            let vpage = rng.below(512) * 0x4_0421;
            let target = 1 + rng.below(1_000_000);
            match op {
                0 => {
                    pt.map(vpage, target, PtFlags::rw(), &mut alloc);
                    model.insert(vpage, target);
                }
                1 => {
                    pt.unmap(vpage);
                    model.remove(&vpage);
                }
                _ => {
                    let did = pt.protect(vpage, PtFlags::ro());
                    assert_eq!(did, model.contains_key(&vpage));
                }
            }
            assert_eq!(pt.mapped_pages(), model.len() as u64);
        }
        for (vpage, target) in &model {
            assert_eq!(pt.translate(*vpage).map(|p| p.target_page), Some(*target));
        }
    }
}

/// A set-associative cache never exceeds its capacity and always hits
/// on the most recently inserted key.
#[test]
fn cache_capacity_and_recency() {
    let mut rng = SimRng::seeded(0xCAC4E);
    for _ in 0..TRIALS {
        let sets = 1 + rng.index(31);
        let ways = 1 + rng.index(7);
        let mut c: SetAssocCache<u64> =
            SetAssocCache::new(CacheConfig::new(sets, ways, Replacement::Lru));
        let n = 1 + rng.below(500);
        for _ in 0..n {
            let k = rng.below(10_000);
            c.insert(k, k * 2);
            assert!(c.len() <= sets * ways);
            assert_eq!(c.get(k), Some(&(k * 2)), "MRU key must be resident");
        }
    }
}

/// Backfilled resource schedules never overlap more than the resource
/// allows: total busy time is conserved.
#[test]
fn resource_busy_time_is_conserved() {
    let mut rng = SimRng::seeded(0xB551);
    for _ in 0..TRIALS {
        let occ = 1 + rng.below(49);
        let mut r = Resource::new(occ);
        let n = 1 + rng.below(200);
        for _ in 0..n {
            let a = rng.below(100_000);
            let start = r.acquire(Cycle(a));
            assert!(start >= Cycle(a));
        }
        assert_eq!(r.busy_cycles().0, occ * n);
        assert_eq!(r.requests(), n);
    }
}

/// The outstanding window never admits more than `capacity` operations
/// whose lifetimes overlap, under monotone arrivals.
#[test]
fn window_bounds_concurrency() {
    let mut rng = SimRng::seeded(0x817D0);
    for _ in 0..TRIALS {
        let latency = 1 + rng.below(4_999);
        let capacity = 1 + rng.index(63);
        let mut w = Window::new(capacity);
        let mut now = 0u64;
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        let n = 32 + rng.below(168);
        for _ in 0..n {
            now += rng.below(100);
            let start = w.admit(Cycle(now)).0.max(now);
            w.record_completion(Cycle(start + latency));
            intervals.push((start, start + latency));
        }
        // At every start, the number of other ops strictly containing
        // that instant must be below capacity.
        for &(s, _) in &intervals {
            let live = intervals.iter().filter(|&&(a, b)| a <= s && s < b).count();
            assert!(
                live <= capacity,
                "{live} concurrent ops exceed capacity {capacity}"
            );
        }
    }
}

/// ACM addresses are injective per page and stay inside the metadata
/// region.
#[test]
fn acm_addresses_injective() {
    let mut rng = SimRng::seeded(0xAC3);
    let layout = FamLayout::new(2 << 30, AcmWidth::W16);
    let mut seen = HashMap::new();
    for _ in 0..TRIALS * 100 {
        let p = rng.below(100_000) % layout.usable_pages();
        let addr = layout.acm_addr(FamAddr(p * PAGE_BYTES));
        assert!(addr >= layout.acm_base());
        assert!(addr < layout.bitmap_base());
        if let Some(prev) = seen.insert(addr, p) {
            assert_eq!(prev, p, "two pages share an ACM address");
        }
    }
}

/// ACM entries round-trip their owner and permissions at every width.
#[test]
fn acm_entry_roundtrip() {
    for id in 0u16..62 {
        for flags in [PtFlags::ro(), PtFlags::rw(), PtFlags::rx(), PtFlags::rwx()] {
            for width in [AcmWidth::W8, AcmWidth::W16, AcmWidth::W32] {
                let e = AcmEntry::owned(width, NodeId::new(id), flags);
                assert_eq!(e.owner(), Some(NodeId::new(id)));
                assert_eq!(e.flags().writable(), flags.writable());
                assert_eq!(e.flags().executable(), flags.executable());
                let back = AcmEntry::from_raw(width, e.raw());
                assert_eq!(back, e);
            }
        }
    }
}

/// Fabric packets round-trip any field combination.
#[test]
fn packet_roundtrip() {
    let mut rng = SimRng::seeded(0xFAB);
    for _ in 0..TRIALS * 20 {
        let kind = match rng.below(4) {
            0 => PacketKind::Read,
            1 => PacketKind::Write,
            2 => PacketKind::TranslationRequest,
            _ => PacketKind::TranslationResponse,
        };
        let p = Packet {
            kind,
            source: NodeId::new(rng.below(0x3FFE) as u16),
            addr: rng.next_u64(),
            verified: rng.chance(0.5),
            tag: rng.below(1 << 16) as u16,
        };
        assert_eq!(Packet::decode(&p.encode()), Ok(p));
    }
}

/// Virtual addresses decompose and reassemble exactly.
#[test]
fn address_roundtrip() {
    let mut rng = SimRng::seeded(0xADD);
    for _ in 0..TRIALS * 20 {
        let raw = rng.next_u64() >> 16; // stay within 48-bit VA space
        let a = VirtAddr(raw);
        assert_eq!(VirtAddr::from_page(a.page(), a.offset()), a);
    }
}

/// Inclusion invariant: any line resident in a private L1/L2 is also
/// resident in the shared L3, under arbitrary access streams.
#[test]
fn hierarchy_inclusion_holds() {
    use fam_mem::{CacheHierarchy, HierarchyConfig};
    let mut rng = SimRng::seeded(0x1DC1);
    for _ in 0..TRIALS {
        let mut h = CacheHierarchy::new(
            2,
            HierarchyConfig {
                l1_bytes: 4 * 64,
                l1_ways: 2,
                l1_latency: 1,
                l2_bytes: 8 * 64,
                l2_ways: 2,
                l2_latency: 2,
                l3_bytes: 16 * 64,
                l3_ways: 2,
                l3_latency: 3,
            },
        );
        let mut touched = HashSet::new();
        let n = 1 + rng.below(300);
        for _ in 0..n {
            let core = rng.index(2);
            let line = rng.below(64);
            let write = rng.chance(0.5);
            h.access(core, line, write);
            touched.insert(line);
        }
        // `contains` checks all levels; a line in L1/L2 but evicted
        // from L3 would have been back-invalidated, so any still-
        // resident line must be L3-resident. We verify through the
        // public surface: re-access every touched line and confirm the
        // hierarchy never reports an L1/L2 hit for a line the L3 lost.
        for line in touched {
            let resident = h.contains(line);
            let r = h.access(0, line, false);
            if !resident {
                assert_eq!(r.level, None, "line {line} hit despite eviction");
            }
        }
    }
}

/// The indexed min-heap agrees with `std::collections::BinaryHeap`
/// under randomized insert/pop/update churn: every pop returns the
/// globally smallest live `(key, slot)` pair.
///
/// The reference model pairs a max-heap of `Reverse`d entries with a
/// live-key map and lazy deletion (a `BinaryHeap` cannot re-key, so an
/// `update` pushes a fresh entry and the stale one is skipped at pop
/// time) — the classic workaround whose O(log n)-per-re-key cost the
/// indexed heap exists to avoid.
#[test]
fn indexed_heap_matches_binary_heap_model() {
    use fam_sim::IndexedMinHeap;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut rng = SimRng::seeded(0x4EA9);
    for _ in 0..TRIALS {
        let cap = 1 + rng.index(96);
        let mut q: IndexedMinHeap<(u64, usize)> = IndexedMinHeap::new(cap);
        let mut model: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut live: Vec<Option<(u64, usize)>> = vec![None; cap];
        let ops = 200 + rng.below(2_000);
        for step in 0..ops {
            let slot = rng.index(cap);
            let key = (rng.below(1_000), slot);
            match rng.below(3) {
                0 => {
                    // Insert if absent, else treat as an update — the
                    // same two paths the simulation driver exercises.
                    if live[slot].is_none() {
                        q.insert(slot, key);
                    } else {
                        q.update(slot, key);
                    }
                    live[slot] = Some(key);
                    model.push(Reverse(key));
                }
                1 => {
                    if live[slot].is_some() {
                        q.update(slot, key);
                        live[slot] = Some(key);
                        model.push(Reverse(key));
                    }
                }
                _ => {
                    // Drain stale model entries (lazy deletion), then
                    // both heaps must agree on the minimum.
                    while let Some(Reverse(k)) = model.peek().copied() {
                        if live[k.1] == Some(k) {
                            break;
                        }
                        model.pop();
                    }
                    match model.pop() {
                        None => assert_eq!(q.pop(), None, "step {step}"),
                        Some(Reverse(k)) => {
                            assert_eq!(q.pop(), Some((k.1, k)), "step {step}");
                            live[k.1] = None;
                        }
                    }
                }
            }
        }
        // Full drain: the survivors come out in identical order.
        while let Some(Reverse(k)) = model.pop() {
            if live[k.1] == Some(k) {
                assert_eq!(q.pop(), Some((k.1, k)));
                live[k.1] = None;
            }
        }
        assert!(q.is_empty());
    }
}

/// DeACT-W resident groups behave exactly like a model keyed by
/// `page / coverage`: filling any page makes its whole aligned group
/// resident and nothing else.
#[test]
fn deact_w_group_model() {
    use fam_stu::{StuCache, StuConfig, StuOrganization};
    let mut rng = SimRng::seeded(0xD3AC7);
    for _ in 0..TRIALS {
        let config = StuConfig {
            sets: 64,
            ways: 8,
            organization: StuOrganization::DeactW,
            ..StuConfig::default()
        };
        let coverage = config.deact_w_coverage();
        let mut stu = StuCache::new(config);
        let mut model: HashSet<u64> = HashSet::new();
        let n = 1 + rng.below(64);
        for _ in 0..n {
            let p = rng.below(512);
            stu.acm_fill(p);
            model.insert(p / coverage);
        }
        // 512 pages = 128 groups fit comfortably in 512 ways: the
        // model is exact (no evictions).
        for page in 0u64..512 {
            assert_eq!(
                stu.acm_lookup(page),
                model.contains(&(page / coverage)),
                "page {page}"
            );
        }
    }
}
