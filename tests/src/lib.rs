//! Host crate for the workspace's cross-crate integration tests; the
//! tests live in `tests/tests/`.
