//! Quickstart: simulate one HPC benchmark under all four FAM
//! virtual-memory schemes and print the paper's headline comparison.
//!
//! ```sh
//! cargo run --release -p fam-examples --bin quickstart [benchmark] [refs]
//! ```

use deact::{run_benchmark, Scheme, SystemConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| "mcf".to_string());
    let refs: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(50_000);

    println!("DeACT quickstart: benchmark `{bench}`, {refs} references per core\n");
    let cfg = SystemConfig::paper_default().with_refs_per_core(refs);

    let mut reports = Vec::new();
    for scheme in Scheme::ALL {
        let r = run_benchmark(&bench, cfg.with_scheme(scheme));
        println!(
            "{:8}  IPC {:6.3}   AT-at-FAM {:5.1}%   translation-hit {}   secure: {}",
            scheme.name(),
            r.ipc,
            r.fam.at_percent(),
            r.translation_hit_rate
                .map(|h| format!("{:5.1}%", h * 100.0))
                .unwrap_or_else(|| "  n/a ".to_string()),
            if scheme.is_secure() { "yes" } else { "NO" },
        );
        reports.push(r);
    }

    let efam = &reports[0];
    let ifam = &reports[1];
    let deact_n = &reports[3];
    println!();
    println!(
        "I-FAM pays {:.1}x slowdown over insecure E-FAM for its security;",
        efam.ipc / ifam.ipc
    );
    println!(
        "DeACT-N recovers a {:.2}x speedup over I-FAM ({}% of E-FAM performance)",
        deact_n.speedup_over(ifam),
        (deact_n.normalized_to(efam) * 100.0).round(),
    );
    println!("without giving up system-level access control.");
}
