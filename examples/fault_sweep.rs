//! Chaos sweep: graceful degradation across schemes as the fabric gets
//! flakier — and survival when it breaks for good.
//!
//! Two sections:
//!
//! 1. **Transient sweep** — the fault injector throws drops,
//!    corruptions, stale translations, and STU stalls at the FAM path;
//!    the retry/NACK machinery absorbs them. The profile scales from
//!    0× to 4× and the table shows what was injected, how recovery
//!    went, and what the faults cost in IPC.
//! 2. **Chaos matrix** — *persistent* faults (a FAM module dies, its
//!    link is severed for good, a media range wears out), alone and
//!    layered on top of the transient profile, across all four
//!    schemes. Retries cannot heal these; the memory broker
//!    quarantines, evacuates what is reachable, rewrites translations,
//!    and broadcasts shootdowns, and the run completes *degraded* —
//!    never a panic. The table is the survival/degradation report.
//!
//! Everything is seed-driven: run it twice and the tables are
//! byte-identical.
//!
//! ```sh
//! cargo run --release -p fam-examples --bin fault_sweep
//! ```

use deact::{run_benchmark, Scheme, SystemConfig};
use fam_sim::{FaultConfig, PersistentFault};

/// The transient profile with every probability scaled by `x`.
fn scaled_profile(seed: u64, x: f64) -> FaultConfig {
    let base = FaultConfig::transient(seed);
    FaultConfig {
        drop_prob: base.drop_prob * x,
        corrupt_prob: base.corrupt_prob * x,
        stale_prob: base.stale_prob * x,
        stu_stall_prob: base.stu_stall_prob * x,
        ..base
    }
}

fn transient_sweep() {
    let cfg = SystemConfig::paper_default()
        .with_refs_per_core(20_000)
        .with_seed(7);
    let bench = "mcf";

    println!("transient sweep on `{bench}` (seed 7)");
    println!();
    println!(
        "{:>5} {:8} {:>8} {:>8} {:>8} {:>8} {:>6} {:>8} {:>9}",
        "scale", "scheme", "injected", "retries", "recov", "fatal", "rate", "backoff", "ipc-loss"
    );

    for scale in [0.0, 1.0, 2.0, 4.0] {
        for scheme in Scheme::ALL {
            let clean = run_benchmark(bench, cfg.with_scheme(scheme));
            let faulty = if scale == 0.0 {
                cfg.with_scheme(scheme)
            } else {
                cfg.with_scheme(scheme)
                    .with_fault_injection(scaled_profile(7, scale))
            };
            let r = run_benchmark(bench, faulty);
            let f = &r.recovery;
            println!(
                "{:>4}x {:8} {:>8} {:>8} {:>8} {:>8} {:>5.1}% {:>8} {:>8.1}%",
                scale,
                scheme.name(),
                f.injected_total(),
                f.retries,
                f.recovered,
                f.fatal,
                f.recovery_rate() * 100.0,
                f.backoff_cycles,
                (1.0 - r.ipc / clean.ipc) * 100.0,
            );
        }
        println!();
    }

    println!("at 0x the recovery block is all-zero: injection off is free.");
    println!("fatal > 0 means the retry budget (4) was exhausted; the run");
    println!("still completes — degradation, not collapse.");
}

/// The persistent-failure roster: one of each class, all striking at
/// the same injector ordinal so the tables are comparable.
fn persistent_roster() -> [(&'static str, PersistentFault); 3] {
    [
        ("node-dead", PersistentFault::NodeDead { module: 1 }),
        ("link-sever", PersistentFault::LinkSevered { module: 1 }),
        (
            "media-fail",
            PersistentFault::MediaFailed {
                first_page: 0,
                pages: 64,
            },
        ),
    ]
}

fn chaos_matrix() {
    // Two nodes over two FAM modules: killing module 1 leaves a
    // survivor to evacuate to and keeps the sweep fast.
    let cfg = SystemConfig::paper_default()
        .with_nodes(2)
        .with_fam_modules(2)
        .with_refs_per_core(3_000)
        .with_seed(7);
    let bench = "sssp";
    const STRIKE_AT: u64 = 500;

    println!();
    println!("chaos matrix on `{bench}` (strike at FAM op {STRIKE_AT}, seed 7)");
    println!();
    println!(
        "{:>10} {:>10} {:8} {:>6} {:>6} {:>6} {:>7} {:>7} {:>9} {:>8} {:>8}",
        "mix",
        "fault",
        "scheme",
        "quar",
        "evac",
        "lost",
        "rebuilt",
        "poison",
        "recov-cy",
        "ipc",
        "survived"
    );

    for (mix, transient) in [("persistent", false), ("pers+trans", true)] {
        for (fault_name, fault) in persistent_roster() {
            for scheme in Scheme::ALL {
                let faults = if transient {
                    FaultConfig::transient(7).with_persistent(fault, STRIKE_AT)
                } else {
                    FaultConfig::persistent_only(7, fault, STRIKE_AT)
                };
                // `run_benchmark` would panic on a `SimError`;
                // completing every cell *is* the survival claim.
                let r = run_benchmark(bench, cfg.with_scheme(scheme).with_fault_injection(faults));
                let d = &r.degradation;
                assert!(
                    !d.is_zero(),
                    "{fault_name}/{scheme}: the persistent fault never struck"
                );
                println!(
                    "{:>10} {:>10} {:8} {:>6} {:>6} {:>6} {:>7} {:>7} {:>9} {:>8.4} {:>8}",
                    mix,
                    fault_name,
                    scheme.name(),
                    d.pages_quarantined,
                    d.pages_evacuated,
                    d.pages_lost,
                    d.table_pages_rebuilt,
                    d.poisoned_accesses,
                    d.recovery_cycles,
                    r.ipc,
                    "yes"
                );
            }
        }
        println!();
    }

    println!("every cell completed: quarantine + evacuation + shootdown, never");
    println!("a panic. link-sever evacuates (lost = 0, poison = 0); node-dead");
    println!("and media-fail lose the struck pages and poison later touches.");
}

fn main() {
    transient_sweep();
    chaos_matrix();
}
