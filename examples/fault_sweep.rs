//! Fault sweep: graceful degradation across schemes as the fabric
//! gets flakier.
//!
//! The fault injector throws drops, corruptions, stale translations,
//! and STU stalls at the FAM path; the retry/NACK machinery absorbs
//! them. This sweep scales the transient-fault profile from 0× to 4×
//! and prints, per scheme, what was injected, how recovery went, and
//! what the faults cost in IPC. Everything is seed-driven: run it
//! twice and the tables are byte-identical.
//!
//! ```sh
//! cargo run --release -p fam-examples --bin fault_sweep
//! ```

use deact::{run_benchmark, Scheme, SystemConfig};
use fam_sim::FaultConfig;

/// The transient profile with every probability scaled by `x`.
fn scaled_profile(seed: u64, x: f64) -> FaultConfig {
    let base = FaultConfig::transient(seed);
    FaultConfig {
        drop_prob: base.drop_prob * x,
        corrupt_prob: base.corrupt_prob * x,
        stale_prob: base.stale_prob * x,
        stu_stall_prob: base.stu_stall_prob * x,
        ..base
    }
}

fn main() {
    let cfg = SystemConfig::paper_default()
        .with_refs_per_core(20_000)
        .with_seed(7);
    let bench = "mcf";

    println!("fault sweep on `{bench}` (transient profile, seed 7)");
    println!();
    println!(
        "{:>5} {:8} {:>8} {:>8} {:>8} {:>8} {:>6} {:>8} {:>9}",
        "scale", "scheme", "injected", "retries", "recov", "fatal", "rate", "backoff", "ipc-loss"
    );

    for scale in [0.0, 1.0, 2.0, 4.0] {
        for scheme in Scheme::ALL {
            let clean = run_benchmark(bench, cfg.with_scheme(scheme));
            let faulty = if scale == 0.0 {
                cfg.with_scheme(scheme)
            } else {
                cfg.with_scheme(scheme)
                    .with_fault_injection(scaled_profile(7, scale))
            };
            let r = run_benchmark(bench, faulty);
            let f = &r.recovery;
            println!(
                "{:>4}x {:8} {:>8} {:>8} {:>8} {:>8} {:>5.1}% {:>8} {:>8.1}%",
                scale,
                scheme.name(),
                f.injected_total(),
                f.retries,
                f.recovered,
                f.fatal,
                f.recovery_rate() * 100.0,
                f.backoff_cycles,
                (1.0 - r.ipc / clean.ipc) * 100.0,
            );
        }
        println!();
    }

    println!("at 0x the recovery block is all-zero: injection off is free.");
    println!("fatal > 0 means the retry budget (4) was exhausted; the run");
    println!("still completes — degradation, not collapse.");
}
