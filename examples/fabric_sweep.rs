//! Fabric-latency sensitivity at a glance (the Fig. 15 axis),
//! demonstrating the sweep API on a single benchmark.
//!
//! ```sh
//! cargo run --release -p fam-examples --bin fabric_sweep [benchmark]
//! ```

use deact::{run_benchmark, Scheme, SystemConfig};

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "pf".to_string());
    println!("fabric-latency sweep on `{bench}` (DeACT-N speedup over I-FAM)\n");
    println!(
        "{:>10} {:>10} {:>10} {:>10}",
        "latency", "I-FAM IPC", "DeACT IPC", "speedup"
    );

    let base = SystemConfig::paper_default().with_refs_per_core(25_000);
    for ns in [100u64, 250, 500, 1000, 3000, 6000] {
        let cfg = base.with_fabric_latency_ns(ns);
        let ifam = run_benchmark(&bench, cfg.with_scheme(Scheme::IFam));
        let deact = run_benchmark(&bench, cfg.with_scheme(Scheme::DeactN));
        println!(
            "{:>8}ns {:>10.4} {:>10.4} {:>9.2}x",
            ns,
            ifam.ipc,
            deact.ipc,
            deact.speedup_over(&ifam)
        );
    }
    println!("\nthe slower the fabric, the more each avoided page-table walk is worth (§V-D3)");
}
