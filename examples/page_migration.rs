//! Job migration between nodes (§VI, "Page Migration").
//!
//! A job's pages live in the FAM, so migrating the job between compute
//! nodes moves no data — only ownership metadata and cached
//! translations. This example walks the full §VI flow: logical node
//! ids, ACM rewrites, and the shootdown of node-side FAM-translation-
//! cache entries and STU state, with the cost accounting the paper
//! describes.
//!
//! ```sh
//! cargo run --release -p fam-examples --bin page_migration
//! ```

use deact::FamTranslator;
use fam_broker::{AccessKind, BrokerConfig, JobId, MemoryBroker};
use fam_stu::{Stu, StuConfig, StuOrganization};

fn main() {
    let mut broker = MemoryBroker::new(BrokerConfig::default());
    let node0 = broker.register_node().expect("node 0");
    let node1 = broker.register_node().expect("node 1");

    // The resource manager assigns the job a *logical* node id, so ACM
    // written for the job stays valid across migrations (§VI).
    let job = JobId(42);
    let logical = broker.logical_nodes().assign(job, node0);
    println!("job {job} gets logical id {logical}, running on {node0}");

    // The job faults in 64 pages on node 0; node 0's FAM translator
    // caches the system-level translations in local DRAM.
    let mut translator = FamTranslator::new(1 << 20, 0x3000_0000, 128, 1);
    let mut stu0 = Stu::new(StuConfig {
        organization: StuOrganization::DeactN,
        ..StuConfig::default()
    });
    let npa_pages: Vec<u64> = (0x1000..0x1040).collect();
    for &npa in &npa_pages {
        let fam = broker.demand_map(node0, npa).expect("demand map");
        translator.install(npa, fam);
        stu0.acm_fill(fam);
    }
    println!(
        "mapped {} pages; translator caches {} system translations",
        npa_pages.len(),
        translator.cached_mappings()
    );

    // Migrate: the broker moves ownership + system mappings to node 1
    // and reports the shootdown work.
    let report = broker.migrate_node(node0, node1).expect("migration");
    broker.logical_nodes().migrate(job, node1);
    println!(
        "\nmigration report: {} pages moved, {} ACM writes in FAM, {} translation invalidations",
        report.pages_moved, report.acm_writes, report.translation_invalidations
    );

    // Apply the shootdown at node 0: invalidate the in-DRAM FAM
    // translation cache entries ("excess DRAM writes", §VI) and the
    // STU's cached ACM.
    let mut dram_writes = 0;
    for &npa in &npa_pages {
        if translator.invalidate(npa) {
            dram_writes += 1;
        }
    }
    println!("node 0 shootdown: {dram_writes} translation-cache lines invalidated");

    // Old node can no longer touch the pages; new node can.
    let moved_page = broker.translate(node1, npa_pages[0]).unwrap().target_page;
    assert!(!broker.check_access(node0, moved_page, AccessKind::Read));
    assert!(broker.check_access(node1, moved_page, AccessKind::Write));
    assert_eq!(broker.translate(node0, npa_pages[0]), None);
    println!(
        "\npost-migration: {node0} denied, {node1} owns page {moved_page:#x}; logical id {logical} now resolves to {:?}",
        broker.logical_nodes().physical(logical).expect("resolves")
    );
}
