//! Multi-tenant isolation: what the STU's access control actually
//! stops, and what E-FAM leaves open.
//!
//! Two tenants share a FAM pool. Tenant B (compromised OS) forges
//! pre-translated requests — DeACT `V = 1` packets aimed straight at
//! tenant A's FAM pages. The STU vets every FAM address against the
//! access-control metadata the broker wrote, so the forgery is denied;
//! a third tenant is then granted *read-only* rights on a shared
//! segment and the bitmap enforces exactly that (§III-A).
//!
//! ```sh
//! cargo run --release -p fam-examples --bin multi_tenant_isolation
//! ```

use fam_broker::{AccessKind, BrokerConfig, MemoryBroker};
use fam_fabric::packet::{Packet, PacketKind};
use fam_sim::RequestId;
use fam_stu::{Stu, StuConfig, StuOrganization};
use fam_vm::PtFlags;

fn main() {
    let mut broker = MemoryBroker::new(BrokerConfig::default());
    let tenant_a = broker.register_node().expect("register tenant A");
    let tenant_b = broker.register_node().expect("register tenant B");
    let tenant_c = broker.register_node().expect("register tenant C");

    // Tenant A faults in some private pages.
    let secret_page = broker.demand_map(tenant_a, 0x100).expect("map A's page");
    println!("tenant A owns FAM page {secret_page:#x} (private, RW)");

    // Tenant B's compromised kernel forges a pre-translated request:
    // in DeACT terms, a V=1 packet carrying A's FAM address.
    let forged = Packet {
        kind: PacketKind::Read,
        source: tenant_b,
        addr: secret_page * 4096,
        verified: true,
        tag: 7,
    };
    let wire = forged.encode();
    let at_stu = Packet::decode(&wire).expect("well-formed packet");
    println!(
        "tenant B forges {:?} with V={} for A's page...",
        at_stu.kind, at_stu.verified as u8
    );

    // The STU does not trust V=1 to mean "allowed" — it means "already
    // translated". Access control is still checked off-node.
    let mut stu_b = Stu::new(StuConfig {
        organization: StuOrganization::DeactN,
        ..StuConfig::default()
    });
    let verdict = stu_b.verify(
        &broker,
        at_stu.source,
        at_stu.addr / 4096,
        AccessKind::Read,
        RequestId::UNTRACED,
    );
    println!(
        "  STU verdict: {} (ACM fetched from {:#x})",
        if verdict.allowed {
            "ALLOWED (!)"
        } else {
            "DENIED"
        },
        verdict.acm_fetch_addr.unwrap_or(0),
    );
    assert!(
        !verdict.allowed,
        "decoupling must not weaken access control"
    );

    // Under E-FAM there is no STU: the same forged address would go
    // straight to memory. That asymmetry is Table I's security column.
    println!("  (under E-FAM no component would have vetted that request)\n");

    // Now legitimate sharing: A and C share a segment, A read-write,
    // C read-only — mixed permissions via the 1 GB region bitmap.
    let segment = broker
        .share_segment(
            8,
            &[
                (tenant_a, PtFlags::rw(), 0x2000),
                (tenant_c, PtFlags::ro(), 0x3000),
            ],
        )
        .expect("shared segment");
    println!(
        "shared segment: {} pages in 1 GB region {} (A: RW, C: RO)",
        segment.pages, segment.region
    );

    let mut stu_c = Stu::new(StuConfig {
        organization: StuOrganization::DeactN,
        ..StuConfig::default()
    });
    let page = segment.first_page;
    let checks = [
        ("A writes", tenant_a, AccessKind::Write, true),
        ("C reads", tenant_c, AccessKind::Read, true),
        ("C writes", tenant_c, AccessKind::Write, false),
        ("B reads", tenant_b, AccessKind::Read, false),
    ];
    for (what, who, kind, expected) in checks {
        let stu = if who == tenant_a {
            &mut stu_b
        } else {
            &mut stu_c
        };
        let v = stu.verify(&broker, who, page, kind, RequestId::UNTRACED);
        println!(
            "  {what:9} -> {}",
            if v.allowed { "allowed" } else { "denied" }
        );
        assert_eq!(v.allowed, expected, "{what}");
    }
    println!("\nisolation holds: ownership, sharing and permission bits all enforced off-node");
}
