//! Record a reference trace, persist it in the FAMT format, and replay
//! it through the full system — the path a user with real application
//! traces (PIN, Ariel, perf-mem) would take.
//!
//! ```sh
//! cargo run --release -p fam-examples --bin trace_replay
//! ```

use deact::{Scheme, System, SystemConfig};
use fam_workloads::{trace, Workload};

fn main() {
    let cfg = SystemConfig::paper_default()
        .with_scheme(Scheme::DeactN)
        .with_refs_per_core(10_000);

    // 1. Record: capture the synthetic generator's stream per core.
    let workload = Workload::by_name("dc").expect("table3 benchmark");
    let refs_per_core = cfg.refs_per_core as usize;
    let mut wire_bytes = 0usize;
    let traces: Vec<Vec<Vec<fam_workloads::MemRef>>> = (0..cfg.nodes)
        .map(|_| {
            (0..cfg.cores_per_node)
                .map(|c| {
                    let refs = workload.generator(c as u64).take_refs(refs_per_core);
                    // 2. Persist + reload through the FAMT wire format.
                    let mut buf = Vec::new();
                    trace::write_trace(&mut buf, &refs).expect("encode trace");
                    wire_bytes += buf.len();
                    trace::read_trace(buf.as_slice()).expect("decode trace")
                })
                .collect()
        })
        .collect();
    println!(
        "recorded {} refs/core x {} cores ({} KB on the wire)",
        refs_per_core,
        cfg.cores_per_node,
        wire_bytes / 1024
    );

    // 3. Replay through the full DeACT-N system.
    let replayed = System::from_traces(cfg, "dc-trace", traces).run();
    let synthetic = System::new(cfg, &workload).run();
    println!(
        "replayed  run: IPC {:.4} ({} cycles)",
        replayed.ipc, replayed.cycles
    );
    println!(
        "synthetic run: IPC {:.4} ({} cycles)",
        synthetic.ipc, synthetic.cycles
    );
    println!("\n(the streams differ only in per-core seeds; a real user would feed\n converted PIN/Ariel traces through the same three steps)");
}
