//! Record a reference trace, persist it in the FAMT format, and replay
//! it through the full system — the path a user with real application
//! traces (PIN, Ariel, perf-mem) would take.
//!
//! ```sh
//! cargo run --release -p fam-examples --bin trace_replay
//! ```

use deact::{Scheme, System, SystemConfig};
use fam_workloads::{trace, Workload};

fn main() {
    let cfg = SystemConfig::paper_default()
        .with_scheme(Scheme::DeactN)
        .with_refs_per_core(10_000);
    let workload = Workload::by_name("dc").expect("table3 benchmark");

    // 1. Record: capture the exact per-core streams a live run would
    //    draw (same seeds, same order) into a FAMT v2 file — records
    //    are rank-tagged and round-robin interleaved, so each core's
    //    subsequence stays in program order.
    let path = std::env::temp_dir().join(format!("deact-example-{}.famt", std::process::id()));
    let mut streams = System::synthetic_streams(&cfg, &workload);
    let records = trace::record_streams(
        std::io::BufWriter::new(std::fs::File::create(&path).expect("create trace file")),
        &mut streams,
        cfg.refs_per_core,
    )
    .expect("encode trace");
    let wire_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "recorded {} records ({} cores x {} refs, {} KB on disk)",
        records,
        cfg.nodes * cfg.cores_per_node,
        cfg.refs_per_core,
        wire_bytes / 1024
    );

    // 2. Replay from disk through the full DeACT-N system. The file is
    //    streamed through a bounded chunk buffer — memory use does not
    //    grow with trace length — and the report is bit-identical to
    //    the live synthetic run on every engine and thread count.
    let replayed = System::with_streams(
        cfg,
        "dc",
        trace::replay_streams(&path, cfg.nodes, cfg.cores_per_node).expect("open trace"),
    )
    .try_run_parallel(2)
    .expect("replayed run completes");
    let synthetic = System::new(cfg, &workload).run();
    println!(
        "replayed  run: IPC {:.4} ({} cycles)",
        replayed.ipc, replayed.cycles
    );
    println!(
        "synthetic run: IPC {:.4} ({} cycles)",
        synthetic.ipc, synthetic.cycles
    );
    assert_eq!(replayed, synthetic, "record -> replay must be lossless");
    println!("bit-identical: the trace round trip is lossless");
    std::fs::remove_file(&path).ok();
    println!("\n(a real user would convert PIN/Ariel traces into FAMT and feed\n them through the same `replay_streams` path — see DESIGN.md §6.8)");
}
