//! # DeACT — decoupled access control and address translation for
//! fabric-attached memory
//!
//! A full-system reproduction of *"DeACT: Architecture-Aware Virtual
//! Memory Support for Fabric Attached Memory Systems"* (HPCA 2021).
//!
//! FAM systems pool memory behind a fabric and share it between
//! compute nodes, which forces a second, *system-level* translation
//! step so that a buggy or malicious node cannot reach other tenants'
//! pages. Doing that step entirely at a System Translation Unit
//! (I-FAM) is secure but slow; exposing raw FAM addresses to node OSes
//! (E-FAM) is fast but insecure. DeACT's observation is that the two
//! halves of the system-level step have different trust requirements:
//!
//! * **translation** (node address → FAM address) needs no trust —
//!   a wrong or forged translation is caught later — so it can be
//!   cached *unverified* in each node's local DRAM, with huge capacity;
//! * **access control** must stay off-node, but its metadata is tiny
//!   (16 bits/page) and extremely cacheable at the STU once it no
//!   longer shares cache space with translations (Fig. 8).
//!
//! This crate assembles the whole system out of the workspace
//! substrates and implements the paper's four schemes end to end:
//!
//! * [`FamTranslator`] — the node-side translator of Fig. 7 with its
//!   in-DRAM translation cache and outstanding-mapping list;
//! * [`Scheme`] — E-FAM, I-FAM, DeACT-W, DeACT-N (Table I);
//! * [`SystemConfig`] — Table II's configuration, with builders for
//!   every sensitivity axis the paper sweeps;
//! * [`System`] / [`run_benchmark`] — the simulation driver;
//! * [`RunReport`] / [`FamTraffic`] — every quantity Figs. 3–16 plot.
//!
//! # Quickstart
//!
//! ```
//! use deact::{run_benchmark, Scheme, SystemConfig};
//!
//! let cfg = SystemConfig::paper_default().with_refs_per_core(500);
//! let efam = run_benchmark("mcf", cfg.with_scheme(Scheme::EFam));
//! let ifam = run_benchmark("mcf", cfg.with_scheme(Scheme::IFam));
//! let deact = run_benchmark("mcf", cfg.with_scheme(Scheme::DeactN));
//! // The paper's headline: DeACT recovers most of I-FAM's loss.
//! assert!(deact.ipc >= ifam.ipc * 0.9);
//! assert!(efam.ipc > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod error;
mod metrics;
pub mod node;
mod scheme;
mod system;
mod translator;

pub use config::SystemConfig;
pub use error::SimError;
// The tracing vocabulary types cross this crate's public API
// (`SystemConfig::with_trace`, `RunReport::latency`,
// `System::tracer`), so re-export them for downstream convenience.
pub use fam_sim::{LatencyBreakdown, RequestId, Stage, TraceConfig, TraceEvent, Tracer, Track};
pub use metrics::{
    AuditCheck, AuditReport, DegradationReport, FamTraffic, FaultRecovery, RunReport,
};
pub use scheme::Scheme;
pub use system::{run_benchmark, try_run_benchmark, try_run_benchmark_threads, System};
pub use translator::{
    FamTranslator, OutstandingMappingList, RetryConfig, RetryOutcome, RetryState, TranslatorStats,
};
