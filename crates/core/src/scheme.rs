//! The virtual-memory schemes compared in the paper.

use std::fmt;

use fam_stu::StuOrganization;

/// A FAM virtual-memory scheme (Table I and Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Exposed FAM: nodes see raw FAM addresses; fast but insecure and
    /// needs OS changes (Fig. 2a).
    EFam,
    /// Indirect FAM: two-level translation entirely at the STU; secure
    /// and transparent but slow (Fig. 2b).
    IFam,
    /// DeACT with way-level contiguous ACM caching (Fig. 8b).
    DeactW,
    /// DeACT with non-contiguous sub-way ACM caching (Fig. 8c).
    DeactN,
}

impl Scheme {
    /// All schemes, in the order the paper's figures plot them.
    pub const ALL: [Scheme; 4] = [Scheme::EFam, Scheme::IFam, Scheme::DeactW, Scheme::DeactN];

    /// Short name as used in figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::EFam => "E-FAM",
            Scheme::IFam => "I-FAM",
            Scheme::DeactW => "DeACT-W",
            Scheme::DeactN => "DeACT-N",
        }
    }

    /// Whether the scheme is one of the two DeACT variants.
    pub fn is_deact(self) -> bool {
        matches!(self, Scheme::DeactW | Scheme::DeactN)
    }

    /// Table I, "Security": whether system-level access control vets
    /// every FAM access off-node.
    pub fn is_secure(self) -> bool {
        !matches!(self, Scheme::EFam)
    }

    /// Table I, "Avoid OS Changes": whether nodes run unmodified OSes.
    pub fn avoids_os_changes(self) -> bool {
        !matches!(self, Scheme::EFam)
    }

    /// Table I, "Performance": whether translation overheads stay near
    /// native (the paper's ✓/✗ column).
    pub fn has_good_performance(self) -> bool {
        !matches!(self, Scheme::IFam)
    }

    /// The STU cache organisation the scheme uses. `None` for E-FAM,
    /// which has no STU at all.
    pub fn stu_organization(self) -> Option<StuOrganization> {
        match self {
            Scheme::EFam => None,
            Scheme::IFam => Some(StuOrganization::IFam),
            Scheme::DeactW => Some(StuOrganization::DeactW),
            Scheme::DeactN => Some(StuOrganization::DeactN),
        }
    }

    /// Whether the node memory controller hosts a FAM translator with
    /// an in-DRAM translation cache (Fig. 6).
    pub fn has_fam_translator(self) -> bool {
        self.is_deact()
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows() {
        // Table I verbatim.
        assert!(Scheme::EFam.has_good_performance());
        assert!(!Scheme::EFam.avoids_os_changes());
        assert!(!Scheme::EFam.is_secure());

        assert!(!Scheme::IFam.has_good_performance());
        assert!(Scheme::IFam.avoids_os_changes());
        assert!(Scheme::IFam.is_secure());

        for deact in [Scheme::DeactW, Scheme::DeactN] {
            assert!(deact.has_good_performance());
            assert!(deact.avoids_os_changes());
            assert!(deact.is_secure());
        }
    }

    #[test]
    fn stu_organizations_line_up() {
        assert_eq!(Scheme::EFam.stu_organization(), None);
        assert_eq!(Scheme::IFam.stu_organization(), Some(StuOrganization::IFam));
        assert_eq!(
            Scheme::DeactW.stu_organization(),
            Some(StuOrganization::DeactW)
        );
        assert_eq!(
            Scheme::DeactN.stu_organization(),
            Some(StuOrganization::DeactN)
        );
    }

    #[test]
    fn only_deact_has_translator() {
        assert!(!Scheme::EFam.has_fam_translator());
        assert!(!Scheme::IFam.has_fam_translator());
        assert!(Scheme::DeactW.has_fam_translator());
        assert!(Scheme::DeactN.has_fam_translator());
    }

    #[test]
    fn names_and_order() {
        let names: Vec<&str> = Scheme::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["E-FAM", "I-FAM", "DeACT-W", "DeACT-N"]);
        assert_eq!(Scheme::DeactN.to_string(), "DeACT-N");
    }
}
