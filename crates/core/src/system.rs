//! The full-system model and simulation driver.

use std::collections::BTreeMap;

use fam_broker::{AccessKind, BrokerConfig, MemoryBroker, PageRelocation, Quarantine};
use fam_fabric::packet::{Packet, PacketKind, RESPONSE_BYTES};
use fam_fabric::{traverse_split, Fabric, FabricTiming};
use fam_mem::{MemOpKind, NvmModel};
use fam_sim::profile::{self, PhaseId};
use fam_sim::{
    Cycle, Duration, FabricFault, FaultInjector, FreeList, IndexedMinHeap, PersistentFault,
    RequestId, Resource, Stage, TraceEvent, Tracer, Track, WindowSample,
};
use fam_stu::Stu;
use fam_vm::{NodeId, Pte, VirtAddr, WalkAccess, PAGE_BYTES};
use fam_workloads::{MemRef, RefStream, TraceGenerator, Workload};

use crate::error::SimError;
use crate::metrics::{
    AuditCheck, AuditReport, DegradationReport, FamTraffic, FaultRecovery, RunReport,
};
use crate::node::{CoreState, Node, FAM_KEY_PAGE};
use crate::translator::{RetryOutcome, RetryState};
use crate::{Scheme, SystemConfig};

/// A complete FAM system under one scheme: nodes, fabric, STUs, the
/// FAM device and the memory broker (Fig. 6 writ large).
///
/// # Examples
///
/// ```
/// use deact::{Scheme, System, SystemConfig};
/// use fam_workloads::Workload;
///
/// let cfg = SystemConfig::paper_default()
///     .with_scheme(Scheme::DeactN)
///     .with_refs_per_core(200);
/// let mut sys = System::new(cfg, &Workload::by_name("astar").unwrap());
/// let report = sys.run();
/// assert!(report.ipc > 0.0);
/// ```
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    workload_name: String,
    nodes: Vec<Node>,
    stus: Vec<Stu>,
    /// Per-STU FAM-PTW availability: the walker handles one walk at a
    /// time, so concurrent misses queue — the first-order reason
    /// I-FAM collapses on translation-hostile workloads.
    walker_free: Vec<Cycle>,
    fabric: Fabric,
    /// One device model per FAM module; pages interleave across them.
    nvm: Vec<NvmModel>,
    broker: MemoryBroker,
    router: Duration,
    stu_lookup: Duration,
    fault_latency: Duration,
    traffic: FamTraffic,
    /// Deterministic fault injection; a disabled injector costs one
    /// branch per FAM round trip and nothing else.
    injector: FaultInjector,
    /// Response-side recovery accounting (the injected-fault counters
    /// come from the injector itself at report time).
    recovery: FaultRecovery,
    /// Reusable wire-frame buffer for the fault injector's corruption
    /// path, so injected frames don't allocate a fresh `Vec` each.
    frame_scratch: Vec<u8>,
    /// Request-lifecycle tracing; like the injector, a disabled tracer
    /// costs one branch per event site and nothing else.
    tracer: Tracer,
    /// The FAM pages a scheduled persistent fault will destroy,
    /// precomputed from the config ([`Quarantine::None`] when no
    /// persistent fault is scheduled). Membership is pure arithmetic,
    /// so the strike check costs one compare per FAM round trip.
    pending_quarantine: Quarantine,
    /// Whether the broker-led recovery protocol has already run — the
    /// escalation state machine's Recovering → Degraded edge is
    /// one-shot.
    persistent_handled: bool,
    /// What the permanent failure cost (all-zero until one strikes).
    degradation: DegradationReport,
    /// Where each quarantined FAM page's data went: `Some(new)` for a
    /// page the broker evacuated, `None` for destroyed data. Fed by the
    /// recovery protocol, consumed by the degraded-mode redirect and
    /// the E-FAM lazy PTE heal.
    moved: BTreeMap<u64, Option<u64>>,
    /// `(node, npa_page) → old FAM page` for mappings the recovery
    /// protocol removed because the data was destroyed — the first
    /// re-walk of one of these is a poisoned access, not an ordinary
    /// first touch.
    lost: BTreeMap<(NodeId, u64), u64>,
    /// References retired by [`System::try_run_parallel`]'s node-local
    /// phase — the engine's parallel coverage. Diagnostics only; never
    /// part of the [`PartialEq`]-visible report (reports are
    /// engine-independent).
    local_phase_refs: u64,
    /// References retired by the sequential engine's fused fast path
    /// ([`System::try_run`]) without touching the scheduler heap.
    /// Feeds the report's coverage diagnostic; like
    /// `local_phase_refs`, engine-dependent and excluded from report
    /// equality.
    fast_path_refs: u64,
    /// FAM-bound references retired inside the parallel phase under a
    /// per-epoch module grant ([`System::plan_epoch`]) instead of the
    /// sequential commit. Diagnostics only, like `local_phase_refs`.
    fam_phase_refs: u64,
    /// Per-module count of epochs in which the leader's shard actually
    /// drove the module's port and device timeline — how often each
    /// independently-owned NVM timeline left the sequential commit
    /// path.
    module_grant_epochs: Vec<u64>,
    /// Recycled page-walk access buffers: a node-level walk plans into
    /// one of these instead of allocating a fresh vector per walk.
    walk_bufs: FreeList<Vec<WalkAccess>>,
}

impl System {
    /// Builds a system running `workload` on every core.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (see
    /// [`SystemConfig::validate`]).
    pub fn new(config: SystemConfig, workload: &Workload) -> System {
        let streams = System::synthetic_streams(&config, workload);
        System::with_streams(config, workload.name, streams)
    }

    /// The per-core synthetic reference streams [`System::new`] runs:
    /// one generator per core, seeded from the config seed and the
    /// core's global rank. Public so `deact-sim record` (and the
    /// replay tests) can draw *exactly* the stream a live run would
    /// execute — record-then-replay is bit-identical because both
    /// paths start from this function.
    pub fn synthetic_streams(config: &SystemConfig, workload: &Workload) -> Vec<Vec<RefStream>> {
        (0..config.nodes)
            .map(|n| {
                (0..config.cores_per_node)
                    .map(|c| {
                        let seed = config
                            .seed
                            .wrapping_mul(0x9E37_79B9)
                            .wrapping_add((n * 64 + c) as u64);
                        RefStream::from(TraceGenerator::new(
                            *workload,
                            fam_workloads::VA_BASE + ((c as u64) << 40),
                            seed,
                        ))
                    })
                    .collect()
            })
            .collect()
    }

    /// Builds a system whose cores replay recorded traces instead of
    /// running the synthetic generators — one trace per core, one
    /// inner vector per node (see [`fam_workloads::trace`]).
    ///
    /// # Panics
    ///
    /// Panics if the trace matrix does not match `nodes ×
    /// cores_per_node`, or on degenerate configurations.
    pub fn from_traces(config: SystemConfig, label: &str, traces: Vec<Vec<Vec<MemRef>>>) -> System {
        assert_eq!(traces.len(), config.nodes, "one trace set per node");
        let streams = traces
            .into_iter()
            .map(|node_traces| {
                node_traces
                    .into_iter()
                    .map(|t| RefStream::from(fam_workloads::TraceReplay::new(t)))
                    .collect()
            })
            .collect();
        System::with_streams(config, label, streams)
    }

    /// Builds a system from explicit per-core reference streams.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (see
    /// [`SystemConfig::validate`]) or a mis-shaped stream matrix.
    pub fn with_streams(config: SystemConfig, label: &str, streams: Vec<Vec<RefStream>>) -> System {
        config.validate();
        assert_eq!(streams.len(), config.nodes, "one stream set per node");
        let freq = config.frequency();
        let mut broker = MemoryBroker::new(BrokerConfig {
            fam_bytes: config.fam_bytes,
            acm_width: config.acm_width,
            max_nodes: config.nodes,
            seed: config.seed,
        });
        let mut nodes: Vec<Node> = streams
            .into_iter()
            .enumerate()
            .map(|(i, node_streams)| Node::new(&config, node_streams, &mut broker, i))
            .collect();
        if config.shared_segment_pages > 0 {
            let members: Vec<(fam_vm::NodeId, fam_vm::PtFlags, u64)> = nodes
                .iter()
                .map(|n| (n.id, fam_vm::PtFlags::rw(), crate::node::FAM_ZONE_PAGE))
                .collect();
            let segment = broker
                .share_segment(config.shared_segment_pages, &members)
                .expect("a 1 GB region is reserved for sharing");
            for node in &mut nodes {
                node.map_shared_segment(segment.first_page, segment.pages);
            }
        }
        let stus = if config.scheme == Scheme::EFam {
            Vec::new()
        } else {
            (0..config.nodes)
                .map(|_| Stu::with_ptw_entries(config.stu_config(), config.stu_ptw_entries))
                .collect()
        };
        System {
            workload_name: label.to_string(),
            nodes,
            stus,
            walker_free: vec![Cycle::ZERO; config.nodes],
            fabric: Fabric::new(freq, config.fabric, config.nodes, config.fam_modules),
            nvm: (0..config.fam_modules)
                .map(|_| NvmModel::new(freq, config.nvm))
                .collect(),
            broker,
            router: freq.ns_to_cycles(config.router_ns),
            stu_lookup: Duration(config.stu_lookup_cycles),
            fault_latency: freq.ns_to_cycles(config.fault_ns),
            traffic: FamTraffic::default(),
            injector: FaultInjector::new(config.fault_injection),
            recovery: FaultRecovery::default(),
            frame_scratch: Vec::with_capacity(fam_fabric::packet::PACKET_BYTES),
            tracer: Tracer::new(config.trace, config.nodes),
            pending_quarantine: match config.fault_injection.persistent {
                None => Quarantine::None,
                Some(schedule) => match schedule.fault {
                    PersistentFault::NodeDead { module }
                    | PersistentFault::LinkSevered { module } => Quarantine::Module {
                        index: module,
                        stride: config.fam_modules,
                    },
                    PersistentFault::MediaFailed { first_page, pages } => {
                        Quarantine::Range { first_page, pages }
                    }
                },
            },
            persistent_handled: false,
            degradation: DegradationReport::default(),
            moved: BTreeMap::new(),
            lost: BTreeMap::new(),
            local_phase_refs: 0,
            fast_path_refs: 0,
            fam_phase_refs: 0,
            module_grant_epochs: vec![0; config.fam_modules],
            walk_bufs: FreeList::new(),
            config,
        }
    }

    /// References the parallel engine retired in its node-local phase
    /// (zero after a sequential run) — the fraction of the run that
    /// escaped the sequential commit phase, and so the ceiling on
    /// intra-run speedup. Deterministic and thread-count invariant.
    pub fn local_phase_refs(&self) -> u64 {
        self.local_phase_refs
    }

    /// References the sequential engine retired on its fused fast path
    /// (zero after [`System::try_run_exact`]). Together with
    /// [`System::local_phase_refs`] this is the run's fast-path
    /// coverage — how much of the work never touched the scheduler
    /// heap.
    pub fn fast_path_refs(&self) -> u64 {
        self.fast_path_refs
    }

    /// The configuration in force.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The memory broker (for inspection and shared-segment setup).
    pub fn broker_mut(&mut self) -> &mut MemoryBroker {
        &mut self.broker
    }

    /// The per-node STUs (empty for E-FAM).
    pub fn stus(&self) -> &[Stu] {
        &self.stus
    }

    /// The tracer (events, latency breakdowns, windowed time series).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// One-line summary of contention internals, for diagnostics.
    pub fn contention_summary(&self) -> String {
        format!(
            "nvm_stalls={} nvm_reads={} nvm_writes={} fabric_traversals={} core_stalls={:?}",
            self.nvm.iter().map(NvmModel::admission_stalls).sum::<u64>(),
            self.nvm.iter().map(NvmModel::reads).sum::<u64>(),
            self.nvm.iter().map(NvmModel::writes).sum::<u64>(),
            self.fabric.traversals(),
            self.nodes[0]
                .cores
                .iter()
                .map(|c| c.window.stalls())
                .collect::<Vec<_>>()
        )
    }

    /// Runs every core to `refs_per_core` references and reports.
    ///
    /// # Panics
    ///
    /// Panics if the run cannot complete (see [`System::try_run`] for
    /// the non-panicking form).
    pub fn run(&mut self) -> RunReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs every core to `refs_per_core` references and reports,
    /// surfacing failures as a typed [`SimError`] instead of a panic.
    ///
    /// This is the fused fast-path/slow-path engine. References that
    /// provably touch node-local state only — TLB hit, and an LLC hit
    /// or a DRAM-backed miss whose predicted victim is also DRAM-backed
    /// ([`probe_local`], the same classifier the parallel engine
    /// trusts) — retire in a per-node sweep with no scheduler-heap
    /// pop/push and no per-reference allocation. Only FAM-bound,
    /// TLB-missing, or faulting references fall through to the exact
    /// event-driven scheduler ([`System::try_run_exact`]).
    ///
    /// Reports are bit-identical to the exact engine (a property the
    /// integration tests pin down) because:
    ///
    /// - a locally-retired reference reads and writes nothing outside
    ///   its node (TLB recency, cache state, node DRAM timeline, core
    ///   bookkeeping), so retiring it early commutes with every
    ///   reference of every other node;
    /// - within a node, the sweep retires fronts in the same greedy
    ///   `(ready, core)` order the exact scheduler uses, and stops at
    ///   the first reference it cannot prove local;
    /// - everything else drains through the heap in the exact global
    ///   `(ready, slot)` order, and after each sweep every front the
    ///   heap can pop is slow-classified, so the pop order equals the
    ///   exact engine's order restricted to slow references;
    /// - while a scheduled persistent fault is armed but unhandled, the
    ///   fast path is disabled outright (recovery's broadcast shootdown
    ///   mutates *other* nodes' TLBs — state the probe reads), exactly
    ///   mirroring the parallel engine's recovery gate.
    ///
    /// Request ids are the one observable that differs (they are drawn
    /// in retirement order, not exact-schedule order); ids never
    /// influence timing, so only trace-ring contents may differ — the
    /// same caveat [`System::try_run_parallel`] already carries.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FamExhausted`] when the broker cannot
    /// demand-map another FAM page for the workload.
    pub fn try_run(&mut self) -> Result<RunReport, SimError> {
        let refs = self.config.refs_per_core;
        let cores_per_node = self.config.cores_per_node;
        let mut ready_queue: IndexedMinHeap<(Cycle, usize)> =
            IndexedMinHeap::new(self.nodes.len() * cores_per_node);
        for n in 0..self.nodes.len() {
            for c in 0..self.nodes[n].cores.len() {
                if self.nodes[n].cores[c].refs_done < refs {
                    self.stage_ref(n, c);
                }
            }
        }
        let armed = self.injector.persistent_schedule().is_some();
        let mut fast_ok = !armed || self.persistent_handled;
        if fast_ok {
            for n in 0..self.nodes.len() {
                self.fast_sweep_node(n, &mut ready_queue, refs, Cycle(u64::MAX));
            }
        } else {
            for n in 0..self.nodes.len() {
                for c in 0..self.nodes[n].cores.len() {
                    if let Some(p) = self.nodes[n].cores[c].pending {
                        let slot = n * cores_per_node + c;
                        ready_queue.insert(slot, (p.ready, slot));
                    }
                }
            }
        }
        // Slow path: execute in ready order so the shared-resource
        // timelines advance in time order. (Out-of-order processing
        // would let a far-future request push a resource's timeline
        // past everyone else's present.)
        loop {
            let popped = {
                let _prof = profile::span(PhaseId::SchedPop);
                ready_queue.pop()
            };
            let Some((slot, _)) = popped else { break };
            let (n, c) = (slot / cores_per_node, slot % cores_per_node);
            self.sim_ref(n, c)?;
            if self.nodes[n].cores[c].refs_done < refs {
                self.stage_ref(n, c);
            }
            if fast_ok {
                // Only node `n`'s probe-relevant state can have changed
                // (cross-node mutation happens solely in the gated
                // recovery shootdown), so only node `n` needs
                // re-sweeping.
                self.fast_sweep_node(n, &mut ready_queue, refs, Cycle(u64::MAX));
            } else if !armed || self.persistent_handled {
                // Recovery just completed: the fast path is safe from
                // here on. Sweep everything once to catch up.
                fast_ok = true;
                for m in 0..self.nodes.len() {
                    self.fast_sweep_node(m, &mut ready_queue, refs, Cycle(u64::MAX));
                }
            } else if let Some(p) = self.nodes[n].cores[c].pending {
                let slot = n * cores_per_node + c;
                ready_queue.insert(slot, (p.ready, slot));
            }
        }
        Ok(self.report())
    }

    /// The preserved exact engine: every reference goes through the
    /// event-driven scheduler — an indexed min-heap keyed on
    /// `(ready_cycle, node, core)`, one pop plus one re-insert per
    /// reference — with no fast path. The explicit `(node, core)`
    /// tie-break in the key reproduces the reference scan's first-wins
    /// order among equal ready times, and a core's predicted ready time
    /// depends only on its own front-end and outstanding window, so
    /// only the core that just executed needs re-keying: this engine
    /// and [`System::try_run_scan`] execute the same references in the
    /// same order and their reports are bit-identical.
    ///
    /// Kept as the executable specification [`System::try_run`]'s fast
    /// path is differentially tested against; new callers want
    /// [`System::try_run`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FamExhausted`] when the broker cannot
    /// demand-map another FAM page for the workload.
    pub fn try_run_exact(&mut self) -> Result<RunReport, SimError> {
        let refs = self.config.refs_per_core;
        let cores_per_node = self.config.cores_per_node;
        let mut ready_queue: IndexedMinHeap<(Cycle, usize)> =
            IndexedMinHeap::new(self.nodes.len() * cores_per_node);
        for n in 0..self.nodes.len() {
            for c in 0..self.nodes[n].cores.len() {
                if self.nodes[n].cores[c].refs_done < refs {
                    self.stage_ref(n, c);
                    let slot = n * cores_per_node + c;
                    ready_queue.insert(slot, (self.staged_ready(n, c), slot));
                }
            }
        }
        loop {
            let popped = {
                let _prof = profile::span(PhaseId::SchedPop);
                ready_queue.pop()
            };
            let Some((slot, _)) = popped else { break };
            let (n, c) = (slot / cores_per_node, slot % cores_per_node);
            self.sim_ref(n, c)?;
            if self.nodes[n].cores[c].refs_done < refs {
                self.stage_ref(n, c);
                ready_queue.insert(slot, (self.staged_ready(n, c), slot));
            }
        }
        Ok(self.report())
    }

    /// Retires node `n`'s provably-local front references below
    /// `horizon` ([`node_local_phase`] with the system tracer), then
    /// re-synchronizes the node's scheduler-heap entries: a staged
    /// pending below the horizon is (re)keyed, everything else is
    /// removed. The sweep is the fast path's only interaction with the
    /// heap — retired references never enter it.
    fn fast_sweep_node(
        &mut self,
        n: usize,
        queue: &mut IndexedMinHeap<(Cycle, usize)>,
        refs: u64,
        horizon: Cycle,
    ) {
        let _prof = profile::span(PhaseId::FastpathRetire);
        let issue_width = u64::from(self.config.issue_width);
        let node = &mut self.nodes[n];
        let retired = node_local_phase(n, node, &mut self.tracer, horizon, issue_width, refs);
        self.fast_path_refs += retired;
        let cores_per_node = self.config.cores_per_node;
        for c in 0..self.nodes[n].cores.len() {
            let slot = n * cores_per_node + c;
            match self.nodes[n].cores[c].pending {
                Some(p) if p.ready < horizon => {
                    let key = (p.ready, slot);
                    match queue.key_of(slot) {
                        Some(k) if *k == key => {}
                        Some(_) => queue.update(slot, key),
                        None => queue.insert(slot, key),
                    }
                }
                _ => {
                    queue.remove(slot);
                }
            }
        }
    }

    /// The reference scheduler the seed shipped: stages every idle
    /// core, then rescans all nodes × cores for the earliest pending
    /// request — O(total_cores) per reference. Kept as the executable
    /// specification the heap scheduler is tested against; new callers
    /// want [`System::try_run`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FamExhausted`] when the broker cannot
    /// demand-map another FAM page for the workload.
    pub fn try_run_scan(&mut self) -> Result<RunReport, SimError> {
        let refs = self.config.refs_per_core;
        loop {
            for n in 0..self.nodes.len() {
                for c in 0..self.nodes[n].cores.len() {
                    let core = &self.nodes[n].cores[c];
                    if core.pending.is_none() && core.refs_done < refs {
                        self.stage_ref(n, c);
                    }
                }
            }
            let mut best: Option<(usize, usize, Cycle)> = None;
            for (n, node) in self.nodes.iter().enumerate() {
                for (c, core) in node.cores.iter().enumerate() {
                    if let Some(p) = core.pending {
                        if best.is_none_or(|(_, _, bt)| p.ready < bt) {
                            best = Some((n, c, p.ready));
                        }
                    }
                }
            }
            let Some((n, c, _)) = best else { break };
            self.sim_ref(n, c)?;
        }
        Ok(self.report())
    }

    /// Runs the system with intra-run parallelism and reports,
    /// bit-identically to [`System::try_run`] — a property the
    /// integration tests pin down across schemes, node counts, fault
    /// injection and tracing. `threads <= 1` (and single-node systems,
    /// which have no cross-node work to overlap) delegate to the
    /// sequential engine outright.
    ///
    /// The clock advances in epochs bounded by a conservative
    /// lookahead: any cross-node influence rides the fabric, so no
    /// reference starting at or after `epoch_start + fabric_latency`
    /// can affect one starting before it. Each epoch runs two phases:
    ///
    /// 1. **Sharded retirement (parallel)** — every node with work
    ///    below the horizon retires, on its own thread, the front
    ///    references it can prove safe. Provably node-local references
    ///    (TLB hit, and either an LLC hit or a DRAM-backed miss whose
    ///    predicted victim is also DRAM-backed) always qualify. On
    ///    fault-free runs, FAM-bound references qualify too on the
    ///    epoch's *leader* node — the holder of the globally smallest
    ///    front key, to which a per-epoch plan
    ///    ([`System::plan_epoch`]) grants exclusive ownership of every
    ///    FAM module — when the whole translation is decidable
    ///    node-side (STU/ACM hit): the shard then drives the per-node
    ///    fabric link, the module ports, and the NVM timelines
    ///    itself, for keys strictly below the second-smallest front
    ///    key (the cross-node barrier). A node *blocks* at its first
    ///    unprovable reference, preserving per-node program order.
    ///    Timing events land in a per-node shard tracer with a
    ///    disjoint request-id range.
    /// 2. **Shared-resource commit (sequential)** — everything still
    ///    staged below the horizon (ungranted fabric/STU/NVM work, the
    ///    broker, recovery, and any reference behind them) drains in
    ///    exactly the global `(ready, slot)` order the sequential
    ///    scheduler would have chosen.
    ///
    /// Bit-identity holds because locally-retired references commute
    /// with everything outside their node, shard-FAM references
    /// acquire their granted resources in keys strictly below anything
    /// another node will ever stage (the barrier) and in locally
    /// nondecreasing key order (so every shared timeline sees exactly
    /// the sequential acquisition order), the commit phase is a
    /// faithful replica of the sequential loop, and merged shard
    /// statistics accumulate commutatively. Request ids are the one
    /// observable that differs (shard streams draw from offset bases);
    /// ids never influence timing, so reports are identical — only
    /// trace-ring contents may differ.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FamExhausted`] when the broker cannot
    /// demand-map another FAM page for the workload.
    pub fn try_run_parallel(&mut self, threads: usize) -> Result<RunReport, SimError> {
        if threads <= 1 || self.nodes.len() < 2 {
            return self.try_run();
        }
        // Oversubscribing the host only adds handoff latency: extra
        // workers time-slice one another without retiring anything
        // sooner. Clamp the worker *pool* to what the machine can run,
        // but not the engine choice: the epoch engine's schedule is
        // pool-size invariant, so a small host still exercises — and
        // the test suite still pins — the exact sharded commit order a
        // many-core host uses.
        let host = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let pool = threads.min(host);
        let refs = self.config.refs_per_core;
        let cores_per_node = self.config.cores_per_node;
        let issue_width = u64::from(self.config.issue_width);
        // Shard-FAM admission is planned only on fault-free runs: every
        // injector arm (drops, corruption, staleness, stalls, the
        // persistent strike) consumes deterministic injector state in
        // global reference order, which only the sequential commit
        // replays faithfully.
        let fam_ok = !self.injector.is_enabled();
        // Per-node shard tracers with disjoint request-id ranges, so
        // ids stay unique without synchronizing on the main tracer.
        let mut shard_tracers: Vec<Tracer> = (0..self.nodes.len())
            .map(|n| {
                Tracer::new(self.config.trace, self.config.nodes)
                    .with_request_base(((n as u64) + 1) << 48)
            })
            .collect();
        for n in 0..self.nodes.len() {
            for c in 0..self.nodes[n].cores.len() {
                if self.nodes[n].cores[c].refs_done < refs {
                    self.stage_ref(n, c);
                }
            }
        }
        // Correctness needs only L >= 1 (the commit phase replays the
        // sequential order below the horizon regardless); the fabric
        // latency just makes epochs usefully wide. Widening beyond one
        // fabric hop amortizes the per-epoch spawn/barrier cost over
        // more locally-retired references — the measured fix for the
        // fine-epoch handoff overhead that kept speedup below 1.0.
        const EPOCH_LOOKAHEADS: u64 = 8;
        let lookahead = Duration(self.fabric.latency().0.max(1) * EPOCH_LOOKAHEADS);
        let mut commit_queue: IndexedMinHeap<(Cycle, usize)> =
            IndexedMinHeap::new(self.nodes.len() * cores_per_node);
        // Adaptive spawn gate: spawning is only worth its fixed cost
        // when the local phase retires enough references per spawned
        // epoch. Track the measured yield and fall back to the inline
        // path for the rest of the run once it proves too thin. The
        // gate changes execution strategy only — phase results are
        // identical either way — so bit-identity is unaffected.
        const SPAWN_PROBE_EPOCHS: u64 = 8;
        const MIN_LOCAL_REFS_PER_SPAWN: u64 = 64;
        let mut spawned_epochs = 0u64;
        let mut spawned_refs = 0u64;
        let mut spawning_pays = true;
        loop {
            let epoch_start = self
                .nodes
                .iter()
                .flat_map(|node| node.cores.iter())
                .filter_map(|core| core.pending.map(|p| p.ready))
                .min();
            let Some(epoch_start) = epoch_start else {
                break;
            };
            let horizon = epoch_start + lookahead;

            // Phase 1: node-local retirement, one thread per active
            // node (the map is deterministic — each node mutates only
            // its own state and shard, so thread scheduling is
            // invisible). Spawning is gated on a cheap pre-check:
            // epochs with fewer than two nodes holding provably-local
            // front work — the common case on translation-hostile
            // workloads — run the phase inline, because spawning costs
            // more than the phase itself.
            // Recovery safety gate: while a scheduled persistent fault
            // is armed but not yet handled, the commit phase may run
            // the broadcast shootdown, which mutates *other* cores'
            // TLBs — state the node-local phase reads. Until the
            // recovery protocol has run, nothing retires locally, so
            // every reference flows through the commit phase's exact
            // sequential order (the gate is evaluated once per epoch
            // and is thread-count invariant, so bit-identity holds).
            let recovery_pending =
                self.injector.persistent_schedule().is_some() && !self.persistent_handled;
            if !recovery_pending {
                // Epoch plan: the leader node (global-minimum front
                // key) gets every FAM module, bounded by the
                // second-best front key — computed sequentially so the
                // grant assignment is thread-count invariant.
                let plan = if fam_ok {
                    Some(self.plan_epoch(horizon))
                } else {
                    None
                };
                let mut admissible_nodes = 0usize;
                if spawning_pays {
                    match &plan {
                        Some(p) => admissible_nodes = p.admissible_nodes,
                        None => {
                            for node in &self.nodes {
                                if has_local_front(node, horizon) {
                                    admissible_nodes += 1;
                                    if admissible_nodes >= 2 {
                                        break;
                                    }
                                }
                            }
                        }
                    }
                }
                let phase_threads = if admissible_nodes >= 2 { pool } else { 1 };
                let params = ShardParams {
                    scheme: self.config.scheme,
                    router: self.router,
                    stu_lookup: self.stu_lookup,
                    timing: self.fabric.timing(),
                    skip_read_checks: self.config.skip_read_checks,
                    translation_cache_lru: self.config.translation_cache_lru,
                    cores_per_node,
                    modules: self.nvm.len(),
                    issue_width,
                    refs,
                    horizon,
                };
                // Field-split borrows: each shard owns its node, its
                // shard tracer, its STU, its fabric link, and — for
                // this epoch's granted modules only — the module's
                // port and NVM timeline. The broker is shared
                // read-only (verification never mutates it).
                let (epoch_local, epoch_fam, epoch_used) = {
                    let broker = &self.broker;
                    let modules = self.nvm.len();
                    let (links, ports) = self.fabric.split_mut();
                    let mut port_slots: Vec<Option<&mut Resource>> =
                        ports.iter_mut().map(Some).collect();
                    let mut nvm_slots: Vec<Option<&mut NvmModel>> =
                        self.nvm.iter_mut().map(Some).collect();
                    let mut stu_slots: Vec<Option<&mut Stu>> =
                        self.stus.iter_mut().map(Some).collect();
                    let mut items: Vec<Shard> = Vec::new();
                    for (n, ((node, link), tracer)) in self
                        .nodes
                        .iter_mut()
                        .zip(links.iter_mut())
                        .zip(shard_tracers.iter_mut())
                        .enumerate()
                    {
                        let has_front = node
                            .cores
                            .iter()
                            .any(|core| core.pending.is_some_and(|p| p.ready < horizon));
                        if !has_front {
                            continue;
                        }
                        let is_leader = plan.as_ref().is_some_and(|p| p.leader == Some(n));
                        let (my_ports, my_nvms) = if is_leader {
                            (
                                port_slots.iter_mut().map(Option::take).collect(),
                                nvm_slots.iter_mut().map(Option::take).collect(),
                            )
                        } else {
                            (Vec::new(), Vec::new())
                        };
                        items.push(Shard {
                            n,
                            node,
                            tracer,
                            stu: stu_slots.get_mut(n).and_then(Option::take),
                            link,
                            ports: my_ports,
                            nvms: my_nvms,
                            barrier: if is_leader {
                                plan.as_ref().and_then(|p| p.barrier)
                            } else {
                                None
                            },
                            fam: is_leader,
                            used_modules: if is_leader {
                                vec![false; modules]
                            } else {
                                Vec::new()
                            },
                            traffic: FamTraffic::default(),
                            traversals: 0,
                            local_retired: 0,
                            fam_retired: 0,
                        });
                    }
                    fam_sim::scoped_map_mut(phase_threads, &mut items, |_, shard| {
                        let _prof = profile::span(PhaseId::ParallelLocal);
                        shard_phase(shard, broker, &params);
                    });
                    let mut traffic = FamTraffic::default();
                    let mut traversals = 0u64;
                    let mut local = 0u64;
                    let mut fam = 0u64;
                    let mut used = vec![false; modules];
                    for s in &items {
                        traffic.merge(&s.traffic);
                        traversals += s.traversals;
                        local += s.local_retired;
                        fam += s.fam_retired;
                        for (m, &u) in s.used_modules.iter().enumerate() {
                            used[m] |= u;
                        }
                    }
                    drop(items);
                    self.traffic.merge(&traffic);
                    self.fabric.add_traversals(traversals);
                    (local, fam, used)
                };
                self.local_phase_refs += epoch_local;
                self.fam_phase_refs += epoch_fam;
                for (m, &used) in epoch_used.iter().enumerate() {
                    if used {
                        self.module_grant_epochs[m] += 1;
                    }
                }
                if phase_threads > 1 {
                    spawned_epochs += 1;
                    // A FAM retirement replaces a full scheduler
                    // dispatch (translation twin + fabric + device),
                    // worth roughly an order of magnitude more saved
                    // commit work than a local one — weight it so
                    // FAM-heavy epochs keep the spawn gate open.
                    spawned_refs += epoch_local + 8 * epoch_fam;
                    if spawned_epochs >= SPAWN_PROBE_EPOCHS
                        && spawned_refs < MIN_LOCAL_REFS_PER_SPAWN * spawned_epochs
                    {
                        spawning_pays = false;
                    }
                }
            }

            // Phase 2: sequential commit of everything left below the
            // horizon, in global (ready, slot) order.
            let _prof = profile::span(PhaseId::ParallelCommit);
            debug_assert!(commit_queue.is_empty());
            for n in 0..self.nodes.len() {
                for c in 0..self.nodes[n].cores.len() {
                    if let Some(p) = self.nodes[n].cores[c].pending {
                        if p.ready < horizon {
                            let slot = n * cores_per_node + c;
                            commit_queue.insert(slot, (p.ready, slot));
                        }
                    }
                }
            }
            loop {
                let popped = {
                    let _prof = profile::span(PhaseId::SchedPop);
                    commit_queue.pop()
                };
                let Some((slot, _)) = popped else { break };
                let (n, c) = (slot / cores_per_node, slot % cores_per_node);
                self.sim_ref(n, c)?;
                if self.nodes[n].cores[c].refs_done < refs {
                    self.stage_ref(n, c);
                }
                // Drain the node's local tail behind the committed
                // reference on the sequential fast path (heap-free,
                // horizon-bounded) instead of heaping every one —
                // unless recovery is still pending, in which case the
                // same gate as the local phase applies.
                if self.injector.persistent_schedule().is_none() || self.persistent_handled {
                    self.fast_sweep_node(n, &mut commit_queue, refs, horizon);
                } else if let Some(p) = self.nodes[n].cores[c].pending {
                    if p.ready < horizon {
                        commit_queue.insert(slot, (p.ready, slot));
                    }
                }
            }
        }
        for shard in &shard_tracers {
            self.tracer.absorb(shard);
        }
        Ok(self.report())
    }

    /// Plans one epoch of shard-FAM admission. The plan is a
    /// **leader-only** grant:
    ///
    /// - **Leader.** The node holding the globally smallest front key.
    ///   Per-core predicted-ready keys are monotone (restaging never
    ///   moves a core's key backwards), so every reference any *other*
    ///   node will ever issue — this epoch or later — carries a key no
    ///   smaller than that node's current front, hence no smaller than
    ///   the second-best front. Only the leader can ever hold keys
    ///   strictly below every other node's future keys; granting
    ///   shared FAM resources to anyone else is provably wasted — the
    ///   non-leader's shard would stall at its barrier before touching
    ///   them (its own front *is* at or above the leader's front).
    /// - **Barrier.** The second-best front key. The leader's shard
    ///   may acquire shared resources only with keys strictly below
    ///   it, so every module port and device timeline still sees its
    ///   acquisitions in exact global `(ready, slot)` order. `None`
    ///   (no other node has pending work, so no other node will ever
    ///   stage another key) leaves the leader unbounded.
    /// - **Grants.** The leader owns *every* module's port and device
    ///   timeline for the epoch. Pages interleave across modules, so a
    ///   partial grant would block the leader's very next reference on
    ///   an ungranted module.
    ///
    /// The plan is a prediction, not a promise: [`shard_phase`]
    /// re-probes every reference at execution time, so a stale
    /// prediction costs coverage, never correctness.
    fn plan_epoch(&self, horizon: Cycle) -> EpochPlan {
        let _prof = profile::span(PhaseId::ShardScan);
        let cores_per_node = self.config.cores_per_node;
        let modules = self.nvm.len();
        // Best and second-best front keys over all nodes.
        let mut best: Option<(usize, (Cycle, usize))> = None;
        let mut second: Option<(Cycle, usize)> = None;
        for (n, node) in self.nodes.iter().enumerate() {
            let Some((ready, c)) = front_of(node) else {
                continue;
            };
            let key = (ready, n * cores_per_node + c);
            match best {
                None => best = Some((n, key)),
                Some((_, bk)) if key < bk => {
                    second = Some(bk);
                    best = Some((n, key));
                }
                Some(_) => {
                    if second.is_none_or(|s| key < s) {
                        second = Some(key);
                    }
                }
            }
        }
        let leader = best.map(|(n, _)| n);
        // Spawn-worthiness: count nodes whose *front* reference the
        // parallel phase can provably retire. Probing just the front
        // (not every staged reference) keeps the plan O(nodes); the
        // shard loop re-probes everything at execution time anyway.
        let mut admissible_nodes = 0usize;
        for (n, node) in self.nodes.iter().enumerate() {
            let Some((ready, c)) = front_of(node) else {
                continue;
            };
            if ready >= horizon {
                continue;
            }
            let p = node.cores[c].pending.expect("front reference is staged");
            let admit = if probe_local(node, c, &p).is_some() {
                true
            } else if leader == Some(n)
                && second.is_none_or(|b| (ready, n * cores_per_node + c) < b)
            {
                probe_fam(
                    node,
                    self.stus.get(n),
                    &self.broker,
                    self.config.scheme,
                    self.config.skip_read_checks,
                    modules,
                    c,
                    &p,
                )
                .is_some()
            } else {
                false
            };
            if admit {
                admissible_nodes += 1;
            }
        }
        EpochPlan {
            leader,
            barrier: second,
            admissible_nodes,
        }
    }

    /// Panicking wrapper over [`System::try_run_parallel`], mirroring
    /// [`System::run`].
    ///
    /// # Panics
    ///
    /// Panics if the run cannot complete.
    pub fn run_parallel(&mut self, threads: usize) -> RunReport {
        self.try_run_parallel(threads)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Predicted start of the reference just staged on `(n, c)`.
    fn staged_ready(&self, n: usize, c: usize) -> Cycle {
        self.nodes[n].cores[c]
            .pending
            .expect("staged_ready follows stage_ref")
            .ready
    }

    /// Draws the next reference of core `c` and predicts its start.
    fn stage_ref(&mut self, n: usize, c: usize) {
        let issue_width = u64::from(self.config.issue_width);
        let req = self.tracer.next_request();
        stage_core(&mut self.nodes[n].cores[c], issue_width, req);
    }

    /// Simulates one staged reference of core `c` on node `n` end to
    /// end.
    fn sim_ref(&mut self, n: usize, c: usize) -> Result<(), SimError> {
        let _prof = profile::span(PhaseId::SchedDispatch);
        let (r, req, t) = {
            let core = &mut self.nodes[n].cores[c];
            let p = core
                .pending
                .take()
                .expect("sim_ref runs only on staged cores");
            let start = core.window.admit(p.start_req);
            core.issue_clock = start;
            (p.mem, p.req, start)
        };
        // Time-series snapshot: traffic/recovery counters before the
        // reference, so their deltas can be attributed to its window.
        let window_before = if self.tracer.wants_windows() {
            Some((
                self.traffic.at_total(),
                self.traffic.total(),
                self.recovery.retries,
                self.recovery.recovered,
            ))
        } else {
            None
        };

        // Node-level translation (TLB → node page-table walk).
        let (pte, t) = self.translate(n, c, r.vaddr, t, req)?;
        let phys_byte = pte.target_page * PAGE_BYTES + r.vaddr.offset();
        let line = phys_byte / 64;

        // Data caches.
        let lookup = self.nodes[n].hierarchy.access(c, line, r.is_write);
        let mut completion = t + lookup.latency;
        if lookup.level.is_none() {
            let kind = if r.is_write {
                MemOpKind::Write
            } else {
                MemOpKind::Read
            };
            completion = if self.nodes[n].is_fam_page(pte.target_page) {
                match self.config.scheme {
                    Scheme::EFam => {
                        if r.is_write {
                            self.traffic.data_writes += 1;
                        } else {
                            self.traffic.data_reads += 1;
                        }
                        let fam_byte = phys_byte - FAM_KEY_PAGE * PAGE_BYTES;
                        self.fam_round_trip(n, completion, fam_byte, kind, req)?
                    }
                    Scheme::IFam => self.ifam_fam_access(
                        n,
                        completion,
                        pte.target_page,
                        r.vaddr.offset(),
                        kind,
                        req,
                    )?,
                    Scheme::DeactW | Scheme::DeactN => self.deact_fam_access(
                        n,
                        completion,
                        pte.target_page,
                        r.vaddr.offset(),
                        kind,
                        req,
                    )?,
                }
            } else if r.is_write {
                self.nodes[n].dram.write(completion, phys_byte)
            } else {
                self.nodes[n].dram.access(completion, phys_byte)
            };
        }
        if let Some(wb_line) = lookup.writeback {
            self.writeback(n, wb_line, completion);
        }

        let core = &mut self.nodes[n].cores[c];
        core.window.record_completion(completion);
        core.last_mem_completion = completion;
        core.refs_done += 1;
        core.finish = core.finish.max(completion);
        if let Some((at_before, total_before, retries_before, recovered_before)) = window_before {
            self.tracer.sample(
                completion,
                WindowSample {
                    instructions: u64::from(r.gap_instrs) + 1,
                    fam_at: self.traffic.at_total() - at_before,
                    fam_total: self.traffic.total() - total_before,
                    retries: self.recovery.retries - retries_before,
                    recovered: self.recovery.recovered - recovered_before,
                },
            );
        }
        Ok(())
    }

    /// Node-level translation: TLB, then a page-table walk whose entry
    /// reads replay through the data caches and the right memory.
    fn translate(
        &mut self,
        n: usize,
        c: usize,
        vaddr: VirtAddr,
        t: Cycle,
        req: RequestId,
    ) -> Result<(Pte, Cycle), SimError> {
        let vpage = vaddr.vpage();
        let (_, tlb_latency, hit) = self.nodes[n].cores[c].tlb.lookup(vpage);
        let start = t;
        let mut t = t + tlb_latency;
        if self.tracer.is_enabled() {
            self.tracer.record(TraceEvent {
                req,
                stage: Stage::TlbLookup,
                track: Track::Node(n as u16),
                start,
                end: t,
            });
        }
        if let Some(pte) = hit {
            return Ok((pte, t));
        }
        // Recycled walk buffer: plans land in a pooled vector instead
        // of a fresh allocation per walk. On early `?` returns the
        // buffer is dropped rather than recycled — harmless, the pool
        // refills on demand.
        let mut walk_buf = self.walk_bufs.get();
        loop {
            let mapping = {
                let node = &mut self.nodes[n];
                fam_vm::PageWalker::plan_into(
                    &node.page_table,
                    Some(&mut node.cores[c].ptw),
                    vpage,
                    &mut walk_buf,
                )
            };
            match mapping {
                None => {
                    // Node-level page fault: the OS installs a mapping.
                    if self.tracer.is_enabled() {
                        self.tracer.record(TraceEvent {
                            req,
                            stage: Stage::Fault,
                            track: Track::Node(n as u16),
                            start: t,
                            end: t + self.fault_latency,
                        });
                    }
                    t += self.fault_latency;
                    let node = &mut self.nodes[n];
                    node.map_page(vaddr, &mut self.broker)
                        .map_err(|source| SimError::FamExhausted { node: n, source })?;
                }
                Some(mut pte) => {
                    let walk_start = t;
                    for acc in &walk_buf {
                        t = self.pt_step_access(n, c, acc.entry_addr, t, req)?;
                    }
                    if self.tracer.is_enabled() && !walk_buf.is_empty() {
                        self.tracer.record(TraceEvent {
                            req,
                            stage: Stage::PtWalk,
                            track: Track::Node(n as u16),
                            start: walk_start,
                            end: t,
                        });
                    }
                    // E-FAM lazy PTE heal: a walk surfacing a PTE that
                    // names a quarantined FAM key repairs it in place
                    // (the data was evacuated) or unmaps and refaults
                    // (the data is gone — a counted poisoned access).
                    if self.persistent_handled
                        && self.config.scheme == Scheme::EFam
                        && pte.target_page >= FAM_KEY_PAGE
                    {
                        match self.moved.get(&(pte.target_page - FAM_KEY_PAGE)).copied() {
                            Some(Some(new_fam)) => {
                                let mut alloc = |_level: usize| -> u64 {
                                    unreachable!("rewriting an existing leaf allocates nothing")
                                };
                                self.nodes[n].page_table.map(
                                    vpage,
                                    FAM_KEY_PAGE + new_fam,
                                    pte.flags,
                                    &mut alloc,
                                );
                                pte.target_page = FAM_KEY_PAGE + new_fam;
                                self.degradation.pte_rewrites += 1;
                            }
                            Some(None) => {
                                self.degradation.poisoned_accesses += 1;
                                if self.config.halt_on_data_loss {
                                    return Err(SimError::DataLoss {
                                        node: n,
                                        fam_page: pte.target_page - FAM_KEY_PAGE,
                                    });
                                }
                                self.nodes[n].page_table.unmap(vpage);
                                continue;
                            }
                            None => {}
                        }
                    }
                    self.nodes[n].cores[c].tlb.fill(vpage, pte);
                    self.walk_bufs.put(walk_buf);
                    return Ok((pte, t));
                }
            }
        }
    }

    /// One page-table entry read: probes the caches, then local DRAM
    /// or (E-FAM only) the FAM.
    fn pt_step_access(
        &mut self,
        n: usize,
        c: usize,
        entry_addr: u64,
        t: Cycle,
        req: RequestId,
    ) -> Result<Cycle, SimError> {
        let lookup = self.nodes[n].hierarchy.access(c, entry_addr / 64, false);
        let mut t = t + lookup.latency;
        if lookup.level.is_none() {
            let page = entry_addr / PAGE_BYTES;
            t = if self.nodes[n].is_fam_page(page) {
                debug_assert_eq!(
                    self.config.scheme,
                    Scheme::EFam,
                    "only E-FAM places node PT pages in FAM"
                );
                self.traffic.at_pte_reads += 1;
                let fam_byte = entry_addr - FAM_KEY_PAGE * PAGE_BYTES;
                self.fam_round_trip(n, t, fam_byte, MemOpKind::Read, req)?
            } else {
                self.nodes[n].dram.access(t, entry_addr)
            };
        }
        if let Some(wb_line) = lookup.writeback {
            self.writeback(n, wb_line, t);
        }
        Ok(t)
    }

    /// Selects the FAM module backing an address (page-interleaved).
    fn module_of(&self, fam_byte: u64) -> usize {
        module_index(fam_byte, self.nvm.len())
    }

    /// Whether a scheduled persistent fault destroys the page holding
    /// `fam_byte`. Only the usable data region is in the blast zone:
    /// the Fig. 5 metadata regions (ACM, bitmaps) are broker-authored
    /// and modeled as rebuilt from the broker's mirror for free.
    fn persistent_strikes(&self, fam_byte: u64) -> bool {
        let page = fam_byte / PAGE_BYTES;
        page < self.broker.layout().usable_pages() && self.pending_quarantine.contains(page)
    }

    /// A node↔FAM round trip for one block: fabric there, device
    /// service, fabric back. Every FAM request in every scheme funnels
    /// through here, so this is where injected fabric faults strike
    /// and where the retry/timeout/backoff machine recovers from them.
    /// A *persistent* fault on the target page never heals under retry
    /// and escalates into broker-led recovery instead
    /// ([`System::persistent_path`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DataLoss`] when the access reads destroyed
    /// data and the config sets `halt_on_data_loss`.
    fn fam_round_trip(
        &mut self,
        n: usize,
        t: Cycle,
        fam_byte: u64,
        kind: MemOpKind,
        req: RequestId,
    ) -> Result<Cycle, SimError> {
        if !self.injector.is_enabled() {
            return Ok(self.fam_round_trip_clean(n, t, fam_byte, kind, req));
        }
        self.injector.note_fam_op();
        if self.injector.persistent_active().is_some() && self.persistent_strikes(fam_byte) {
            return self.persistent_path(n, t, fam_byte, kind, req);
        }
        let mut t = t;
        let mut state = RetryState::for_request(req);
        loop {
            // Scheduled link-down window: the requester sits at the
            // serializer until the link returns.
            let up = self.injector.link_up_at(t);
            self.recovery.link_down_wait_cycles += (up - t).0;
            if self.tracer.is_enabled() && up > t {
                self.tracer.record(TraceEvent {
                    req,
                    stage: Stage::Fault,
                    track: Track::Fabric(n as u16),
                    start: t,
                    end: up,
                });
            }
            t = up;
            match self.injector.fabric_fault() {
                None => {
                    let done = self.fam_round_trip_clean(n, t, fam_byte, kind, req);
                    if state.attempts() > 0 {
                        self.recovery.recovered += 1;
                    }
                    return Ok(done);
                }
                Some(FabricFault::Drop) => {
                    // The frame left the node (the link was occupied)
                    // and vanished; the requester burns the timeout.
                    let module = self.module_of(fam_byte);
                    self.fabric.node_to_fam(t, n, module);
                    self.recovery.timeouts += 1;
                    let expiry = t + Duration(self.config.retry.timeout_cycles);
                    if self.tracer.is_enabled() {
                        self.tracer.record(TraceEvent {
                            req,
                            stage: Stage::Retry,
                            track: Track::Fabric(n as u16),
                            start: t,
                            end: expiry,
                        });
                    }
                    t = expiry;
                }
                Some(FabricFault::Corrupt) => {
                    // Corrupt the *real* wire frame and let the CRC
                    // catch it — detection is earned, not assumed. The
                    // FAM side answers with a corrupt-NACK, costing a
                    // full fabric round trip with no device service.
                    self.fill_corrupted_frame(n, fam_byte, kind, req);
                    match Packet::decode(&self.frame_scratch) {
                        Err(_) => {
                            self.recovery.nacks_corrupt += 1;
                            let module = self.module_of(fam_byte);
                            let arrival = self.fabric.node_to_fam(t, n, module);
                            let back = self.fabric.fam_to_node(
                                arrival,
                                n,
                                module,
                                fam_fabric::packet::RESPONSE_BYTES as u64,
                            );
                            if self.tracer.is_enabled() {
                                self.tracer.record(TraceEvent {
                                    req,
                                    stage: Stage::Retry,
                                    track: Track::Fabric(n as u16),
                                    start: t,
                                    end: back,
                                });
                            }
                            t = back;
                        }
                        Ok(_) => {
                            // Unreachable with CRC-16 and a single-byte
                            // flip, but honesty demands the branch: an
                            // undetected corruption is a delivery.
                            return Ok(self.fam_round_trip_clean(n, t, fam_byte, kind, req));
                        }
                    }
                }
            }
            match state.on_fault(&self.config.retry) {
                RetryOutcome::Retry { backoff } => {
                    self.recovery.retries += 1;
                    self.recovery.backoff_cycles += backoff.0;
                    if self.tracer.is_enabled() {
                        self.tracer.record(TraceEvent {
                            req,
                            stage: Stage::Backoff,
                            track: Track::Fabric(n as u16),
                            start: t,
                            end: t + backoff,
                        });
                    }
                    t += backoff;
                }
                RetryOutcome::GiveUp => {
                    // Graceful degradation: the access is counted as
                    // fatal (a real system would raise a poison/MCE)
                    // but still completes so the run finishes and the
                    // damage is measurable instead of a crash.
                    self.recovery.fatal += 1;
                    return Ok(self.fam_round_trip_clean(n, t, fam_byte, kind, req));
                }
            }
        }
    }

    /// One fabric round trip ending in an unreachable-NACK from the
    /// failed endpoint's management plane (the data path is gone, the
    /// enclosure still answers).
    fn unreachable_nack(&mut self, n: usize, t: Cycle, module: usize, req: RequestId) -> Cycle {
        let arrival = self.fabric.node_to_fam(t, n, module);
        let back = self
            .fabric
            .fam_to_node(arrival, n, module, RESPONSE_BYTES as u64);
        self.recovery.nacks_unreachable += 1;
        if self.tracer.is_enabled() {
            self.tracer.record(TraceEvent {
                req,
                stage: Stage::Retry,
                track: Track::Fabric(n as u16),
                start: t,
                end: back,
            });
        }
        back
    }

    /// The persistent-fault arm of [`System::fam_round_trip`]: the
    /// escalation state machine.
    ///
    /// * **Suspect** — the first access into the blast zone burns its
    ///   full retry budget against unreachable-NACKs (a persistent
    ///   fault never heals under retry).
    /// * **Recovering** — budget exhausted: escalate into the one-shot
    ///   broker-led recovery protocol
    ///   ([`System::recover_from_persistent`]).
    /// * **Degraded** — the system is consistent again. The escalating
    ///   access (and any straggler still naming a quarantined page)
    ///   either redirects to the page's evacuated home or fast-fails
    ///   with a single unreachable-NACK as a counted poisoned access.
    fn persistent_path(
        &mut self,
        n: usize,
        t: Cycle,
        fam_byte: u64,
        kind: MemOpKind,
        req: RequestId,
    ) -> Result<Cycle, SimError> {
        let mut t = t;
        let module = self.module_of(fam_byte);
        if !self.persistent_handled {
            let mut state = RetryState::for_request(req);
            loop {
                t = self.unreachable_nack(n, t, module, req);
                match state.on_fault(&self.config.retry) {
                    RetryOutcome::Retry { backoff } => {
                        self.recovery.retries += 1;
                        self.recovery.backoff_cycles += backoff.0;
                        if self.tracer.is_enabled() {
                            self.tracer.record(TraceEvent {
                                req,
                                stage: Stage::Backoff,
                                track: Track::Fabric(n as u16),
                                start: t,
                                end: t + backoff,
                            });
                        }
                        t += backoff;
                    }
                    RetryOutcome::GiveUp => break,
                }
            }
            t = self.recover_from_persistent(n, t, req)?;
        }
        let fam_page = fam_byte / PAGE_BYTES;
        match self.moved.get(&fam_page).copied().flatten() {
            Some(new_fam) => {
                // The data survived on another module; the requester
                // re-issues against the evacuated home.
                Ok(self.fam_round_trip_clean(
                    n,
                    t,
                    new_fam * PAGE_BYTES + fam_byte % PAGE_BYTES,
                    kind,
                    req,
                ))
            }
            None => {
                // Destroyed data (or a mapping recovery never knew
                // about): fast-fail with one NACK and poison the
                // access instead of panicking.
                let back = self.unreachable_nack(n, t, module, req);
                self.degradation.poisoned_accesses += 1;
                if self.config.halt_on_data_loss {
                    return Err(SimError::DataLoss { node: n, fam_page });
                }
                Ok(back)
            }
        }
    }

    /// The broker-led recovery protocol, run exactly once per run, on
    /// the simulated clock of the access that escalated:
    ///
    /// 1. Quarantine the blast zone in the broker's [`FamLayout`] and
    ///    evacuate still-reachable pages (link-severed modules keep a
    ///    management path; dead nodes and failed media lose their
    ///    data), charging the copy at the configured evacuation
    ///    bandwidth.
    /// 2. Broadcast a translation shootdown to every surviving node:
    ///    stale TLB entries (E-FAM), STU and FAM-PTW cache entries, and
    ///    in-DRAM translation-cache entries naming quarantined pages
    ///    are invalidated, with per-entry latency accounting.
    /// 3. Rebuild node-table pages that lived on the failed hardware
    ///    (the broker authored every entry, so tables are always
    ///    rebuildable).
    ///
    /// [`FamLayout`]: fam_broker::FamLayout
    fn recover_from_persistent(
        &mut self,
        n: usize,
        t: Cycle,
        req: RequestId,
    ) -> Result<Cycle, SimError> {
        self.persistent_handled = true;
        let started = t;
        self.degradation.recovery_started_cycle = t.0;
        let fault = self
            .injector
            .persistent_active()
            .expect("recovery runs only on an active persistent fault");
        let (evac, relocations) = self
            .broker
            .quarantine_and_evacuate(self.pending_quarantine, fault.evacuable())
            .map_err(|source| SimError::FamExhausted { node: n, source })?;

        // Evacuation rides the management path at a configured
        // bandwidth; the protocol is stop-the-world on the simulated
        // clock (every node waits for the broker's all-clear).
        let evacuation_cycles = evac
            .bytes_copied
            .div_ceil(self.config.evacuation_bytes_per_cycle.max(1));
        let mut t = t + Duration(evacuation_cycles);

        for r in &relocations {
            self.moved.entry(r.old_fam_page).or_insert(r.new_fam_page);
            if r.new_fam_page.is_none() {
                self.lost.insert((r.node, r.npa_page), r.old_fam_page);
            }
        }
        let shootdown_start = t;
        t += self.shootdown_all_nodes(&relocations);
        if self.tracer.is_enabled() {
            self.tracer.record(TraceEvent {
                req,
                stage: Stage::Fault,
                track: Track::Fabric(n as u16),
                start: started,
                end: t,
            });
        }

        let d = &mut self.degradation;
        d.pages_quarantined = evac.capacity_pages_lost;
        d.pages_evacuated = evac.pages_evacuated;
        d.pages_lost = evac.pages_lost;
        d.table_pages_rebuilt += evac.table_pages_rebuilt;
        d.evacuation_cycles = evacuation_cycles;
        d.shootdown_cycles = (t - shootdown_start).0;
        d.capacity_pages_remaining = self.broker.layout().usable_pages() - evac.capacity_pages_lost;
        d.recovery_cycles = (t - started).0;
        Ok(t)
    }

    /// The broadcast translation shootdown: every surviving node drops
    /// cached translations that name a quarantined FAM page. Returns
    /// the simulated cost (one management round trip per node plus one
    /// cycle per invalidated entry, serialized on the broker's
    /// management port).
    fn shootdown_all_nodes(&mut self, relocations: &[PageRelocation]) -> Duration {
        let _prof = profile::span(PhaseId::Shootdown);
        let mut invalidations = 0u64;
        let mut cost = Duration(0);
        for m in 0..self.nodes.len() {
            let node_id = self.nodes[m].id;
            let mut node_invalidations = 0u64;
            match self.config.scheme {
                Scheme::EFam => {
                    // E-FAM PTEs embed FAM keys, so stale entries sit in
                    // the per-core TLBs; interior table pages the broker
                    // re-homed are repointed eagerly (the lazy walk-time
                    // heal covers leaf PTEs).
                    let quarantine = self.pending_quarantine;
                    for core in &mut self.nodes[m].cores {
                        node_invalidations += core.tlb.invalidate_stale(|pte| {
                            pte.target_page >= FAM_KEY_PAGE
                                && quarantine.contains(pte.target_page - FAM_KEY_PAGE)
                        }) as u64;
                        core.ptw.flush();
                    }
                    for r in relocations {
                        if r.node != node_id {
                            continue;
                        }
                        if let Some(new_fam) = r.new_fam_page {
                            if self.nodes[m].page_table.relocate_table_page(
                                (FAM_KEY_PAGE + r.old_fam_page) * PAGE_BYTES,
                                (FAM_KEY_PAGE + new_fam) * PAGE_BYTES,
                            ) {
                                self.degradation.table_pages_rebuilt += 1;
                            }
                        }
                    }
                }
                Scheme::IFam => {
                    // Coupled STU entries are keyed by the owning node's
                    // NPA pages.
                    let keys = relocations
                        .iter()
                        .filter(|r| r.node == node_id)
                        .map(|r| r.npa_page);
                    node_invalidations += self.stus[m].shootdown(keys);
                }
                Scheme::DeactW | Scheme::DeactN => {
                    // ACM-organized STU entries are keyed by FAM page
                    // (any node's STU may cache any page), and the
                    // in-DRAM translation cache by this node's NPAs.
                    let keys = relocations.iter().map(|r| r.old_fam_page);
                    node_invalidations += self.stus[m].shootdown(keys);
                    let tr = self.nodes[m]
                        .translator
                        .as_mut()
                        .expect("DeACT nodes have a translator");
                    for r in relocations {
                        if r.node == node_id && tr.handle_stale_nack(r.npa_page) {
                            node_invalidations += 1;
                        }
                    }
                }
            }
            invalidations += node_invalidations;
            cost = cost + self.router + self.router + Duration(node_invalidations);
        }
        self.degradation.shootdown_invalidations = invalidations;
        cost
    }

    /// Encodes the request as its wire packet into the per-`System`
    /// scratch buffer and applies the injector's chosen corruption to
    /// it — no allocation per injected frame.
    fn fill_corrupted_frame(&mut self, n: usize, fam_byte: u64, kind: MemOpKind, req: RequestId) {
        let packet = Packet::for_request(
            match kind {
                MemOpKind::Read => PacketKind::Read,
                MemOpKind::Write => PacketKind::Write,
            },
            self.nodes[n].id,
            fam_byte,
            true,
            req,
        );
        packet.encode_into(&mut self.frame_scratch);
        let (pos, mask) = self.injector.corruption_site(self.frame_scratch.len());
        self.frame_scratch[pos] ^= mask;
    }

    /// The fault-free round trip: fabric there, device service,
    /// fabric back.
    fn fam_round_trip_clean(
        &mut self,
        n: usize,
        t: Cycle,
        fam_byte: u64,
        kind: MemOpKind,
        req: RequestId,
    ) -> Cycle {
        let module = self.module_of(fam_byte);
        let arrival = self.fabric.node_to_fam(t, n, module);
        let done = self.nvm[module].access(arrival, fam_byte, kind);
        let ret = self.fabric.fam_to_node(done, n, module, 64);
        if self.tracer.is_enabled() {
            self.tracer.record(TraceEvent {
                req,
                stage: Stage::FabricSend,
                track: Track::Fabric(n as u16),
                start: t,
                end: arrival,
            });
            self.tracer.record(TraceEvent {
                req,
                stage: Stage::NvmAccess,
                track: Track::Nvm(module as u16),
                start: arrival,
                end: done,
            });
            self.tracer.record(TraceEvent {
                req,
                stage: Stage::FabricRecv,
                track: Track::Fabric(n as u16),
                start: done,
                end: ret,
            });
        }
        ret
    }

    /// Walks the system page table at the STU, serialized on the
    /// node's single FAM-PTW unit; every entry read is a FAM round
    /// trip counted as AT traffic.
    fn stu_walk(
        &mut self,
        n: usize,
        t: Cycle,
        npa_page: u64,
        req: RequestId,
    ) -> Result<(u64, Cycle), SimError> {
        let node_id = self.nodes[n].id;
        let mut t = t;
        // Injected STU stall: the unit is briefly unresponsive (queue
        // backpressure, firmware hiccup) before the walk begins.
        if self.injector.is_enabled() {
            if let Some(stall) = self.injector.stu_stall() {
                self.recovery.stu_stall_cycles += stall.0;
                if self.tracer.is_enabled() {
                    self.tracer.record(TraceEvent {
                        req,
                        stage: Stage::Fault,
                        track: Track::Stu(n as u16),
                        start: t,
                        end: t + stall,
                    });
                }
                t += stall;
            }
        }
        loop {
            match self.stus[n].walk_system_table(&self.broker, node_id, npa_page, req) {
                Ok((fam_page, plan)) => {
                    let start = t.max(self.walker_free[n]);
                    let mut tw = start;
                    for acc in &plan.accesses {
                        self.traffic.at_walk_reads += 1;
                        tw = self.fam_round_trip(n, tw, acc.entry_addr, MemOpKind::Read, req)?;
                    }
                    if self.tracer.is_enabled() && tw > start {
                        self.tracer.record(TraceEvent {
                            req,
                            stage: Stage::StuWalk,
                            track: Track::Stu(n as u16),
                            start,
                            end: tw,
                        });
                    }
                    // A walk whose entry reads escalated into recovery
                    // planned against the pre-recovery table; its
                    // mapping may name a page that no longer exists.
                    // The walker re-walks the (now rewritten) table —
                    // the raced shootdown's retry.
                    if self.persistent_handled && self.persistent_strikes(fam_page * PAGE_BYTES) {
                        t = tw;
                        continue;
                    }
                    self.walker_free[n] = tw;
                    return Ok((fam_page, tw));
                }
                Err(_) => {
                    // A mapping the recovery protocol removed because
                    // its data died with the hardware: the re-walk is a
                    // poisoned access (the refault below hands back a
                    // fresh page, not the lost bytes).
                    if self.persistent_handled {
                        if let Some(old_fam) = self.lost.remove(&(node_id, npa_page)) {
                            self.degradation.poisoned_accesses += 1;
                            if self.config.halt_on_data_loss {
                                return Err(SimError::DataLoss {
                                    node: n,
                                    fam_page: old_fam,
                                });
                            }
                        }
                    }
                    // System-level fault: the STU asks the broker for
                    // a page (§II-C) and retries.
                    if self.tracer.is_enabled() {
                        self.tracer.record(TraceEvent {
                            req,
                            stage: Stage::Fault,
                            track: Track::Stu(n as u16),
                            start: t,
                            end: t + self.fault_latency,
                        });
                    }
                    t += self.fault_latency;
                    self.nodes[n]
                        .system_fault(npa_page, &mut self.broker)
                        .map_err(|source| SimError::FamExhausted { node: n, source })?;
                }
            }
        }
    }

    /// The I-FAM data path (Fig. 2b): every FAM access is translated
    /// *and* verified at the STU.
    fn ifam_fam_access(
        &mut self,
        n: usize,
        t: Cycle,
        npa_page: u64,
        offset: u64,
        kind: MemOpKind,
        req: RequestId,
    ) -> Result<Cycle, SimError> {
        let node_id = self.nodes[n].id;
        let acc_kind = access_kind(kind);
        let lookup_done = t + self.router + self.stu_lookup; // node → STU lookup
        if self.tracer.is_enabled() {
            self.tracer.record(TraceEvent {
                req,
                stage: Stage::StuLookup,
                track: Track::Stu(n as u16),
                start: t,
                end: lookup_done,
            });
        }
        let mut t = lookup_done;
        let fam_page = match self.stus[n].cache_mut().ifam_lookup(npa_page) {
            Some(fam_page) => fam_page,
            None => {
                // Coupled-entry miss: walk serialized at the FAM-PTW
                // (`stu_walk` handles system faults internally), then
                // fill the coupled entry.
                let (fam_page, tw) = self.stu_walk(n, t, npa_page, req)?;
                t = tw;
                self.stus[n].cache_mut().ifam_fill(npa_page, fam_page);
                fam_page
            }
        };
        assert!(
            self.broker.check_access(node_id, fam_page, acc_kind),
            "benign workloads never trip access control"
        );
        match kind {
            MemOpKind::Read => self.traffic.data_reads += 1,
            MemOpKind::Write => self.traffic.data_writes += 1,
        }
        let done = self.fam_round_trip(n, t, fam_page * PAGE_BYTES + offset, kind, req)?;
        Ok(done + self.router) // response back through the router
    }

    /// The DeACT data path (Fig. 6): unverified node-side translation
    /// from the in-DRAM cache, then decoupled verification at the STU.
    fn deact_fam_access(
        &mut self,
        n: usize,
        t: Cycle,
        npa_page: u64,
        offset: u64,
        kind: MemOpKind,
        req: RequestId,
    ) -> Result<Cycle, SimError> {
        let node_id = self.nodes[n].id;
        let acc_kind = access_kind(kind);

        // ① FAM translator: one DRAM set read + parallel tag match.
        let t_in = t;
        let set_addr = self.nodes[n]
            .translator
            .as_ref()
            .expect("DeACT nodes have a translator")
            .dram_addr_of(npa_page);
        let mut t = self.nodes[n].dram.access(t, set_addr) + Duration(1);
        if self.tracer.is_enabled() {
            self.tracer.record(TraceEvent {
                req,
                stage: Stage::TranslationCache,
                track: Track::Node(n as u16),
                start: t_in,
                end: t,
            });
        }

        let mut cached = self.nodes[n]
            .translator
            .as_mut()
            .expect("checked above")
            .lookup(npa_page);
        if self.config.translation_cache_lru {
            // §III-C: LRU means writing back updated recency bits on
            // every access — an extra DRAM write off the critical path.
            self.nodes[n].dram.write(t, set_addr);
        }

        // Injected staleness: the broker remapped this page behind the
        // node's back, so the STU rejects the `V = 1` request with a
        // stale-NACK (the DeACT verification story — unverified cached
        // translations are *allowed* to be wrong, and this is the
        // hardware path that makes that safe). The node invalidates the
        // cached entry and falls back to the full STU walk below.
        let mut stale_nacked = false;
        if cached.is_some() && self.injector.is_enabled() && self.injector.stale_translation() {
            // The doomed pre-translated request travels node → STU and
            // the NACK travels back before the node can react.
            if self.tracer.is_enabled() {
                self.tracer.record(TraceEvent {
                    req,
                    stage: Stage::Fault,
                    track: Track::Stu(n as u16),
                    start: t,
                    end: t + self.router + self.stu_lookup + self.router,
                });
            }
            t += self.router + self.stu_lookup + self.router;
            self.recovery.nacks_stale += 1;
            self.nodes[n]
                .translator
                .as_mut()
                .expect("checked above")
                .handle_stale_nack(npa_page);
            // Invalidation is a read-modify-write of the set's tags.
            self.nodes[n].dram.write(t, set_addr);
            cached = None;
            stale_nacked = true;
        }
        let fam_page = match cached {
            Some(fam_page) => {
                // ③ forward pre-translated with V = 1.
                t += self.router;
                fam_page
            }
            None => {
                // ④ V = 0: the STU walks on our behalf...
                t += self.router;
                let (fam_page, tw) = self.stu_walk(n, t, npa_page, req)?;
                t = tw;
                if stale_nacked {
                    // The reissue-as-unverified walk *is* the retry, and
                    // completing it is the recovery.
                    self.recovery.retries += 1;
                    self.recovery.recovered += 1;
                }
                // ⑤ ...and returns the mapping; the translator updates
                // the in-DRAM cache with a read-modify-write that only
                // occupies the channel (off the critical path).
                let tr = self.nodes[n].translator.as_mut().expect("checked above");
                tr.install(npa_page, fam_page);
                self.nodes[n].dram.access(t, set_addr);
                self.nodes[n].dram.write(t, set_addr);
                fam_page
            }
        };

        // Outstanding-mapping-list bookkeeping (reads expect data
        // responses tagged with FAM addresses).
        if kind == MemOpKind::Read {
            let tr = self.nodes[n].translator.as_mut().expect("checked above");
            tr.oml_mut().register(fam_page, npa_page);
        }

        // Decoupled verification at the STU. Under the §III-A
        // encrypted-memory extension, reads skip verification entirely
        // (a foreign node's ciphertext is useless without its key).
        if !(self.config.skip_read_checks && kind == MemOpKind::Read) {
            let v = self.stus[n].verify(&self.broker, node_id, fam_page, acc_kind, req);
            if self.tracer.is_enabled() {
                self.tracer.record(TraceEvent {
                    req,
                    stage: Stage::StuLookup,
                    track: Track::Stu(n as u16),
                    start: t,
                    end: t + self.stu_lookup,
                });
            }
            t += self.stu_lookup;
            if let Some(acm_addr) = v.acm_fetch_addr {
                let fetch_start = t;
                self.traffic.at_acm_reads += 1;
                t = self.fam_round_trip(n, t, acm_addr, MemOpKind::Read, req)?;
                if let Some(bitmap_addr) = v.bitmap_fetch_addr {
                    self.traffic.at_bitmap_reads += 1;
                    t = self.fam_round_trip(n, t, bitmap_addr, MemOpKind::Read, req)?;
                }
                if self.tracer.is_enabled() {
                    self.tracer.record(TraceEvent {
                        req,
                        stage: Stage::AcmFetch,
                        track: Track::Stu(n as u16),
                        start: fetch_start,
                        end: t,
                    });
                }
            }
            assert!(v.allowed, "benign workloads never trip access control");
        }

        match kind {
            MemOpKind::Read => self.traffic.data_reads += 1,
            MemOpKind::Write => self.traffic.data_writes += 1,
        }
        let done = self.fam_round_trip(n, t, fam_page * PAGE_BYTES + offset, kind, req)?;

        if kind == MemOpKind::Read {
            let tr = self.nodes[n].translator.as_mut().expect("checked above");
            tr.oml_mut().complete(fam_page);
        }
        Ok(done + self.router)
    }

    /// A dirty-line writeback, off the critical path: it occupies the
    /// memory resources at `at` but delays nobody directly.
    fn writeback(&mut self, n: usize, wb_line: u64, at: Cycle) {
        let byte = wb_line * 64;
        let page = byte / PAGE_BYTES;
        if self.nodes[n].is_fam_page(page) {
            let fam_byte = match self.config.scheme {
                Scheme::EFam => byte - FAM_KEY_PAGE * PAGE_BYTES,
                _ => {
                    // The LLC holds node addresses; eviction reuses the
                    // system translation (hardware tags the line), so no
                    // timing charge and no AT traffic. A mapping the
                    // recovery protocol removed has nowhere to land —
                    // the dirty line dies with the hardware it named.
                    let Some(pte) = self.broker.translate(self.nodes[n].id, page) else {
                        if self.persistent_handled {
                            self.degradation.writebacks_dropped += 1;
                        }
                        return;
                    };
                    pte.target_page * PAGE_BYTES + byte % PAGE_BYTES
                }
            };
            // A dirty line still tagged with a quarantined FAM address
            // (E-FAM keys embed the page): the write follows evacuated
            // data to its new home; with the data destroyed it is
            // dropped — the target no longer exists.
            let mut fam_byte = fam_byte;
            if self.injector.is_enabled()
                && self.injector.persistent_active().is_some()
                && self.persistent_strikes(fam_byte)
            {
                match self.moved.get(&(fam_byte / PAGE_BYTES)).copied().flatten() {
                    Some(new_fam) => fam_byte = new_fam * PAGE_BYTES + fam_byte % PAGE_BYTES,
                    None => {
                        self.degradation.writebacks_dropped += 1;
                        return;
                    }
                }
            }
            self.traffic.writebacks += 1;
            let module = self.module_of(fam_byte);
            let arrival = self.fabric.node_to_fam(at, n, module);
            self.nvm[module].access(arrival, fam_byte, MemOpKind::Write);
        } else {
            self.nodes[n].dram.write(at, byte);
        }
    }

    /// Assembles the run report.
    ///
    /// In debug builds every successful run also passes the
    /// end-of-run conservation audit, so the whole test suite doubles
    /// as an invariant checker.
    fn report(&self) -> RunReport {
        #[cfg(debug_assertions)]
        {
            let audit = self.audit();
            debug_assert!(audit.passed(), "conservation audit failed:\n{audit}");
        }
        let instructions: u64 = self.nodes.iter().map(Node::instructions).sum();
        let cycles = self
            .nodes
            .iter()
            .map(Node::finish)
            .max()
            .unwrap_or(Cycle::ZERO)
            .0
            .max(1);
        let mut tlb = fam_sim::stats::Ratio::new();
        for node in &self.nodes {
            for core in &node.cores {
                tlb.merge(core.tlb.stats());
            }
        }
        let mut llc = fam_sim::stats::Ratio::new();
        for node in &self.nodes {
            llc.merge(node.hierarchy.llc_stats());
        }
        let (translation_hit_rate, acm_hit_rate) = match self.config.scheme {
            Scheme::EFam => (None, None),
            Scheme::IFam => {
                let mut acm = fam_sim::stats::Ratio::new();
                for stu in &self.stus {
                    acm.merge(stu.acm_stats());
                }
                (Some(acm.rate()), Some(acm.rate()))
            }
            Scheme::DeactW | Scheme::DeactN => {
                let mut tr = fam_sim::stats::Ratio::new();
                for node in &self.nodes {
                    if let Some(t) = &node.translator {
                        tr.merge(t.hit_ratio());
                    }
                }
                let mut acm = fam_sim::stats::Ratio::new();
                for stu in &self.stus {
                    acm.merge(stu.acm_stats());
                }
                (Some(tr.rate()), Some(acm.rate()))
            }
        };
        RunReport {
            scheme: self.config.scheme,
            workload: self.workload_name.clone(),
            nodes: self.config.nodes,
            cores_per_node: self.config.cores_per_node,
            instructions,
            cycles,
            ipc: instructions as f64 / cycles as f64,
            fam: self.traffic,
            translation_hit_rate,
            acm_hit_rate,
            tlb_hit_rate: tlb.rate(),
            mpki: llc.misses() as f64 / (instructions as f64 / 1000.0),
            dram_reads: self.nodes.iter().map(|n| n.dram.reads()).sum(),
            dram_writes: self.nodes.iter().map(|n| n.dram.writes()).sum(),
            faults: self.nodes.iter().map(|n| n.faults).sum(),
            recovery: self.recovery_report(),
            degradation: self.degradation,
            refs_per_core: self.config.refs_per_core,
            latency: self.tracer.breakdown(),
            fast_path_coverage: {
                let total: u64 = self.nodes.iter().map(|n| n.cores.len() as u64).sum::<u64>()
                    * self.config.refs_per_core;
                if total == 0 {
                    0.0
                } else {
                    (self.fast_path_refs + self.local_phase_refs + self.fam_phase_refs) as f64
                        / total as f64
                }
            },
            parallel_phase_coverage: {
                let total: u64 = self.nodes.iter().map(|n| n.cores.len() as u64).sum::<u64>()
                    * self.config.refs_per_core;
                if total == 0 {
                    0.0
                } else {
                    (self.local_phase_refs + self.fam_phase_refs) as f64 / total as f64
                }
            },
            profile: if profile::is_enabled() {
                profile::take_report()
            } else {
                fam_sim::ProfileReport::default()
            },
        }
    }

    /// Combines the injector's view (what was thrown) with the
    /// system's view (what was done about it).
    fn recovery_report(&self) -> FaultRecovery {
        let mut r = self.recovery;
        let injected = self.injector.stats();
        r.injected_drops = injected.drops.value();
        r.injected_corruptions = injected.corruptions.value();
        r.injected_stale = injected.stale_marks.value();
        r.injected_stu_stalls = injected.stu_stalls.value();
        r
    }

    /// Collects every component's raw counters into one named
    /// [`fam_sim::Registry`] snapshot.
    ///
    /// Names are hierarchical and stable: `node{n}/…` for per-node
    /// state, `nvm{m}/…` per FAM module, `traffic/…` for the
    /// cross-fabric request mix, and `recovery/…` for the fault
    /// ledger. [`System::audit`] consumes this snapshot, and the
    /// `deact-sim audit` subcommand prints it.
    pub fn metrics(&self) -> fam_sim::Registry {
        let mut reg = fam_sim::Registry::new();
        for (n, node) in self.nodes.iter().enumerate() {
            let mut tlb = fam_sim::stats::Ratio::new();
            let mut staged = 0u64;
            let mut refs_done = 0u64;
            let mut replay_wraps = 0u64;
            for core in &node.cores {
                tlb.merge(core.tlb.stats());
                staged = staged.saturating_add(core.staged);
                refs_done = refs_done.saturating_add(core.refs_done);
                replay_wraps = replay_wraps.saturating_add(core.gen.wraps());
            }
            *reg.ratio(&format!("node{n}/tlb")) = tlb;
            reg.counter(&format!("node{n}/staged")).add(staged);
            reg.counter(&format!("node{n}/refs_done")).add(refs_done);
            reg.counter(&format!("node{n}/replay_wraps"))
                .add(replay_wraps);
            reg.counter(&format!("node{n}/faults")).add(node.faults);
            reg.counter(&format!("node{n}/dram_reads"))
                .add(node.dram.reads());
            reg.counter(&format!("node{n}/dram_writes"))
                .add(node.dram.writes());
            *reg.ratio(&format!("node{n}/llc")) = node.hierarchy.llc_stats();
        }
        for (m, nvm) in self.nvm.iter().enumerate() {
            reg.counter(&format!("nvm{m}/reads")).add(nvm.reads());
            reg.counter(&format!("nvm{m}/writes")).add(nvm.writes());
            reg.counter(&format!("nvm{m}/admission_stalls"))
                .add(nvm.admission_stalls());
            reg.counter(&format!("nvm{m}/granted_epochs"))
                .add(self.module_grant_epochs[m]);
        }
        reg.counter("parallel/local_refs")
            .add(self.local_phase_refs);
        reg.counter("parallel/fam_refs").add(self.fam_phase_refs);
        for (s, stu) in self.stus.iter().enumerate() {
            *reg.ratio(&format!("stu{s}/acm")) = stu.acm_stats();
        }
        reg.counter("fabric/traversals")
            .add(self.fabric.traversals());
        let t = &self.traffic;
        reg.counter("traffic/data_reads").add(t.data_reads);
        reg.counter("traffic/data_writes").add(t.data_writes);
        reg.counter("traffic/writebacks").add(t.writebacks);
        reg.counter("traffic/at_pte_reads").add(t.at_pte_reads);
        reg.counter("traffic/at_walk_reads").add(t.at_walk_reads);
        reg.counter("traffic/at_acm_reads").add(t.at_acm_reads);
        reg.counter("traffic/at_bitmap_reads")
            .add(t.at_bitmap_reads);
        let r = self.recovery_report();
        reg.counter("recovery/timeouts").add(r.timeouts);
        reg.counter("recovery/retries").add(r.retries);
        reg.counter("recovery/nacks_corrupt").add(r.nacks_corrupt);
        reg.counter("recovery/nacks_stale").add(r.nacks_stale);
        reg.counter("recovery/nacks_unreachable")
            .add(r.nacks_unreachable);
        reg.counter("recovery/recovered").add(r.recovered);
        reg.counter("recovery/fatal").add(r.fatal);
        reg.counter("recovery/injected_drops").add(r.injected_drops);
        reg.counter("recovery/injected_corruptions")
            .add(r.injected_corruptions);
        reg
    }

    /// End-of-run conservation audit: cross-checks independently
    /// maintained counters against each other through the
    /// [`System::metrics`] registry.
    ///
    /// Invariants checked (each sums over the registry snapshot):
    ///
    /// 1. `refs-conservation` — every staged reference retired
    ///    (poisoned accesses retire through the degraded path, so
    ///    they are *included* in `refs_done`).
    /// 2. `tlb-conservation` — exactly one TLB hierarchy lookup per
    ///    retired reference, on every engine.
    /// 3. `nvm-traffic-balance` — every FAM traffic increment lands
    ///    exactly one NVM access; skipped when a permanent failure is
    ///    scheduled (evacuation copies bypass the traffic ledger).
    /// 4. `fabric-parity` — reads cross the fabric twice and posted
    ///    writebacks once, so `traversals == 2*total - writebacks`;
    ///    skipped when fault injection is enabled (retries and NACKs
    ///    add traversals).
    /// 5. `drop-accounting` — every injected drop was seen as exactly
    ///    one timeout; skipped under permanent failures (a dead
    ///    module times out without injector bookkeeping).
    /// 6. `crc-detection` — CRC-16 catches every injected corruption
    ///    as a corrupt NACK; skipped under permanent failures.
    pub fn audit(&self) -> AuditReport {
        let reg = self.metrics();
        let sum = |suffix: &str| -> u64 {
            (0..self.nodes.len())
                .filter_map(|n| reg.counter_value(&format!("node{n}/{suffix}")))
                .sum()
        };
        let mut checks = Vec::new();
        fn check(
            checks: &mut Vec<AuditCheck>,
            name: &'static str,
            lhs: (&str, u64),
            rhs: (&str, u64),
        ) {
            checks.push(AuditCheck {
                name,
                passed: lhs.1 == rhs.1,
                detail: format!("{} = {} vs {} = {}", lhs.0, lhs.1, rhs.0, rhs.1),
            });
        }
        fn skip(checks: &mut Vec<AuditCheck>, name: &'static str, why: &str) {
            checks.push(AuditCheck {
                name,
                passed: true,
                detail: format!("skipped: {why}"),
            });
        }

        let refs_done = sum("refs_done");
        check(
            &mut checks,
            "refs-conservation",
            ("staged", sum("staged")),
            ("refs_done", refs_done),
        );
        let tlb_lookups: u64 = (0..self.nodes.len())
            .filter_map(|n| reg.ratio_value(&format!("node{n}/tlb")))
            .map(|r| r.total())
            .sum();
        check(
            &mut checks,
            "tlb-conservation",
            ("tlb lookups", tlb_lookups),
            ("refs_done", refs_done),
        );

        let traffic_total = self.traffic.total();
        let persistent = self.injector.persistent_schedule().is_some();
        if persistent {
            skip(
                &mut checks,
                "nvm-traffic-balance",
                "permanent failure scheduled",
            );
        } else {
            let nvm_accesses: u64 = (0..self.nvm.len())
                .map(|m| {
                    reg.counter_value(&format!("nvm{m}/reads")).unwrap_or(0)
                        + reg.counter_value(&format!("nvm{m}/writes")).unwrap_or(0)
                })
                .sum();
            check(
                &mut checks,
                "nvm-traffic-balance",
                ("nvm accesses", nvm_accesses),
                ("traffic total", traffic_total),
            );
        }

        if self.injector.is_enabled() {
            skip(&mut checks, "fabric-parity", "fault injection enabled");
        } else {
            check(
                &mut checks,
                "fabric-parity",
                (
                    "fabric traversals",
                    reg.counter_value("fabric/traversals").unwrap_or(0),
                ),
                (
                    "2*traffic - writebacks",
                    2 * traffic_total - self.traffic.writebacks,
                ),
            );
        }

        if persistent {
            skip(
                &mut checks,
                "drop-accounting",
                "permanent failure scheduled",
            );
            skip(&mut checks, "crc-detection", "permanent failure scheduled");
        } else {
            check(
                &mut checks,
                "drop-accounting",
                (
                    "timeouts",
                    reg.counter_value("recovery/timeouts").unwrap_or(0),
                ),
                (
                    "injected drops",
                    reg.counter_value("recovery/injected_drops").unwrap_or(0),
                ),
            );
            check(
                &mut checks,
                "crc-detection",
                (
                    "corrupt NACKs",
                    reg.counter_value("recovery/nacks_corrupt").unwrap_or(0),
                ),
                (
                    "injected corruptions",
                    reg.counter_value("recovery/injected_corruptions")
                        .unwrap_or(0),
                ),
            );
        }
        AuditReport { checks }
    }
}

fn access_kind(kind: MemOpKind) -> AccessKind {
    match kind {
        MemOpKind::Read => AccessKind::Read,
        MemOpKind::Write => AccessKind::Write,
    }
}

/// Draws the next reference of `core` and predicts its start — the body
/// of [`System::stage_ref`], shared with the parallel engine's
/// node-local phase (which draws `req` from a per-node shard tracer
/// instead of the system one).
fn stage_core(core: &mut CoreState, issue_width: u64, req: RequestId) {
    core.staged += 1;
    // Struct-of-arrays batching: the enum-dispatched generator call is
    // paid once per `RefBatch::DEFAULT_LEN` references; the steady
    // state is an indexed pop. Order is exactly the unbatched stream's.
    let r = match core.batch.pop() {
        Some(r) => r,
        None => {
            core.batch
                .refill(&mut core.gen, fam_workloads::RefBatch::DEFAULT_LEN);
            core.batch.pop().expect("a refill yields references")
        }
    };
    core.instructions += u64::from(r.gap_instrs) + 1;
    core.next_issue += Duration(u64::from(r.gap_instrs).div_ceil(issue_width) + 1);
    let mut start_req = core.next_issue.max(core.issue_clock);
    if r.dependent {
        start_req = start_req.max(core.last_mem_completion);
    }
    core.pending = Some(crate::node::PendingRef {
        mem: r,
        req,
        start_req,
        ready: core.window.would_start_mut(start_req),
    });
}

/// The node's front staged reference — the same greedy `(ready, core)`
/// choice the sequential scheduler makes, restricted to one node.
fn front_of(node: &Node) -> Option<(Cycle, usize)> {
    let mut best: Option<(Cycle, usize)> = None;
    for (c, core) in node.cores.iter().enumerate() {
        if let Some(p) = core.pending {
            if best.is_none_or(|b| (p.ready, c) < b) {
                best = Some((p.ready, c));
            }
        }
    }
    best
}

/// Side-effect-free eligibility probe: predicts whether the staged
/// reference `p` of core `c` provably touches node-local state only,
/// returning the translation, physical byte, and predicted LLC outcome
/// it would observe.
///
/// This mirrors the [`System::sim_ref`] fast path exactly: the TLB
/// must hold the translation (a miss could walk or fault through the
/// broker), and the data access must either hit the LLC or miss to
/// node DRAM *and* evict — if anything — a DRAM-backed victim (FAM
/// misses and FAM writebacks ride the fabric).
fn probe_local(node: &Node, c: usize, p: &crate::node::PendingRef) -> Option<(Pte, u64, bool)> {
    let _prof = profile::span(PhaseId::FastpathClassify);
    let pte = node.cores[c].tlb.probe(p.mem.vaddr.vpage())?;
    let phys_byte = pte.target_page * PAGE_BYTES + p.mem.vaddr.offset();
    let line = phys_byte / 64;
    let llc_hit = node.hierarchy.would_hit(line);
    if !llc_hit
        && (node.is_fam_page(pte.target_page)
            || node
                .hierarchy
                .would_evict(line)
                .is_some_and(|victim| node.is_fam_page(victim * 64 / PAGE_BYTES)))
    {
        return None;
    }
    Some((pte, phys_byte, llc_hit))
}

/// Whether `node`'s front reference would retire in the node-local
/// phase — the spawn-worthiness test of an epoch's parallel phase.
fn has_local_front(node: &Node, horizon: Cycle) -> bool {
    match front_of(node) {
        Some((ready, c)) if ready < horizon => {
            let p = node.cores[c].pending.expect("front reference is staged");
            probe_local(node, c, &p).is_some()
        }
        _ => false,
    }
}

/// One node's share of a parallel epoch: retire front references below
/// `horizon` that provably touch node-local state only ([`probe_local`]),
/// in the same greedy `(ready, core)` order the sequential scheduler
/// applies, blocking at the first reference that could reach shared
/// state. Everything a retirement touches (TLB recency, cache state,
/// node DRAM timeline, core bookkeeping, the shard tracer) belongs to
/// this node alone. Returns the number of references retired.
fn node_local_phase(
    n: usize,
    node: &mut Node,
    shard: &mut Tracer,
    horizon: Cycle,
    issue_width: u64,
    refs: u64,
) -> u64 {
    let mut retired = 0u64;
    while let Some((ready, c)) = front_of(node) {
        if ready >= horizon {
            break;
        }
        let p = node.cores[c].pending.expect("front reference is staged");
        let Some((pte, phys_byte, llc_hit)) = probe_local(node, c, &p) else {
            break;
        };
        retire_local_ref(n, node, shard, c, &p, pte, phys_byte, llc_hit);
        retired += 1;
        let core = &mut node.cores[c];
        if core.refs_done < refs {
            let req = shard.next_request();
            stage_core(core, issue_width, req);
        }
    }
    retired
}

/// Executes one probed-local reference end to end — a faithful twin of
/// the [`System::sim_ref`] local path, shared by the sequential fast
/// sweep and the parallel shard phase. The caller restages.
#[allow(clippy::too_many_arguments)]
fn retire_local_ref(
    n: usize,
    node: &mut Node,
    shard: &mut Tracer,
    c: usize,
    p: &crate::node::PendingRef,
    pte: Pte,
    phys_byte: u64,
    llc_hit: bool,
) {
    let vpage = p.mem.vaddr.vpage();
    let line = phys_byte / 64;
    let (start, tlb_latency) = {
        let core = &mut node.cores[c];
        core.pending = None;
        let start = core.window.admit(p.start_req);
        core.issue_clock = start;
        let (_, tlb_latency, hit) = core.tlb.lookup(vpage);
        debug_assert_eq!(hit.map(|h| h.target_page), Some(pte.target_page));
        (start, tlb_latency)
    };
    let t = start + tlb_latency;
    if shard.is_enabled() {
        shard.record(TraceEvent {
            req: p.req,
            stage: Stage::TlbLookup,
            track: Track::Node(n as u16),
            start,
            end: t,
        });
    }
    let lookup = node.hierarchy.access(c, line, p.mem.is_write);
    debug_assert_eq!(lookup.level.is_some(), llc_hit);
    let mut completion = t + lookup.latency;
    if lookup.level.is_none() {
        completion = if p.mem.is_write {
            node.dram.write(completion, phys_byte)
        } else {
            node.dram.access(completion, phys_byte)
        };
    }
    if let Some(wb_line) = lookup.writeback {
        debug_assert!(!node.is_fam_page(wb_line * 64 / PAGE_BYTES));
        node.dram.write(completion, wb_line * 64);
    }

    let core = &mut node.cores[c];
    core.window.record_completion(completion);
    core.last_mem_completion = completion;
    core.refs_done += 1;
    core.finish = core.finish.max(completion);
    if shard.wants_windows() {
        shard.sample(
            completion,
            WindowSample {
                instructions: u64::from(p.mem.gap_instrs) + 1,
                ..WindowSample::default()
            },
        );
    }
}

/// One epoch's shard-admission plan ([`System::plan_epoch`]).
#[derive(Debug)]
struct EpochPlan {
    /// The node holding the globally smallest front key — the only
    /// node whose shard-FAM keys can clear the cross-node barrier, and
    /// therefore the sole holder of every module grant this epoch.
    leader: Option<usize>,
    /// The second-best front key: the smallest key any non-leader node
    /// can ever stage. The leader's shard-FAM retirement must stay
    /// strictly below it; `None` means no other node has pending work.
    barrier: Option<(Cycle, usize)>,
    /// Nodes whose front reference the scan admitted — the parallel
    /// phase's spawn-worthiness signal.
    admissible_nodes: usize,
}

/// Selects the FAM module backing an address (page-interleaved) — the
/// free-function twin of [`System::module_of`] for shard code that
/// holds no `&System`.
fn module_index(fam_byte: u64, modules: usize) -> usize {
    // Single-module systems (the paper default) skip the divide.
    if modules == 1 {
        return 0;
    }
    ((fam_byte / PAGE_BYTES) % modules as u64) as usize
}

/// Everything a side-effect-free FAM probe decided, carried from
/// admission to execution so the execute twin can assert its
/// prediction instead of re-deriving it.
#[derive(Debug, Clone, Copy)]
struct FamProbe {
    pte: Pte,
    phys_byte: u64,
    npa_page: u64,
    fam_page: u64,
    fam_byte: u64,
    /// Module serving the data round trip.
    data_module: usize,
    /// Predicted FAM-bound dirty-victim writeback:
    /// `(victim line, target FAM byte, module)`.
    wb: Option<(u64, u64, usize)>,
}

impl FamProbe {
    /// The modules this reference may touch — its grant footprint.
    fn footprint(&self) -> impl Iterator<Item = usize> + '_ {
        std::iter::once(self.data_module).chain(self.wb.map(|(_, _, m)| m))
    }
}

/// Side-effect-free FAM eligibility probe: predicts whether the staged
/// reference `p` of core `c` is a FAM data access whose *entire*
/// translation chain is decidable node-side — TLB hit, LLC miss, and
/// per scheme: E-FAM (the key page embeds the FAM address), I-FAM
/// (coupled STU entry hit), DeACT (translation-cache hit, plus an ACM
/// hit unless encrypted-memory reads skip verification). Anything that
/// could walk, fill, fault, or fetch metadata returns `None` and rides
/// the sequential commit.
///
/// Mirrors [`System::sim_ref`]'s FAM path exactly under a disabled
/// injector (shard admission is never planned otherwise).
#[allow(clippy::too_many_arguments)]
fn probe_fam(
    node: &Node,
    stu: Option<&Stu>,
    broker: &MemoryBroker,
    scheme: Scheme,
    skip_read_checks: bool,
    modules: usize,
    c: usize,
    p: &crate::node::PendingRef,
) -> Option<FamProbe> {
    let _prof = profile::span(PhaseId::FastpathClassify);
    let pte = node.cores[c].tlb.probe(p.mem.vaddr.vpage())?;
    if !node.is_fam_page(pte.target_page) {
        return None;
    }
    let offset = p.mem.vaddr.offset();
    let phys_byte = pte.target_page * PAGE_BYTES + offset;
    let line = phys_byte / 64;
    if node.hierarchy.would_hit(line) {
        // An LLC hit is provably local — [`probe_local`]'s territory.
        return None;
    }
    let npa_page = pte.target_page;
    let (fam_page, fam_byte) = match scheme {
        Scheme::EFam => {
            let fam_byte = phys_byte - FAM_KEY_PAGE * PAGE_BYTES;
            (fam_byte / PAGE_BYTES, fam_byte)
        }
        Scheme::IFam => {
            let fam_page = stu?.cache().ifam_probe(npa_page)?;
            (fam_page, fam_page * PAGE_BYTES + offset)
        }
        Scheme::DeactW | Scheme::DeactN => {
            let fam_page = node.translator.as_ref()?.probe(npa_page)?;
            if (p.mem.is_write || !skip_read_checks) && !stu?.cache().acm_probe(fam_page) {
                return None;
            }
            (fam_page, fam_page * PAGE_BYTES + offset)
        }
    };
    let wb = match node.hierarchy.would_evict(line) {
        None => None,
        Some(victim_line) => {
            let victim_byte = victim_line * 64;
            let victim_page = victim_byte / PAGE_BYTES;
            if node.is_fam_page(victim_page) {
                let wb_fam_byte = match scheme {
                    Scheme::EFam => victim_byte - FAM_KEY_PAGE * PAGE_BYTES,
                    // The LLC holds node addresses; eviction reuses the
                    // system translation. A removed mapping can only
                    // exist post-recovery, and shards are never planned
                    // with a fault armed — deny to stay conservative.
                    _ => {
                        let wpte = broker.translate(node.id, victim_page)?;
                        wpte.target_page * PAGE_BYTES + victim_byte % PAGE_BYTES
                    }
                };
                Some((victim_line, wb_fam_byte, module_index(wb_fam_byte, modules)))
            } else {
                // DRAM-backed victim: no fabric involvement.
                None
            }
        }
    };
    Some(FamProbe {
        pte,
        phys_byte,
        npa_page,
        fam_page,
        fam_byte,
        data_module: module_index(fam_byte, modules),
        wb,
    })
}

/// Epoch-constant parameters of the parallel phase, copied out of
/// `System` so shards need no `&self`.
#[derive(Debug, Clone, Copy)]
struct ShardParams {
    scheme: Scheme,
    router: Duration,
    stu_lookup: Duration,
    timing: FabricTiming,
    skip_read_checks: bool,
    translation_cache_lru: bool,
    cores_per_node: usize,
    modules: usize,
    issue_width: u64,
    refs: u64,
    horizon: Cycle,
}

/// One node's slice of a parallel epoch: the node itself, its shard
/// tracer, its STU, its fabric link, and — for granted modules only —
/// the module port and NVM timeline, all held by `&mut` so the borrow
/// checker proves shard disjointness. Statistics that normally live on
/// `System` accumulate shard-locally and merge commutatively after the
/// phase.
struct Shard<'a> {
    n: usize,
    node: &'a mut Node,
    tracer: &'a mut Tracer,
    stu: Option<&'a mut Stu>,
    link: &'a mut Resource,
    /// Indexed by module; `Some` only for this epoch's grants. Empty
    /// when the node holds no grants at all.
    ports: Vec<Option<&'a mut Resource>>,
    nvms: Vec<Option<&'a mut NvmModel>>,
    barrier: Option<(Cycle, usize)>,
    /// Whether any module is granted — a cheap pre-filter so grantless
    /// shards skip FAM probing entirely.
    fam: bool,
    /// Per-module flag set when the shard actually drove the module's
    /// port and device timeline this epoch (data round trip or
    /// writeback). Sized only for the leader; merged into
    /// [`System::module_grant_epochs`] after the phase.
    used_modules: Vec<bool>,
    traffic: FamTraffic,
    traversals: u64,
    local_retired: u64,
    fam_retired: u64,
}

impl Shard<'_> {
    /// Whether every module in the probe's footprint is granted to
    /// this shard.
    fn footprint_owned(&self, fp: &FamProbe) -> bool {
        fp.footprint()
            .all(|m| self.ports.get(m).is_some_and(Option::is_some))
    }

    /// Twin of [`System::fam_round_trip_clean`] on the shard's granted
    /// resources: link out, module port, device service, port and link
    /// back.
    fn fam_round_trip(
        &mut self,
        t: Cycle,
        fam_byte: u64,
        kind: MemOpKind,
        req: RequestId,
        pp: &ShardParams,
    ) -> Cycle {
        let module = module_index(fam_byte, pp.modules);
        self.used_modules[module] = true;
        let port = self.ports[module].as_deref_mut().expect("granted module");
        let nvm = self.nvms[module].as_deref_mut().expect("granted module");
        let arrival = traverse_split(self.link, port, pp.timing, t, 1);
        let done = nvm.access(arrival, fam_byte, kind);
        // The 64-byte response is one flit, same as the request.
        let ret = traverse_split(self.link, port, pp.timing, done, 1);
        self.traversals += 2;
        if self.tracer.is_enabled() {
            let n = self.n as u16;
            self.tracer.record(TraceEvent {
                req,
                stage: Stage::FabricSend,
                track: Track::Fabric(n),
                start: t,
                end: arrival,
            });
            self.tracer.record(TraceEvent {
                req,
                stage: Stage::NvmAccess,
                track: Track::Nvm(module as u16),
                start: arrival,
                end: done,
            });
            self.tracer.record(TraceEvent {
                req,
                stage: Stage::FabricRecv,
                track: Track::Fabric(n),
                start: done,
                end: ret,
            });
        }
        ret
    }

    /// Twin of [`System::ifam_fam_access`] on the coupled-entry hit
    /// path (the only path admission grants).
    fn ifam_access(
        &mut self,
        broker: &MemoryBroker,
        t: Cycle,
        fp: &FamProbe,
        kind: MemOpKind,
        req: RequestId,
        pp: &ShardParams,
    ) -> Cycle {
        let node_id = self.node.id;
        let acc_kind = access_kind(kind);
        let lookup_done = t + pp.router + pp.stu_lookup;
        if self.tracer.is_enabled() {
            self.tracer.record(TraceEvent {
                req,
                stage: Stage::StuLookup,
                track: Track::Stu(self.n as u16),
                start: t,
                end: lookup_done,
            });
        }
        let t = lookup_done;
        let fam_page = self
            .stu
            .as_mut()
            .expect("I-FAM nodes have an STU")
            .cache_mut()
            .ifam_lookup(fp.npa_page)
            .expect("admission probed a coupled-entry hit");
        debug_assert_eq!(fam_page, fp.fam_page);
        assert!(
            broker.check_access(node_id, fam_page, acc_kind),
            "benign workloads never trip access control"
        );
        match kind {
            MemOpKind::Read => self.traffic.data_reads += 1,
            MemOpKind::Write => self.traffic.data_writes += 1,
        }
        let done = self.fam_round_trip(t, fp.fam_byte, kind, req, pp);
        done + pp.router
    }

    /// Twin of [`System::deact_fam_access`] on the translation-hit,
    /// ACM-hit path (the only path admission grants; the injector is
    /// disabled whenever shards are planned, so the stale-NACK arm
    /// cannot fire).
    fn deact_access(
        &mut self,
        broker: &MemoryBroker,
        t: Cycle,
        fp: &FamProbe,
        kind: MemOpKind,
        req: RequestId,
        pp: &ShardParams,
    ) -> Cycle {
        let node_id = self.node.id;
        let acc_kind = access_kind(kind);
        let t_in = t;
        let set_addr = self
            .node
            .translator
            .as_ref()
            .expect("DeACT nodes have a translator")
            .dram_addr_of(fp.npa_page);
        let mut t = self.node.dram.access(t, set_addr) + Duration(1);
        if self.tracer.is_enabled() {
            self.tracer.record(TraceEvent {
                req,
                stage: Stage::TranslationCache,
                track: Track::Node(self.n as u16),
                start: t_in,
                end: t,
            });
        }
        let cached = self
            .node
            .translator
            .as_mut()
            .expect("checked above")
            .lookup(fp.npa_page);
        if pp.translation_cache_lru {
            self.node.dram.write(t, set_addr);
        }
        let fam_page = cached.expect("admission probed a translation hit");
        debug_assert_eq!(fam_page, fp.fam_page);
        t += pp.router;
        if kind == MemOpKind::Read {
            self.node
                .translator
                .as_mut()
                .expect("checked above")
                .oml_mut()
                .register(fam_page, fp.npa_page);
        }
        if !(pp.skip_read_checks && kind == MemOpKind::Read) {
            let v = self
                .stu
                .as_mut()
                .expect("DeACT nodes have an STU")
                .verify(broker, node_id, fam_page, acc_kind, req);
            if self.tracer.is_enabled() {
                self.tracer.record(TraceEvent {
                    req,
                    stage: Stage::StuLookup,
                    track: Track::Stu(self.n as u16),
                    start: t,
                    end: t + pp.stu_lookup,
                });
            }
            t += pp.stu_lookup;
            debug_assert!(
                v.acm_fetch_addr.is_none(),
                "admission probed an ACM hit, so verification cannot fetch"
            );
            assert!(v.allowed, "benign workloads never trip access control");
        }
        match kind {
            MemOpKind::Read => self.traffic.data_reads += 1,
            MemOpKind::Write => self.traffic.data_writes += 1,
        }
        let done = self.fam_round_trip(t, fp.fam_byte, kind, req, pp);
        if kind == MemOpKind::Read {
            self.node
                .translator
                .as_mut()
                .expect("checked above")
                .oml_mut()
                .complete(fam_page);
        }
        done + pp.router
    }

    /// Twin of [`System::writeback`] for a dirty victim evicted by a
    /// shard-retired FAM reference, using the probe's predicted target.
    fn writeback(&mut self, wb_line: u64, at: Cycle, fp: &FamProbe, pp: &ShardParams) {
        match fp.wb {
            Some((victim_line, wb_fam_byte, module)) => {
                debug_assert_eq!(victim_line, wb_line, "eviction probe predicts the victim");
                self.traffic.writebacks += 1;
                self.used_modules[module] = true;
                let port = self.ports[module].as_deref_mut().expect("granted module");
                let nvm = self.nvms[module].as_deref_mut().expect("granted module");
                // One-way: the writeback occupies the path out and the
                // device, but nobody waits on a response.
                let arrival = traverse_split(self.link, port, pp.timing, at, 1);
                self.traversals += 1;
                nvm.access(arrival, wb_fam_byte, MemOpKind::Write);
            }
            None => {
                let byte = wb_line * 64;
                debug_assert!(!self.node.is_fam_page(byte / PAGE_BYTES));
                self.node.dram.write(at, byte);
            }
        }
    }

    /// Executes one admitted FAM reference end to end — the shard twin
    /// of [`System::sim_ref`]'s FAM path.
    fn retire_fam(
        &mut self,
        broker: &MemoryBroker,
        c: usize,
        p: &crate::node::PendingRef,
        fp: &FamProbe,
        pp: &ShardParams,
    ) {
        let _prof = profile::span(PhaseId::ShardFam);
        let vpage = p.mem.vaddr.vpage();
        let line = fp.phys_byte / 64;
        let kind = if p.mem.is_write {
            MemOpKind::Write
        } else {
            MemOpKind::Read
        };
        let req = p.req;
        let (start, tlb_latency) = {
            let core = &mut self.node.cores[c];
            core.pending = None;
            let start = core.window.admit(p.start_req);
            core.issue_clock = start;
            let (_, tlb_latency, hit) = core.tlb.lookup(vpage);
            debug_assert_eq!(hit.map(|h| h.target_page), Some(fp.pte.target_page));
            (start, tlb_latency)
        };
        let t = start + tlb_latency;
        if self.tracer.is_enabled() {
            self.tracer.record(TraceEvent {
                req,
                stage: Stage::TlbLookup,
                track: Track::Node(self.n as u16),
                start,
                end: t,
            });
        }
        let window_before = if self.tracer.wants_windows() {
            Some((self.traffic.at_total(), self.traffic.total()))
        } else {
            None
        };
        let lookup = self.node.hierarchy.access(c, line, p.mem.is_write);
        debug_assert!(lookup.level.is_none(), "admitted FAM refs are LLC misses");
        let completion = t + lookup.latency;
        let completion = match pp.scheme {
            Scheme::EFam => {
                if p.mem.is_write {
                    self.traffic.data_writes += 1;
                } else {
                    self.traffic.data_reads += 1;
                }
                self.fam_round_trip(completion, fp.fam_byte, kind, req, pp)
            }
            Scheme::IFam => self.ifam_access(broker, completion, fp, kind, req, pp),
            Scheme::DeactW | Scheme::DeactN => {
                self.deact_access(broker, completion, fp, kind, req, pp)
            }
        };
        if let Some(wb_line) = lookup.writeback {
            self.writeback(wb_line, completion, fp, pp);
        }
        let core = &mut self.node.cores[c];
        core.window.record_completion(completion);
        core.last_mem_completion = completion;
        core.refs_done += 1;
        core.finish = core.finish.max(completion);
        if let Some((at_before, total_before)) = window_before {
            self.tracer.sample(
                completion,
                WindowSample {
                    instructions: u64::from(p.mem.gap_instrs) + 1,
                    fam_at: self.traffic.at_total() - at_before,
                    fam_total: self.traffic.total() - total_before,
                    retries: 0,
                    recovered: 0,
                },
            );
        }
    }
}

/// One shard's share of a parallel epoch: retire front references below
/// the horizon in the node's greedy `(ready, core)` order — locally
/// when [`probe_local`] admits, over the shard's granted FAM modules
/// when [`probe_fam`] admits and the reference's key clears the
/// cross-node barrier — blocking at the first reference that can do
/// neither. Every admission decision is re-probed here at execution
/// time, so the epoch plan can only under-promise, never corrupt.
fn shard_phase(shard: &mut Shard, broker: &MemoryBroker, pp: &ShardParams) {
    while let Some((ready, c)) = front_of(shard.node) {
        if ready >= pp.horizon {
            break;
        }
        let p = shard.node.cores[c]
            .pending
            .expect("front reference is staged");
        if let Some((pte, phys_byte, llc_hit)) = probe_local(shard.node, c, &p) {
            retire_local_ref(
                shard.n,
                shard.node,
                shard.tracer,
                c,
                &p,
                pte,
                phys_byte,
                llc_hit,
            );
            shard.local_retired += 1;
        } else if shard.fam {
            let key = (ready, shard.n * pp.cores_per_node + c);
            if shard.barrier.is_some_and(|b| key >= b) {
                break;
            }
            let fp = probe_fam(
                shard.node,
                shard.stu.as_deref(),
                broker,
                pp.scheme,
                pp.skip_read_checks,
                pp.modules,
                c,
                &p,
            );
            let Some(fp) = fp else { break };
            if !shard.footprint_owned(&fp) {
                break;
            }
            shard.retire_fam(broker, c, &p, &fp, pp);
            shard.fam_retired += 1;
        } else {
            break;
        }
        let core = &mut shard.node.cores[c];
        if core.refs_done < pp.refs {
            let req = shard.tracer.next_request();
            stage_core(core, pp.issue_width, req);
        }
    }
}

/// Runs one benchmark under one configuration and returns the report —
/// the workhorse of the experiment harness.
///
/// # Panics
///
/// Panics if `name` is not a Table III benchmark.
///
/// # Examples
///
/// ```
/// use deact::{run_benchmark, Scheme, SystemConfig};
///
/// let cfg = SystemConfig::paper_default().with_refs_per_core(100);
/// let r = run_benchmark("pf", cfg.with_scheme(Scheme::EFam));
/// assert_eq!(r.workload, "pf");
/// ```
pub fn run_benchmark(name: &str, config: SystemConfig) -> RunReport {
    try_run_benchmark(name, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`run_benchmark`]: returns a typed [`SimError`]
/// instead of panicking, so binaries can exit with a readable message.
///
/// The intra-run thread count comes from `DEACT_SIM_THREADS`
/// (default 1, the sequential engine). The parallel engine is
/// bit-identical at any thread count, so the variable lets a CI lane
/// run an unmodified test suite on the sharded engine without being
/// able to change what any test observes.
///
/// # Examples
///
/// ```
/// use deact::{try_run_benchmark, SimError, SystemConfig};
///
/// let err = try_run_benchmark("doom", SystemConfig::paper_default()).unwrap_err();
/// assert!(matches!(err, SimError::UnknownBenchmark { .. }));
/// ```
pub fn try_run_benchmark(name: &str, config: SystemConfig) -> Result<RunReport, SimError> {
    try_run_benchmark_threads(name, config, fam_sim::sim_threads_from_env())
}

/// [`try_run_benchmark`] with intra-run parallelism: the run executes
/// on [`System::try_run_parallel`] with `threads` workers, so the
/// report is bit-identical at any thread count (`1` is the sequential
/// engine). Compose with across-run parallelism (a sweep's `--jobs`)
/// by splitting the host's cores between the two levels.
///
/// # Errors
///
/// Returns [`SimError::UnknownBenchmark`] for a name outside Table
/// III, or any error of [`System::try_run_parallel`].
pub fn try_run_benchmark_threads(
    name: &str,
    config: SystemConfig,
    threads: usize,
) -> Result<RunReport, SimError> {
    let workload = Workload::by_name(name).ok_or_else(|| SimError::UnknownBenchmark {
        name: name.to_string(),
    })?;
    System::new(config, &workload).try_run_parallel(threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(scheme: Scheme) -> SystemConfig {
        SystemConfig::paper_default()
            .with_scheme(scheme)
            .with_refs_per_core(2_000)
            .with_seed(7)
    }

    #[test]
    fn all_schemes_complete_and_report() {
        for scheme in Scheme::ALL {
            let r = run_benchmark("astar", quick(scheme));
            assert_eq!(r.scheme, scheme);
            assert!(r.ipc > 0.0, "{scheme}: ipc {}", r.ipc);
            assert_eq!(r.refs_per_core, 2_000);
            assert!(r.instructions > 8_000, "{scheme}");
            assert!(r.cycles > 0, "{scheme}");
        }
    }

    #[test]
    fn efam_has_no_system_translation_stats() {
        let r = run_benchmark("pf", quick(Scheme::EFam));
        assert_eq!(r.translation_hit_rate, None);
        assert_eq!(r.acm_hit_rate, None);
        assert_eq!(r.fam.at_walk_reads, 0);
        assert_eq!(r.fam.at_acm_reads, 0);
    }

    #[test]
    fn efam_at_traffic_is_pte_reads() {
        let r = run_benchmark("sssp", quick(Scheme::EFam));
        assert!(r.fam.at_pte_reads > 0, "E-FAM PTE pages live in FAM");
    }

    #[test]
    fn ifam_translates_at_stu() {
        let r = run_benchmark("sssp", quick(Scheme::IFam));
        assert!(r.fam.at_walk_reads > 0);
        assert_eq!(r.fam.at_pte_reads, 0, "node PT pages stay in DRAM");
        assert_eq!(r.fam.at_acm_reads, 0, "ACM rides in the coupled entry");
        assert!(r.translation_hit_rate.is_some());
    }

    /// A reuse-heavy workload sized between the STU's 4 MB reach and
    /// the translation cache's 256 MB reach, so short test runs warm
    /// up: the regime where DeACT's advantage lives.
    /// Tiers sized so reuse is high but the cold tail pressures the
    /// 1024-entry STU far more than DeACT-N's 2048 ACM slots or the
    /// 65536-entry translation cache.
    fn reuse_workload() -> Workload {
        Workload {
            footprint_pages: 4096,
            hot_fraction: 0.30,
            hot_pages: 64,
            warm_fraction: 0.45,
            warm_pages: 800,
            seq_run: 1,
            dep_fraction: 0.5,
            ..Workload::by_name("canl").unwrap()
        }
    }

    #[test]
    fn deact_fetches_acm_and_uses_dram_cache() {
        let mut sys = System::new(
            quick(Scheme::DeactN).with_refs_per_core(20_000),
            &reuse_workload(),
        );
        let r = sys.run();
        assert!(r.fam.at_acm_reads > 0);
        assert!(
            r.translation_hit_rate.unwrap() > 0.5,
            "got {}",
            r.translation_hit_rate.unwrap()
        );
        assert!(r.dram_reads > 0, "translation-cache reads hit DRAM");
    }

    #[test]
    fn ifam_is_slower_than_efam_on_translation_hostile_workloads() {
        let efam = run_benchmark("sssp", quick(Scheme::EFam));
        let ifam = run_benchmark("sssp", quick(Scheme::IFam));
        assert!(
            ifam.ipc < efam.ipc,
            "I-FAM {} !< E-FAM {}",
            ifam.ipc,
            efam.ipc
        );
    }

    #[test]
    fn deact_n_recovers_performance_over_ifam() {
        let cfg = quick(Scheme::IFam).with_refs_per_core(20_000);
        let ifam = System::new(cfg, &reuse_workload()).run();
        let deact = System::new(cfg.with_scheme(Scheme::DeactN), &reuse_workload()).run();
        assert!(
            deact.ipc > ifam.ipc,
            "DeACT-N {} !> I-FAM {}",
            deact.ipc,
            ifam.ipc
        );
    }

    #[test]
    fn deact_n_acm_hits_beat_deact_w_on_random_workloads() {
        let w = run_benchmark("canl", quick(Scheme::DeactW));
        let n = run_benchmark("canl", quick(Scheme::DeactN));
        assert!(
            n.acm_hit_rate.unwrap() >= w.acm_hit_rate.unwrap(),
            "N {} !>= W {}",
            n.acm_hit_rate.unwrap(),
            w.acm_hit_rate.unwrap()
        );
    }

    #[test]
    fn parallel_engine_matches_sequential_reports() {
        for scheme in Scheme::ALL {
            let cfg = quick(scheme)
                .with_nodes(4)
                .with_fam_modules(4)
                .with_refs_per_core(800);
            let w = Workload::by_name("astar").unwrap();
            let seq = System::new(cfg, &w).try_run().expect("sequential run");
            let par = System::new(cfg, &w)
                .try_run_parallel(4)
                .expect("parallel run");
            assert_eq!(seq, par, "{scheme}: parallel report diverged");
        }
    }

    #[test]
    fn parallel_engine_is_thread_count_invariant() {
        let cfg = quick(Scheme::DeactN)
            .with_nodes(4)
            .with_fam_modules(4)
            .with_refs_per_core(600);
        let w = Workload::by_name("pf").unwrap();
        let two = System::new(cfg, &w).run_parallel(2);
        let four = System::new(cfg, &w).run_parallel(4);
        assert_eq!(two, four);
    }

    #[test]
    fn parallel_with_one_thread_is_the_sequential_engine() {
        let cfg = quick(Scheme::EFam).with_nodes(2).with_refs_per_core(500);
        let w = Workload::by_name("sssp").unwrap();
        let seq = System::new(cfg, &w).run();
        let one = System::new(cfg, &w).run_parallel(1);
        assert_eq!(seq, one);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_benchmark("pf", quick(Scheme::DeactN));
        let b = run_benchmark("pf", quick(Scheme::DeactN));
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.fam, b.fam);
    }

    #[test]
    fn multi_node_runs_share_the_fam() {
        let cfg = quick(Scheme::DeactN).with_nodes(2).with_refs_per_core(500);
        let r = run_benchmark("pf", cfg);
        assert_eq!(r.nodes, 2);
        assert!(r.instructions > 4_000, "both nodes executed");
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        run_benchmark("doom", quick(Scheme::EFam));
    }

    #[test]
    fn multi_module_fam_distributes_traffic() {
        // Single core: the reference stream's execution order is then
        // timing-independent, so module count (which only changes
        // contention) must leave functional traffic bit-identical.
        let cfg = quick(Scheme::EFam)
            .with_cores_per_node(1)
            .with_fam_modules(4)
            .with_refs_per_core(1_000);
        let r = run_benchmark("pf", cfg);
        assert!(r.fam.data_reads > 0);
        // Same run, one module: identical functional traffic.
        let single = run_benchmark(
            "pf",
            quick(Scheme::EFam)
                .with_cores_per_node(1)
                .with_refs_per_core(1_000),
        );
        assert_eq!(r.fam.data_reads, single.fam.data_reads);
    }

    #[test]
    #[should_panic(expected = "one stream set per node")]
    fn misshaped_stream_matrix_rejected() {
        let cfg = quick(Scheme::EFam).with_nodes(2);
        let _ = System::with_streams(cfg, "bad", Vec::new());
    }

    #[test]
    #[should_panic(expected = "one reference stream per core")]
    fn misshaped_core_streams_rejected() {
        let cfg = quick(Scheme::EFam);
        let w = Workload::by_name("pf").unwrap();
        let streams = vec![vec![fam_workloads::RefStream::from(w.generator(0))]]; // 1 != 4
        let _ = System::with_streams(cfg, "bad", streams);
    }

    fn killed(scheme: Scheme, fault: PersistentFault) -> SystemConfig {
        quick(scheme)
            .with_nodes(2)
            .with_fam_modules(2)
            .with_refs_per_core(3_000)
            .with_fault_injection(fam_sim::FaultConfig::persistent_only(11, fault, 500))
    }

    #[test]
    fn node_death_survives_and_reports_degradation() {
        for scheme in Scheme::ALL {
            let r = run_benchmark(
                "astar",
                killed(scheme, PersistentFault::NodeDead { module: 1 }),
            );
            let d = r.degradation;
            assert!(!d.is_zero(), "{scheme}: a killed module must register");
            assert!(d.pages_quarantined > 0, "{scheme}");
            assert_eq!(d.pages_evacuated, 0, "{scheme}: a dead node's data is gone");
            assert!(d.pages_lost > 0, "{scheme}");
            assert!(d.recovery_cycles > 0, "{scheme}");
            assert!(
                d.capacity_pages_remaining > 0,
                "{scheme}: half the pool survives"
            );
            assert!(r.recovery.nacks_unreachable > 0, "{scheme}");
            assert!(r.ipc > 0.0, "{scheme}: the run completed degraded");
        }
    }

    #[test]
    fn severed_link_evacuates_instead_of_losing() {
        let r = run_benchmark(
            "astar",
            killed(Scheme::DeactN, PersistentFault::LinkSevered { module: 1 }),
        );
        let d = r.degradation;
        assert!(d.pages_evacuated > 0, "the management path survives");
        assert_eq!(d.pages_lost, 0, "a severed link loses no data");
        assert_eq!(d.poisoned_accesses, 0, "nothing to poison");
        assert!(d.evacuation_cycles > 0, "the copy is charged");
    }

    #[test]
    fn failed_media_range_quarantines_exactly() {
        let r = run_benchmark(
            "astar",
            killed(
                Scheme::IFam,
                PersistentFault::MediaFailed {
                    first_page: 0,
                    pages: 64,
                },
            ),
        );
        assert_eq!(r.degradation.pages_quarantined, 64);
    }

    #[test]
    fn efam_heals_evacuated_ptes_lazily() {
        let r = run_benchmark(
            "astar",
            killed(Scheme::EFam, PersistentFault::LinkSevered { module: 1 }),
        );
        assert!(
            r.degradation.pte_rewrites > 0,
            "walks repair FAM-key PTEs in place"
        );
        assert_eq!(r.degradation.pages_lost, 0);
    }

    #[test]
    fn shootdown_invalidates_survivor_translations() {
        let r = run_benchmark(
            "astar",
            killed(Scheme::DeactN, PersistentFault::NodeDead { module: 1 }),
        );
        assert!(
            r.degradation.shootdown_invalidations > 0,
            "warm STU/translator state covered the dead module"
        );
        assert!(r.degradation.shootdown_cycles > 0);
    }

    #[test]
    fn halt_on_data_loss_surfaces_typed_error() {
        let cfg = killed(Scheme::DeactN, PersistentFault::NodeDead { module: 1 })
            .with_halt_on_data_loss(true);
        let err = try_run_benchmark("astar", cfg).unwrap_err();
        assert!(matches!(err, SimError::DataLoss { .. }), "got {err}");
    }

    #[test]
    fn degraded_runs_are_engine_and_thread_invariant() {
        let cfg = killed(Scheme::DeactN, PersistentFault::NodeDead { module: 0 });
        let w = Workload::by_name("astar").unwrap();
        let seq = System::new(cfg, &w).try_run().expect("sequential");
        let par = System::new(cfg, &w).try_run_parallel(4).expect("parallel");
        assert_eq!(seq, par, "recovery must not break bit-identity");
        assert!(!seq.degradation.is_zero());
    }

    #[test]
    fn shared_segment_reserves_npa_window() {
        let mut w = Workload::by_name("pf").unwrap();
        w.shared_fraction = 0.3;
        w.shared_pages = 16;
        let cfg = quick(Scheme::DeactN)
            .with_refs_per_core(1_500)
            .with_shared_segment_pages(16);
        let mut sys = System::new(cfg, &w);
        let r = sys.run();
        assert!(r.ipc > 0.0);
        // Every node's shared VA window resolves to the same FAM pages.
        let shared_vpage = fam_workloads::SHARED_VA_BASE / PAGE_BYTES;
        let npa = sys.nodes[0]
            .page_table
            .translate(shared_vpage)
            .expect("shared page mapped")
            .target_page;
        assert_eq!(npa, crate::node::FAM_ZONE_PAGE, "reserved window base");
    }
}
