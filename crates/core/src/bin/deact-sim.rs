//! `deact-sim` — command-line front end to the DeACT system model.
//!
//! ```text
//! deact-sim run <benchmark> [--scheme E-FAM|I-FAM|DeACT-W|DeACT-N]
//!                           [--refs N] [--nodes N] [--fam-modules N]
//!                           [--fabric-ns N] [--stu-entries N] [--seed N]
//!                           [--fault-profile transient[:seed]]
//!                           [--kill-node <module>@<nth-fam-op>]
//!                           [--sim-threads N]
//! deact-sim compare <benchmark> [--refs N] [--jobs N]
//!                               [--sim-threads N]      # all four schemes
//! deact-sim trace [<benchmark>] [--out trace.json] [--window N]
//!                 [--ring N] [plus any `run` flag]    # Perfetto trace
//! deact-sim profile [<benchmark>] [--out profile.folded] [--top N]
//!                   [plus any `run` flag]   # host-time phase profile
//! deact-sim audit [<benchmark>] [plus any `run` flag]
//!                                # metrics registry + conservation audit
//! deact-sim record <benchmark> [--out t.famt] [plus any `run` flag]
//!                                # capture the synthetic stream to disk
//! deact-sim replay <t.famt> [--trace-out trace.json] [plus any `run` flag]
//!                                # run a recorded/synthesized trace
//! deact-sim list                                       # Table III roster
//! ```
//!
//! `record` draws exactly the per-core reference streams a live run of
//! the benchmark would execute (same seeds, same order) and writes
//! them as a rank-tagged FAMT v2 trace; `replay` streams such a file —
//! or any externally produced FAMT trace — back through the full
//! system model, so `record` → `replay` reproduces the live run's
//! report bit for bit. Replay honors every `run` flag (`--scheme`,
//! `--sim-threads`, `--kill-node`, ...); `--trace-out` additionally
//! captures a Perfetto trace of the replayed run.
//!
//! Two parallelism knobs compose, and both leave reports bit-identical
//! at any setting:
//!
//! * `--jobs N` — *across-run* parallelism: how many worker threads
//!   `compare` uses to run the four schemes concurrently (default:
//!   `DEACT_JOBS`, else the host's available parallelism).
//! * `--sim-threads N` — *intra-run* parallelism: how many threads one
//!   simulation spreads its nodes over
//!   ([`deact::System::try_run_parallel`]; default:
//!   `DEACT_SIM_THREADS`, else 1 = the sequential engine). Useful once
//!   a single many-node run dominates wall clock.
//!
//! When both are set, `compare` caps `--sim-threads` so the product
//! `jobs × sim_threads` stays within the host's available parallelism
//! — oversubscription would only slow both levels down.
//!
//! `trace` runs one benchmark (default `sssp` under the paper-default
//! DeACT-N configuration) with the tracer on and writes a Chrome
//! trace-event JSON file loadable in Perfetto / `chrome://tracing`,
//! then prints the per-stage latency breakdown, the windowed time
//! series, and the ring's drop accounting.
//!
//! `profile` runs one benchmark with the *host-time* profiler enabled
//! (simulated results are bit-identical either way), prints the top
//! phases by self time, and writes a folded-stack file that
//! `inferno-flamegraph` or <https://speedscope.app> can render.
//!
//! `audit` runs one benchmark, prints every component counter from the
//! unified metrics registry, then cross-checks the conservation
//! invariants ([`deact::System::audit`]) and exits nonzero if any
//! fail.

use std::process::ExitCode;

use deact::{try_run_benchmark_threads, RunReport, Scheme, System, SystemConfig};
use fam_sim::{trace::write_chrome_trace, FaultConfig, PersistentFault, TraceConfig};
use fam_workloads::{table3, Workload};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  deact-sim run <benchmark> [--scheme S] [--refs N] [--nodes N] \
         [--fam-modules N] [--fabric-ns N] [--stu-entries N] [--seed N] \
         [--fault-profile transient[:seed]] [--kill-node M@OP] [--sim-threads N]\n  \
         deact-sim compare <benchmark> [--refs N] [--jobs N] [--sim-threads N]\n  \
         deact-sim trace [<benchmark>] [--out trace.json] [--window N] [--ring N] \
         [plus any `run` flag]\n  \
         deact-sim profile [<benchmark>] [--out profile.folded] [--top N] \
         [plus any `run` flag]\n  \
         deact-sim audit [<benchmark>] [plus any `run` flag]\n  \
         deact-sim record <benchmark> [--out t.famt] [plus any `run` flag]\n  \
         deact-sim replay <t.famt> [--trace-out trace.json] [plus any `run` flag]\n  \
         deact-sim list\n\n\
         parallelism: --jobs runs schemes concurrently (across-run, default \
         DEACT_JOBS else all cores);\n  --sim-threads parallelizes the nodes \
         *inside* one run (intra-run, default DEACT_SIM_THREADS else 1 = \
         sequential).\n  They compose; compare caps jobs x sim-threads at the \
         host's available parallelism.\n  Reports are bit-identical at any \
         setting of either knob.\n\n\
         chaos: --kill-node M@OP permanently kills FAM module M at the OP-th \
         FAM operation;\n  the run survives degraded and the report gains a \
         perm-failure block."
    );
    ExitCode::FAILURE
}

fn parse_scheme(s: &str) -> Option<Scheme> {
    match s.to_ascii_lowercase().as_str() {
        "e-fam" | "efam" => Some(Scheme::EFam),
        "i-fam" | "ifam" => Some(Scheme::IFam),
        "deact-w" | "deactw" => Some(Scheme::DeactW),
        "deact-n" | "deactn" | "deact" => Some(Scheme::DeactN),
        _ => None,
    }
}

/// Parses `transient` or `transient:<seed>` into a fault profile.
fn parse_fault_profile(s: &str) -> Option<FaultConfig> {
    let (name, seed) = match s.split_once(':') {
        Some((name, seed)) => (name, seed.parse().ok()?),
        None => (s, 0xFA_u64),
    };
    match name {
        "transient" => Some(FaultConfig::transient(seed)),
        "off" | "none" => Some(FaultConfig::disabled()),
        _ => None,
    }
}

/// Parses `--kill-node <module>@<nth-fam-op>`: permanently kill FAM
/// module `module` once the injector has seen that many FAM
/// operations. Composes with (and implies) fault injection: the
/// persistent schedule is layered onto whatever `--fault-profile`
/// selected, so `--fault-profile transient --kill-node 1@500` runs the
/// full chaos mix.
fn parse_kill_node(s: &str) -> Option<(usize, u64)> {
    let (module, after) = s.split_once('@')?;
    Some((module.parse().ok()?, after.parse().ok()?))
}

/// Splits `--jobs N` out of the argument list (it is a harness knob,
/// not a [`SystemConfig`] field); returns the remaining flags and the
/// worker count, defaulting to [`fam_sim::default_jobs`]. Returns
/// `None` on a malformed count.
fn extract_jobs(args: &[String]) -> Option<(Vec<String>, usize)> {
    let mut rest = Vec::with_capacity(args.len());
    let mut jobs = fam_sim::default_jobs();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--jobs" {
            jobs = it.next()?.parse().ok().filter(|&n| n > 0)?;
        } else {
            rest.push(flag.clone());
        }
    }
    Some((rest, jobs))
}

/// Intra-run thread count when `--sim-threads` is absent:
/// `DEACT_SIM_THREADS`, else 1 (the sequential engine, so existing
/// invocations behave byte-identically).
fn sim_threads_default() -> usize {
    std::env::var("DEACT_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Splits `--sim-threads N` out of the argument list (like `--jobs`, a
/// harness knob, not a [`SystemConfig`] field); returns the remaining
/// flags and the intra-run thread count. Returns `None` on a malformed
/// count.
fn extract_sim_threads(args: &[String]) -> Option<(Vec<String>, usize)> {
    let mut rest = Vec::with_capacity(args.len());
    let mut threads = sim_threads_default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--sim-threads" {
            threads = it.next()?.parse().ok().filter(|&n| n > 0)?;
        } else {
            rest.push(flag.clone());
        }
    }
    Some((rest, threads))
}

/// Splits the trace-only options (`--out`, `--window`, `--ring`) out of
/// the argument list; returns the remaining flags, the output path, and
/// the tracer configuration. Returns `None` on a malformed option.
fn extract_trace_opts(args: &[String]) -> Option<(Vec<String>, String, TraceConfig)> {
    let mut rest = Vec::with_capacity(args.len());
    let mut out = String::from("trace.json");
    let mut trace = TraceConfig::full();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out = it.next()?.clone(),
            "--window" => {
                trace = trace.with_window_cycles(it.next()?.parse().ok().filter(|&n| n > 0)?);
            }
            "--ring" => trace = trace.with_ring_capacity(it.next()?.parse().ok()?),
            _ => rest.push(flag.clone()),
        }
    }
    Some((rest, out, trace))
}

/// Splits the profile-only options (`--out`, `--top`) out of the
/// argument list; returns the remaining flags, the folded-stack output
/// path, and the table depth. Returns `None` on a malformed option.
fn extract_profile_opts(args: &[String]) -> Option<(Vec<String>, String, usize)> {
    let mut rest = Vec::with_capacity(args.len());
    let mut out = String::from("profile.folded");
    let mut top = 12usize;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out = it.next()?.clone(),
            "--top" => top = it.next()?.parse().ok().filter(|&n| n > 0)?,
            _ => rest.push(flag.clone()),
        }
    }
    Some((rest, out, top))
}

/// Splits one `--<name> <value>` string option out of the argument
/// list; returns the remaining flags and the value (or `default` when
/// the flag is absent, `None` when its value is missing).
fn extract_string_opt(
    args: &[String],
    name: &str,
    default: Option<&str>,
) -> Option<(Vec<String>, Option<String>)> {
    let mut rest = Vec::with_capacity(args.len());
    let mut value = default.map(String::from);
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == name {
            value = Some(it.next()?.clone());
        } else {
            rest.push(flag.clone());
        }
    }
    Some((rest, value))
}

/// `[<benchmark>] [flags]` with the positional optional: subcommands
/// that demo well on a default run (`trace`, `profile`, `audit`) fall
/// back to `sssp`.
fn optional_bench(args: &[String]) -> (String, &[String]) {
    match args.first() {
        Some(a) if !a.starts_with("--") => (a.clone(), &args[1..]),
        _ => (String::from("sssp"), args),
    }
}

/// Applies `--key value` pairs onto the config; returns `None` on a
/// malformed option.
fn apply_flags(mut cfg: SystemConfig, args: &[String]) -> Option<SystemConfig> {
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it.next()?;
        cfg = match flag.as_str() {
            "--scheme" => cfg.with_scheme(parse_scheme(value)?),
            "--refs" => cfg.with_refs_per_core(value.parse().ok()?),
            "--nodes" => cfg.with_nodes(value.parse().ok()?),
            "--fam-modules" => cfg.with_fam_modules(value.parse().ok()?),
            "--fabric-ns" => cfg.with_fabric_latency_ns(value.parse().ok()?),
            "--stu-entries" => cfg.with_stu_entries(value.parse().ok()?),
            "--seed" => cfg.with_seed(value.parse().ok()?),
            "--fault-profile" => {
                // Layer, don't clobber: an earlier `--kill-node`
                // survives a later `--fault-profile` (and vice versa —
                // `--kill-node` builds on the current config).
                let mut profile = parse_fault_profile(value)?;
                if let Some(schedule) = cfg.fault_injection.persistent {
                    profile = profile.with_persistent(schedule.fault, schedule.after_fam_ops);
                }
                cfg.with_fault_injection(profile)
            }
            "--kill-node" => {
                let (module, after) = parse_kill_node(value)?;
                let layered = cfg
                    .fault_injection
                    .with_persistent(PersistentFault::NodeDead { module }, after);
                cfg.with_fault_injection(layered)
            }
            _ => return None,
        };
    }
    // Catch an out-of-range `--kill-node` here, where both flags are
    // known, so the user gets a one-line error instead of the config
    // validator's panic.
    if let Some(schedule) = cfg.fault_injection.persistent {
        if let Some(module) = schedule.fault.module() {
            if module >= cfg.fam_modules {
                eprintln!(
                    "deact-sim: --kill-node names FAM module {module}, but only {} exist \
                     (raise --fam-modules)",
                    cfg.fam_modules
                );
                return None;
            }
        }
    }
    Some(cfg)
}

fn print_report(r: &RunReport) {
    println!("benchmark        {}", r.workload);
    println!("scheme           {}", r.scheme);
    println!("nodes x cores    {} x {}", r.nodes, r.cores_per_node);
    println!("instructions     {}", r.instructions);
    println!("cycles           {}", r.cycles);
    println!("ipc              {:.4}", r.ipc);
    println!("tlb hit          {:.2}%", r.tlb_hit_rate * 100.0);
    println!("llc mpki         {:.1}", r.mpki);
    if let Some(t) = r.translation_hit_rate {
        println!("translation hit  {:.2}%", t * 100.0);
    }
    if let Some(a) = r.acm_hit_rate {
        println!("acm hit          {:.2}%", a * 100.0);
    }
    println!(
        "fam requests     {} data-r, {} data-w, {} wb, {} AT ({:.1}% AT)",
        r.fam.data_reads,
        r.fam.data_writes,
        r.fam.writebacks,
        r.fam.at_total(),
        r.fam.at_percent()
    );
    println!(
        "dram             {} reads, {} writes",
        r.dram_reads, r.dram_writes
    );
    println!("page faults      {}", r.faults);
    println!(
        "fast path        {:.1}% of refs retired without the scheduler",
        r.fast_path_coverage * 100.0
    );
    println!(
        "parallel phase   {:.1}% of refs retired inside epoch shards",
        r.parallel_phase_coverage * 100.0
    );
    if !r.latency.is_empty() {
        println!(
            "latency          {} spans across {} stages:",
            r.latency.total_samples(),
            fam_sim::Stage::ALL
                .iter()
                .filter(|s| r.latency.stage(**s).count() > 0)
                .count()
        );
        print!("{}", r.latency);
    }
    if !r.recovery.is_zero() {
        let f = &r.recovery;
        println!(
            "faults injected  {} ({} drop, {} corrupt, {} stale, {} stall)",
            f.injected_total(),
            f.injected_drops,
            f.injected_corruptions,
            f.injected_stale,
            f.injected_stu_stalls
        );
        println!(
            "recovery         {} retries, {} timeouts, {} corrupt-NACKs, {} stale-NACKs",
            f.retries, f.timeouts, f.nacks_corrupt, f.nacks_stale
        );
        println!(
            "degradation      {} recovered, {} fatal ({:.1}% recovered); \
             {} backoff cy, {} link-down cy, {} stall cy",
            f.recovered,
            f.fatal,
            f.recovery_rate() * 100.0,
            f.backoff_cycles,
            f.link_down_wait_cycles,
            f.stu_stall_cycles
        );
    }
    if !r.degradation.is_zero() {
        let d = &r.degradation;
        println!(
            "perm. failure    {} pages quarantined: {} evacuated, {} lost, \
             {} table pages rebuilt",
            d.pages_quarantined, d.pages_evacuated, d.pages_lost, d.table_pages_rebuilt
        );
        println!(
            "recovery         started @ cycle {}, took {} cy \
             ({} cy evacuation, {} cy shootdown, {} entries invalidated)",
            d.recovery_started_cycle,
            d.recovery_cycles,
            d.evacuation_cycles,
            d.shootdown_cycles,
            d.shootdown_invalidations
        );
        println!(
            "degraded mode    {} poisoned accesses, {} PTEs healed, \
             {} writebacks dropped, {} usable pages remain",
            d.poisoned_accesses, d.pte_rewrites, d.writebacks_dropped, d.capacity_pages_remaining
        );
    }
}

fn run_or_report(bench: &str, cfg: SystemConfig, threads: usize) -> Result<RunReport, ExitCode> {
    try_run_benchmark_threads(bench, cfg, threads).map_err(|e| {
        eprintln!("deact-sim: {e}");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("{:>8} {:>8} {:>6}  (Table III)", "bench", "suite", "MPKI");
            for w in table3() {
                println!("{:>8} {:>8} {:>6}", w.name, w.suite.name(), w.paper_mpki);
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(bench) = args.get(1) else {
                return usage();
            };
            let Some((rest, sim_threads)) = extract_sim_threads(&args[2..]) else {
                return usage();
            };
            let Some(cfg) = apply_flags(SystemConfig::paper_default(), &rest) else {
                return usage();
            };
            match run_or_report(bench, cfg, sim_threads) {
                Ok(r) => {
                    print_report(&r);
                    ExitCode::SUCCESS
                }
                Err(code) => code,
            }
        }
        Some("trace") => {
            // `trace [<benchmark>] [flags]` — the benchmark positional
            // is optional so a bare `deact-sim trace` captures the
            // paper-default DeACT-N run the acceptance demo asks for.
            let (bench, flags) = match args.get(1) {
                Some(a) if !a.starts_with("--") => (a.clone(), &args[2..]),
                _ => (String::from("sssp"), &args[1..]),
            };
            let Some((rest, out, trace)) = extract_trace_opts(flags) else {
                return usage();
            };
            let Some((rest, sim_threads)) = extract_sim_threads(&rest) else {
                return usage();
            };
            let Some(cfg) = apply_flags(
                SystemConfig::paper_default().with_scheme(Scheme::DeactN),
                &rest,
            ) else {
                return usage();
            };
            let cfg = cfg.with_trace(trace);
            let Some(workload) = Workload::by_name(&bench) else {
                eprintln!("deact-sim: unknown benchmark `{bench}` (see `deact-sim list`)");
                return ExitCode::FAILURE;
            };
            let frequency_mhz = cfg.frequency_mhz;
            let mut system = System::new(cfg, &workload);
            let r = match system.try_run_parallel(sim_threads) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("deact-sim: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let tracer = system.tracer();
            let file = match std::fs::File::create(&out) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("deact-sim: cannot create {out}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = write_chrome_trace(std::io::BufWriter::new(file), tracer, frequency_mhz)
            {
                eprintln!("deact-sim: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            print_report(&r);
            println!(
                "trace            {} events recorded, {} retained, {} dropped, {} requests",
                tracer.recorded(),
                tracer.retained(),
                tracer.dropped(),
                tracer.requests_issued()
            );
            let series = tracer.series();
            if !series.samples().is_empty() {
                println!(
                    "timeline         {} windows of {} cycles (IPC / AT% per window):",
                    series.samples().len(),
                    series.window_cycles()
                );
                for (i, w) in series.samples().iter().enumerate() {
                    println!(
                        "  [{i:>3}] ipc {:.4}  at {:>5.1}%  retries {}  recovered {}",
                        w.ipc(series.window_cycles()),
                        w.at_percent(),
                        w.retries,
                        w.recovered
                    );
                }
                if series.clipped() > 0 {
                    println!(
                        "  ({} completions clipped into the last window)",
                        series.clipped()
                    );
                }
            }
            println!("wrote {out} (load it at https://ui.perfetto.dev or chrome://tracing)");
            ExitCode::SUCCESS
        }
        Some("profile") => {
            let (bench, flags) = optional_bench(&args[1..]);
            let Some((rest, out, top)) = extract_profile_opts(flags) else {
                return usage();
            };
            let Some((rest, sim_threads)) = extract_sim_threads(&rest) else {
                return usage();
            };
            let Some(cfg) = apply_flags(
                SystemConfig::paper_default().with_scheme(Scheme::DeactN),
                &rest,
            ) else {
                return usage();
            };
            // Host-time only: the profiler never reads the simulated
            // clock, so the report below is bit-identical to an
            // unprofiled run.
            fam_sim::profile::set_enabled(true);
            let r = match run_or_report(&bench, cfg, sim_threads) {
                Ok(r) => r,
                Err(code) => return code,
            };
            fam_sim::profile::set_enabled(false);
            print_report(&r);
            if r.profile.is_empty() {
                eprintln!("deact-sim: profiler captured no spans");
                return ExitCode::FAILURE;
            }
            println!();
            print!("{}", r.profile.top_table(top));
            if let Err(e) = std::fs::write(&out, r.profile.to_folded()) {
                eprintln!("deact-sim: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {out} (render: `inferno-flamegraph < {out} > flame.svg`, \
                 or load at https://speedscope.app)"
            );
            ExitCode::SUCCESS
        }
        Some("audit") => {
            let (bench, flags) = optional_bench(&args[1..]);
            let Some((rest, sim_threads)) = extract_sim_threads(flags) else {
                return usage();
            };
            let Some(cfg) = apply_flags(SystemConfig::paper_default(), &rest) else {
                return usage();
            };
            let Some(workload) = Workload::by_name(&bench) else {
                eprintln!("deact-sim: unknown benchmark `{bench}` (see `deact-sim list`)");
                return ExitCode::FAILURE;
            };
            let mut system = System::new(cfg, &workload);
            let r = match system.try_run_parallel(sim_threads) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("deact-sim: {e}");
                    return ExitCode::FAILURE;
                }
            };
            print_report(&r);
            println!();
            print!("{}", system.metrics());
            println!();
            let audit = system.audit();
            print!("{audit}");
            if audit.passed() {
                println!("audit            all {} checks passed", audit.checks.len());
                ExitCode::SUCCESS
            } else {
                eprintln!("deact-sim: conservation audit FAILED");
                ExitCode::FAILURE
            }
        }
        Some("record") => {
            let Some(bench) = args.get(1) else {
                return usage();
            };
            let Some((rest, out)) = extract_string_opt(&args[2..], "--out", None) else {
                return usage();
            };
            let out = out.unwrap_or_else(|| format!("{bench}.famt"));
            // Recording is engine-free (it only draws the streams), but
            // accept — and discard — `--sim-threads` so any `run` flag
            // set can be pasted onto `record` unchanged.
            let Some((rest, _)) = extract_sim_threads(&rest) else {
                return usage();
            };
            let Some(cfg) = apply_flags(SystemConfig::paper_default(), &rest) else {
                return usage();
            };
            let Some(workload) = Workload::by_name(bench) else {
                eprintln!("deact-sim: unknown benchmark `{bench}` (see `deact-sim list`)");
                return ExitCode::FAILURE;
            };
            let mut streams = System::synthetic_streams(&cfg, &workload);
            let file = match std::fs::File::create(&out) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("deact-sim: cannot create {out}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let records = match fam_workloads::trace::record_streams(
                std::io::BufWriter::new(file),
                &mut streams,
                cfg.refs_per_core,
            ) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("deact-sim: cannot write {out}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "wrote {out}: {records} records across {} ranks ({} nodes x {} cores, \
                 {} refs/core) — replay with `deact-sim replay {out}`",
                cfg.nodes * cfg.cores_per_node,
                cfg.nodes,
                cfg.cores_per_node,
                cfg.refs_per_core
            );
            ExitCode::SUCCESS
        }
        Some("replay") => {
            let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            let Some((rest, trace_out)) = extract_string_opt(&args[2..], "--trace-out", None)
            else {
                return usage();
            };
            let Some((rest, sim_threads)) = extract_sim_threads(&rest) else {
                return usage();
            };
            let Some(cfg) = apply_flags(SystemConfig::paper_default(), &rest) else {
                return usage();
            };
            let cfg = match &trace_out {
                Some(_) => cfg.with_trace(TraceConfig::full()),
                None => cfg,
            };
            let streams =
                match fam_workloads::trace::replay_streams(path, cfg.nodes, cfg.cores_per_node) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("deact-sim: cannot replay {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            let header = match std::fs::File::open(path)
                .and_then(fam_workloads::TraceReader::new)
                .map(|rd| rd.header())
            {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("deact-sim: cannot replay {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Label the report with the file stem so a replay of
            // `sssp.famt` prints exactly like `run sssp`.
            let label = std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.clone());
            let frequency_mhz = cfg.frequency_mhz;
            let mut system = System::with_streams(cfg, &label, streams);
            let r = match system.try_run_parallel(sim_threads) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("deact-sim: {e}");
                    return ExitCode::FAILURE;
                }
            };
            print_report(&r);
            let metrics = system.metrics();
            let wraps: u64 = (0..r.nodes)
                .map(|n| {
                    metrics
                        .counter_value(&format!("node{n}/replay_wraps"))
                        .unwrap_or(0)
                })
                .sum();
            println!(
                "replay           {path}: FAMT v{}, {} records, {} ranks, {} wrap-arounds",
                header.version, header.count, header.ranks, wraps
            );
            if let Some(out) = trace_out {
                let file = match std::fs::File::create(&out) {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("deact-sim: cannot create {out}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Err(e) = write_chrome_trace(
                    std::io::BufWriter::new(file),
                    system.tracer(),
                    frequency_mhz,
                ) {
                    eprintln!("deact-sim: cannot write {out}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {out} (load it at https://ui.perfetto.dev or chrome://tracing)");
            }
            ExitCode::SUCCESS
        }
        Some("compare") => {
            let Some(bench) = args.get(1) else {
                return usage();
            };
            let Some((rest, jobs)) = extract_jobs(&args[2..]) else {
                return usage();
            };
            let Some((rest, sim_threads)) = extract_sim_threads(&rest) else {
                return usage();
            };
            let Some(cfg) = apply_flags(SystemConfig::paper_default(), &rest) else {
                return usage();
            };
            // Cap the product of the two parallelism levels at the
            // host's available parallelism: with four scheme runs in
            // flight, oversubscribing the intra-run threads would only
            // slow everything down (reports are identical either way).
            // The helper warns once per process, not once per job.
            let sim_threads = fam_sim::cap_sim_threads(jobs, sim_threads);
            // Run all four schemes across the bounded pool; printing
            // happens afterwards in scheme order, so the table is
            // identical at any worker count.
            let reports = fam_sim::scoped_map(jobs, Scheme::ALL.len(), |i| {
                run_or_report(bench, cfg.with_scheme(Scheme::ALL[i]), sim_threads)
            });
            let mut baseline_ipc = None;
            println!(
                "{:>8} {:>9} {:>10} {:>8} {:>8}",
                "scheme", "ipc", "norm", "AT%", "secure"
            );
            for (scheme, report) in Scheme::ALL.into_iter().zip(reports) {
                let r = match report {
                    Ok(r) => r,
                    Err(code) => return code,
                };
                let base = *baseline_ipc.get_or_insert(r.ipc);
                println!(
                    "{:>8} {:>9.4} {:>10.2} {:>8.1} {:>8}",
                    scheme.name(),
                    r.ipc,
                    r.ipc / base,
                    r.fam.at_percent(),
                    if scheme.is_secure() { "yes" } else { "no" }
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
