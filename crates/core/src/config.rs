//! Full-system configuration (Table II).

use fam_broker::AcmWidth;
use fam_fabric::FabricConfig;
use fam_mem::{HierarchyConfig, NvmConfig};
use fam_sim::{FaultConfig, Frequency, TraceConfig};
use fam_stu::StuConfig;
use fam_vm::TlbConfig;

use crate::translator::RetryConfig;
use crate::Scheme;

/// Configuration of one simulated FAM system, defaulting to the
/// paper's Table II parameters.
///
/// # Examples
///
/// ```
/// use deact::{Scheme, SystemConfig};
///
/// let cfg = SystemConfig::paper_default()
///     .with_scheme(Scheme::DeactN)
///     .with_fabric_latency_ns(1000);
/// assert_eq!(cfg.fabric.latency_ns, 1000);
/// assert_eq!(cfg.cores_per_node, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Virtual-memory scheme under test.
    pub scheme: Scheme,
    /// Number of compute nodes sharing the fabric and FAM (Fig. 16
    /// sweeps 1–8; default 1).
    pub nodes: usize,
    /// Cores per node (Table II: 4).
    pub cores_per_node: usize,
    /// Core frequency (Table II: 2 GHz).
    pub frequency_mhz: u64,
    /// Issue/retire width (Table II: 2 instructions per cycle).
    pub issue_width: u32,
    /// Maximum outstanding memory requests per core (Table II: 32).
    pub core_outstanding: usize,
    /// TLB hierarchy (Table II: 32 + 256 entries).
    pub tlb: TlbConfig,
    /// Node PTW-cache entries (§IV: 32, per Bhargava et al.).
    pub ptw_cache_entries: usize,
    /// Data-cache hierarchy (Table II: 32 KB / 256 KB / 1 MB).
    pub hierarchy: HierarchyConfig,
    /// Local DRAM access latency in nanoseconds.
    pub dram_access_ns: u64,
    /// Local DRAM channel occupancy in cycles per block.
    pub dram_occupancy_cycles: u64,
    /// Local DRAM capacity in bytes (Table II: 1 GB).
    pub dram_bytes: u64,
    /// The FAM NVM device (Table II: 16 GB, 60/150 ns, 32 banks, 128
    /// outstanding).
    pub nvm: NvmConfig,
    /// FAM capacity in bytes (Table II: 16 GB).
    pub fam_bytes: u64,
    /// Independent FAM modules behind the fabric. Fig. 16's setup
    /// keeps "memory pools directly proportional to the number of
    /// nodes"; pages are interleaved across modules, each with its own
    /// banks and outstanding-request cap.
    pub fam_modules: usize,
    /// Fabric parameters (Table II: 500 ns).
    pub fabric: FabricConfig,
    /// STU cache entries (Table II: 1024; Fig. 13 sweeps 256–4096).
    pub stu_entries: usize,
    /// STU cache associativity (Table II: 8).
    pub stu_ways: usize,
    /// STU FAM-PTW cache entries. The paper grants 32 entries at full
    /// memory scale (§IV), where they covered roughly a tenth of a
    /// scatter benchmark's footprint; at this repo's scaled-down
    /// footprints (DESIGN.md §1) the equivalent reach is 4 entries.
    pub stu_ptw_entries: usize,
    /// ACM entry width (Fig. 14 sweeps 8/16/32-bit; default 16).
    pub acm_width: AcmWidth,
    /// DeACT-N tag/ACM pairs per way override (§V-D2; `None` =
    /// natural packing).
    pub deact_n_pairs: Option<usize>,
    /// In-DRAM FAM translation cache size in bytes (§IV: 1 MB).
    pub translation_cache_bytes: u64,
    /// §III-C ablation: track recency (LRU) in the translation cache
    /// instead of random replacement. Real LRU costs a DRAM write per
    /// access to update the mapping status, which the timing model
    /// charges; the paper rejects it for exactly that reason.
    pub translation_cache_lru: bool,
    /// One-way node↔STU router hop in nanoseconds (the STU sits in
    /// the first router, §III-A).
    pub router_ns: u64,
    /// STU cache lookup latency in cycles.
    pub stu_lookup_cycles: u64,
    /// Kernel page-fault service time in nanoseconds (charged once per
    /// first touch; identical across schemes).
    pub fault_ns: u64,
    /// Fraction of application pages placed in local DRAM (§IV
    /// footnote: 20% local / 80% FAM).
    pub local_fraction: f64,
    /// Pages in a cross-node shared segment (§VI "Shared Pages"),
    /// mapped RW into every node at [`fam_workloads::SHARED_VA_BASE`]
    /// during construction. 0 (the default) disables sharing; pair a
    /// non-zero value with a workload whose `shared_fraction` is set.
    pub shared_segment_pages: u64,
    /// §III-A extension: with per-node memory-encryption keys, read
    /// requests need no access-control check (stolen ciphertext is
    /// useless), so DeACT may skip verification for reads. Off by
    /// default; exercised by the ablation bench.
    pub skip_read_checks: bool,
    /// Off-core references simulated per core.
    pub refs_per_core: u64,
    /// Master seed.
    pub seed: u64,
    /// Fabric fault injection (drops, corruption, link-down windows,
    /// STU stalls, stale translations). Disabled by default — a
    /// disabled injector is a zero-cost no-op, so default runs are
    /// bit-identical to a build without the fault layer. Named
    /// `fault_injection` to stay clearly apart from `fault_ns`, the
    /// page-fault service latency.
    pub fault_injection: FaultConfig,
    /// Retry/timeout/backoff policy the nodes use to recover from
    /// injected faults.
    pub retry: RetryConfig,
    /// Management-path copy bandwidth, in bytes per core cycle, charged
    /// on the simulated clock while the broker evacuates still-reachable
    /// pages off quarantined FAM (a persistent [`fam_sim::PersistentFault`]).
    pub evacuation_bytes_per_cycle: u64,
    /// When `true`, the first access that reads data a permanent
    /// failure destroyed surfaces as [`crate::SimError::DataLoss`]
    /// instead of a counted poisoned access; the run stops rather than
    /// continuing degraded.
    pub halt_on_data_loss: bool,
    /// Request-lifecycle tracing (event ring, latency breakdown,
    /// windowed time series). Disabled by default — like
    /// `fault_injection`, a disabled tracer is a zero-cost no-op and
    /// default runs are bit-identical to a build without the trace
    /// layer.
    pub trace: TraceConfig,
}

impl SystemConfig {
    /// The paper's configuration (Table II), one node, DeACT-N.
    pub fn paper_default() -> SystemConfig {
        SystemConfig {
            scheme: Scheme::DeactN,
            nodes: 1,
            cores_per_node: 4,
            frequency_mhz: 2000,
            issue_width: 2,
            core_outstanding: 32,
            tlb: TlbConfig::default(),
            ptw_cache_entries: 32,
            hierarchy: HierarchyConfig::default(),
            dram_access_ns: 60,
            dram_occupancy_cycles: 2,
            dram_bytes: 1 << 30,
            nvm: NvmConfig::default(),
            fam_bytes: 16 << 30,
            fam_modules: 1,
            fabric: FabricConfig::default(),
            stu_entries: 1024,
            stu_ways: 8,
            stu_ptw_entries: 4,
            acm_width: AcmWidth::W16,
            deact_n_pairs: None,
            translation_cache_bytes: 1 << 20,
            translation_cache_lru: false,
            router_ns: 10,
            stu_lookup_cycles: 4,
            fault_ns: 1500,
            local_fraction: 0.20,
            shared_segment_pages: 0,
            skip_read_checks: false,
            refs_per_core: 100_000,
            seed: 0xDEAC7,
            fault_injection: FaultConfig::disabled(),
            retry: RetryConfig::default(),
            evacuation_bytes_per_cycle: 64,
            halt_on_data_loss: false,
            trace: TraceConfig::disabled(),
        }
    }

    /// Sets the scheme.
    #[must_use]
    pub fn with_scheme(mut self, scheme: Scheme) -> SystemConfig {
        self.scheme = scheme;
        self
    }

    /// Sets the node count (Fig. 16).
    #[must_use]
    pub fn with_nodes(mut self, nodes: usize) -> SystemConfig {
        self.nodes = nodes;
        self
    }

    /// Sets the core count per node.
    #[must_use]
    pub fn with_cores_per_node(mut self, cores: usize) -> SystemConfig {
        self.cores_per_node = cores;
        self
    }

    /// Sets the FAM module count (Fig. 16 pairs it with the node
    /// count).
    ///
    /// # Panics
    ///
    /// Panics if `modules` is zero.
    #[must_use]
    pub fn with_fam_modules(mut self, modules: usize) -> SystemConfig {
        assert!(modules > 0, "need at least one FAM module");
        self.fam_modules = modules;
        self
    }

    /// Sets the fabric one-way latency (Fig. 15).
    #[must_use]
    pub fn with_fabric_latency_ns(mut self, ns: u64) -> SystemConfig {
        self.fabric.latency_ns = ns;
        self
    }

    /// Sets the FAM pool capacity in bytes.
    #[must_use]
    pub fn with_fam_bytes(mut self, bytes: u64) -> SystemConfig {
        self.fam_bytes = bytes;
        self
    }

    /// Sets the STU cache size in entries (Fig. 13).
    #[must_use]
    pub fn with_stu_entries(mut self, entries: usize) -> SystemConfig {
        self.stu_entries = entries;
        self
    }

    /// Sets the STU associativity (§V-D1 text sweep).
    #[must_use]
    pub fn with_stu_ways(mut self, ways: usize) -> SystemConfig {
        self.stu_ways = ways;
        self
    }

    /// Sets the ACM width (Fig. 14).
    #[must_use]
    pub fn with_acm_width(mut self, width: AcmWidth) -> SystemConfig {
        self.acm_width = width;
        self
    }

    /// Sets the DeACT-N pairs-per-way override (Fig. 14's 1/2/3-pair
    /// study).
    #[must_use]
    pub fn with_deact_n_pairs(mut self, pairs: Option<usize>) -> SystemConfig {
        self.deact_n_pairs = pairs;
        self
    }

    /// Sets the number of references each core executes.
    #[must_use]
    pub fn with_refs_per_core(mut self, refs: u64) -> SystemConfig {
        self.refs_per_core = refs;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> SystemConfig {
        self.seed = seed;
        self
    }

    /// Enables the §III-A encrypted-memory read bypass (see
    /// [`SystemConfig::skip_read_checks`]).
    #[must_use]
    pub fn with_skip_read_checks(mut self, on: bool) -> SystemConfig {
        self.skip_read_checks = on;
        self
    }

    /// Sets the cross-node shared-segment size (§VI).
    #[must_use]
    pub fn with_shared_segment_pages(mut self, pages: u64) -> SystemConfig {
        self.shared_segment_pages = pages;
        self
    }

    /// Enables the §III-C LRU translation-cache ablation (see
    /// [`SystemConfig::translation_cache_lru`]).
    #[must_use]
    pub fn with_translation_cache_lru(mut self, on: bool) -> SystemConfig {
        self.translation_cache_lru = on;
        self
    }

    /// Sets the fault-injection profile (see [`FaultConfig`]).
    #[must_use]
    pub fn with_fault_injection(mut self, faults: FaultConfig) -> SystemConfig {
        self.fault_injection = faults;
        self
    }

    /// Sets the retry/timeout/backoff policy (see [`RetryConfig`]).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryConfig) -> SystemConfig {
        self.retry = retry;
        self
    }

    /// Sets the evacuation bandwidth in bytes per core cycle (see
    /// [`SystemConfig::evacuation_bytes_per_cycle`]).
    #[must_use]
    pub fn with_evacuation_bandwidth(mut self, bytes_per_cycle: u64) -> SystemConfig {
        self.evacuation_bytes_per_cycle = bytes_per_cycle;
        self
    }

    /// Makes data loss fatal (see
    /// [`SystemConfig::halt_on_data_loss`]).
    #[must_use]
    pub fn with_halt_on_data_loss(mut self, on: bool) -> SystemConfig {
        self.halt_on_data_loss = on;
        self
    }

    /// Sets the tracing configuration (see [`TraceConfig`]).
    #[must_use]
    pub fn with_trace(mut self, trace: TraceConfig) -> SystemConfig {
        self.trace = trace;
        self
    }

    /// The core clock.
    pub fn frequency(&self) -> Frequency {
        Frequency::mhz(self.frequency_mhz)
    }

    /// The STU cache configuration implied by scheme, geometry and ACM
    /// width.
    ///
    /// # Panics
    ///
    /// Panics for [`Scheme::EFam`], which has no STU, or if
    /// `stu_entries` does not divide by `stu_ways`.
    pub fn stu_config(&self) -> StuConfig {
        let organization = self
            .scheme
            .stu_organization()
            .expect("E-FAM has no STU cache");
        assert_eq!(
            self.stu_entries % self.stu_ways,
            0,
            "STU entries must divide into ways"
        );
        StuConfig {
            sets: self.stu_entries / self.stu_ways,
            ways: self.stu_ways,
            organization,
            acm_width: self.acm_width,
            pairs_per_way: self.deact_n_pairs,
        }
    }

    /// Number of entries in the in-DRAM translation cache: each 64-
    /// byte set holds four 104-bit entries (§III-C).
    pub fn translation_cache_entries(&self) -> u64 {
        self.translation_cache_bytes / 64 * 4
    }

    /// Validates cross-field invariants.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero nodes/cores/refs, a
    /// local fraction outside `[0, 1]`).
    pub fn validate(&self) {
        assert!(self.nodes > 0, "need at least one node");
        assert!(self.cores_per_node > 0, "need at least one core");
        assert!(self.refs_per_core > 0, "need at least one reference");
        assert!(
            (0.0..=1.0).contains(&self.local_fraction),
            "local fraction must be a probability"
        );
        assert!(self.issue_width > 0, "issue width must be non-zero");
        assert!(
            self.evacuation_bytes_per_cycle > 0,
            "evacuation bandwidth must be non-zero"
        );
        if let Some(schedule) = self.fault_injection.persistent {
            if let Some(module) = schedule.fault.module() {
                assert!(
                    module < self.fam_modules,
                    "persistent fault names FAM module {module}, but only {} exist",
                    self.fam_modules
                );
            }
        }
        self.fault_injection.validate();
        self.retry.validate();
    }
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table2() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.cores_per_node, 4);
        assert_eq!(c.frequency_mhz, 2000);
        assert_eq!(c.issue_width, 2);
        assert_eq!(c.core_outstanding, 32);
        assert_eq!(c.tlb.l1_entries, 32);
        assert_eq!(c.tlb.l2_entries, 256);
        assert_eq!(c.hierarchy.l1_bytes, 32 * 1024);
        assert_eq!(c.hierarchy.l2_bytes, 256 * 1024);
        assert_eq!(c.hierarchy.l3_bytes, 1024 * 1024);
        assert_eq!(c.dram_bytes, 1 << 30);
        assert_eq!(c.fam_bytes, 16 << 30);
        assert_eq!(c.nvm.read_ns, 60);
        assert_eq!(c.nvm.write_ns, 150);
        assert_eq!(c.nvm.banks, 32);
        assert_eq!(c.nvm.max_outstanding, 128);
        assert_eq!(c.fabric.latency_ns, 500);
        assert_eq!(c.stu_entries, 1024);
        assert_eq!(c.stu_ways, 8);
        assert_eq!(c.translation_cache_bytes, 1 << 20);
    }

    #[test]
    fn builders_compose() {
        let c = SystemConfig::paper_default()
            .with_scheme(Scheme::IFam)
            .with_nodes(8)
            .with_stu_entries(256)
            .with_fabric_latency_ns(6000)
            .with_refs_per_core(10)
            .with_seed(1);
        assert_eq!(c.scheme, Scheme::IFam);
        assert_eq!(c.nodes, 8);
        assert_eq!(c.stu_config().sets, 32);
        assert_eq!(c.fabric.latency_ns, 6000);
    }

    #[test]
    fn translation_cache_entry_math() {
        // 1 MB / 64 B per set * 4 entries per set = 65536 entries.
        assert_eq!(
            SystemConfig::paper_default().translation_cache_entries(),
            65536
        );
    }

    #[test]
    fn stu_config_reflects_scheme() {
        use fam_stu::StuOrganization;
        let c = SystemConfig::paper_default().with_scheme(Scheme::DeactW);
        assert_eq!(c.stu_config().organization, StuOrganization::DeactW);
        assert_eq!(c.stu_config().sets, 128);
    }

    #[test]
    #[should_panic(expected = "E-FAM has no STU")]
    fn efam_has_no_stu_config() {
        SystemConfig::paper_default()
            .with_scheme(Scheme::EFam)
            .stu_config();
    }

    #[test]
    fn validate_accepts_default() {
        SystemConfig::paper_default().validate();
    }

    #[test]
    fn fault_injection_defaults_off() {
        let c = SystemConfig::paper_default();
        assert!(!c.fault_injection.enabled);
        assert_eq!(c.retry, RetryConfig::default());
        assert!(!c.trace.enabled, "tracing defaults off like faults");
        assert!(c.with_trace(TraceConfig::full()).trace.enabled);
        let faulty = c.with_fault_injection(FaultConfig::transient(9));
        assert!(faulty.fault_injection.enabled);
        faulty.validate();
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn validate_rejects_bad_fault_profile() {
        SystemConfig::paper_default()
            .with_fault_injection(FaultConfig {
                enabled: true,
                drop_prob: 7.0,
                ..FaultConfig::disabled()
            })
            .validate();
    }

    #[test]
    fn evacuation_and_data_loss_knobs_compose() {
        let c = SystemConfig::paper_default()
            .with_evacuation_bandwidth(128)
            .with_halt_on_data_loss(true);
        assert_eq!(c.evacuation_bytes_per_cycle, 128);
        assert!(c.halt_on_data_loss);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "names FAM module")]
    fn validate_rejects_killing_a_nonexistent_module() {
        use fam_sim::PersistentFault;
        SystemConfig::paper_default()
            .with_fam_modules(2)
            .with_fault_injection(FaultConfig::persistent_only(
                1,
                PersistentFault::NodeDead { module: 5 },
                100,
            ))
            .validate();
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn validate_rejects_zero_nodes() {
        SystemConfig {
            nodes: 0,
            ..SystemConfig::paper_default()
        }
        .validate();
    }
}
