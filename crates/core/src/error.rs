//! Typed errors for the simulation API boundary.
//!
//! The library's callers (the `deact-sim` CLI, the bench harness,
//! notebooks driving the crate) should get a value they can match on
//! and print, not a panic backtrace, when a run cannot proceed.

use fam_broker::BrokerError;

/// Why a simulation could not run to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The requested benchmark is not in the Table III roster.
    UnknownBenchmark {
        /// The name that failed to resolve.
        name: String,
    },
    /// The memory broker could not allocate FAM for a demand map — the
    /// configured FAM is too small for the workload's footprint.
    FamExhausted {
        /// Node index whose request failed.
        node: usize,
        /// The underlying broker failure.
        source: BrokerError,
    },
    /// An access touched data a permanent failure destroyed, and the
    /// configuration asked for the run to halt on data loss instead of
    /// recording a poisoned outcome and continuing degraded.
    DataLoss {
        /// Node index whose access hit the lost page.
        node: usize,
        /// The quarantined FAM page that held the data.
        fam_page: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownBenchmark { name } => {
                write!(
                    f,
                    "unknown benchmark {name}; see Table III (`deact-sim list`)"
                )
            }
            SimError::FamExhausted { node, source } => {
                write!(
                    f,
                    "node {node} could not demand-map FAM ({source}); \
                     grow `fam_bytes` or shrink the workload"
                )
            }
            SimError::DataLoss { node, fam_page } => {
                write!(
                    f,
                    "node {node} read FAM page {fam_page:#x}, destroyed by a \
                     permanent failure; rerun without `halt_on_data_loss` to \
                     continue degraded"
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::FamExhausted { source, .. } => Some(source),
            SimError::UnknownBenchmark { .. } | SimError::DataLoss { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_readable() {
        let e = SimError::UnknownBenchmark {
            name: "doom".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("unknown benchmark doom"), "{msg}");
        assert!(msg.contains("Table III"), "{msg}");
    }

    #[test]
    fn data_loss_names_the_page() {
        let e = SimError::DataLoss {
            node: 1,
            fam_page: 0x2A,
        };
        let msg = e.to_string();
        assert!(msg.contains("node 1"), "{msg}");
        assert!(msg.contains("0x2a"), "{msg}");
        assert!(msg.contains("permanent failure"), "{msg}");
    }

    #[test]
    fn fam_exhausted_carries_source() {
        use std::error::Error;
        let e = SimError::FamExhausted {
            node: 3,
            source: BrokerError::OutOfMemory,
        };
        assert!(e.to_string().contains("node 3"));
        assert!(e.source().is_some());
    }
}
