//! Run-level metrics: everything the paper's figures plot.

use crate::Scheme;
use fam_sim::LatencyBreakdown;

/// Request traffic observed *at the FAM*, split the way Figs. 4 and 11
/// split it: address-translation (AT) requests vs everything else.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FamTraffic {
    /// Data reads reaching the FAM.
    pub data_reads: u64,
    /// Data writes reaching the FAM.
    pub data_writes: u64,
    /// Dirty-line writebacks reaching the FAM.
    pub writebacks: u64,
    /// Node page-table entry reads served by the FAM (E-FAM's AT
    /// traffic: PTE pages live in FAM).
    pub at_pte_reads: u64,
    /// System page-table walk reads issued by STUs.
    pub at_walk_reads: u64,
    /// ACM metadata-block reads (DeACT).
    pub at_acm_reads: u64,
    /// Sharing-bitmap reads (DeACT, shared pages).
    pub at_bitmap_reads: u64,
}

impl FamTraffic {
    /// Address-translation requests (the AT bar of Fig. 4).
    pub fn at_total(&self) -> u64 {
        self.at_pte_reads + self.at_walk_reads + self.at_acm_reads + self.at_bitmap_reads
    }

    /// Non-AT requests.
    pub fn non_at_total(&self) -> u64 {
        self.data_reads + self.data_writes + self.writebacks
    }

    /// All requests at the FAM.
    pub fn total(&self) -> u64 {
        self.at_total() + self.non_at_total()
    }

    /// AT requests as a percentage of all FAM requests (Figs. 4 / 11).
    pub fn at_percent(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.at_total() as f64 * 100.0 / self.total() as f64
        }
    }

    /// Accumulates another traffic record.
    pub fn merge(&mut self, other: &FamTraffic) {
        self.data_reads += other.data_reads;
        self.data_writes += other.data_writes;
        self.writebacks += other.writebacks;
        self.at_pte_reads += other.at_pte_reads;
        self.at_walk_reads += other.at_walk_reads;
        self.at_acm_reads += other.at_acm_reads;
        self.at_bitmap_reads += other.at_bitmap_reads;
    }
}

/// Graceful-degradation accounting: what the fault injector threw at
/// the run and what the retry/NACK machinery did about it.
///
/// All-zero (the [`Default`]) when injection is disabled — the
/// zero-overhead-off contract is that a default run's report differs
/// from a pre-fault-layer run *only* by this all-zero block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultRecovery {
    /// Fabric frames the injector silently dropped.
    pub injected_drops: u64,
    /// Fabric frames the injector corrupted in flight.
    pub injected_corruptions: u64,
    /// Cached translations the injector declared stale.
    pub injected_stale: u64,
    /// STU stalls the injector inserted.
    pub injected_stu_stalls: u64,
    /// Timeout expiries observed by requesters (drop detections).
    pub timeouts: u64,
    /// Corrupt-frame NACKs received (wire CRC rejections).
    pub nacks_corrupt: u64,
    /// Stale-translation NACKs received (DeACT `V`-flag rejections).
    pub nacks_stale: u64,
    /// Unreachable-permanent NACKs received (persistent faults: dead
    /// module, failed media, severed link). These never clear on
    /// retry; the requester escalates to broker recovery instead.
    pub nacks_unreachable: u64,
    /// Reissues performed by the retry state machine.
    pub retries: u64,
    /// Cycles spent waiting out exponential backoff.
    pub backoff_cycles: u64,
    /// Cycles spent stalled behind scheduled link-down windows.
    pub link_down_wait_cycles: u64,
    /// Cycles lost to injected STU stalls.
    pub stu_stall_cycles: u64,
    /// Faulted requests that eventually completed within the retry
    /// budget.
    pub recovered: u64,
    /// Requests that exhausted the retry budget (the run still
    /// completes — degradation, not collapse — but these are the
    /// accesses a real system would surface as machine-check-grade
    /// errors).
    pub fatal: u64,
}

impl FaultRecovery {
    /// Total faults injected into this run.
    pub fn injected_total(&self) -> u64 {
        self.injected_drops
            + self.injected_corruptions
            + self.injected_stale
            + self.injected_stu_stalls
    }

    /// Fraction of faulted requests that recovered within budget
    /// (`1.0` when nothing faulted).
    pub fn recovery_rate(&self) -> f64 {
        let total = self.recovered + self.fatal;
        if total == 0 {
            1.0
        } else {
            self.recovered as f64 / total as f64
        }
    }

    /// Whether the run saw no injected faults at all (the disabled-
    /// injector invariant).
    pub fn is_zero(&self) -> bool {
        *self == FaultRecovery::default()
    }

    /// Accumulates another recovery record.
    pub fn merge(&mut self, other: &FaultRecovery) {
        self.injected_drops += other.injected_drops;
        self.injected_corruptions += other.injected_corruptions;
        self.injected_stale += other.injected_stale;
        self.injected_stu_stalls += other.injected_stu_stalls;
        self.timeouts += other.timeouts;
        self.nacks_corrupt += other.nacks_corrupt;
        self.nacks_stale += other.nacks_stale;
        self.nacks_unreachable += other.nacks_unreachable;
        self.retries += other.retries;
        self.backoff_cycles += other.backoff_cycles;
        self.link_down_wait_cycles += other.link_down_wait_cycles;
        self.stu_stall_cycles += other.stu_stall_cycles;
        self.recovered += other.recovered;
        self.fatal += other.fatal;
    }
}

/// What surviving a permanent failure cost: the broker-driven
/// quarantine/evacuation/shootdown protocol's end-to-end accounting,
/// the raw material of graceful-degradation curves.
///
/// All-zero (the [`Default`]) when no persistent fault was scheduled —
/// the same zero-overhead-off contract as [`FaultRecovery`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Usable FAM pages the quarantine removed from service.
    pub pages_quarantined: u64,
    /// Data pages copied to surviving FAM over the management path.
    pub pages_evacuated: u64,
    /// Data pages destroyed with the failed hardware.
    pub pages_lost: u64,
    /// System-page-table interior pages the broker rebuilt.
    pub table_pages_rebuilt: u64,
    /// Cache entries invalidated by the broadcast shootdown (TLB +
    /// STU + PTW-cache, every surviving node).
    pub shootdown_invalidations: u64,
    /// Cycles the shootdown broadcast cost on the simulated clock.
    pub shootdown_cycles: u64,
    /// Cycles spent copying evacuated pages at the configured
    /// evacuation bandwidth.
    pub evacuation_cycles: u64,
    /// Cycle at which the escalation began (the first access that
    /// exhausted its retry budget against the persistent fault).
    pub recovery_started_cycle: u64,
    /// Cycles from escalation to a fully recovered (degraded but
    /// consistent) system — the time-to-recover metric.
    pub recovery_cycles: u64,
    /// Usable FAM pages remaining in service after the quarantine.
    pub capacity_pages_remaining: u64,
    /// Accesses that surfaced as poisoned (data loss) after recovery.
    pub poisoned_accesses: u64,
    /// E-FAM node PTEs lazily rewritten to evacuated locations at walk
    /// time.
    pub pte_rewrites: u64,
    /// Dirty writebacks dropped because their target was quarantined.
    pub writebacks_dropped: u64,
}

impl DegradationReport {
    /// Whether the run survived without any permanent failure (the
    /// disabled-schedule invariant).
    pub fn is_zero(&self) -> bool {
        *self == DegradationReport::default()
    }
}

/// The result of one simulation run: one benchmark under one scheme
/// and configuration.
///
/// `PartialEq` compares every field (including the `f64` rates), which
/// is exactly what the scheduler-equivalence and parallel-determinism
/// tests need: two runs are "the same" only if they are bit-identical.
/// The exceptions are [`RunReport::fast_path_coverage`] — an
/// engine-dependent diagnostic (how much work the chosen engine
/// retired off its fast path) — and [`RunReport::profile`] — host
/// time, nondeterministic by nature; both are deliberately excluded
/// from equality so reports stay engine- and host-independent.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scheme simulated.
    pub scheme: Scheme,
    /// Benchmark name.
    pub workload: String,
    /// Nodes simulated.
    pub nodes: usize,
    /// Cores per node.
    pub cores_per_node: usize,
    /// Instructions retired, all cores.
    pub instructions: u64,
    /// Makespan in cycles.
    pub cycles: u64,
    /// System IPC (`instructions / cycles`); the paper's normalized
    /// performance is the ratio of this across schemes.
    pub ipc: f64,
    /// Traffic observed at the FAM.
    pub fam: FamTraffic,
    /// FAM address-translation hit rate (Fig. 10): the STU's coupled
    /// entry hit rate for I-FAM, the in-DRAM translation cache hit
    /// rate for DeACT. `None` for E-FAM (no system-level translation).
    pub translation_hit_rate: Option<f64>,
    /// ACM hit rate at the STU (Fig. 9). `None` for E-FAM.
    pub acm_hit_rate: Option<f64>,
    /// Node TLB hit rate.
    pub tlb_hit_rate: f64,
    /// LLC misses per kilo-instruction (Table III's metric).
    pub mpki: f64,
    /// Local DRAM reads (data + translation-cache traffic).
    pub dram_reads: u64,
    /// Local DRAM writes.
    pub dram_writes: u64,
    /// Page faults (node-level first touches plus system-level
    /// demand maps).
    pub faults: u64,
    /// Fault-injection and recovery accounting (all-zero when the
    /// injector is disabled).
    pub recovery: FaultRecovery,
    /// Permanent-failure survival accounting (all-zero when no
    /// persistent fault was scheduled).
    pub degradation: DegradationReport,
    /// References simulated per core.
    pub refs_per_core: u64,
    /// Per-stage latency histograms, aggregated across nodes and
    /// devices. Empty (the [`Default`]) when tracing is disabled — the
    /// tracer's zero-overhead-off contract is that a default run's
    /// report differs from a pre-trace-layer run *only* by this empty
    /// block.
    pub latency: LatencyBreakdown,
    /// Fraction of references the engine retired without touching the
    /// scheduler heap — the sequential engine's fused fast path plus
    /// the parallel engine's node-local phase. A coverage regression
    /// here means references silently fell back to the slow path.
    /// Engine-dependent: excluded from `PartialEq` (and zero for the
    /// preserved exact engines).
    pub fast_path_coverage: f64,
    /// Fraction of references the parallel engine retired inside its
    /// epoch-parallel phase (node-local retirements plus shard-granted
    /// FAM retirements), before the sequential commit drain. Unlike
    /// wall-clock speedup this is deterministic and thread-count
    /// invariant — the admission scan is sequential — so it is the
    /// portable measure of how much of a run the sharded engine can
    /// take off the critical section. Engine-dependent: excluded from
    /// `PartialEq` (zero for the sequential engines).
    pub parallel_phase_coverage: f64,
    /// Host-time profile of the run (empty unless
    /// `fam_sim::profile::set_enabled(true)` was in effect). Host
    /// nanoseconds are nondeterministic by nature, so like
    /// `fast_path_coverage` this is a diagnostic excluded from
    /// `PartialEq` — profiled and unprofiled runs compare equal, and a
    /// differential test pins that the *included* fields really are
    /// bit-identical either way.
    pub profile: fam_sim::ProfileReport,
}

impl PartialEq for RunReport {
    fn eq(&self, other: &RunReport) -> bool {
        // Every field except `fast_path_coverage` (a property of the
        // engine that produced the report) and `profile` (host time,
        // not simulated state). Destructure so adding a field without
        // deciding its equality role fails to compile.
        let RunReport {
            scheme,
            workload,
            nodes,
            cores_per_node,
            instructions,
            cycles,
            ipc,
            fam,
            translation_hit_rate,
            acm_hit_rate,
            tlb_hit_rate,
            mpki,
            dram_reads,
            dram_writes,
            faults,
            recovery,
            degradation,
            refs_per_core,
            latency,
            fast_path_coverage: _,
            parallel_phase_coverage: _,
            profile: _,
        } = self;
        *scheme == other.scheme
            && *workload == other.workload
            && *nodes == other.nodes
            && *cores_per_node == other.cores_per_node
            && *instructions == other.instructions
            && *cycles == other.cycles
            && *ipc == other.ipc
            && *fam == other.fam
            && *translation_hit_rate == other.translation_hit_rate
            && *acm_hit_rate == other.acm_hit_rate
            && *tlb_hit_rate == other.tlb_hit_rate
            && *mpki == other.mpki
            && *dram_reads == other.dram_reads
            && *dram_writes == other.dram_writes
            && *faults == other.faults
            && *recovery == other.recovery
            && *degradation == other.degradation
            && *refs_per_core == other.refs_per_core
            && *latency == other.latency
    }
}

/// One conservation-audit check: an invariant the system's counters
/// must satisfy at end of run.
#[derive(Debug, Clone)]
pub struct AuditCheck {
    /// Stable check name (e.g. `refs-conservation`).
    pub name: &'static str,
    /// Whether the invariant held.
    pub passed: bool,
    /// Human-readable statement of the invariant with both sides'
    /// values, or the reason the check was skipped.
    pub detail: String,
}

/// The result of [`crate::System::audit`]: every cross-metric
/// conservation invariant, with pass/fail/skip detail.
///
/// Checks that depend on fault injection being off (fabric traversal
/// parity) or on no permanent failure being scheduled (NVM/traffic
/// balance, drop accounting) are *skipped* — reported passing with a
/// "skipped" detail — rather than misapplied.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Every check performed, in a stable order.
    pub checks: Vec<AuditCheck>,
}

impl AuditReport {
    /// True when every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The checks that failed.
    pub fn failures(&self) -> impl Iterator<Item = &AuditCheck> {
        self.checks.iter().filter(|c| !c.passed)
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in &self.checks {
            writeln!(
                f,
                "[{}] {:<24} {}",
                if c.passed { "ok" } else { "FAIL" },
                c.name,
                c.detail
            )?;
        }
        Ok(())
    }
}

impl RunReport {
    /// Performance of this run normalized to a baseline run (the y
    /// axis of Figs. 3 and 12: `self` relative to E-FAM).
    pub fn normalized_to(&self, baseline: &RunReport) -> f64 {
        self.ipc / baseline.ipc
    }

    /// Speedup of this run over another (the y axis of Figs. 13–16:
    /// DeACT relative to I-FAM).
    pub fn speedup_over(&self, other: &RunReport) -> f64 {
        self.ipc / other.ipc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic() -> FamTraffic {
        FamTraffic {
            data_reads: 60,
            data_writes: 20,
            writebacks: 10,
            at_pte_reads: 5,
            at_walk_reads: 3,
            at_acm_reads: 1,
            at_bitmap_reads: 1,
        }
    }

    #[test]
    fn traffic_totals() {
        let t = traffic();
        assert_eq!(t.at_total(), 10);
        assert_eq!(t.non_at_total(), 90);
        assert_eq!(t.total(), 100);
        assert!((t.at_percent() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_traffic_is_zero_percent() {
        assert_eq!(FamTraffic::default().at_percent(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = traffic();
        a.merge(&traffic());
        assert_eq!(a.total(), 200);
        assert_eq!(a.at_walk_reads, 6);
    }

    fn report(ipc: f64) -> RunReport {
        RunReport {
            scheme: Scheme::EFam,
            workload: "test".into(),
            nodes: 1,
            cores_per_node: 4,
            instructions: 1000,
            cycles: 100,
            ipc,
            fam: FamTraffic::default(),
            translation_hit_rate: None,
            acm_hit_rate: None,
            tlb_hit_rate: 0.9,
            mpki: 50.0,
            dram_reads: 0,
            dram_writes: 0,
            faults: 0,
            recovery: FaultRecovery::default(),
            degradation: DegradationReport::default(),
            refs_per_core: 10,
            latency: LatencyBreakdown::default(),
            fast_path_coverage: 0.0,
            parallel_phase_coverage: 0.0,
            profile: fam_sim::ProfileReport::default(),
        }
    }

    #[test]
    fn reports_differing_only_in_coverage_are_equal() {
        let a = report(1.0);
        let mut b = report(1.0);
        b.fast_path_coverage = 0.75;
        b.parallel_phase_coverage = 0.5;
        assert_eq!(a, b, "coverage is an engine diagnostic, not a result");
        b.cycles += 1;
        assert_ne!(a, b);
    }

    #[test]
    fn reports_differing_only_in_profile_are_equal() {
        let a = report(1.0);
        let mut b = report(1.0);
        fam_sim::profile::set_enabled(true);
        {
            let _s = fam_sim::profile::span(fam_sim::PhaseId::Tlb);
        }
        fam_sim::profile::set_enabled(false);
        b.profile = fam_sim::profile::take_report();
        assert!(!b.profile.is_empty(), "the span above must have recorded");
        assert_eq!(a, b, "host-time profile is a diagnostic, not a result");
        b.instructions += 1;
        assert_ne!(a, b);
    }

    #[test]
    fn normalization_and_speedup() {
        let efam = report(2.0);
        let ifam = report(0.5);
        assert!((ifam.normalized_to(&efam) - 0.25).abs() < 1e-12);
        assert!((efam.speedup_over(&ifam) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn recovery_defaults_to_zero_and_full_rate() {
        let r = FaultRecovery::default();
        assert!(r.is_zero());
        assert_eq!(r.injected_total(), 0);
        assert_eq!(r.recovery_rate(), 1.0, "no faults means perfect rate");
    }

    #[test]
    fn degradation_defaults_to_zero() {
        let d = DegradationReport::default();
        assert!(d.is_zero());
        let populated = DegradationReport {
            pages_lost: 1,
            ..DegradationReport::default()
        };
        assert!(!populated.is_zero());
    }

    #[test]
    fn recovery_rate_and_merge() {
        let mut a = FaultRecovery {
            injected_drops: 3,
            injected_corruptions: 2,
            retries: 5,
            backoff_cycles: 900,
            recovered: 4,
            fatal: 1,
            ..FaultRecovery::default()
        };
        assert_eq!(a.injected_total(), 5);
        assert!((a.recovery_rate() - 0.8).abs() < 1e-12);
        assert!(!a.is_zero());
        a.merge(&a.clone());
        assert_eq!(a.retries, 10);
        assert_eq!(a.backoff_cycles, 1800);
        assert_eq!(a.recovered, 8);
    }
}
