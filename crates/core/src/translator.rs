//! The FAM translator and its in-DRAM translation cache (Figs. 6–7),
//! plus the node-side retry/timeout/backoff machinery that recovers
//! from fabric faults and stale-translation NACKs.

use fam_mem::{CacheConfig, Replacement, SetAssocCache};
use fam_sim::stats::{Counter, Ratio};
use fam_sim::{Duration, RequestId};

/// Retry policy for FAM requests that bounce (timeout on a dropped
/// frame, corrupt-NACK, stale-NACK). Exponential backoff, capped:
/// attempt `k` waits `min(base << k, cap)` cycles before reissuing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Retries before a request is declared fatal (the original
    /// attempt is not counted).
    pub max_retries: u32,
    /// Cycles a requester waits for a response before presuming the
    /// frame dropped (covers the fabric round trip plus device
    /// service with margin at Table II latencies).
    pub timeout_cycles: u64,
    /// First backoff step in cycles.
    pub backoff_base_cycles: u64,
    /// Backoff ceiling in cycles.
    pub backoff_cap_cycles: u64,
}

impl RetryConfig {
    /// Checks knob sanity.
    ///
    /// # Panics
    ///
    /// Panics if the backoff base is zero or exceeds the cap.
    pub fn validate(&self) {
        assert!(
            self.backoff_base_cycles > 0,
            "backoff base must be non-zero"
        );
        assert!(
            self.backoff_base_cycles <= self.backoff_cap_cycles,
            "backoff base must not exceed the cap"
        );
    }

    /// Backoff before retry number `attempt` (1-based): exponential,
    /// capped, saturating.
    pub fn backoff(&self, attempt: u32) -> Duration {
        // Saturate on *value* overflow, not just shift-amount overflow:
        // `checked_shl` happily wraps bits off the top.
        let shift = attempt.saturating_sub(1);
        let shifted = if shift >= self.backoff_base_cycles.leading_zeros() {
            u64::MAX
        } else {
            self.backoff_base_cycles << shift
        };
        Duration(shifted.min(self.backoff_cap_cycles))
    }
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            max_retries: 4,
            timeout_cycles: 10_000,
            backoff_base_cycles: 500,
            backoff_cap_cycles: 8_000,
        }
    }
}

/// What the retry state machine decided after a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryOutcome {
    /// Reissue after waiting out the backoff.
    Retry {
        /// Backoff to charge before the reissue.
        backoff: Duration,
    },
    /// The retry budget is exhausted; the caller degrades gracefully.
    GiveUp,
}

/// Per-request retry state: counts attempts and hands out backoffs
/// until the budget runs dry.
///
/// # Examples
///
/// ```
/// use deact::{RetryConfig, RetryOutcome, RetryState};
///
/// let cfg = RetryConfig::default();
/// let mut s = RetryState::new();
/// let RetryOutcome::Retry { backoff } = s.on_fault(&cfg) else {
///     panic!("first fault retries");
/// };
/// assert_eq!(backoff.0, cfg.backoff_base_cycles);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RetryState {
    attempts: u32,
    req: RequestId,
}

impl RetryState {
    /// Fresh state: no faults seen yet.
    pub fn new() -> RetryState {
        RetryState::default()
    }

    /// Fresh state bound to a traced request, so reissued frames carry
    /// the request's wire tag and retries land on the right trace
    /// track.
    pub fn for_request(req: RequestId) -> RetryState {
        RetryState { attempts: 0, req }
    }

    /// The traced request this state belongs to
    /// ([`RequestId::UNTRACED`] when built with [`RetryState::new`]).
    pub fn request(&self) -> RequestId {
        self.req
    }

    /// Retries consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Advances the machine on one fault: either grants a retry with
    /// its backoff, or reports the budget exhausted.
    pub fn on_fault(&mut self, config: &RetryConfig) -> RetryOutcome {
        if self.attempts >= config.max_retries {
            return RetryOutcome::GiveUp;
        }
        self.attempts += 1;
        RetryOutcome::Retry {
            backoff: config.backoff(self.attempts),
        }
    }
}

/// Entries per 64-byte translation-cache set: four 104-bit entries
/// (52-bit tag + 52-bit value) fit in one memory access (§III-C).
pub const ENTRIES_PER_SET: usize = 4;

/// The outstanding-mapping list of Fig. 7 (ⓒ): FAM-address → node-
/// address mappings for requests awaiting responses, needed because
/// FAM responses are tagged with FAM addresses while the node only
/// understands node addresses. Capacity matches the 128 outstanding
/// requests of Table II. In I-FAM this list lives in the STU; DeACT
/// moves it into the node because the STU no longer understands node
/// addresses (§III-C).
#[derive(Debug, Clone)]
pub struct OutstandingMappingList {
    capacity: usize,
    entries: Vec<(u64, u64)>, // (fam_page, npa_page)
    full_stalls: Counter,
}

impl OutstandingMappingList {
    /// Creates a list with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> OutstandingMappingList {
        assert!(capacity > 0, "list needs capacity");
        OutstandingMappingList {
            capacity,
            entries: Vec::with_capacity(capacity),
            full_stalls: Counter::new(),
        }
    }

    /// Registers a response-expecting request. Returns `false` (and
    /// counts a stall) when the list is full — the caller must retire
    /// an entry first.
    pub fn register(&mut self, fam_page: u64, npa_page: u64) -> bool {
        if self.entries.len() >= self.capacity {
            self.full_stalls.inc();
            return false;
        }
        self.entries.push((fam_page, npa_page));
        true
    }

    /// Converts a response's FAM page back to the node page and
    /// retires the entry (Fig. 7: "handling off-the node responses").
    pub fn complete(&mut self, fam_page: u64) -> Option<u64> {
        let idx = self.entries.iter().position(|&(f, _)| f == fam_page)?;
        Some(self.entries.swap_remove(idx).1)
    }

    /// Entries currently outstanding.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no requests are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Times a register attempt found the list full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls.value()
    }
}

/// Statistics the translator reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct TranslatorStats {
    /// Translation-cache lookups (one DRAM read each).
    pub lookups: Counter,
    /// Cache updates (one DRAM read-modify-write each, §III-C).
    pub updates: Counter,
    /// Mapping responses received from the STU.
    pub mapping_responses: Counter,
    /// Cached entries invalidated on a stale-translation NACK — the
    /// DeACT `V`-flag verification story actually firing.
    pub stale_invalidations: Counter,
}

/// The FAM translator in the node's memory controller (Fig. 7).
///
/// Holds the *model* of the in-DRAM FAM translation cache: a four-way
/// set-associative array with random replacement (tracking recency
/// would cost extra DRAM writes, §III-C). Each lookup corresponds to
/// one 64-byte DRAM read that fetches a whole set; the four tags are
/// compared concurrently by the comparator bank of Fig. 7 (ⓑ).
///
/// The translator never verifies anything: its output is an
/// *unverified* FAM address forwarded with `V = 1` for the STU to vet
/// — the central decoupling of the paper.
///
/// # Examples
///
/// ```
/// use deact::FamTranslator;
///
/// let mut t = FamTranslator::new(1 << 20, 0x3000_0000, 128, 7);
/// assert_eq!(t.lookup(42), None);
/// t.install(42, 999);
/// assert_eq!(t.lookup(42), Some(999));
/// assert!(t.stats().lookups.value() >= 2);
/// ```
#[derive(Debug, Clone)]
pub struct FamTranslator {
    cache: SetAssocCache<u64>,
    dram_base: u64,
    sets: u64,
    oml: OutstandingMappingList,
    stats: TranslatorStats,
    hit_ratio: Ratio,
}

impl FamTranslator {
    /// Creates a translator whose cache occupies `cache_bytes` of
    /// local DRAM starting at `dram_base`, with an outstanding-mapping
    /// list of `oml_capacity` entries. Uses the paper's random
    /// replacement (§III-C).
    ///
    /// # Panics
    ///
    /// Panics if `cache_bytes` is smaller than one 64-byte set.
    pub fn new(cache_bytes: u64, dram_base: u64, oml_capacity: usize, seed: u64) -> FamTranslator {
        FamTranslator::with_replacement(
            cache_bytes,
            dram_base,
            oml_capacity,
            seed,
            Replacement::Random,
        )
    }

    /// As [`FamTranslator::new`] with an explicit replacement policy —
    /// the §III-C ablation: LRU needs per-access recency updates, i.e.
    /// extra DRAM writes the timing layer must charge.
    ///
    /// # Panics
    ///
    /// Panics if `cache_bytes` is smaller than one 64-byte set.
    pub fn with_replacement(
        cache_bytes: u64,
        dram_base: u64,
        oml_capacity: usize,
        seed: u64,
        replacement: Replacement,
    ) -> FamTranslator {
        let sets = cache_bytes / 64;
        assert!(sets > 0, "translation cache needs at least one set");
        FamTranslator {
            cache: SetAssocCache::with_seed(
                CacheConfig::new(sets as usize, ENTRIES_PER_SET, replacement),
                seed,
            ),
            dram_base,
            sets,
            oml: OutstandingMappingList::new(oml_capacity),
            stats: TranslatorStats::default(),
            hit_ratio: Ratio::new(),
        }
    }

    /// The DRAM byte address holding the set for `npa_page` — base
    /// plus the modulus offset of Fig. 6.
    pub fn dram_addr_of(&self, npa_page: u64) -> u64 {
        self.dram_base + (npa_page % self.sets) * 64
    }

    /// Looks up the FAM page for a node page. Models one DRAM set
    /// fetch plus the parallel tag match; records Fig. 10's
    /// DeACT address-translation hit rate.
    pub fn lookup(&mut self, npa_page: u64) -> Option<u64> {
        self.stats.lookups.inc();
        let hit = self.cache.get(npa_page).copied();
        self.hit_ratio.record(hit.is_some());
        hit
    }

    /// Side-effect-free twin of [`FamTranslator::lookup`]: would the
    /// node-side translation cache hit, without counting the lookup or
    /// perturbing the hit ratio? The sharded engine's admission scan
    /// uses this to predict whether a reference's translation is
    /// decidable node-side before committing to retire it in a shard.
    pub fn probe(&self, npa_page: u64) -> Option<u64> {
        self.cache.peek(npa_page).copied()
    }

    /// Installs a mapping delivered by the STU (Fig. 6 ⑤): one random
    /// entry of the fetched set is replaced, costing a DRAM
    /// read-modify-write.
    pub fn install(&mut self, npa_page: u64, fam_page: u64) {
        self.stats.updates.inc();
        self.stats.mapping_responses.inc();
        self.cache.insert(npa_page, fam_page);
    }

    /// Invalidates one node page's entry (migration shootdown, §VI —
    /// "excess DRAM writes to invalidate system-level mappings").
    /// Returns whether an entry was present.
    pub fn invalidate(&mut self, npa_page: u64) -> bool {
        self.stats.updates.inc();
        self.cache.invalidate(npa_page).is_some()
    }

    /// Handles a stale-translation NACK from the STU: the unverified
    /// cached mapping the node forwarded with `V = 1` was rejected, so
    /// the entry is evicted and the caller must fall back to the full
    /// STU walk (§III-C — exactly the recovery the `V` flag exists
    /// for). Returns whether an entry was actually evicted.
    pub fn handle_stale_nack(&mut self, npa_page: u64) -> bool {
        self.stats.stale_invalidations.inc();
        self.invalidate(npa_page)
    }

    /// The outstanding-mapping list.
    pub fn oml_mut(&mut self) -> &mut OutstandingMappingList {
        &mut self.oml
    }

    /// Translation hit rate (the DeACT series of Fig. 10).
    pub fn hit_ratio(&self) -> Ratio {
        self.hit_ratio
    }

    /// DRAM-traffic statistics.
    pub fn stats(&self) -> TranslatorStats {
        self.stats
    }

    /// Resets statistics, keeping cached mappings.
    pub fn reset_stats(&mut self) {
        self.stats = TranslatorStats::default();
        self.hit_ratio.reset();
        self.cache.reset_stats();
    }

    /// Number of cached mappings.
    pub fn cached_mappings(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn translator() -> FamTranslator {
        FamTranslator::new(1 << 20, 0x3000_0000, 128, 1)
    }

    #[test]
    fn miss_install_hit() {
        let mut t = translator();
        assert_eq!(t.lookup(5), None);
        t.install(5, 500);
        assert_eq!(t.lookup(5), Some(500));
        assert_eq!(t.hit_ratio().hits(), 1);
        assert_eq!(t.hit_ratio().misses(), 1);
    }

    #[test]
    fn geometry_matches_paper() {
        let t = translator();
        // 1 MB / 64 B = 16384 sets of 4 entries = 65536 mappings.
        assert_eq!(t.sets, 16384);
    }

    #[test]
    fn dram_addresses_are_set_indexed() {
        let t = translator();
        assert_eq!(t.dram_addr_of(0), 0x3000_0000);
        assert_eq!(t.dram_addr_of(1), 0x3000_0040);
        // Wraps at the set count (modulus offset of Fig. 6).
        assert_eq!(t.dram_addr_of(16384), 0x3000_0000);
    }

    #[test]
    fn random_replacement_within_full_set() {
        let mut t = FamTranslator::new(64, 0, 128, 3); // one set, 4 ways
        for p in 0..4 {
            t.install(p, p * 10);
        }
        t.install(99, 990);
        assert_eq!(t.cached_mappings(), 4, "set is full");
        assert_eq!(t.lookup(99), Some(990));
    }

    #[test]
    fn updates_are_counted_for_dram_accounting() {
        let mut t = translator();
        t.install(1, 10);
        t.install(2, 20);
        assert_eq!(t.stats().updates.value(), 2);
        assert_eq!(t.stats().mapping_responses.value(), 2);
    }

    #[test]
    fn invalidate_for_migration() {
        let mut t = translator();
        t.install(7, 70);
        assert!(t.invalidate(7));
        assert!(!t.invalidate(7));
        assert_eq!(t.lookup(7), None);
    }

    #[test]
    fn oml_register_complete_roundtrip() {
        let mut oml = OutstandingMappingList::new(2);
        assert!(oml.register(100, 1));
        assert!(oml.register(200, 2));
        assert!(!oml.register(300, 3), "full list rejects");
        assert_eq!(oml.full_stalls(), 1);
        assert_eq!(oml.complete(100), Some(1));
        assert!(oml.register(300, 3), "slot freed");
        assert_eq!(oml.complete(999), None);
        assert_eq!(oml.len(), 2);
    }

    #[test]
    fn oml_paper_capacity() {
        let t = translator();
        assert_eq!(t.oml.capacity(), 128);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn tiny_cache_rejected() {
        let _ = FamTranslator::new(32, 0, 128, 0);
    }

    #[test]
    fn stale_nack_evicts_and_counts() {
        let mut t = translator();
        t.install(7, 70);
        assert!(t.handle_stale_nack(7));
        assert_eq!(t.lookup(7), None, "stale entry must be gone");
        assert!(!t.handle_stale_nack(7), "second NACK finds nothing");
        assert_eq!(t.stats().stale_invalidations.value(), 2);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let cfg = RetryConfig {
            max_retries: 10,
            backoff_base_cycles: 100,
            backoff_cap_cycles: 1_000,
            ..RetryConfig::default()
        };
        assert_eq!(cfg.backoff(1).0, 100);
        assert_eq!(cfg.backoff(2).0, 200);
        assert_eq!(cfg.backoff(3).0, 400);
        assert_eq!(cfg.backoff(4).0, 800);
        assert_eq!(cfg.backoff(5).0, 1_000, "cap binds");
        assert_eq!(cfg.backoff(63).0, 1_000, "shift overflow saturates");
    }

    #[test]
    fn retry_state_machine_exhausts_budget() {
        let cfg = RetryConfig {
            max_retries: 2,
            ..RetryConfig::default()
        };
        let mut s = RetryState::new();
        assert!(matches!(s.on_fault(&cfg), RetryOutcome::Retry { .. }));
        assert!(matches!(s.on_fault(&cfg), RetryOutcome::Retry { .. }));
        assert_eq!(s.attempts(), 2);
        assert_eq!(s.on_fault(&cfg), RetryOutcome::GiveUp);
        assert_eq!(s.attempts(), 2, "give-up consumes no attempt");
    }

    #[test]
    fn retry_state_carries_request_identity() {
        assert_eq!(RetryState::new().request(), RequestId::UNTRACED);
        let s = RetryState::for_request(RequestId(42));
        assert_eq!(s.request(), RequestId(42));
        assert_eq!(s.attempts(), 0);
    }

    #[test]
    #[should_panic(expected = "must not exceed the cap")]
    fn inverted_backoff_rejected() {
        RetryConfig {
            backoff_base_cycles: 100,
            backoff_cap_cycles: 10,
            ..RetryConfig::default()
        }
        .validate();
    }
}
