//! The compute-node model: cores, MMUs, caches, local DRAM, and the
//! node-level OS memory policy.

use fam_broker::{BrokerError, MemoryBroker};
use fam_mem::{CacheHierarchy, DramModel};
use fam_sim::{Cycle, RequestId, SimRng, Window};
use fam_vm::{NodeId, PageTable, PtFlags, PtwCache, TlbHierarchy, VirtAddr};
use fam_workloads::{RefBatch, RefStream};

use crate::translator::FamTranslator;
use crate::{Scheme, SystemConfig};

/// First node-physical page of the FAM zone in I-FAM/DeACT: the node
/// OS sees local DRAM at low addresses and a large FAM zone starting
/// at 4 GB (two NUMA-like zones, §III-A).
pub const FAM_ZONE_PAGE: u64 = 1 << 20;

/// First physical-key page used for direct FAM addresses in E-FAM
/// (the node maps virtual pages straight to FAM addresses; we offset
/// them to 2^40 so they can never collide with DRAM keys in the cache
/// hierarchy).
pub const FAM_KEY_PAGE: u64 = 1 << 28;

/// Local DRAM layout: application data occupies the bottom, the FAM
/// translation cache sits at 768 MB, kernel page-table pages grow down
/// from the top.
pub const DATA_REGION_PAGES: u64 = (512 << 20) / 4096;
/// DRAM byte address of the FAM translation cache (§IV: 1 MB).
pub const TRANSLATION_CACHE_BASE: u64 = 768 << 20;

/// A reference drawn ahead of execution so the driver can order cores
/// by true start time (processing resources out of time order would
/// let a far-future request poison the contention timelines for
/// everyone else).
#[derive(Debug, Clone, Copy)]
pub struct PendingRef {
    /// The reference to execute.
    pub mem: fam_workloads::MemRef,
    /// Trace identity, threaded through every stage of the reference's
    /// lifetime ([`RequestId::UNTRACED`] when tracing is off).
    pub req: RequestId,
    /// Requested start (issue time, after any dependence wait).
    pub start_req: Cycle,
    /// Predicted true start (after outstanding-window admission).
    pub ready: Cycle,
}

/// Per-core execution state.
#[derive(Debug)]
pub struct CoreState {
    /// The staged next reference, if any.
    pub pending: Option<PendingRef>,
    /// This rank's reference source (synthetic generator or trace
    /// replay).
    pub gen: RefStream,
    /// Struct-of-arrays prefetch of upcoming references, refilled from
    /// `gen` in [`RefBatch::DEFAULT_LEN`] chunks so the per-reference
    /// staging cost is an indexed pop instead of an enum-dispatched
    /// generator call. The batch runs ahead of execution but preserves
    /// generation order exactly, so timing is unaffected.
    pub batch: RefBatch,
    /// Private two-level TLB.
    pub tlb: TlbHierarchy,
    /// Private node-level PTW cache.
    pub ptw: PtwCache,
    /// Outstanding-request window (Table II: 32).
    pub window: Window,
    /// When the core can issue its next instruction (front-end
    /// bandwidth cursor).
    pub next_issue: Cycle,
    /// Monotone in-order issue clock: a 2-wide OoO core issues in
    /// program order, so no reference issues before its predecessor.
    /// Keeping this monotone is also what makes the outstanding-window
    /// accounting sound.
    pub issue_clock: Cycle,
    /// Completion time of the most recent memory reference (dependent
    /// references wait on this).
    pub last_mem_completion: Cycle,
    /// Instructions retired.
    pub instructions: u64,
    /// References completed.
    pub refs_done: u64,
    /// References drawn from the stream and staged for execution.
    /// Pure bookkeeping for the end-of-run conservation audit
    /// (`staged == refs_done` once every staged reference retired);
    /// never read by any timing path, so it cannot affect reports.
    pub staged: u64,
    /// Completion time of the core's last reference.
    pub finish: Cycle,
}

/// One compute node: cores plus the node-local memory system of
/// Fig. 6.
#[derive(Debug)]
pub struct Node {
    /// System-level identity.
    pub id: NodeId,
    /// Per-core state.
    pub cores: Vec<CoreState>,
    /// The node page table (VA → node-physical for I-FAM/DeACT,
    /// VA → physical key for E-FAM).
    pub page_table: PageTable,
    /// L1/L2/L3 data caches.
    pub hierarchy: CacheHierarchy,
    /// Local DRAM.
    pub dram: DramModel,
    /// The FAM translator (DeACT only).
    pub translator: Option<FamTranslator>,
    /// Page faults serviced.
    pub faults: u64,

    scheme: Scheme,
    local_fraction: f64,
    next_local_data_page: u64,
    next_kernel_dram_page: u64,
    next_fam_npa_page: u64,
    /// Allocation cookies handed to the broker for E-FAM data and
    /// kernel pages.
    next_efam_data_cookie: u64,
    next_efam_kernel_cookie: u64,
    placement_rng: SimRng,
}

impl Node {
    /// Builds a node, registering it with the broker.
    ///
    /// # Panics
    ///
    /// Panics if the broker rejects the registration.
    pub fn new(
        config: &SystemConfig,
        streams: Vec<RefStream>,
        broker: &mut MemoryBroker,
        node_index: usize,
    ) -> Node {
        assert_eq!(
            streams.len(),
            config.cores_per_node,
            "one reference stream per core"
        );
        let id = broker
            .register_node()
            .expect("broker accepts configured node count");
        let freq = config.frequency();
        let dram_pages = config.dram_bytes / 4096;
        let root_page = dram_pages - 1;
        let cores = streams
            .into_iter()
            .map(|gen| CoreState {
                pending: None,
                gen,
                batch: RefBatch::new(),
                tlb: TlbHierarchy::new(config.tlb),
                ptw: PtwCache::new(config.ptw_cache_entries),
                window: Window::new(config.core_outstanding),
                next_issue: Cycle::ZERO,
                issue_clock: Cycle::ZERO,
                last_mem_completion: Cycle::ZERO,
                instructions: 0,
                refs_done: 0,
                staged: 0,
                finish: Cycle::ZERO,
            })
            .collect();
        let translator = if config.scheme.has_fam_translator() {
            let replacement = if config.translation_cache_lru {
                fam_mem::Replacement::Lru
            } else {
                fam_mem::Replacement::Random
            };
            Some(FamTranslator::with_replacement(
                config.translation_cache_bytes,
                TRANSLATION_CACHE_BASE,
                config.nvm.max_outstanding,
                config.seed ^ node_index as u64,
                replacement,
            ))
        } else {
            None
        };
        Node {
            id,
            cores,
            page_table: PageTable::new(root_page * 4096),
            hierarchy: CacheHierarchy::new(config.cores_per_node, config.hierarchy),
            dram: DramModel::new(freq, config.dram_access_ns, config.dram_occupancy_cycles),
            translator,
            faults: 0,
            scheme: config.scheme,
            local_fraction: config.local_fraction,
            next_local_data_page: 1,
            next_kernel_dram_page: root_page - 1,
            // The first `shared_segment_pages` of the FAM zone are the
            // reserved shared window (§VI); private demand mapping
            // starts above it.
            next_fam_npa_page: FAM_ZONE_PAGE + config.shared_segment_pages,
            next_efam_data_cookie: 0,
            next_efam_kernel_cookie: 1 << 30,
            placement_rng: SimRng::seeded(config.seed ^ 0xA110C ^ node_index as u64),
        }
    }

    /// Whether a physical-key page is FAM-resident under this node's
    /// scheme.
    pub fn is_fam_page(&self, phys_page: u64) -> bool {
        match self.scheme {
            Scheme::EFam => phys_page >= FAM_KEY_PAGE,
            _ => phys_page >= FAM_ZONE_PAGE,
        }
    }

    /// Converts an E-FAM physical key page back to the FAM page.
    pub fn efam_fam_page(phys_page: u64) -> u64 {
        phys_page - FAM_KEY_PAGE
    }

    /// Converts an I-FAM/DeACT node-physical FAM-zone page to its zone
    /// offset (used only for diagnostics; the real FAM page comes from
    /// the system level).
    pub fn fam_zone_offset(npa_page: u64) -> u64 {
        npa_page - FAM_ZONE_PAGE
    }

    /// Handles a node-level page fault for `vaddr`: the OS picks a
    /// zone (≈20% local DRAM, 80% FAM, §IV) and installs the mapping.
    /// For E-FAM the kernel asks the broker for the real FAM page
    /// (Fig. 2a: the patched OS coordinates with the global manager);
    /// PTE-level table pages backing FAM data live in FAM, which is
    /// what makes E-FAM's translation traffic visible at the FAM
    /// (Fig. 4).
    ///
    /// # Errors
    ///
    /// Returns the broker's error when the FAM cannot fit another
    /// demand map (the experiments size the FAM to fit, so callers
    /// surface this as a configuration mistake, not a crash).
    pub fn map_page(
        &mut self,
        vaddr: VirtAddr,
        broker: &mut MemoryBroker,
    ) -> Result<(), BrokerError> {
        let _prof = fam_sim::profile::span(fam_sim::profile::PhaseId::PageWalk);
        let vpage = vaddr.vpage();
        self.faults += 1;
        let go_local = self.placement_rng.chance(self.local_fraction)
            && self.next_local_data_page < DATA_REGION_PAGES;
        let target_page = if go_local {
            let p = self.next_local_data_page;
            self.next_local_data_page += 1;
            p
        } else {
            match self.scheme {
                Scheme::EFam => {
                    let cookie = self.next_efam_data_cookie;
                    self.next_efam_data_cookie += 1;
                    let fam_page = broker.demand_map(self.id, cookie)?;
                    FAM_KEY_PAGE + fam_page
                }
                _ => {
                    let p = self.next_fam_npa_page;
                    self.next_fam_npa_page += 1;
                    p
                }
            }
        };

        // Table-node placement: E-FAM keeps PTE-level pages for
        // FAM-backed data in FAM (they must be node-addressable memory,
        // and the bulk of the address space they map is FAM-resident);
        // everything else lives in kernel DRAM. Disjoint field borrows
        // let the closure allocate lazily — no page is consumed unless
        // the radix level is actually created.
        let scheme = self.scheme;
        let id = self.id;
        let efam_fam_pte = scheme == Scheme::EFam && target_page >= FAM_KEY_PAGE;
        let kernel_next = &mut self.next_kernel_dram_page;
        let kernel_cookie = &mut self.next_efam_kernel_cookie;
        // The page-table mapper takes an infallible allocator, so the
        // closure parks any broker failure here and falls back to
        // kernel DRAM; the error is surfaced after the map call.
        let mut alloc_err: Option<BrokerError> = None;
        let mut alloc = |level: usize| -> u64 {
            if level == 3 && efam_fam_pte {
                match broker.demand_map(id, *kernel_cookie) {
                    Ok(fam_page) => {
                        *kernel_cookie += 1;
                        return (FAM_KEY_PAGE + fam_page) * 4096;
                    }
                    Err(e) => alloc_err = Some(e),
                }
            }
            let p = *kernel_next;
            *kernel_next -= 1;
            assert!(
                p * 4096 > TRANSLATION_CACHE_BASE,
                "kernel page-table region exhausted"
            );
            p * 4096
        };
        self.page_table
            .map(vpage, target_page, PtFlags::rw(), &mut alloc);
        match alloc_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Total instructions retired across cores.
    pub fn instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Latest completion time across cores.
    pub fn finish(&self) -> Cycle {
        self.cores
            .iter()
            .map(|c| c.finish)
            .max()
            .unwrap_or(Cycle::ZERO)
    }

    /// Maps the cross-node shared segment into this node's page table
    /// at [`fam_workloads::SHARED_VA_BASE`] (§VI "Shared Pages"). For
    /// I-FAM/DeACT the targets are the reserved NPA window at the base
    /// of the FAM zone; for E-FAM they are the segment's FAM keys
    /// directly.
    pub fn map_shared_segment(&mut self, first_fam_page: u64, pages: u64) {
        let scheme = self.scheme;
        let kernel_next = &mut self.next_kernel_dram_page;
        let mut alloc = |_level: usize| -> u64 {
            let p = *kernel_next;
            *kernel_next -= 1;
            assert!(
                p * 4096 > TRANSLATION_CACHE_BASE,
                "kernel page-table region exhausted"
            );
            p * 4096
        };
        let shared_vpage = fam_workloads::SHARED_VA_BASE / 4096;
        for i in 0..pages {
            let target = match scheme {
                Scheme::EFam => FAM_KEY_PAGE + first_fam_page + i,
                _ => FAM_ZONE_PAGE + i,
            };
            self.page_table
                .map(shared_vpage + i, target, PtFlags::rw(), &mut alloc);
        }
    }

    /// Demand-maps into FAM the pages required by a system-level
    /// fault on `npa_page` (I-FAM/DeACT path).
    ///
    /// # Errors
    ///
    /// Propagates broker allocation failures.
    pub fn system_fault(
        &mut self,
        npa_page: u64,
        broker: &mut MemoryBroker,
    ) -> Result<u64, BrokerError> {
        self.faults += 1;
        broker.demand_map(self.id, npa_page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fam_broker::BrokerConfig;

    fn small_config(scheme: Scheme) -> SystemConfig {
        SystemConfig::paper_default()
            .with_scheme(scheme)
            .with_refs_per_core(10)
    }

    fn build(scheme: Scheme) -> (Node, MemoryBroker) {
        let config = small_config(scheme);
        let workload = fam_workloads::Workload::by_name("astar").unwrap();
        let streams: Vec<RefStream> = (0..config.cores_per_node)
            .map(|c| {
                RefStream::from(fam_workloads::TraceGenerator::new(
                    workload,
                    fam_workloads::VA_BASE + ((c as u64) << 40),
                    c as u64,
                ))
            })
            .collect();
        let mut broker = MemoryBroker::new(BrokerConfig {
            fam_bytes: config.fam_bytes,
            acm_width: config.acm_width,
            ..BrokerConfig::default()
        });
        let node = Node::new(&config, streams, &mut broker, 0);
        (node, broker)
    }

    #[test]
    fn node_has_four_cores_and_registers() {
        let (node, broker) = build(Scheme::DeactN);
        assert_eq!(node.cores.len(), 4);
        assert_eq!(broker.node_count(), 1);
        assert!(node.translator.is_some());
    }

    #[test]
    fn efam_and_ifam_translator_presence() {
        assert!(build(Scheme::EFam).0.translator.is_none());
        assert!(build(Scheme::IFam).0.translator.is_none());
        assert!(build(Scheme::DeactW).0.translator.is_some());
    }

    #[test]
    fn map_page_installs_mapping() {
        let (mut node, mut broker) = build(Scheme::DeactN);
        let va = VirtAddr(fam_workloads::VA_BASE);
        node.map_page(va, &mut broker).unwrap();
        let pte = node.page_table.translate(va.vpage()).unwrap();
        assert!(
            pte.target_page < DATA_REGION_PAGES || pte.target_page >= FAM_ZONE_PAGE,
            "placement must pick the local data region or the FAM zone"
        );
        assert_eq!(node.faults, 1);
    }

    #[test]
    fn placement_respects_zones() {
        let (mut node, mut broker) = build(Scheme::DeactN);
        let mut local = 0;
        let mut fam = 0;
        for i in 0..1000 {
            let va = VirtAddr(fam_workloads::VA_BASE + i * 4096);
            node.map_page(va, &mut broker).unwrap();
            let t = node.page_table.translate(va.vpage()).unwrap().target_page;
            if node.is_fam_page(t) {
                fam += 1;
            } else {
                local += 1;
                assert!(t < DATA_REGION_PAGES);
            }
        }
        let frac = local as f64 / 1000.0;
        assert!((frac - 0.20).abs() < 0.05, "≈20% local (§IV), got {frac}");
        assert!(fam > 0);
    }

    #[test]
    fn efam_maps_direct_fam_keys_and_broker_tracks_them() {
        let (mut node, mut broker) = build(Scheme::EFam);
        let mut mapped_fam = 0;
        for i in 0..200 {
            let va = VirtAddr(fam_workloads::VA_BASE + i * 4096);
            node.map_page(va, &mut broker).unwrap();
            let t = node.page_table.translate(va.vpage()).unwrap().target_page;
            if t >= FAM_KEY_PAGE {
                mapped_fam += 1;
                // The key maps back to a broker-allocated page.
                assert!(Node::efam_fam_page(t) < broker.layout().usable_pages());
            }
        }
        assert!(mapped_fam > 100);
        assert!(broker.owned_pages(node.id) >= mapped_fam);
    }

    #[test]
    fn efam_pte_pages_live_in_fam() {
        let (mut node, mut broker) = build(Scheme::EFam);
        // Map enough pages that some subtree's PTE node is FAM-backed.
        let mut found_fam_pte = false;
        for i in 0..50 {
            let va = VirtAddr(fam_workloads::VA_BASE + i * (512 * 4096));
            node.map_page(va, &mut broker).unwrap();
            let walk = node.page_table.walk(va.vpage());
            if let Some(step) = walk.steps.last() {
                if step.entry_addr / 4096 >= FAM_KEY_PAGE {
                    found_fam_pte = true;
                }
            }
        }
        assert!(found_fam_pte, "E-FAM PTE-level pages belong in FAM");
    }

    #[test]
    fn deact_pt_pages_stay_in_dram() {
        let (mut node, mut broker) = build(Scheme::DeactN);
        for i in 0..50 {
            let va = VirtAddr(fam_workloads::VA_BASE + i * (512 * 4096));
            node.map_page(va, &mut broker).unwrap();
            let walk = node.page_table.walk(va.vpage());
            for step in &walk.steps {
                assert!(
                    step.entry_addr / 4096 < FAM_ZONE_PAGE,
                    "node PT pages live in local DRAM for I-FAM/DeACT"
                );
            }
        }
    }

    #[test]
    fn system_fault_demand_maps() {
        let (mut node, mut broker) = build(Scheme::IFam);
        let fam_page = node.system_fault(FAM_ZONE_PAGE + 5, &mut broker).unwrap();
        assert_eq!(
            broker
                .translate(node.id, FAM_ZONE_PAGE + 5)
                .unwrap()
                .target_page,
            fam_page
        );
    }

    #[test]
    fn core_va_bases_are_disjoint() {
        let (node, _) = build(Scheme::DeactN);
        // Each rank has a private VA slice; peek at the streams.
        let mut bases: Vec<u64> = node
            .cores
            .iter()
            .map(|c| {
                let mut g = c.gen.clone();
                g.next_ref().vaddr.0 >> 40
            })
            .collect();
        bases.dedup();
        assert_eq!(bases.len(), 4, "four distinct VA slices");
    }
}
