//! Wire format of memory-semantic fabric packets.
//!
//! DeACT extends the request packet with a verification (`V`) flag so
//! the STU can tell pre-translated requests (verify-only) from
//! untranslated ones (walk-needed) — §III-C, "Handling Translation
//! Misses". Giving the packet a real wire encoding pins down that the
//! flag costs one bit, and lets tests assert the STU dispatches on it.
//!
//! Every frame carries a CRC-16 trailer so in-flight corruption is
//! *detected*, not assumed away: a corrupted request decodes to
//! [`DecodePacketError::ChecksumMismatch`] and the FAM side answers
//! with a [`Nack`], driving the node-side retry machinery.

use fam_sim::RequestId;
use fam_vm::NodeId;

/// What a fabric packet asks the FAM side to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A data read of one 64-byte block.
    Read,
    /// A data write of one 64-byte block.
    Write,
    /// A translation-service request (the STU walks on our behalf).
    TranslationRequest,
    /// A translation-service response carrying a mapping.
    TranslationResponse,
}

impl PacketKind {
    fn code(self) -> u8 {
        match self {
            PacketKind::Read => 0,
            PacketKind::Write => 1,
            PacketKind::TranslationRequest => 2,
            PacketKind::TranslationResponse => 3,
        }
    }

    fn from_code(c: u8) -> Option<PacketKind> {
        Some(match c {
            0 => PacketKind::Read,
            1 => PacketKind::Write,
            2 => PacketKind::TranslationRequest,
            3 => PacketKind::TranslationResponse,
            _ => return None,
        })
    }
}

/// Why the FAM side rejected a request (the negative-acknowledgement
/// variants a real Gen-Z/CXL-style fabric distinguishes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Nack {
    /// The pre-translated (`V = 1`) address no longer maps to a page
    /// the node may use: the cached translation is stale and must be
    /// invalidated, then re-resolved through the STU walk path.
    Stale,
    /// The request frame failed its CRC at the receiver.
    Corrupt,
    /// The request (or its response) never arrived inside the timeout
    /// window — congestion or a dropped flit.
    Timeout,
    /// The addressed FAM page is permanently unreachable (dead module,
    /// failed media, severed link). Unlike every other NACK this one
    /// never clears on retry: the fabric switch answers on the
    /// module's behalf and the node must escalate to the memory
    /// broker's recovery protocol instead of retrying.
    Unreachable,
}

impl Nack {
    /// All NACK variants, for exhaustive tests and sweeps.
    pub const ALL: [Nack; 4] = [Nack::Stale, Nack::Corrupt, Nack::Timeout, Nack::Unreachable];

    fn code(self) -> u8 {
        match self {
            Nack::Stale => 0,
            Nack::Corrupt => 1,
            Nack::Timeout => 2,
            Nack::Unreachable => 3,
        }
    }

    fn from_code(c: u8) -> Option<Nack> {
        Some(match c {
            0 => Nack::Stale,
            1 => Nack::Corrupt,
            2 => Nack::Timeout,
            3 => Nack::Unreachable,
            _ => return None,
        })
    }

    /// Whether retrying the same request can ever succeed. The retry
    /// state machine gives up immediately on non-retryable NACKs.
    pub fn retryable(self) -> bool {
        !matches!(self, Nack::Unreachable)
    }
}

impl std::fmt::Display for Nack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Nack::Stale => "stale-translation",
            Nack::Corrupt => "corrupt-frame",
            Nack::Timeout => "timeout",
            Nack::Unreachable => "unreachable-permanent",
        })
    }
}

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF), computed bitwise.
/// Any burst error of 16 bits or fewer — in particular any single
/// corrupted byte — is guaranteed to change the checksum.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn get_u16(wire: &[u8], at: usize) -> u16 {
    u16::from_be_bytes([wire[at], wire[at + 1]])
}

fn get_u64(wire: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&wire[at..at + 8]);
    u64::from_be_bytes(b)
}

/// Appends the CRC trailer over everything already in `buf`.
fn seal(buf: &mut Vec<u8>) {
    let crc = crc16(buf);
    put_u16(buf, crc);
}

/// Verifies the CRC trailer of `wire` (last two bytes).
fn check_crc(wire: &[u8]) -> Result<(), DecodePacketError> {
    let body = wire.len() - 2;
    let expected = crc16(&wire[..body]);
    let found = get_u16(wire, body);
    if expected != found {
        return Err(DecodePacketError::ChecksumMismatch { expected, found });
    }
    Ok(())
}

/// A memory-semantic request packet as it crosses the fabric.
///
/// `verified` is DeACT's `V` flag: set by the FAM translator when
/// `addr` is already a FAM address that only needs access-control
/// verification; clear when `addr` is a node address the STU must
/// translate.
///
/// # Examples
///
/// ```
/// use fam_fabric::packet::{Packet, PacketKind};
/// use fam_vm::NodeId;
///
/// let p = Packet {
///     kind: PacketKind::Read,
///     source: NodeId::new(3),
///     addr: 0xABCD,
///     verified: true,
///     tag: 17,
/// };
/// let decoded = Packet::decode(&p.encode()).unwrap();
/// assert_eq!(decoded, p);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Operation requested.
    pub kind: PacketKind,
    /// Requesting node (used by the STU for access control).
    pub source: NodeId,
    /// Target address: a FAM address when `verified`, otherwise a node
    /// physical address.
    pub addr: u64,
    /// DeACT's `V` flag.
    pub verified: bool,
    /// Request tag matching responses to the outstanding-mapping list.
    pub tag: u16,
}

/// Errors decoding a wire packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodePacketError {
    /// The buffer is shorter than a packet header.
    Truncated,
    /// The kind byte is not a known packet kind.
    UnknownKind(u8),
    /// The node-id field holds the reserved shared marker or worse.
    BadNodeId(u16),
    /// The CRC trailer does not match the frame contents.
    ChecksumMismatch {
        /// CRC recomputed over the received body.
        expected: u16,
        /// CRC carried in the trailer.
        found: u16,
    },
}

impl std::fmt::Display for DecodePacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodePacketError::Truncated => write!(f, "packet truncated"),
            DecodePacketError::UnknownKind(c) => write!(f, "unknown packet kind {c}"),
            DecodePacketError::BadNodeId(n) => write!(f, "invalid node id {n}"),
            DecodePacketError::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "checksum mismatch: computed {expected:#06x}, wire carries {found:#06x}"
                )
            }
        }
    }
}

impl std::error::Error for DecodePacketError {}

/// Encoded packet size in bytes: kind(1) + flags(1) + node(2) + tag(2)
/// + addr(8) + crc(2).
pub const PACKET_BYTES: usize = 16;

impl Packet {
    /// Builds a packet whose wire tag carries a traced request's
    /// identity ([`RequestId::wire_tag`]), so a frame captured
    /// anywhere on the fabric can be matched back to its span in a
    /// trace — and responses still match the outstanding-mapping list,
    /// which compares tags verbatim.
    ///
    /// # Examples
    ///
    /// ```
    /// use fam_fabric::packet::{Packet, PacketKind};
    /// use fam_sim::RequestId;
    /// use fam_vm::NodeId;
    ///
    /// let p = Packet::for_request(
    ///     PacketKind::Read,
    ///     NodeId::new(1),
    ///     0xF00,
    ///     true,
    ///     RequestId(0x2_0009),
    /// );
    /// assert_eq!(p.tag, 9, "tag is the request id's low 16 bits");
    /// ```
    pub fn for_request(
        kind: PacketKind,
        source: NodeId,
        addr: u64,
        verified: bool,
        req: RequestId,
    ) -> Packet {
        Packet {
            kind,
            source,
            addr,
            verified,
            tag: req.wire_tag(),
        }
    }

    /// Serializes the packet to its wire form, CRC trailer included.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(PACKET_BYTES);
        self.encode_into(&mut buf);
        buf
    }

    /// Serializes into a caller-owned buffer (cleared first), so hot
    /// paths that encode one frame per simulated fault can reuse a
    /// single allocation instead of building a fresh `Vec` each time.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        buf.reserve(PACKET_BYTES);
        buf.push(self.kind.code());
        buf.push(self.verified as u8);
        put_u16(buf, self.source.raw());
        put_u16(buf, self.tag);
        put_u64(buf, self.addr);
        seal(buf);
    }

    /// Parses a packet from its wire form, verifying the CRC trailer
    /// first — a flipped bit anywhere in the frame is rejected before
    /// any field is interpreted.
    ///
    /// # Errors
    ///
    /// Returns [`DecodePacketError`] if the buffer is truncated, fails
    /// its checksum, or any field is out of range.
    pub fn decode(wire: &[u8]) -> Result<Packet, DecodePacketError> {
        if wire.len() < PACKET_BYTES {
            return Err(DecodePacketError::Truncated);
        }
        check_crc(&wire[..PACKET_BYTES])?;
        let kind_code = wire[0];
        let kind =
            PacketKind::from_code(kind_code).ok_or(DecodePacketError::UnknownKind(kind_code))?;
        let verified = wire[1] != 0;
        let raw_node = get_u16(wire, 2);
        if raw_node >= NodeId::SHARED_MARKER {
            return Err(DecodePacketError::BadNodeId(raw_node));
        }
        let source = NodeId::new(raw_node);
        let tag = get_u16(wire, 4);
        let addr = get_u64(wire, 6);
        Ok(Packet {
            kind,
            source,
            addr,
            verified,
            tag,
        })
    }
}

/// Encoded response size in bytes: status(1) + nack(1) + tag(2) +
/// addr(8) + crc(2).
pub const RESPONSE_BYTES: usize = 14;

/// A FAM-side response frame: either an acknowledgement carrying the
/// (FAM) address the data belongs to, or a [`Nack`] telling the node
/// why the request was rejected and must be retried or re-resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// The request was served; `addr` tags the data block, `tag`
    /// matches the outstanding-mapping list entry.
    Ack {
        /// Request tag being answered.
        tag: u16,
        /// FAM address of the data returned.
        addr: u64,
    },
    /// The request was rejected; the node must recover.
    Nack {
        /// Why the request bounced.
        nack: Nack,
        /// Request tag being answered.
        tag: u16,
        /// Address the rejected request named.
        addr: u64,
    },
}

impl Response {
    /// The tag this response answers.
    pub fn tag(&self) -> u16 {
        match *self {
            Response::Ack { tag, .. } | Response::Nack { tag, .. } => tag,
        }
    }

    /// Serializes the response, CRC trailer included.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(RESPONSE_BYTES);
        self.encode_into(&mut buf);
        buf
    }

    /// Serializes into a caller-owned buffer (cleared first); see
    /// [`Packet::encode_into`].
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        buf.reserve(RESPONSE_BYTES);
        match *self {
            Response::Ack { tag, addr } => {
                buf.push(0);
                buf.push(0);
                put_u16(buf, tag);
                put_u64(buf, addr);
            }
            Response::Nack { nack, tag, addr } => {
                buf.push(1);
                buf.push(nack.code());
                put_u16(buf, tag);
                put_u64(buf, addr);
            }
        }
        seal(buf);
    }

    /// Parses a response from its wire form, verifying the CRC first.
    ///
    /// # Errors
    ///
    /// Returns [`DecodePacketError`] on truncation, checksum failure,
    /// or an unknown status/NACK code (reported as [`UnknownKind`]).
    ///
    /// [`UnknownKind`]: DecodePacketError::UnknownKind
    pub fn decode(wire: &[u8]) -> Result<Response, DecodePacketError> {
        if wire.len() < RESPONSE_BYTES {
            return Err(DecodePacketError::Truncated);
        }
        check_crc(&wire[..RESPONSE_BYTES])?;
        let tag = get_u16(wire, 2);
        let addr = get_u64(wire, 4);
        match wire[0] {
            0 => Ok(Response::Ack { tag, addr }),
            1 => {
                let nack =
                    Nack::from_code(wire[1]).ok_or(DecodePacketError::UnknownKind(wire[1]))?;
                Ok(Response::Nack { nack, tag, addr })
            }
            other => Err(DecodePacketError::UnknownKind(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: PacketKind, verified: bool) -> Packet {
        Packet {
            kind,
            source: NodeId::new(5),
            addr: 0xDEAD_BEEF_0000,
            verified,
            tag: 42,
        }
    }

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [
            PacketKind::Read,
            PacketKind::Write,
            PacketKind::TranslationRequest,
            PacketKind::TranslationResponse,
        ] {
            for verified in [false, true] {
                let p = sample(kind, verified);
                assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
            }
        }
    }

    #[test]
    fn for_request_ties_tag_to_request_id() {
        let p = Packet::for_request(
            PacketKind::TranslationRequest,
            NodeId::new(2),
            0xABC,
            false,
            RequestId(0xBEEF_0011),
        );
        assert_eq!(p.tag, 0x0011);
        assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
        let untraced = Packet::for_request(
            PacketKind::Read,
            NodeId::new(0),
            0,
            true,
            RequestId::UNTRACED,
        );
        assert_eq!(untraced.tag, 0, "untraced requests keep the zero tag");
    }

    #[test]
    fn encoded_size_is_fixed() {
        assert_eq!(sample(PacketKind::Read, true).encode().len(), PACKET_BYTES);
    }

    #[test]
    fn encode_into_reuses_buffer_and_matches_encode() {
        let mut buf = Vec::new();
        for tag in 0..4u16 {
            let mut p = sample(PacketKind::Write, false);
            p.tag = tag;
            p.encode_into(&mut buf);
            assert_eq!(buf, p.encode(), "tag {tag}");
        }
        let r = Response::Nack {
            nack: Nack::Timeout,
            tag: 3,
            addr: 0x77,
        };
        r.encode_into(&mut buf);
        assert_eq!(buf, r.encode());
        assert_eq!(Response::decode(&buf).unwrap(), r);
    }

    #[test]
    fn truncated_buffer_rejected() {
        let wire = sample(PacketKind::Read, true).encode();
        assert_eq!(
            Packet::decode(&wire[..PACKET_BYTES - 1]),
            Err(DecodePacketError::Truncated)
        );
    }

    /// Rewrites a field byte and re-seals the CRC, so decode errors
    /// past the checksum stage can be exercised.
    fn reseal(mut raw: Vec<u8>) -> Vec<u8> {
        let crc = crc16(&raw[..PACKET_BYTES - 2]);
        raw[PACKET_BYTES - 2..].copy_from_slice(&crc.to_be_bytes());
        raw
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut raw = sample(PacketKind::Read, true).encode();
        raw[0] = 0xFF;
        assert_eq!(
            Packet::decode(&reseal(raw)),
            Err(DecodePacketError::UnknownKind(0xFF))
        );
    }

    #[test]
    fn bad_node_id_rejected() {
        let mut raw = sample(PacketKind::Read, true).encode();
        raw[2] = 0x3F;
        raw[3] = 0xFF; // node id 0x3FFF = shared marker
        assert_eq!(
            Packet::decode(&reseal(raw)),
            Err(DecodePacketError::BadNodeId(0x3FFF))
        );
    }

    #[test]
    fn v_flag_has_a_wire_bit() {
        let set = sample(PacketKind::Read, true).encode();
        let clear = sample(PacketKind::Read, false).encode();
        assert_eq!(set[1], 1);
        assert_eq!(clear[1], 0);
    }

    #[test]
    fn every_single_byte_corruption_fails_the_checksum() {
        let wire = sample(PacketKind::Write, true).encode();
        for pos in 0..PACKET_BYTES {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = wire.clone();
                bad[pos] ^= flip;
                assert!(
                    matches!(
                        Packet::decode(&bad),
                        Err(DecodePacketError::ChecksumMismatch { .. })
                    ),
                    "byte {pos} xor {flip:#04x} slipped through"
                );
            }
        }
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn response_roundtrip_ack_and_all_nacks() {
        let ack = Response::Ack {
            tag: 7,
            addr: 0x1234_5678,
        };
        assert_eq!(Response::decode(&ack.encode()).unwrap(), ack);
        assert_eq!(ack.tag(), 7);
        for nack in Nack::ALL {
            let r = Response::Nack {
                nack,
                tag: 9,
                addr: 0xAAAA,
            };
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
            assert_eq!(r.tag(), 9);
            assert!(!nack.to_string().is_empty());
        }
    }

    #[test]
    fn response_corruption_detected() {
        let wire = Response::Nack {
            nack: Nack::Stale,
            tag: 1,
            addr: 2,
        }
        .encode();
        for pos in 0..RESPONSE_BYTES {
            let mut bad = wire.clone();
            bad[pos] ^= 0x40;
            assert!(
                matches!(
                    Response::decode(&bad),
                    Err(DecodePacketError::ChecksumMismatch { .. })
                ),
                "byte {pos} slipped through"
            );
        }
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!DecodePacketError::Truncated.to_string().is_empty());
        assert!(DecodePacketError::UnknownKind(9).to_string().contains('9'));
        let msg = DecodePacketError::ChecksumMismatch {
            expected: 1,
            found: 2,
        }
        .to_string();
        assert!(msg.contains("checksum"));
    }
}
