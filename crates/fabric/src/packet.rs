//! Wire format of memory-semantic fabric packets.
//!
//! DeACT extends the request packet with a verification (`V`) flag so
//! the STU can tell pre-translated requests (verify-only) from
//! untranslated ones (walk-needed) — §III-C, "Handling Translation
//! Misses". Giving the packet a real wire encoding pins down that the
//! flag costs one bit, and lets tests assert the STU dispatches on it.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fam_vm::NodeId;
use serde::{Deserialize, Serialize};

/// What a fabric packet asks the FAM side to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// A data read of one 64-byte block.
    Read,
    /// A data write of one 64-byte block.
    Write,
    /// A translation-service request (the STU walks on our behalf).
    TranslationRequest,
    /// A translation-service response carrying a mapping.
    TranslationResponse,
}

impl PacketKind {
    fn code(self) -> u8 {
        match self {
            PacketKind::Read => 0,
            PacketKind::Write => 1,
            PacketKind::TranslationRequest => 2,
            PacketKind::TranslationResponse => 3,
        }
    }

    fn from_code(c: u8) -> Option<PacketKind> {
        Some(match c {
            0 => PacketKind::Read,
            1 => PacketKind::Write,
            2 => PacketKind::TranslationRequest,
            3 => PacketKind::TranslationResponse,
            _ => return None,
        })
    }
}

/// A memory-semantic request packet as it crosses the fabric.
///
/// `verified` is DeACT's `V` flag: set by the FAM translator when
/// `addr` is already a FAM address that only needs access-control
/// verification; clear when `addr` is a node address the STU must
/// translate.
///
/// # Examples
///
/// ```
/// use fam_fabric::packet::{Packet, PacketKind};
/// use fam_vm::NodeId;
///
/// let p = Packet {
///     kind: PacketKind::Read,
///     source: NodeId::new(3),
///     addr: 0xABCD,
///     verified: true,
///     tag: 17,
/// };
/// let decoded = Packet::decode(p.encode()).unwrap();
/// assert_eq!(decoded, p);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Operation requested.
    pub kind: PacketKind,
    /// Requesting node (used by the STU for access control).
    pub source: NodeId,
    /// Target address: a FAM address when `verified`, otherwise a node
    /// physical address.
    pub addr: u64,
    /// DeACT's `V` flag.
    pub verified: bool,
    /// Request tag matching responses to the outstanding-mapping list.
    pub tag: u16,
}

/// Errors decoding a wire packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodePacketError {
    /// The buffer is shorter than a packet header.
    Truncated,
    /// The kind byte is not a known packet kind.
    UnknownKind(u8),
    /// The node-id field holds the reserved shared marker or worse.
    BadNodeId(u16),
}

impl std::fmt::Display for DecodePacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodePacketError::Truncated => write!(f, "packet truncated"),
            DecodePacketError::UnknownKind(c) => write!(f, "unknown packet kind {c}"),
            DecodePacketError::BadNodeId(n) => write!(f, "invalid node id {n}"),
        }
    }
}

impl std::error::Error for DecodePacketError {}

/// Encoded packet size in bytes: kind(1) + flags(1) + node(2) + tag(2)
/// + addr(8).
pub const PACKET_BYTES: usize = 14;

impl Packet {
    /// Serializes the packet to its wire form.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(PACKET_BYTES);
        buf.put_u8(self.kind.code());
        buf.put_u8(self.verified as u8);
        buf.put_u16(self.source.raw());
        buf.put_u16(self.tag);
        buf.put_u64(self.addr);
        buf.freeze()
    }

    /// Parses a packet from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`DecodePacketError`] if the buffer is truncated or any
    /// field is out of range.
    pub fn decode(mut wire: Bytes) -> Result<Packet, DecodePacketError> {
        if wire.len() < PACKET_BYTES {
            return Err(DecodePacketError::Truncated);
        }
        let kind_code = wire.get_u8();
        let kind =
            PacketKind::from_code(kind_code).ok_or(DecodePacketError::UnknownKind(kind_code))?;
        let verified = wire.get_u8() != 0;
        let raw_node = wire.get_u16();
        if raw_node >= NodeId::SHARED_MARKER {
            return Err(DecodePacketError::BadNodeId(raw_node));
        }
        let source = NodeId::new(raw_node);
        let tag = wire.get_u16();
        let addr = wire.get_u64();
        Ok(Packet {
            kind,
            source,
            addr,
            verified,
            tag,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: PacketKind, verified: bool) -> Packet {
        Packet {
            kind,
            source: NodeId::new(5),
            addr: 0xDEAD_BEEF_0000,
            verified,
            tag: 42,
        }
    }

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [
            PacketKind::Read,
            PacketKind::Write,
            PacketKind::TranslationRequest,
            PacketKind::TranslationResponse,
        ] {
            for verified in [false, true] {
                let p = sample(kind, verified);
                assert_eq!(Packet::decode(p.encode()).unwrap(), p);
            }
        }
    }

    #[test]
    fn encoded_size_is_fixed() {
        assert_eq!(sample(PacketKind::Read, true).encode().len(), PACKET_BYTES);
    }

    #[test]
    fn truncated_buffer_rejected() {
        let mut wire = sample(PacketKind::Read, true).encode();
        let short = wire.split_to(PACKET_BYTES - 1);
        assert_eq!(Packet::decode(short), Err(DecodePacketError::Truncated));
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut raw = BytesMut::from(&sample(PacketKind::Read, true).encode()[..]);
        raw[0] = 0xFF;
        assert_eq!(
            Packet::decode(raw.freeze()),
            Err(DecodePacketError::UnknownKind(0xFF))
        );
    }

    #[test]
    fn bad_node_id_rejected() {
        let mut raw = BytesMut::from(&sample(PacketKind::Read, true).encode()[..]);
        raw[2] = 0x3F;
        raw[3] = 0xFF; // node id 0x3FFF = shared marker
        assert_eq!(
            Packet::decode(raw.freeze()),
            Err(DecodePacketError::BadNodeId(0x3FFF))
        );
    }

    #[test]
    fn v_flag_has_a_wire_bit() {
        let set = sample(PacketKind::Read, true).encode();
        let clear = sample(PacketKind::Read, false).encode();
        assert_eq!(set[1], 1);
        assert_eq!(clear[1], 0);
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!DecodePacketError::Truncated.to_string().is_empty());
        assert!(DecodePacketError::UnknownKind(9).to_string().contains('9'));
    }
}
