//! Fabric interconnect model for the DeACT reproduction.
//!
//! The paper models the Gen-Z-style fabric as a fixed-latency network
//! (500 ns in Table II, swept from 100 ns to 6 µs in Fig. 15) shared by
//! every node attached to a FAM pool. This crate provides:
//!
//! * [`Fabric`] — per-node access links plus a shared trunk into the
//!   FAM pool, each modelled as a contended resource, so the Fig. 16
//!   node-count sweep sees queueing as more nodes share the fabric.
//! * [`packet`] — the wire format of memory-semantic requests,
//!   including the `V` (verified) flag DeACT adds to request packets
//!   (§III-C), encoded with a real serializer so the flag has a
//!   concrete bit position.
//!
//! # Examples
//!
//! ```
//! use fam_fabric::{Fabric, FabricConfig};
//! use fam_sim::{Cycle, Frequency};
//!
//! let mut fabric = Fabric::new(Frequency::ghz(2), FabricConfig::default(), 1);
//! let arrival = fabric.node_to_fam(Cycle(0), 0);
//! assert_eq!(arrival, Cycle(1000)); // 500 ns at 2 GHz
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod packet;

use fam_sim::stats::Counter;
use fam_sim::{Cycle, Duration, Frequency, Resource};

/// Fabric timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// One-way traversal latency in nanoseconds (paper default:
    /// 500 ns; Fig. 15 sweeps 100 ns – 6 µs).
    pub latency_ns: u64,
    /// Cycles a node's access link is occupied per 64-byte flit.
    pub link_occupancy_cycles: u64,
    /// Cycles the shared trunk into the FAM pool is occupied per flit;
    /// this is the resource nodes contend on in the Fig. 16 sweep.
    pub trunk_occupancy_cycles: u64,
}

impl Default for FabricConfig {
    fn default() -> FabricConfig {
        FabricConfig {
            latency_ns: 500,
            link_occupancy_cycles: 4,
            trunk_occupancy_cycles: 2,
        }
    }
}

/// The system fabric connecting `nodes` compute nodes to the FAM pool.
///
/// A traversal claims the node's private access link, then the shared
/// trunk, then completes one traversal latency later. Responses take
/// the same path in reverse; both directions share the same resources,
/// which is how contention grows with node count.
#[derive(Debug, Clone)]
pub struct Fabric {
    latency: Duration,
    links: Vec<Resource>,
    trunk: Resource,
    traversals: Counter,
    config: FabricConfig,
    freq: Frequency,
}

impl Fabric {
    /// Creates a fabric for `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(freq: Frequency, config: FabricConfig, nodes: usize) -> Fabric {
        assert!(nodes > 0, "fabric needs at least one node");
        Fabric {
            latency: freq.ns_to_cycles(config.latency_ns),
            links: (0..nodes)
                .map(|_| Resource::new(config.link_occupancy_cycles))
                .collect(),
            trunk: Resource::new(config.trunk_occupancy_cycles),
            traversals: Counter::new(),
            config,
            freq,
        }
    }

    fn traverse(&mut self, now: Cycle, node: usize, flits: u64) -> Cycle {
        let _prof = fam_sim::profile::span(fam_sim::profile::PhaseId::Fabric);
        assert!(node < self.links.len(), "unknown node {node}");
        self.traversals.inc();
        let flits = flits.max(1);
        let link_occ = Duration(self.config.link_occupancy_cycles).times(flits);
        let trunk_occ = Duration(self.config.trunk_occupancy_cycles).times(flits);
        let on_link = self.links[node].acquire_for(now, link_occ);
        let on_trunk = self.trunk.acquire_for(on_link, trunk_occ);
        on_trunk + self.latency
    }

    /// A single-flit request from `node` to the FAM side; returns the
    /// arrival time.
    pub fn node_to_fam(&mut self, now: Cycle, node: usize) -> Cycle {
        self.traverse(now, node, 1)
    }

    /// A response (or any transfer) from the FAM side back to `node`;
    /// `bytes` sizes the transfer (rounded up to 64-byte flits).
    pub fn fam_to_node(&mut self, now: Cycle, node: usize, bytes: u64) -> Cycle {
        self.traverse(now, node, bytes.div_ceil(64))
    }

    /// Round trip: request to FAM plus `response_bytes` back, with
    /// `service` cycles spent at the FAM side in between.
    pub fn round_trip(
        &mut self,
        now: Cycle,
        node: usize,
        service: Duration,
        response_bytes: u64,
    ) -> Cycle {
        let there = self.node_to_fam(now, node);
        self.fam_to_node(there + service, node, response_bytes)
    }

    /// One-way traversal latency in cycles.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Total traversals in both directions.
    pub fn traversals(&self) -> u64 {
        self.traversals.value()
    }

    /// Number of attached nodes.
    pub fn nodes(&self) -> usize {
        self.links.len()
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> FabricConfig {
        self.config
    }

    /// The core frequency used for latency conversion.
    pub fn frequency(&self) -> Frequency {
        self.freq
    }

    /// Resets contention timelines and statistics.
    pub fn reset(&mut self) {
        for l in &mut self.links {
            l.reset();
        }
        self.trunk.reset();
        self.traversals.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(nodes: usize) -> Fabric {
        Fabric::new(Frequency::ghz(2), FabricConfig::default(), nodes)
    }

    #[test]
    fn one_way_latency_matches_config() {
        let mut f = fabric(2);
        assert_eq!(f.node_to_fam(Cycle(0), 0), Cycle(1000));
        assert_eq!(f.latency(), Duration(1000));
    }

    #[test]
    fn per_node_links_are_private() {
        let mut f = fabric(2);
        let a = f.node_to_fam(Cycle(0), 0);
        let b = f.node_to_fam(Cycle(0), 1);
        // Node 1 only waits behind node 0 on the shared trunk.
        assert_eq!(a, Cycle(1000));
        assert!(b > a && b < Cycle(1010), "trunk-only queueing: got {b:?}");
    }

    #[test]
    fn same_node_requests_queue_on_link() {
        let mut f = fabric(1);
        let a = f.node_to_fam(Cycle(0), 0);
        let b = f.node_to_fam(Cycle(0), 0);
        assert!(b >= a + Duration(4), "second flit waits for the link");
    }

    #[test]
    fn large_response_occupies_longer() {
        let mut f = fabric(1);
        f.fam_to_node(Cycle(0), 0, 4096); // 64 flits
        let next = f.node_to_fam(Cycle(0), 0);
        assert!(next > Cycle(1200), "link busy for 64 flits: {next:?}");
    }

    #[test]
    fn round_trip_includes_service_time() {
        let mut f = fabric(1);
        let done = f.round_trip(Cycle(0), 0, Duration(120), 64);
        // 1000 there + 120 service + 1000 back, plus occupancies.
        assert!(done >= Cycle(2120));
        assert!(done < Cycle(2200));
        assert_eq!(f.traversals(), 2);
    }

    #[test]
    fn sweeping_latency_changes_traversal() {
        let cfg = FabricConfig {
            latency_ns: 6000,
            ..FabricConfig::default()
        };
        let mut f = Fabric::new(Frequency::ghz(2), cfg, 1);
        assert_eq!(f.node_to_fam(Cycle(0), 0), Cycle(12000));
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn out_of_range_node_rejected() {
        fabric(1).node_to_fam(Cycle(0), 5);
    }

    #[test]
    fn reset_clears_contention() {
        let mut f = fabric(1);
        f.node_to_fam(Cycle(0), 0);
        f.reset();
        assert_eq!(f.traversals(), 0);
        assert_eq!(f.node_to_fam(Cycle(0), 0), Cycle(1000));
    }
}
