//! Fabric interconnect model for the DeACT reproduction.
//!
//! The paper models the Gen-Z-style fabric as a fixed-latency network
//! (500 ns in Table II, swept from 100 ns to 6 µs in Fig. 15) shared by
//! every node attached to a FAM pool. This crate provides:
//!
//! * [`Fabric`] — per-node access links plus per-module ports into the
//!   FAM pool, each modelled as a contended resource, so the Fig. 16
//!   node-count sweep sees queueing as more nodes share the fabric
//!   while traffic to distinct NVM modules rides independent ports.
//! * [`packet`] — the wire format of memory-semantic requests,
//!   including the `V` (verified) flag DeACT adds to request packets
//!   (§III-C), encoded with a real serializer so the flag has a
//!   concrete bit position.
//!
//! # Examples
//!
//! ```
//! use fam_fabric::{Fabric, FabricConfig};
//! use fam_sim::{Cycle, Frequency};
//!
//! let mut fabric = Fabric::new(Frequency::ghz(2), FabricConfig::default(), 1, 1);
//! let arrival = fabric.node_to_fam(Cycle(0), 0, 0);
//! assert_eq!(arrival, Cycle(1000)); // 500 ns at 2 GHz
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod packet;

use fam_sim::stats::Counter;
use fam_sim::{Cycle, Duration, Frequency, Resource};

/// Fabric timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// One-way traversal latency in nanoseconds (paper default:
    /// 500 ns; Fig. 15 sweeps 100 ns – 6 µs).
    pub latency_ns: u64,
    /// Cycles a node's access link is occupied per 64-byte flit.
    pub link_occupancy_cycles: u64,
    /// Cycles a FAM module's port is occupied per flit; traffic to the
    /// same module contends here in the Fig. 16 sweep, while distinct
    /// modules queue independently. (Historically named for the single
    /// shared trunk the port array replaced; with one module the two
    /// models are identical.)
    pub trunk_occupancy_cycles: u64,
}

impl Default for FabricConfig {
    fn default() -> FabricConfig {
        FabricConfig {
            latency_ns: 500,
            link_occupancy_cycles: 4,
            trunk_occupancy_cycles: 2,
        }
    }
}

/// The per-traversal timing constants, copied out of a [`Fabric`] so
/// the sharded engine can run traversals against individually borrowed
/// link/port resources without holding `&mut Fabric`.
#[derive(Debug, Clone, Copy)]
pub struct FabricTiming {
    /// Link occupancy per 64-byte flit.
    pub link_occupancy: Duration,
    /// Module-port occupancy per flit.
    pub port_occupancy: Duration,
    /// One-way traversal latency.
    pub latency: Duration,
}

/// One traversal against an explicitly borrowed link/port pair — the
/// primitive shared by [`Fabric::node_to_fam`]-style owned calls and
/// the sharded engine's epoch-parallel traversals.
///
/// Does **not** count the traversal: the owned path increments the
/// fabric counter itself and shards reconcile their local tallies via
/// [`Fabric::add_traversals`] at merge time.
pub fn traverse_split(
    link: &mut Resource,
    port: &mut Resource,
    timing: FabricTiming,
    now: Cycle,
    flits: u64,
) -> Cycle {
    let _prof = fam_sim::profile::span(fam_sim::profile::PhaseId::Fabric);
    let flits = flits.max(1);
    let on_link = link.acquire_for(now, timing.link_occupancy.times(flits));
    let on_port = port.acquire_for(on_link, timing.port_occupancy.times(flits));
    on_port + timing.latency
}

/// The system fabric connecting `nodes` compute nodes to a FAM pool of
/// `modules` NVM modules.
///
/// A traversal claims the node's private access link, then the target
/// module's port, then completes one traversal latency later.
/// Responses take the same path in reverse; both directions share the
/// same resources, which is how contention grows with node count.
/// Traffic to distinct modules only shares the node link.
#[derive(Debug, Clone)]
pub struct Fabric {
    latency: Duration,
    links: Vec<Resource>,
    ports: Vec<Resource>,
    traversals: Counter,
    config: FabricConfig,
    freq: Frequency,
}

impl Fabric {
    /// Creates a fabric for `nodes` nodes and `modules` FAM modules.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `modules` is zero.
    pub fn new(freq: Frequency, config: FabricConfig, nodes: usize, modules: usize) -> Fabric {
        assert!(nodes > 0, "fabric needs at least one node");
        assert!(modules > 0, "fabric needs at least one module");
        Fabric {
            latency: freq.ns_to_cycles(config.latency_ns),
            links: (0..nodes)
                .map(|_| Resource::new(config.link_occupancy_cycles))
                .collect(),
            ports: (0..modules)
                .map(|_| Resource::new(config.trunk_occupancy_cycles))
                .collect(),
            traversals: Counter::new(),
            config,
            freq,
        }
    }

    fn traverse(&mut self, now: Cycle, node: usize, module: usize, flits: u64) -> Cycle {
        assert!(node < self.links.len(), "unknown node {node}");
        assert!(module < self.ports.len(), "unknown module {module}");
        self.traversals.inc();
        let timing = self.timing();
        traverse_split(
            &mut self.links[node],
            &mut self.ports[module],
            timing,
            now,
            flits,
        )
    }

    /// A single-flit request from `node` to FAM module `module`;
    /// returns the arrival time.
    pub fn node_to_fam(&mut self, now: Cycle, node: usize, module: usize) -> Cycle {
        self.traverse(now, node, module, 1)
    }

    /// A response (or any transfer) from module `module` back to
    /// `node`; `bytes` sizes the transfer (rounded up to 64-byte
    /// flits).
    pub fn fam_to_node(&mut self, now: Cycle, node: usize, module: usize, bytes: u64) -> Cycle {
        self.traverse(now, node, module, bytes.div_ceil(64))
    }

    /// Round trip: request to module `module` plus `response_bytes`
    /// back, with `service` cycles spent at the FAM side in between.
    pub fn round_trip(
        &mut self,
        now: Cycle,
        node: usize,
        module: usize,
        service: Duration,
        response_bytes: u64,
    ) -> Cycle {
        let there = self.node_to_fam(now, node, module);
        self.fam_to_node(there + service, node, module, response_bytes)
    }

    /// One-way traversal latency in cycles.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Total traversals in both directions.
    pub fn traversals(&self) -> u64 {
        self.traversals.value()
    }

    /// Number of attached nodes.
    pub fn nodes(&self) -> usize {
        self.links.len()
    }

    /// Number of FAM module ports.
    pub fn modules(&self) -> usize {
        self.ports.len()
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> FabricConfig {
        self.config
    }

    /// The core frequency used for latency conversion.
    pub fn frequency(&self) -> Frequency {
        self.freq
    }

    /// The timing constants for [`traverse_split`].
    pub fn timing(&self) -> FabricTiming {
        FabricTiming {
            link_occupancy: Duration(self.config.link_occupancy_cycles),
            port_occupancy: Duration(self.config.trunk_occupancy_cycles),
            latency: self.latency,
        }
    }

    /// Splits the fabric into its node links and module ports so the
    /// sharded engine can lend each shard exactly the resources it was
    /// granted for an epoch.
    pub fn split_mut(&mut self) -> (&mut [Resource], &mut [Resource]) {
        (&mut self.links, &mut self.ports)
    }

    /// Folds `n` shard-side traversals into the owned counter.
    pub fn add_traversals(&mut self, n: u64) {
        self.traversals.add(n);
    }

    /// Resets contention timelines and statistics.
    pub fn reset(&mut self) {
        for l in &mut self.links {
            l.reset();
        }
        for p in &mut self.ports {
            p.reset();
        }
        self.traversals.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(nodes: usize) -> Fabric {
        Fabric::new(Frequency::ghz(2), FabricConfig::default(), nodes, 1)
    }

    #[test]
    fn one_way_latency_matches_config() {
        let mut f = fabric(2);
        assert_eq!(f.node_to_fam(Cycle(0), 0, 0), Cycle(1000));
        assert_eq!(f.latency(), Duration(1000));
    }

    #[test]
    fn per_node_links_are_private() {
        let mut f = fabric(2);
        let a = f.node_to_fam(Cycle(0), 0, 0);
        let b = f.node_to_fam(Cycle(0), 1, 0);
        // Node 1 only waits behind node 0 on the shared module port.
        assert_eq!(a, Cycle(1000));
        assert!(b > a && b < Cycle(1010), "port-only queueing: got {b:?}");
    }

    #[test]
    fn per_module_ports_are_independent() {
        let mut f = Fabric::new(Frequency::ghz(2), FabricConfig::default(), 2, 2);
        let a = f.node_to_fam(Cycle(0), 0, 0);
        let b = f.node_to_fam(Cycle(0), 1, 1);
        // Different nodes, different modules: no shared resource at all.
        assert_eq!(a, Cycle(1000));
        assert_eq!(b, Cycle(1000));
        assert_eq!(f.modules(), 2);
    }

    #[test]
    fn same_node_requests_queue_on_link() {
        let mut f = fabric(1);
        let a = f.node_to_fam(Cycle(0), 0, 0);
        let b = f.node_to_fam(Cycle(0), 0, 0);
        assert!(b >= a + Duration(4), "second flit waits for the link");
    }

    #[test]
    fn large_response_occupies_longer() {
        let mut f = fabric(1);
        f.fam_to_node(Cycle(0), 0, 0, 4096); // 64 flits
        let next = f.node_to_fam(Cycle(0), 0, 0);
        assert!(next > Cycle(1200), "link busy for 64 flits: {next:?}");
    }

    #[test]
    fn round_trip_includes_service_time() {
        let mut f = fabric(1);
        let done = f.round_trip(Cycle(0), 0, 0, Duration(120), 64);
        // 1000 there + 120 service + 1000 back, plus occupancies.
        assert!(done >= Cycle(2120));
        assert!(done < Cycle(2200));
        assert_eq!(f.traversals(), 2);
    }

    #[test]
    fn split_traversal_matches_owned() {
        let mut owned = fabric(1);
        let mut split = fabric(1);
        let want = owned.node_to_fam(Cycle(0), 0, 0);
        let timing = split.timing();
        let (links, ports) = split.split_mut();
        let got = traverse_split(&mut links[0], &mut ports[0], timing, Cycle(0), 1);
        split.add_traversals(1);
        assert_eq!(got, want);
        assert_eq!(split.traversals(), owned.traversals());
    }

    #[test]
    fn sweeping_latency_changes_traversal() {
        let cfg = FabricConfig {
            latency_ns: 6000,
            ..FabricConfig::default()
        };
        let mut f = Fabric::new(Frequency::ghz(2), cfg, 1, 1);
        assert_eq!(f.node_to_fam(Cycle(0), 0, 0), Cycle(12000));
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn out_of_range_node_rejected() {
        fabric(1).node_to_fam(Cycle(0), 5, 0);
    }

    #[test]
    #[should_panic(expected = "unknown module")]
    fn out_of_range_module_rejected() {
        fabric(1).node_to_fam(Cycle(0), 0, 3);
    }

    #[test]
    fn reset_clears_contention() {
        let mut f = fabric(1);
        f.node_to_fam(Cycle(0), 0, 0);
        f.reset();
        assert_eq!(f.traversals(), 0);
        assert_eq!(f.node_to_fam(Cycle(0), 0, 0), Cycle(1000));
    }
}
