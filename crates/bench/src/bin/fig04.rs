//! Regenerates the paper's fig04 output; see `fam_bench::figs`.
fn main() {
    fam_bench::figs::fig04();
}
