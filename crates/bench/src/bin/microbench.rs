//! Dependency-free micro-benchmarks on the hot data structures of the
//! simulation: these bound how fast the full-system experiments run
//! and double as smoke tests on the substrate implementations.
//!
//! A deliberate stand-in for an external benchmark harness — the
//! workspace builds hermetically, so the timing loop is plain
//! `std::time::Instant` with `std::hint::black_box` keeping the
//! optimizer honest. Numbers are wall-clock ns/op medians over a few
//! repetitions: good for spotting 2× regressions, not 2% ones.
//!
//! Besides the per-structure loops, the suite times the end-to-end
//! scheduler: per-reference cost at 4/16/64 total cores (flat under
//! the event-queue scheduler, linear under a rescan) and whole-system
//! throughput in references per second.
//!
//! Results print as a table and are also written to `BENCH_sim.json`
//! (schema `deact-microbench-v1`) so CI can archive them; `--out
//! <path>` redirects the JSON (the default path is unchanged so
//! existing invocations keep working). CI diffs the JSON against the
//! committed `BENCH_baseline.json` and fails on a >15% throughput
//! regression.
//!
//! The suite also times the intra-run parallel engine
//! ([`deact::System::try_run_parallel`]) on a 16-node system at
//! 1/2/4 threads — the `parallel_per_ref/*` entries and the derived
//! speedup land in the JSON for the CI artifact.
//!
//! The end-to-end runs honour `DEACT_TRACE` (`off` (default) |
//! `breakdown` | `full`), which is how the tracer's own overhead is
//! measured: run once with `off` and once with `breakdown`/`full` and
//! compare `sched_per_ref`/`system_throughput`.
//!
//! ```sh
//! cargo run --release -p fam-bench --bin microbench
//! DEACT_TRACE=breakdown cargo run --release -p fam-bench --bin microbench
//! ```

use std::hint::black_box;
use std::time::Instant;

use deact::{FamTranslator, Scheme, SystemConfig};
use fam_broker::{AcmWidth, FamLayout};
use fam_mem::{CacheConfig, CacheHierarchy, HierarchyConfig, Replacement, SetAssocCache};
use fam_stu::{StuCache, StuConfig, StuOrganization};
use fam_vm::{FamAddr, PageTable, PageWalker, PtFlags, PtwCache, TlbConfig, TlbHierarchy};
use fam_workloads::{RefBatch, RefStream, Workload};

const ITERS: u64 = 2_000_000;
const REPS: usize = 5;
/// References per core for the end-to-end scheduler benchmarks (far
/// fewer iterations than the tight loops — one "op" is a whole
/// simulated memory reference).
const SCHED_REFS: u64 = 5_000;
const SCHED_REPS: usize = 3;

/// One benchmark result: a label and its median ns/op.
struct Record {
    label: String,
    ns_per_op: f64,
}

/// End-to-end throughput of a full-system run.
struct Throughput {
    total_refs: u64,
    elapsed_ns: u64,
    refs_per_sec: f64,
    /// Fraction of references the engine retired without the
    /// scheduler heap — archived alongside the wall-clock numbers so a
    /// coverage regression is visible in the CI artifact, not silent.
    fast_path_coverage: f64,
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Times `f` for `ITERS` iterations, `REPS` times, records and prints
/// the median ns/op (the median shrugs off scheduler noise).
fn bench(records: &mut Vec<Record>, label: &str, mut f: impl FnMut(u64)) {
    let mut samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let start = Instant::now();
        for i in 0..ITERS {
            f(i);
        }
        samples.push(start.elapsed().as_nanos() as f64 / ITERS as f64);
    }
    let ns = median(samples);
    println!("{label:28} {ns:>8.1} ns/op");
    records.push(Record {
        label: label.to_string(),
        ns_per_op: ns,
    });
}

/// Runs one full simulation and returns wall-clock ns per simulated
/// reference.
fn time_system_run(cfg: SystemConfig) -> f64 {
    let w = Workload::by_name("sssp").expect("table3 benchmark");
    let total_refs = cfg.refs_per_core * (cfg.nodes * cfg.cores_per_node) as u64;
    let start = Instant::now();
    let report = deact::System::new(cfg, &w).run();
    let elapsed = start.elapsed().as_nanos() as f64;
    black_box(report.cycles);
    elapsed / total_refs as f64
}

/// Per-reference scheduler cost at growing core counts. Under the
/// event-queue scheduler this stays roughly flat (each reference costs
/// one O(log cores) heap pop + push); a per-reference rescan would grow
/// linearly with the core count.
fn bench_scheduler_scaling(records: &mut Vec<Record>) {
    for nodes in [1usize, 4, 16] {
        let cfg = SystemConfig::paper_default()
            .with_scheme(Scheme::DeactN)
            .with_nodes(nodes)
            .with_fam_modules(nodes)
            .with_refs_per_core(SCHED_REFS)
            .with_seed(0xBE9C)
            .with_trace(fam_bench::trace_from_env(fam_sim::TraceConfig::disabled()));
        let cores = nodes * cfg.cores_per_node;
        let samples: Vec<f64> = (0..SCHED_REPS).map(|_| time_system_run(cfg)).collect();
        let ns = median(samples);
        let label = format!("sched_per_ref/{cores}_cores");
        println!("{label:28} {ns:>8.1} ns/op");
        records.push(Record {
            label,
            ns_per_op: ns,
        });
    }
}

/// Parallel-engine scaling: wall-clock ns per reference of one
/// 16-node run under [`deact::System::try_run_parallel`] at 1, 2 and
/// 4 threads (1 = the sequential engine, the denominator of the
/// speedup). Reports are bit-identical across the sweep, so this
/// measures pure wall-clock, not behaviour. Returns the 4-thread
/// speedup and the (thread-count-invariant) fraction of references
/// the epoch shards retired — the coverage the speedup is bounded by.
fn bench_parallel_scaling(records: &mut Vec<Record>) -> (f64, f64) {
    let cfg = SystemConfig::paper_default()
        .with_scheme(Scheme::DeactN)
        .with_nodes(16)
        .with_fam_modules(16)
        .with_refs_per_core(SCHED_REFS)
        .with_seed(0xBE9C)
        .with_trace(fam_bench::trace_from_env(fam_sim::TraceConfig::disabled()));
    let w = Workload::by_name("sssp").expect("table3 benchmark");
    let total_refs = cfg.refs_per_core * (cfg.nodes * cfg.cores_per_node) as u64;
    let mut sequential_ns = f64::NAN;
    let mut speedup_4t = f64::NAN;
    let mut coverage = 0.0;
    for threads in [1usize, 2, 4] {
        let samples: Vec<f64> = (0..SCHED_REPS)
            .map(|_| {
                let start = Instant::now();
                let report = deact::System::new(cfg, &w).run_parallel(threads);
                let elapsed = start.elapsed().as_nanos() as f64;
                if threads > 1 {
                    coverage = report.parallel_phase_coverage;
                }
                black_box(report.cycles);
                elapsed / total_refs as f64
            })
            .collect();
        let ns = median(samples);
        let label = format!("parallel_per_ref/16_nodes_{threads}t");
        if threads == 1 {
            sequential_ns = ns;
            println!("{label:28} {ns:>8.1} ns/op");
        } else {
            let speedup = sequential_ns / ns;
            if threads == 4 {
                speedup_4t = speedup;
            }
            println!("{label:28} {ns:>8.1} ns/op  ({speedup:.2}x)");
        }
        records.push(Record {
            label,
            ns_per_op: ns,
        });
    }
    println!("parallel_phase_coverage      {:>7.1} %", coverage * 100.0);
    (speedup_4t, coverage)
}

/// Per-reference cost of the fused fast-path engine on `sp`, the
/// Table III workload with the highest fast-path coverage (~18% of
/// references retire without touching the scheduler heap under
/// paper-default translation rates). A classification regression —
/// references silently falling back to the exact scheduler — shows up
/// here as a time jump before it shows up anywhere else.
fn bench_fastpath(records: &mut Vec<Record>) {
    let cfg = SystemConfig::paper_default()
        .with_refs_per_core(SCHED_REFS)
        .with_seed(0xBE9C)
        .with_trace(fam_bench::trace_from_env(fam_sim::TraceConfig::disabled()));
    let w = Workload::by_name("sp").expect("table3 benchmark");
    let total_refs = cfg.refs_per_core * (cfg.nodes * cfg.cores_per_node) as u64;
    let mut coverage = 0.0;
    let samples: Vec<f64> = (0..SCHED_REPS)
        .map(|_| {
            let start = Instant::now();
            let report = deact::System::new(cfg, &w).run();
            let elapsed = start.elapsed().as_nanos() as f64;
            coverage = report.fast_path_coverage;
            black_box(report.cycles);
            elapsed / total_refs as f64
        })
        .collect();
    let ns = median(samples);
    let label = "fastpath_per_ref";
    println!(
        "{label:28} {ns:>8.1} ns/op  ({:.1}% coverage)",
        coverage * 100.0
    );
    records.push(Record {
        label: label.to_string(),
        ns_per_op: ns,
    });
}

/// Per-reference cost of running a recorded trace through the full
/// system instead of the live generator: records the
/// `sched_per_ref/4_cores` configuration's stream to a FAMT v2 file
/// once, then times replay runs streaming it back from disk. The
/// delta against `sched_per_ref/4_cores` is the whole price of
/// chunked file decode on the hot path.
fn bench_replay(records: &mut Vec<Record>) {
    let cfg = SystemConfig::paper_default()
        .with_scheme(Scheme::DeactN)
        .with_refs_per_core(SCHED_REFS)
        .with_seed(0xBE9C)
        .with_trace(fam_bench::trace_from_env(fam_sim::TraceConfig::disabled()));
    let w = Workload::by_name("sssp").expect("table3 benchmark");
    let path = std::env::temp_dir().join(format!("deact-microbench-{}.famt", std::process::id()));
    let mut streams = deact::System::synthetic_streams(&cfg, &w);
    let file = std::fs::File::create(&path).expect("temp trace file");
    fam_workloads::trace::record_streams(
        std::io::BufWriter::new(file),
        &mut streams,
        cfg.refs_per_core,
    )
    .expect("record trace");
    let total_refs = cfg.refs_per_core * (cfg.nodes * cfg.cores_per_node) as u64;
    let samples: Vec<f64> = (0..SCHED_REPS)
        .map(|_| {
            let streams =
                fam_workloads::trace::replay_streams(&path, cfg.nodes, cfg.cores_per_node)
                    .expect("replay streams");
            let start = Instant::now();
            let report = deact::System::with_streams(cfg, "sssp", streams).run();
            let elapsed = start.elapsed().as_nanos() as f64;
            black_box(report.cycles);
            elapsed / total_refs as f64
        })
        .collect();
    let ns = median(samples);
    let label = "replay_per_ref";
    println!("{label:28} {ns:>8.1} ns/op");
    records.push(Record {
        label: label.to_string(),
        ns_per_op: ns,
    });
    std::fs::remove_file(&path).ok();
}

/// The sharded engine on a bursty phase-structured trace: synthesizes
/// a 16-node FAMT v2 trace whose ranks rotate through scan/chase/dwell
/// phases out of lockstep, replays it under
/// [`deact::System::try_run_parallel`] at 2 threads, and returns the
/// epoch-shard coverage plus the mean FAM refs the leader retires per
/// granted epoch (leader-front dwell — ~1 on lockstep synthetics, the
/// whole point of the bursty trace is to raise it). Both land in the
/// JSON for the bench-diff gate.
fn bench_replay_burst(records: &mut Vec<Record>) -> (f64, f64) {
    let cfg = SystemConfig::paper_default()
        .with_scheme(Scheme::DeactN)
        .with_nodes(16)
        .with_fam_modules(16)
        .with_refs_per_core(SCHED_REFS)
        .with_seed(0xBE9C)
        .with_trace(fam_bench::trace_from_env(fam_sim::TraceConfig::disabled()));
    let path = std::env::temp_dir().join(format!(
        "deact-microbench-burst-{}.famt",
        std::process::id()
    ));
    let burst = fam_workloads::trace::BurstConfig::new(0xBE9C);
    let file = std::fs::File::create(&path).expect("temp trace file");
    fam_workloads::trace::synthesize_bursty(
        std::io::BufWriter::new(file),
        &burst,
        cfg.nodes,
        cfg.cores_per_node,
        cfg.refs_per_core,
    )
    .expect("synthesize bursty trace");
    let total_refs = cfg.refs_per_core * (cfg.nodes * cfg.cores_per_node) as u64;
    let mut coverage = 0.0;
    let mut dwell = 0.0;
    let samples: Vec<f64> = (0..SCHED_REPS)
        .map(|_| {
            let streams =
                fam_workloads::trace::replay_streams(&path, cfg.nodes, cfg.cores_per_node)
                    .expect("replay streams");
            let mut system = deact::System::with_streams(cfg, "bursty", streams);
            let start = Instant::now();
            let report = system.try_run_parallel(2).expect("fault-free run");
            let elapsed = start.elapsed().as_nanos() as f64;
            coverage = report.parallel_phase_coverage;
            let metrics = system.metrics();
            let fam_refs = metrics.counter_value("parallel/fam_refs").unwrap_or(0);
            let grants: u64 = (0..cfg.fam_modules)
                .map(|m| {
                    metrics
                        .counter_value(&format!("nvm{m}/granted_epochs"))
                        .unwrap_or(0)
                })
                .sum();
            dwell = if grants > 0 {
                fam_refs as f64 / grants as f64
            } else {
                0.0
            };
            black_box(report.cycles);
            elapsed / total_refs as f64
        })
        .collect();
    let ns = median(samples);
    let label = "replay_parallel_per_ref/16_nodes_2t";
    println!("{label:28} {ns:>8.1} ns/op");
    println!(
        "replay_parallel_coverage     {:>7.1} %  ({dwell:.2} FAM refs/granted epoch)",
        coverage * 100.0
    );
    records.push(Record {
        label: label.to_string(),
        ns_per_op: ns,
    });
    std::fs::remove_file(&path).ok();
    (coverage, dwell)
}

/// Whole-system throughput: simulated references per wall-clock second
/// on the paper-default single-node configuration.
fn bench_throughput() -> Throughput {
    let cfg = SystemConfig::paper_default()
        .with_refs_per_core(20_000)
        .with_seed(0xBE9C)
        .with_trace(fam_bench::trace_from_env(fam_sim::TraceConfig::disabled()));
    let w = Workload::by_name("sssp").expect("table3 benchmark");
    let total_refs = cfg.refs_per_core * (cfg.nodes * cfg.cores_per_node) as u64;
    let start = Instant::now();
    let report = deact::System::new(cfg, &w).run();
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    black_box(report.cycles);
    let refs_per_sec = total_refs as f64 * 1e9 / elapsed_ns as f64;
    println!("{:28} {refs_per_sec:>10.0} refs/sec", "system_throughput");
    Throughput {
        total_refs,
        elapsed_ns,
        refs_per_sec,
        fast_path_coverage: report.fast_path_coverage,
    }
}

/// Serialises the results to `path` (default `BENCH_sim.json`).
/// Hand-rolled writer: the workspace is dependency-free, and the
/// labels are plain ASCII with nothing to escape.
fn write_json(
    path: &str,
    records: &[Record],
    throughput: &Throughput,
    parallel_speedup_4t: f64,
    parallel_phase_coverage: f64,
    replay_parallel_phase_coverage: f64,
    replay_fam_refs_per_grant: f64,
) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = String::from("{\n  \"schema\": \"deact-microbench-v1\",\n");
    out.push_str(&format!("  \"iters\": {ITERS},\n  \"reps\": {REPS},\n"));
    // Recorded so the CI gate can tell a real parallel-engine
    // regression from a runner that simply has no cores to run on.
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    out.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"ns_per_op\": {:.3}}}{comma}\n",
            r.label, r.ns_per_op
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"parallel_speedup_4t\": {parallel_speedup_4t:.3},\n"
    ));
    out.push_str(&format!(
        "  \"parallel_phase_coverage\": {parallel_phase_coverage:.4},\n"
    ));
    out.push_str(&format!(
        "  \"replay_parallel_phase_coverage\": {replay_parallel_phase_coverage:.4},\n"
    ));
    out.push_str(&format!(
        "  \"replay_fam_refs_per_grant\": {replay_fam_refs_per_grant:.3},\n"
    ));
    out.push_str(&format!(
        "  \"throughput\": {{\"benchmark\": \"sssp\", \"total_refs\": {}, \
         \"elapsed_ns\": {}, \"refs_per_sec\": {:.1}, \
         \"fast_path_coverage\": {:.4}}}\n}}\n",
        throughput.total_refs,
        throughput.elapsed_ns,
        throughput.refs_per_sec,
        throughput.fast_path_coverage
    ));
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

/// `--profile <path>`: after the timed suite finishes (the profiler
/// stays off while anything is being measured), re-runs the
/// `sched_per_ref/16_cores` configuration once with the host-time
/// profiler enabled and writes the folded-stack file — ready for
/// `inferno-flamegraph` or <https://speedscope.app>.
fn write_profile(path: &str) -> std::io::Result<()> {
    let cfg = SystemConfig::paper_default()
        .with_scheme(Scheme::DeactN)
        .with_nodes(4)
        .with_fam_modules(4)
        .with_refs_per_core(SCHED_REFS)
        .with_seed(0xBE9C)
        .with_trace(fam_bench::trace_from_env(fam_sim::TraceConfig::disabled()));
    let w = Workload::by_name("sssp").expect("table3 benchmark");
    fam_sim::profile::set_enabled(true);
    let report = deact::System::new(cfg, &w).run();
    fam_sim::profile::set_enabled(false);
    std::fs::write(path, report.profile.to_folded())?;
    println!(
        "wrote {path} ({} profiled phases)",
        fam_sim::profile::PhaseId::ALL
            .iter()
            .filter(|p| report.profile.phase(**p).calls > 0)
            .count()
    );
    Ok(())
}

fn main() {
    // `--out <path>` redirects the JSON artifact; `--profile <path>`
    // additionally writes a folded-stack host-time profile of one
    // instrumented run after the timed suite.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_sim.json");
    let mut profile_path = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--out", Some(path)) => out_path = path.clone(),
            ("--profile", Some(path)) => profile_path = Some(path.clone()),
            _ => {
                eprintln!("usage: microbench [--out <path>] [--profile <path>]");
                std::process::exit(2);
            }
        }
    }
    let mut records = Vec::new();
    println!("{:28} {:>11}  ({ITERS} iters x {REPS} reps)", "", "median");

    let mut cache: SetAssocCache<u64> =
        SetAssocCache::new(CacheConfig::new(128, 8, Replacement::Lru));
    for k in 0..1024u64 {
        cache.insert(k, k);
    }
    bench(&mut records, "set_assoc_cache_get", |i| {
        black_box(cache.get(black_box((i * 7) % 2048)).copied());
    });

    let mut h = CacheHierarchy::new(4, HierarchyConfig::default());
    bench(&mut records, "cache_hierarchy_access", |i| {
        black_box(h.access(0, black_box((i * 97) % 100_000), false));
    });

    let mut tlb = TlbHierarchy::new(TlbConfig::default());
    for p in 0..256u64 {
        tlb.fill(
            p,
            fam_vm::Pte {
                target_page: p,
                flags: PtFlags::rw(),
            },
        );
    }
    bench(&mut records, "tlb_lookup", |i| {
        black_box(tlb.lookup(black_box((i * 3) % 512)));
    });

    let mut pt = PageTable::new(0);
    let mut next = 0x100_0000u64;
    let mut alloc = |_: usize| {
        let a = next;
        next += 4096;
        a
    };
    for v in 0..10_000u64 {
        pt.map(v * 13, v, PtFlags::rw(), &mut alloc);
    }
    // Raw radix descent, no walk-step allocation: the direct-indexed
    // node storage makes each level one array read.
    bench(&mut records, "page_table_translate", |i| {
        black_box(pt.translate(black_box((i % 10_000) * 13)));
    });
    let mut ptw = PtwCache::new(32);
    bench(&mut records, "page_walk_planned", |i| {
        black_box(PageWalker::plan(
            &pt,
            Some(&mut ptw),
            black_box((i % 10_000) * 13),
        ));
    });

    for (label, org) in [
        ("stu_acm_lookup/deact_w", StuOrganization::DeactW),
        ("stu_acm_lookup/deact_n", StuOrganization::DeactN),
    ] {
        let mut stu = StuCache::new(StuConfig {
            organization: org,
            ..StuConfig::default()
        });
        for p in 0..2048u64 {
            stu.acm_fill(p * 31);
        }
        bench(&mut records, label, |i| {
            black_box(stu.acm_lookup(black_box((i % 4096) * 31)));
        });
    }

    let mut t = FamTranslator::new(1 << 20, 0x3000_0000, 128, 5);
    for p in 0..65_536u64 {
        t.install(p, p + 9);
    }
    bench(&mut records, "fam_translator_lookup", |i| {
        black_box(t.lookup(black_box((i * 11) % 131_072)));
    });

    let layout = FamLayout::new(16 << 30, AcmWidth::W16);
    bench(&mut records, "acm_addr_derivation", |i| {
        black_box(layout.acm_addr(FamAddr(black_box((i * 4096) % layout.usable_bytes()))));
    });

    let mut gen = Workload::by_name("sssp").unwrap().generator(3);
    bench(&mut records, "trace_generator_next_ref", |_| {
        black_box(gen.next_ref());
    });

    // The batched counterpart: identical reference sequence, popped
    // from a struct-of-arrays refill that resolves the stream variant
    // once per 64 references. `trace_generator_next_ref` above calls
    // the concrete generator directly, so the comparison shows the
    // batch absorbing the enum dispatch the engine would otherwise
    // pay per reference for roughly the cost of the raw loop.
    let mut stream = RefStream::from(Workload::by_name("sssp").unwrap().generator(3));
    let mut batch = RefBatch::new();
    bench(&mut records, "batch_gen_per_ref", |_| {
        if batch.is_empty() {
            batch.refill(&mut stream, RefBatch::DEFAULT_LEN);
        }
        black_box(batch.pop());
    });

    println!(
        "{:28} {:>11}  ({SCHED_REFS} refs/core x {SCHED_REPS} reps)",
        "", "median"
    );
    bench_scheduler_scaling(&mut records);
    bench_fastpath(&mut records);
    bench_replay(&mut records);
    let (parallel_speedup_4t, parallel_phase_coverage) = bench_parallel_scaling(&mut records);
    let (replay_coverage, replay_dwell) = bench_replay_burst(&mut records);
    let throughput = bench_throughput();

    match write_json(
        &out_path,
        &records,
        &throughput,
        parallel_speedup_4t,
        parallel_phase_coverage,
        replay_coverage,
        replay_dwell,
    ) {
        Ok(()) => println!("\nwrote {out_path} ({} entries)", records.len()),
        Err(e) => eprintln!("microbench: could not write {out_path}: {e}"),
    }
    if let Some(path) = profile_path {
        if let Err(e) = write_profile(&path) {
            eprintln!("microbench: could not write {path}: {e}");
        }
    }
}
