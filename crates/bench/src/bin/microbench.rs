//! Dependency-free micro-benchmarks on the hot data structures of the
//! simulation: these bound how fast the full-system experiments run
//! and double as smoke tests on the substrate implementations.
//!
//! A deliberate stand-in for an external benchmark harness — the
//! workspace builds hermetically, so the timing loop is plain
//! `std::time::Instant` with `std::hint::black_box` keeping the
//! optimizer honest. Numbers are wall-clock ns/op medians over a few
//! repetitions: good for spotting 2× regressions, not 2% ones.
//!
//! ```sh
//! cargo run --release -p fam-bench --bin microbench
//! ```

use std::hint::black_box;
use std::time::Instant;

use deact::FamTranslator;
use fam_broker::{AcmWidth, FamLayout};
use fam_mem::{CacheConfig, CacheHierarchy, HierarchyConfig, Replacement, SetAssocCache};
use fam_stu::{StuCache, StuConfig, StuOrganization};
use fam_vm::{FamAddr, PageTable, PageWalker, PtFlags, PtwCache, TlbConfig, TlbHierarchy};
use fam_workloads::Workload;

const ITERS: u64 = 2_000_000;
const REPS: usize = 5;

/// Times `f` for `ITERS` iterations, `REPS` times, and prints the
/// median ns/op (the median shrugs off scheduler noise).
fn bench(label: &str, mut f: impl FnMut(u64)) {
    let mut samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let start = Instant::now();
        for i in 0..ITERS {
            f(i);
        }
        samples.push(start.elapsed().as_nanos() as f64 / ITERS as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    println!("{label:28} {:>8.1} ns/op", samples[REPS / 2]);
}

fn main() {
    println!("{:28} {:>11}  ({ITERS} iters x {REPS} reps)", "", "median");

    let mut cache: SetAssocCache<u64> =
        SetAssocCache::new(CacheConfig::new(128, 8, Replacement::Lru));
    for k in 0..1024u64 {
        cache.insert(k, k);
    }
    bench("set_assoc_cache_get", |i| {
        black_box(cache.get(black_box((i * 7) % 2048)).copied());
    });

    let mut h = CacheHierarchy::new(4, HierarchyConfig::default());
    bench("cache_hierarchy_access", |i| {
        black_box(h.access(0, black_box((i * 97) % 100_000), false));
    });

    let mut tlb = TlbHierarchy::new(TlbConfig::default());
    for p in 0..256u64 {
        tlb.fill(
            p,
            fam_vm::Pte {
                target_page: p,
                flags: PtFlags::rw(),
            },
        );
    }
    bench("tlb_lookup", |i| {
        black_box(tlb.lookup(black_box((i * 3) % 512)));
    });

    let mut pt = PageTable::new(0);
    let mut next = 0x100_0000u64;
    let mut alloc = |_: usize| {
        let a = next;
        next += 4096;
        a
    };
    for v in 0..10_000u64 {
        pt.map(v * 13, v, PtFlags::rw(), &mut alloc);
    }
    let mut ptw = PtwCache::new(32);
    bench("page_walk_planned", |i| {
        black_box(PageWalker::plan(
            &pt,
            Some(&mut ptw),
            black_box((i % 10_000) * 13),
        ));
    });

    for (label, org) in [
        ("stu_acm_lookup/deact_w", StuOrganization::DeactW),
        ("stu_acm_lookup/deact_n", StuOrganization::DeactN),
    ] {
        let mut stu = StuCache::new(StuConfig {
            organization: org,
            ..StuConfig::default()
        });
        for p in 0..2048u64 {
            stu.acm_fill(p * 31);
        }
        bench(label, |i| {
            black_box(stu.acm_lookup(black_box((i % 4096) * 31)));
        });
    }

    let mut t = FamTranslator::new(1 << 20, 0x3000_0000, 128, 5);
    for p in 0..65_536u64 {
        t.install(p, p + 9);
    }
    bench("fam_translator_lookup", |i| {
        black_box(t.lookup(black_box((i * 11) % 131_072)));
    });

    let layout = FamLayout::new(16 << 30, AcmWidth::W16);
    bench("acm_addr_derivation", |i| {
        black_box(layout.acm_addr(FamAddr(black_box((i * 4096) % layout.usable_bytes()))));
    });

    let mut gen = Workload::by_name("sssp").unwrap().generator(3);
    bench("trace_generator_next_ref", |_| {
        black_box(gen.next_ref());
    });
}
