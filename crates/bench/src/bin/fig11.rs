//! Regenerates the paper's fig11 output; see `fam_bench::figs`.
fn main() {
    fam_bench::figs::fig11();
}
