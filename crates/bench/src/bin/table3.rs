//! Regenerates the paper's table3 output; see `fam_bench::figs`.
fn main() {
    fam_bench::figs::table3_bin();
}
