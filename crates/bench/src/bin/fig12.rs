//! Regenerates the paper's fig12 output; see `fam_bench::figs`.
fn main() {
    fam_bench::figs::fig12();
}
