//! Regenerates the paper's table1 output; see `fam_bench::figs`.
fn main() {
    fam_bench::figs::table1();
}
