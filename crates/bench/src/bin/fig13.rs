//! Regenerates the paper's fig13 output; see `fam_bench::figs`.
fn main() {
    fam_bench::figs::fig13();
}
