//! Regenerates the paper's fig10 output; see `fam_bench::figs`.
fn main() {
    fam_bench::figs::fig10();
}
