//! Calibration probe: per-benchmark scheme comparison at a glance.
//!
//! Used when tuning the Table III generator profiles (hot/warm tiers,
//! dependence fractions) against the paper's Fig. 3 slowdowns and
//! Fig. 9/10 hit rates. Not part of the figure suite.

use deact::{run_benchmark, Scheme, SystemConfig};
use fam_sim::FaultConfig;

fn main() {
    let refs = fam_bench::refs_from_env(60_000);
    let cfg = SystemConfig::paper_default()
        .with_refs_per_core(refs)
        .with_seed(7);
    println!(
        "{:7} {:>9} {:>8} {:>8} {:>7} {:>8} {:>8}",
        "bench", "slowdown", "thit(I)", "thit(D)", "acmN", "norm(I)", "norm(N)"
    );
    for name in fam_bench::benchmarks() {
        let efam = run_benchmark(name, cfg.with_scheme(Scheme::EFam));
        let ifam = run_benchmark(name, cfg.with_scheme(Scheme::IFam));
        let n = run_benchmark(name, cfg.with_scheme(Scheme::DeactN));
        println!(
            "{name:7} {:>8.1}x {:>7.1}% {:>7.1}% {:>6.1}% {:>8.2} {:>8.2}",
            efam.ipc / ifam.ipc,
            ifam.translation_hit_rate.unwrap() * 100.0,
            n.translation_hit_rate.unwrap() * 100.0,
            n.acm_hit_rate.unwrap() * 100.0,
            ifam.ipc / efam.ipc,
            n.ipc / efam.ipc,
        );
    }

    // Robustness probe: the transient-fault profile against every
    // scheme on one representative workload — a quick check that the
    // retry/NACK machinery holds its 100%-recovery contract and what
    // the faults cost each scheme.
    let faulty = cfg.with_fault_injection(FaultConfig::transient(7));
    println!();
    println!(
        "{:8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "scheme", "injected", "retries", "recov", "fatal", "rate", "ipc-loss"
    );
    for scheme in Scheme::ALL {
        let clean = run_benchmark("mcf", cfg.with_scheme(scheme));
        let r = run_benchmark("mcf", faulty.with_scheme(scheme));
        let f = &r.recovery;
        println!(
            "{:8} {:>8} {:>8} {:>8} {:>8} {:>7.1}% {:>8.1}%",
            scheme.name(),
            f.injected_total(),
            f.retries,
            f.recovered,
            f.fatal,
            f.recovery_rate() * 100.0,
            (1.0 - r.ipc / clean.ipc) * 100.0,
        );
    }
}
