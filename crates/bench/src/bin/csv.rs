//! Runs the headline benchmark × scheme matrix and writes
//! `results.csv` for external plotting.
//!
//! ```sh
//! DEACT_REFS=100000 cargo run --release -p fam-bench --bin csv [path]
//! ```
//!
//! Runs with breakdown-only tracing by default, so the
//! `lat_mean_<stage>` columns are populated (no event ring is kept —
//! only the per-stage histograms — so memory stays flat across the
//! full matrix). Override with `DEACT_TRACE=off|breakdown|full`.

use deact::Scheme;
use fam_bench::{benchmarks, refs_from_env, run_matrix, trace_from_env, write_csv};
use fam_sim::TraceConfig;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results.csv".into());
    let cfg = deact::SystemConfig::paper_default()
        .with_refs_per_core(refs_from_env(50_000))
        .with_trace(trace_from_env(TraceConfig::breakdown_only()));
    let matrix = run_matrix(&benchmarks(), &Scheme::ALL, cfg);
    let file = std::fs::File::create(&path).expect("create CSV file");
    write_csv(std::io::BufWriter::new(file), &matrix).expect("write CSV");
    println!("wrote {} rows to {path}", matrix.len());
}
