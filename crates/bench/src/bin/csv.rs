//! Runs the headline benchmark × scheme matrix and writes
//! `results.csv` for external plotting.
//!
//! ```sh
//! DEACT_REFS=100000 cargo run --release -p fam-bench --bin csv [path]
//! ```

use deact::Scheme;
use fam_bench::{benchmarks, refs_from_env, run_matrix, write_csv};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results.csv".into());
    let cfg = deact::SystemConfig::paper_default().with_refs_per_core(refs_from_env(50_000));
    let matrix = run_matrix(&benchmarks(), &Scheme::ALL, cfg);
    let file = std::fs::File::create(&path).expect("create CSV file");
    write_csv(std::io::BufWriter::new(file), &matrix).expect("write CSV");
    println!("wrote {} rows to {path}", matrix.len());
}
