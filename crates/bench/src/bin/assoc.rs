//! Regenerates the paper's assoc output; see `fam_bench::figs`.
fn main() {
    fam_bench::figs::assoc();
}
