//! Regenerates the paper's fig03 output; see `fam_bench::figs`.
fn main() {
    fam_bench::figs::fig03();
}
