//! Regenerates the paper's ablation output; see `fam_bench::figs`.
fn main() {
    fam_bench::figs::ablation();
}
