//! Regenerates the paper's fig16 output; see `fam_bench::figs`.
fn main() {
    fam_bench::figs::fig16();
}
