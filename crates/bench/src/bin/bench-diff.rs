//! `bench-diff` — compares two microbench JSON artifacts and fails on
//! performance regressions.
//!
//! ```text
//! bench-diff <baseline.json> <current.json>
//!            [--report <out.md>] [--tolerance X]
//!            [--throughput-floor X]
//! ```
//!
//! Exit status: 0 when every entry and gate is within tolerance, 1 on
//! any regression (or a missing entry), 2 on usage/IO errors. The
//! markdown comparison always prints to stdout; `--report` also writes
//! it to a file for a CI artifact. Tolerances and the noise-floor
//! rules are documented on [`fam_bench::diff`].
//!
//! CI runs this against the committed `BENCH_baseline.json` after
//! every release build:
//!
//! ```sh
//! cargo run --release -p fam-bench --bin microbench -- --out BENCH_fresh.json
//! cargo run --release -p fam-bench --bin bench-diff -- \
//!     BENCH_baseline.json BENCH_fresh.json --report bench-diff.md
//! ```

use std::process::ExitCode;

use fam_bench::diff::{diff, DiffConfig};
use fam_bench::json::Json;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench-diff <baseline.json> <current.json> \
         [--report <out.md>] [--tolerance X] [--throughput-floor X]"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Json, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("bench-diff: cannot read {path}: {e}");
        ExitCode::from(2)
    })?;
    Json::parse(&text).map_err(|e| {
        eprintln!("bench-diff: {path}: {e}");
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut report_path = None;
    let mut cfg = DiffConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--report" => match it.next() {
                Some(p) => report_path = Some(p.clone()),
                None => return usage(),
            },
            "--tolerance" => match it.next().and_then(|v| v.parse().ok()) {
                Some(x) if x > 1.0 => cfg.tolerance = x,
                _ => return usage(),
            },
            "--throughput-floor" => match it.next().and_then(|v| v.parse().ok()) {
                Some(x) if (0.0..=1.0).contains(&x) => cfg.throughput_floor = x,
                _ => return usage(),
            },
            _ if arg.starts_with("--") => return usage(),
            _ => paths.push(arg.clone()),
        }
    }
    let [base_path, new_path] = paths.as_slice() else {
        return usage();
    };
    let base = match load(base_path) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let new = match load(new_path) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let report = diff(&base, &new, &cfg);
    let md = report.to_markdown();
    print!("{md}");
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, &md) {
            eprintln!("bench-diff: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!("bench-diff: regression detected ({new_path} vs {base_path})");
        ExitCode::FAILURE
    }
}
