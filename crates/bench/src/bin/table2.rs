//! Regenerates the paper's table2 output; see `fam_bench::figs`.
fn main() {
    fam_bench::figs::table2();
}
