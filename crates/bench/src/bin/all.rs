//! Regenerates the paper's all output; see `fam_bench::figs`.
fn main() {
    fam_bench::figs::all();
}
