//! Regenerates the paper's fig15 output; see `fam_bench::figs`.
fn main() {
    fam_bench::figs::fig15();
}
