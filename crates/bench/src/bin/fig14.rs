//! Regenerates the paper's fig14 output; see `fam_bench::figs`.
fn main() {
    fam_bench::figs::fig14();
}
