//! Regenerates the paper's fig09 output; see `fam_bench::figs`.
fn main() {
    fam_bench::figs::fig09();
}
