//! The experiment harness: shared machinery for regenerating every
//! table and figure of the DeACT paper.
//!
//! Each `fig*`/`table*` binary builds on this crate: it runs the
//! benchmark × scheme matrix in parallel worker threads, prints the
//! series the paper plots, and places the paper's reported values
//! alongside (exact where the text gives numbers, digitized-from-the-
//! figure approximations elsewhere — see [`paper`]).
//!
//! Run length is controlled by the `DEACT_REFS` environment variable
//! (references per core; default 100 000 for headline figures, less
//! for multi-point sweeps), worker count by `DEACT_JOBS` (default: the
//! host's available parallelism), and intra-run parallelism by
//! `DEACT_SIM_THREADS` (threads per simulation via
//! [`deact::System::try_run_parallel`]; default 1 = the sequential
//! engine). The two levels compose — `DEACT_JOBS` spreads the matrix
//! across runs, `DEACT_SIM_THREADS` spreads one run across its nodes —
//! and reports are bit-identical at any setting of either.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::{mpsc, Mutex, OnceLock};

use deact::{RunReport, Scheme, SystemConfig};
use fam_sim::{cap_sim_threads, default_jobs, Stage, ThreadPool, TraceConfig};
use fam_workloads::{table3, Workload};

pub mod diff;
pub mod figs;
pub mod json;
pub mod paper;

/// The benchmark roster in the paper's figure order.
pub fn benchmarks() -> Vec<&'static str> {
    table3().iter().map(|w| w.name).collect()
}

/// References per core from `DEACT_REFS`, defaulting to `default`.
pub fn refs_from_env(default: u64) -> u64 {
    std::env::var("DEACT_REFS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Intra-run simulation threads from `DEACT_SIM_THREADS`, defaulting
/// to 1 (the sequential engine). Like `DEACT_JOBS` this is a harness
/// knob, not a [`SystemConfig`] field: it cannot change any report and
/// must not perturb the memoized run cache's configuration keys.
/// Delegates to [`fam_sim::sim_threads_from_env`], the reader the
/// core crate's [`deact::try_run_benchmark`] shares.
pub fn sim_threads_from_env() -> usize {
    fam_sim::sim_threads_from_env()
}

/// Parses one `DEACT_TRACE` value: `off`/`0`/`none` disables tracing,
/// `breakdown` keeps only the per-stage histograms (no event ring),
/// `on`/`1`/`full` keeps the bounded event ring too. Unrecognised
/// values return `None`.
pub fn parse_trace_mode(value: &str) -> Option<TraceConfig> {
    match value.to_ascii_lowercase().as_str() {
        "off" | "0" | "none" => Some(TraceConfig::disabled()),
        "breakdown" => Some(TraceConfig::breakdown_only()),
        "on" | "1" | "full" => Some(TraceConfig::full()),
        _ => None,
    }
}

/// Tracer configuration from the `DEACT_TRACE` environment variable
/// (see [`parse_trace_mode`]), defaulting to `default` when unset or
/// unrecognised — the same contract as [`refs_from_env`].
pub fn trace_from_env(default: TraceConfig) -> TraceConfig {
    std::env::var("DEACT_TRACE")
        .ok()
        .and_then(|v| parse_trace_mode(&v))
        .unwrap_or(default)
}

/// A completed benchmark×scheme matrix.
pub type Matrix = HashMap<(String, Scheme), RunReport>;

/// Cache key for one completed run: benchmark, scheme, and an exact
/// fingerprint of the full configuration. [`SystemConfig`] carries
/// `f64` fields and so cannot implement `Hash` itself; its `Debug`
/// output prints every field and is therefore a faithful stand-in.
type CacheKey = (String, Scheme, String);

fn cache_key(bench: &str, scheme: Scheme, cfg: SystemConfig) -> CacheKey {
    let keyed = cfg.with_scheme(scheme);
    (bench.to_string(), scheme, format!("{keyed:?}"))
}

/// The process-wide memoized run cache. The `all` binary replays the
/// same headline matrix for several figures (Figs. 3 and 4 share one;
/// Figs. 9–12 overlap pairwise); memoization turns those replays into
/// lookups. Simulations are deterministic, so a cached report is
/// bit-identical to a rerun.
fn matrix_cache() -> &'static Mutex<HashMap<CacheKey, RunReport>> {
    static CACHE: OnceLock<Mutex<HashMap<CacheKey, RunReport>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Runs every `(benchmark, scheme)` pair of the matrix across the
/// bounded worker pool and collects the reports. Worker count comes
/// from [`fam_sim::default_jobs`] (`DEACT_JOBS`, else available
/// parallelism); repeated runs of the same configuration in one
/// process are served from the memoized cache.
///
/// # Panics
///
/// Panics if a worker thread panics or a benchmark name is unknown.
pub fn run_matrix(benches: &[&str], schemes: &[Scheme], cfg: SystemConfig) -> Matrix {
    run_matrix_opts(benches, schemes, cfg, default_jobs(), true)
}

/// [`run_matrix`] with explicit worker count and cache policy — the
/// entry point the determinism tests drive directly (`jobs = 1` vs
/// `jobs = n`, cache off so every run is live).
///
/// # Panics
///
/// Panics if a worker thread panics or a benchmark name is unknown.
pub fn run_matrix_opts(
    benches: &[&str],
    schemes: &[Scheme],
    cfg: SystemConfig,
    jobs: usize,
    use_cache: bool,
) -> Matrix {
    let mut todo: Vec<(String, Scheme)> = Vec::new();
    for b in benches {
        for s in schemes {
            todo.push((b.to_string(), *s));
        }
    }
    let mut matrix = Matrix::new();
    if use_cache {
        let cache = matrix_cache().lock().expect("run cache poisoned");
        todo.retain(|(b, s)| match cache.get(&cache_key(b, *s, cfg)) {
            Some(report) => {
                matrix.insert((b.clone(), *s), report.clone());
                false
            }
            None => true,
        });
    }
    if todo.is_empty() {
        return matrix;
    }
    // Cap the intra-run thread level against the number of matrix
    // jobs actually in flight so the two parallelism levels compose
    // instead of oversubscribing; the helper's note prints once per
    // process, not once per (benchmark, scheme) job.
    let concurrent = if jobs <= 1 || todo.len() == 1 {
        1
    } else {
        jobs.min(todo.len())
    };
    let sim_threads = cap_sim_threads(concurrent, sim_threads_from_env());
    let results: Vec<((String, Scheme), RunReport)> = if concurrent <= 1 {
        todo.iter()
            .map(|(b, s)| ((b.clone(), *s), run_one(b, *s, cfg, sim_threads)))
            .collect()
    } else {
        let pool = ThreadPool::new(concurrent);
        let (tx, rx) = mpsc::channel();
        for (b, s) in &todo {
            let tx = tx.clone();
            let (b, s) = (b.clone(), *s);
            pool.execute(move || {
                let report = run_one(&b, s, cfg, sim_threads);
                let _ = tx.send(((b, s), report));
            });
        }
        drop(tx);
        let collected: Vec<_> = rx.iter().collect();
        assert_eq!(collected.len(), todo.len(), "benchmark worker panicked");
        collected
    };
    if use_cache {
        let mut cache = matrix_cache().lock().expect("run cache poisoned");
        for ((b, s), report) in &results {
            cache.insert(cache_key(b, *s, cfg), report.clone());
        }
    }
    matrix.extend(results);
    matrix
}

fn run_one(bench: &str, scheme: Scheme, cfg: SystemConfig, sim_threads: usize) -> RunReport {
    let w = Workload::by_name(bench).unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    deact::System::new(cfg.with_scheme(scheme), &w).run_parallel(sim_threads)
}

/// Prints a figure header.
pub fn heading(fig: &str, caption: &str) {
    println!("\n=== {fig} — {caption} ===");
}

/// Formats a row of `(label, values…)` with fixed-width columns.
pub fn row(label: &str, values: &[String]) {
    print!("{label:>10}");
    for v in values {
        print!(" {v:>9}");
    }
    println!();
}

/// Formats an `f64` cell.
pub fn cell(v: f64) -> String {
    format!("{v:.2}")
}

/// Geometric mean over the benchmarks of a suite (the grouping the
/// sensitivity figures use: SPEC, PARSEC, GAP geomeans plus pf and dc
/// individually, §V-D).
pub fn suite_members(suite: &str) -> Vec<&'static str> {
    match suite {
        "SPEC" => vec!["mcf", "cactus", "astar"],
        "PARSEC" => vec!["frqm", "canl"],
        "GAP" => vec!["bc", "cc", "ccsv", "sssp"],
        "pf" => vec!["pf"],
        "dc" => vec!["dc"],
        other => panic!("unknown suite grouping {other}"),
    }
}

/// The sensitivity-figure groupings in plot order.
pub const SUITE_GROUPS: [&str; 5] = ["SPEC", "PARSEC", "GAP", "pf", "dc"];

/// Serialises a matrix to CSV (one row per benchmark × scheme) for
/// external plotting. Alongside the headline metrics, each row carries
/// the [`deact::FaultRecovery`] counters (all zero when injection is
/// off) and one `lat_mean_<stage>` column per trace [`Stage`] — the
/// mean span length in cycles, blank when the run was not traced.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_csv<W: std::io::Write>(mut w: W, matrix: &Matrix) -> std::io::Result<()> {
    write!(
        w,
        "benchmark,scheme,ipc,cycles,instructions,at_percent,translation_hit,acm_hit,\
         tlb_hit,mpki,fam_data_reads,fam_data_writes,fam_writebacks,fam_at_reads,\
         dram_reads,dram_writes,faults,injected_faults,retries,timeouts,nacks_corrupt,\
         nacks_stale,recovered,fatal,backoff_cycles,fast_path_coverage,\
         parallel_phase_coverage"
    )?;
    for stage in Stage::ALL {
        write!(w, ",lat_mean_{}", stage.name())?;
    }
    writeln!(w)?;
    let mut keys: Vec<&(String, Scheme)> = matrix.keys().collect();
    keys.sort_by(|a, b| (&a.0, a.1.name()).cmp(&(&b.0, b.1.name())));
    for key in keys {
        let r = &matrix[key];
        write!(
            w,
            "{},{},{:.6},{},{},{:.4},{},{},{:.4},{:.2},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.4},{:.4}",
            r.workload,
            r.scheme.name(),
            r.ipc,
            r.cycles,
            r.instructions,
            r.fam.at_percent(),
            r.translation_hit_rate
                .map_or(String::new(), |v| format!("{v:.4}")),
            r.acm_hit_rate.map_or(String::new(), |v| format!("{v:.4}")),
            r.tlb_hit_rate,
            r.mpki,
            r.fam.data_reads,
            r.fam.data_writes,
            r.fam.writebacks,
            r.fam.at_total(),
            r.dram_reads,
            r.dram_writes,
            r.faults,
            r.recovery.injected_total(),
            r.recovery.retries,
            r.recovery.timeouts,
            r.recovery.nacks_corrupt,
            r.recovery.nacks_stale,
            r.recovery.recovered,
            r.recovery.fatal,
            r.recovery.backoff_cycles,
            r.fast_path_coverage,
            r.parallel_phase_coverage,
        )?;
        for stage in Stage::ALL {
            let h = r.latency.stage(stage);
            if h.count() == 0 {
                write!(w, ",")?;
            } else {
                write!(w, ",{:.2}", h.mean())?;
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Geomean of DeACT-N speedup over I-FAM for a suite grouping.
pub fn suite_speedup(matrix: &Matrix, suite: &str, deact: Scheme) -> f64 {
    let members = suite_members(suite);
    let speedups: Vec<f64> = members
        .iter()
        .map(|b| {
            let d = &matrix[&(b.to_string(), deact)];
            let i = &matrix[&(b.to_string(), Scheme::IFam)];
            d.speedup_over(i)
        })
        .collect();
    fam_sim::stats::geomean(&speedups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_table3() {
        assert_eq!(benchmarks().len(), 14);
        assert_eq!(benchmarks()[0], "mcf");
    }

    #[test]
    fn suite_groups_cover_selected_benchmarks() {
        let mut all: Vec<&str> = SUITE_GROUPS.iter().flat_map(|s| suite_members(s)).collect();
        all.sort_unstable();
        // Everything except the NPB streaming trio (shown separately
        // in the paper's sensitivity figures).
        assert_eq!(all.len(), 11);
        assert!(all.contains(&"sssp"));
        assert!(!all.contains(&"mg"));
    }

    #[test]
    fn matrix_runs_in_parallel_and_is_complete() {
        let cfg = SystemConfig::paper_default().with_refs_per_core(300);
        let m = run_matrix(&["astar", "pf"], &[Scheme::EFam, Scheme::IFam], cfg);
        assert_eq!(m.len(), 4);
        assert!(m[&("pf".to_string(), Scheme::IFam)].ipc > 0.0);
    }

    #[test]
    fn pool_parallel_matrix_equals_serial_matrix() {
        // Parallelism must not change a single bit of any report: the
        // cache is disabled so both sweeps run live.
        let cfg = SystemConfig::paper_default()
            .with_refs_per_core(400)
            .with_seed(0x9A12);
        let benches = ["astar", "pf", "mg"];
        let schemes = [Scheme::EFam, Scheme::IFam, Scheme::DeactN];
        let serial = run_matrix_opts(&benches, &schemes, cfg, 1, false);
        let parallel = run_matrix_opts(&benches, &schemes, cfg, 8, false);
        assert_eq!(serial.len(), 9);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn cache_serves_repeat_matrices_identically() {
        let cfg = SystemConfig::paper_default()
            .with_refs_per_core(350)
            .with_seed(0xCACE);
        let benches = ["canl"];
        let schemes = [Scheme::IFam, Scheme::DeactN];
        let first = run_matrix_opts(&benches, &schemes, cfg, 2, true);
        let second = run_matrix_opts(&benches, &schemes, cfg, 2, true);
        assert_eq!(first, second);
        // A different configuration must miss: same bench and scheme,
        // different seed.
        let third = run_matrix_opts(&benches, &schemes, cfg.with_seed(0xCACF), 2, true);
        assert_ne!(
            first[&("canl".to_string(), Scheme::IFam)].cycles,
            third[&("canl".to_string(), Scheme::IFam)].cycles,
            "seed change must not be served from the cache"
        );
    }

    #[test]
    fn csv_has_header_and_rows() {
        let cfg = SystemConfig::paper_default().with_refs_per_core(200);
        let m = run_matrix(&["astar"], &[Scheme::EFam, Scheme::IFam], cfg);
        let mut buf = Vec::new();
        write_csv(&mut buf, &m).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("benchmark,scheme,ipc"));
        assert!(lines[0].contains(",injected_faults,retries,"));
        assert!(lines[0].ends_with(",lat_mean_retry,lat_mean_backoff"));
        assert!(lines[1].starts_with("astar,E-FAM,"));
        assert!(lines[2].starts_with("astar,I-FAM,"));
        // E-FAM row has empty hit-rate cells.
        assert!(lines[1].contains(",,"));
        // Every row has one cell per header column.
        let cols = lines[0].split(',').count();
        assert!(lines[1..].iter().all(|l| l.split(',').count() == cols));
        // Untraced runs leave the latency cells blank.
        assert!(lines[1].ends_with(&",".repeat(Stage::COUNT)));
    }

    #[test]
    fn csv_latency_cells_populate_when_traced() {
        let cfg = SystemConfig::paper_default()
            .with_refs_per_core(200)
            .with_trace(fam_sim::TraceConfig::breakdown_only());
        let m = run_matrix(&["astar"], &[Scheme::DeactN], cfg);
        let mut buf = Vec::new();
        write_csv(&mut buf, &m).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let row = text.lines().nth(1).unwrap();
        let header = text.lines().next().unwrap();
        let nvm_col = header
            .split(',')
            .position(|h| h == "lat_mean_nvm_access")
            .unwrap();
        let cell = row.split(',').nth(nvm_col).unwrap();
        assert!(!cell.is_empty(), "traced run must fill {row}");
        assert!(cell.parse::<f64>().unwrap() > 0.0);
    }

    #[test]
    fn refs_env_fallback() {
        std::env::remove_var("DEACT_REFS");
        assert_eq!(refs_from_env(123), 123);
    }

    #[test]
    fn trace_mode_parses_the_documented_spellings() {
        assert_eq!(parse_trace_mode("off"), Some(TraceConfig::disabled()));
        assert_eq!(parse_trace_mode("0"), Some(TraceConfig::disabled()));
        assert_eq!(
            parse_trace_mode("breakdown"),
            Some(TraceConfig::breakdown_only())
        );
        assert_eq!(parse_trace_mode("FULL"), Some(TraceConfig::full()));
        assert_eq!(parse_trace_mode("1"), Some(TraceConfig::full()));
        assert_eq!(parse_trace_mode("sideways"), None);
    }
}
