//! The experiment harness: shared machinery for regenerating every
//! table and figure of the DeACT paper.
//!
//! Each `fig*`/`table*` binary builds on this crate: it runs the
//! benchmark × scheme matrix in parallel worker threads, prints the
//! series the paper plots, and places the paper's reported values
//! alongside (exact where the text gives numbers, digitized-from-the-
//! figure approximations elsewhere — see [`paper`]).
//!
//! Run length is controlled by the `DEACT_REFS` environment variable
//! (references per core; default 100 000 for headline figures, less
//! for multi-point sweeps).

#![warn(missing_docs)]

use std::collections::HashMap;

use deact::{RunReport, Scheme, SystemConfig};
use fam_workloads::{table3, Workload};

pub mod figs;
pub mod paper;

/// The benchmark roster in the paper's figure order.
pub fn benchmarks() -> Vec<&'static str> {
    table3().iter().map(|w| w.name).collect()
}

/// References per core from `DEACT_REFS`, defaulting to `default`.
pub fn refs_from_env(default: u64) -> u64 {
    std::env::var("DEACT_REFS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A completed benchmark×scheme matrix.
pub type Matrix = HashMap<(String, Scheme), RunReport>;

/// Runs every `(benchmark, scheme)` pair of the matrix in parallel and
/// collects the reports.
///
/// # Panics
///
/// Panics if a worker thread panics or a benchmark name is unknown.
pub fn run_matrix(benches: &[&str], schemes: &[Scheme], cfg: SystemConfig) -> Matrix {
    let mut jobs: Vec<(String, Scheme)> = Vec::new();
    for b in benches {
        for s in schemes {
            jobs.push((b.to_string(), *s));
        }
    }
    let results: Vec<((String, Scheme), RunReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|(b, s)| {
                let cfg = cfg.with_scheme(*s);
                let b = b.clone();
                let s = *s;
                scope.spawn(move || {
                    let w =
                        Workload::by_name(&b).unwrap_or_else(|| panic!("unknown benchmark {b}"));
                    let report = deact::System::new(cfg, &w).run();
                    ((b, s), report)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("benchmark worker panicked"))
            .collect()
    });
    results.into_iter().collect()
}

/// Prints a figure header.
pub fn heading(fig: &str, caption: &str) {
    println!("\n=== {fig} — {caption} ===");
}

/// Formats a row of `(label, values…)` with fixed-width columns.
pub fn row(label: &str, values: &[String]) {
    print!("{label:>10}");
    for v in values {
        print!(" {v:>9}");
    }
    println!();
}

/// Formats an `f64` cell.
pub fn cell(v: f64) -> String {
    format!("{v:.2}")
}

/// Geometric mean over the benchmarks of a suite (the grouping the
/// sensitivity figures use: SPEC, PARSEC, GAP geomeans plus pf and dc
/// individually, §V-D).
pub fn suite_members(suite: &str) -> Vec<&'static str> {
    match suite {
        "SPEC" => vec!["mcf", "cactus", "astar"],
        "PARSEC" => vec!["frqm", "canl"],
        "GAP" => vec!["bc", "cc", "ccsv", "sssp"],
        "pf" => vec!["pf"],
        "dc" => vec!["dc"],
        other => panic!("unknown suite grouping {other}"),
    }
}

/// The sensitivity-figure groupings in plot order.
pub const SUITE_GROUPS: [&str; 5] = ["SPEC", "PARSEC", "GAP", "pf", "dc"];

/// Serialises a matrix to CSV (one row per benchmark × scheme) for
/// external plotting.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_csv<W: std::io::Write>(mut w: W, matrix: &Matrix) -> std::io::Result<()> {
    writeln!(
        w,
        "benchmark,scheme,ipc,cycles,instructions,at_percent,translation_hit,acm_hit,\
         tlb_hit,mpki,fam_data_reads,fam_data_writes,fam_writebacks,fam_at_reads,\
         dram_reads,dram_writes,faults"
    )?;
    let mut keys: Vec<&(String, Scheme)> = matrix.keys().collect();
    keys.sort_by(|a, b| (&a.0, a.1.name()).cmp(&(&b.0, b.1.name())));
    for key in keys {
        let r = &matrix[key];
        writeln!(
            w,
            "{},{},{:.6},{},{},{:.4},{},{},{:.4},{:.2},{},{},{},{},{},{},{}",
            r.workload,
            r.scheme.name(),
            r.ipc,
            r.cycles,
            r.instructions,
            r.fam.at_percent(),
            r.translation_hit_rate
                .map_or(String::new(), |v| format!("{v:.4}")),
            r.acm_hit_rate.map_or(String::new(), |v| format!("{v:.4}")),
            r.tlb_hit_rate,
            r.mpki,
            r.fam.data_reads,
            r.fam.data_writes,
            r.fam.writebacks,
            r.fam.at_total(),
            r.dram_reads,
            r.dram_writes,
            r.faults,
        )?;
    }
    Ok(())
}

/// Geomean of DeACT-N speedup over I-FAM for a suite grouping.
pub fn suite_speedup(matrix: &Matrix, suite: &str, deact: Scheme) -> f64 {
    let members = suite_members(suite);
    let speedups: Vec<f64> = members
        .iter()
        .map(|b| {
            let d = &matrix[&(b.to_string(), deact)];
            let i = &matrix[&(b.to_string(), Scheme::IFam)];
            d.speedup_over(i)
        })
        .collect();
    fam_sim::stats::geomean(&speedups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_table3() {
        assert_eq!(benchmarks().len(), 14);
        assert_eq!(benchmarks()[0], "mcf");
    }

    #[test]
    fn suite_groups_cover_selected_benchmarks() {
        let mut all: Vec<&str> = SUITE_GROUPS.iter().flat_map(|s| suite_members(s)).collect();
        all.sort_unstable();
        // Everything except the NPB streaming trio (shown separately
        // in the paper's sensitivity figures).
        assert_eq!(all.len(), 11);
        assert!(all.contains(&"sssp"));
        assert!(!all.contains(&"mg"));
    }

    #[test]
    fn matrix_runs_in_parallel_and_is_complete() {
        let cfg = SystemConfig::paper_default().with_refs_per_core(300);
        let m = run_matrix(&["astar", "pf"], &[Scheme::EFam, Scheme::IFam], cfg);
        assert_eq!(m.len(), 4);
        assert!(m[&("pf".to_string(), Scheme::IFam)].ipc > 0.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let cfg = SystemConfig::paper_default().with_refs_per_core(200);
        let m = run_matrix(&["astar"], &[Scheme::EFam, Scheme::IFam], cfg);
        let mut buf = Vec::new();
        write_csv(&mut buf, &m).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("benchmark,scheme,ipc"));
        assert!(lines[1].starts_with("astar,E-FAM,"));
        assert!(lines[2].starts_with("astar,I-FAM,"));
        // E-FAM row has empty hit-rate cells.
        assert!(lines[1].contains(",,"));
    }

    #[test]
    fn refs_env_fallback() {
        std::env::remove_var("DEACT_REFS");
        assert_eq!(refs_from_env(123), 123);
    }
}
