//! Cross-run benchmark comparison: the logic behind the `bench-diff`
//! binary and CI's performance-regression gate.
//!
//! Two `deact-microbench-v1` JSON artifacts (the committed
//! `BENCH_baseline.json` and a fresh run) are compared entry by entry
//! under noise-aware tolerances:
//!
//! * **Per-entry gate** — an entry fails when its `ns_per_op` exceeds
//!   `tolerance ×` baseline (default 1.5×). Entries whose baseline is
//!   under [`DiffConfig::noise_floor_ns`] are nanosecond-scale loops
//!   that shared runners cannot time reliably; those only fail past
//!   the looser [`DiffConfig::noise_tolerance`] (default 3×) and are
//!   otherwise reported as warnings.
//! * **Throughput gate** — end-to-end `refs_per_sec` must stay at or
//!   above `throughput_floor ×` baseline (default 0.85×): it
//!   integrates thousands of operations, so it is the least noisy
//!   signal and gets the tightest relative floor.
//! * **Parallel gate** — `parallel_speedup_4t` must not fall below
//!   [`DiffConfig::parallel_speedup_floor`], checked only when the
//!   measuring host reports ≥ 4 threads (a single-vCPU runner makes
//!   > 1× physically impossible).
//! * **Parallel-coverage gate** — `parallel_phase_coverage` (the
//!   fraction of references the epoch shards retired) must not fall
//!   below baseline. Unlike the wall-clock gates it is *deterministic*
//!   — the epoch plan is thread-count and host invariant — so the
//!   gate applies on every runner, single-vCPU included, with no
//!   noise tolerance: any drop is a real admission regression.
//! * **Coverage** — an entry present in the baseline but missing from
//!   the fresh run fails the diff (a silently dropped benchmark looks
//!   exactly like a fixed regression); new entries are informational.
//!
//! [`DiffReport::to_markdown`] renders the whole comparison as a
//! markdown table suitable for a CI artifact or PR comment.

use crate::json::Json;
use std::collections::BTreeMap;

/// Tolerances for [`diff`]. `Default` gives the CI gate's values.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Per-entry failure threshold: fresh `ns_per_op` may be at most
    /// this multiple of baseline.
    pub tolerance: f64,
    /// Entries with baseline `ns_per_op` below this are judged under
    /// [`DiffConfig::noise_tolerance`] instead — single-digit
    /// nanosecond loops jitter far more than the big end-to-end runs.
    pub noise_floor_ns: f64,
    /// The looser multiple applied below the noise floor.
    pub noise_tolerance: f64,
    /// Fresh `refs_per_sec` must be at least this fraction of
    /// baseline.
    pub throughput_floor: f64,
    /// Minimum `parallel_speedup_4t` on hosts with ≥ 4 threads. Held
    /// at 1.0 (don't lose to the sequential engine) rather than the
    /// aspirational 1.3×: the FAM-heavy scaling suite measures ~2%
    /// parallel-phase coverage under the bit-identity barrier (see
    /// DESIGN.md §3.8), which bounds its achievable speedup at ~1×,
    /// and a floor above what the engine can deliver would
    /// institutionalise a permanently red gate.
    pub parallel_speedup_floor: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            tolerance: 1.5,
            noise_floor_ns: 100.0,
            noise_tolerance: 3.0,
            throughput_floor: 0.85,
            parallel_speedup_floor: 1.0,
        }
    }
}

/// The verdict for one comparison row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance.
    Ok,
    /// Beyond the strict tolerance but under the noise floor — worth a
    /// look, not a failure.
    Warn,
    /// A gating regression.
    Fail,
    /// Present only in the fresh run (informational).
    New,
    /// Present only in the baseline (gating: coverage was lost).
    Missing,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Warn => "warn",
            Verdict::Fail => "**FAIL**",
            Verdict::New => "new",
            Verdict::Missing => "**MISSING**",
        }
    }
}

/// One per-entry comparison row.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// The entry label (e.g. `sched_per_ref/4_cores`).
    pub label: String,
    /// Baseline ns/op, when present.
    pub base_ns: Option<f64>,
    /// Fresh ns/op, when present.
    pub new_ns: Option<f64>,
    /// The verdict under the configured tolerances.
    pub verdict: Verdict,
}

impl DiffRow {
    /// `new / base` when both sides exist.
    pub fn ratio(&self) -> Option<f64> {
        match (self.base_ns, self.new_ns) {
            (Some(b), Some(n)) if b > 0.0 => Some(n / b),
            _ => None,
        }
    }
}

/// One named pass/fail gate over the summary numbers.
#[derive(Debug, Clone)]
pub struct Gate {
    /// Gate name (`throughput`, `parallel-speedup`).
    pub name: &'static str,
    /// Whether the gate held (skipped gates hold by definition).
    pub passed: bool,
    /// Values on both sides, or why the gate was skipped.
    pub detail: String,
}

/// The full comparison: every entry row plus the summary gates.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Per-entry rows in baseline order, then new-only rows.
    pub rows: Vec<DiffRow>,
    /// Summary gates.
    pub gates: Vec<Gate>,
}

impl DiffReport {
    /// True when no row and no gate regressed.
    pub fn passed(&self) -> bool {
        self.rows
            .iter()
            .all(|r| !matches!(r.verdict, Verdict::Fail | Verdict::Missing))
            && self.gates.iter().all(|g| g.passed)
    }

    /// Renders the comparison as a markdown document.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("# Benchmark comparison\n\n");
        out.push_str("| entry | baseline ns/op | current ns/op | ratio | verdict |\n");
        out.push_str("|---|---:|---:|---:|---|\n");
        for r in &self.rows {
            let fmt = |v: Option<f64>| v.map_or_else(|| "-".into(), |v| format!("{v:.1}"));
            let ratio = r.ratio().map_or_else(|| "-".into(), |x| format!("{x:.2}x"));
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                r.label,
                fmt(r.base_ns),
                fmt(r.new_ns),
                ratio,
                r.verdict.label()
            ));
        }
        out.push_str("\n## Gates\n\n");
        for g in &self.gates {
            out.push_str(&format!(
                "- {} `{}`: {}\n",
                if g.passed { "PASS" } else { "**FAIL**" },
                g.name,
                g.detail
            ));
        }
        out.push_str(&format!(
            "\nOverall: **{}**\n",
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

fn entries_of(doc: &Json) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    if let Some(entries) = doc.get("entries").and_then(Json::as_array) {
        for e in entries {
            if let (Some(label), Some(ns)) = (
                e.get("label").and_then(Json::as_str),
                e.get("ns_per_op").and_then(Json::as_f64),
            ) {
                map.insert(label.to_string(), ns);
            }
        }
    }
    map
}

fn refs_per_sec(doc: &Json) -> Option<f64> {
    doc.get("throughput")?.get("refs_per_sec")?.as_f64()
}

/// Compares a fresh microbench artifact against a baseline.
///
/// Both documents follow the `deact-microbench-v1` schema; a schema
/// mismatch is reported as a failing gate rather than an error so the
/// markdown report still renders.
pub fn diff(base: &Json, new: &Json, cfg: &DiffConfig) -> DiffReport {
    let mut report = DiffReport::default();

    let base_schema = base.get("schema").and_then(Json::as_str);
    let new_schema = new.get("schema").and_then(Json::as_str);
    if base_schema != new_schema {
        report.gates.push(Gate {
            name: "schema",
            passed: false,
            detail: format!("baseline {base_schema:?} vs current {new_schema:?}"),
        });
    }

    let base_entries = entries_of(base);
    let mut new_entries = entries_of(new);
    for (label, &b) in &base_entries {
        match new_entries.remove(label) {
            None => report.rows.push(DiffRow {
                label: label.clone(),
                base_ns: Some(b),
                new_ns: None,
                verdict: Verdict::Missing,
            }),
            Some(n) => {
                let verdict = if n <= cfg.tolerance * b {
                    Verdict::Ok
                } else if b < cfg.noise_floor_ns && n <= cfg.noise_tolerance * b {
                    Verdict::Warn
                } else {
                    Verdict::Fail
                };
                report.rows.push(DiffRow {
                    label: label.clone(),
                    base_ns: Some(b),
                    new_ns: Some(n),
                    verdict,
                });
            }
        }
    }
    for (label, n) in new_entries {
        report.rows.push(DiffRow {
            label,
            base_ns: None,
            new_ns: Some(n),
            verdict: Verdict::New,
        });
    }

    match (refs_per_sec(base), refs_per_sec(new)) {
        (Some(b), Some(n)) => report.gates.push(Gate {
            name: "throughput",
            passed: n >= cfg.throughput_floor * b,
            detail: format!(
                "{n:.0} refs/sec vs baseline {b:.0} ({:.2}x, floor {:.2}x)",
                n / b,
                cfg.throughput_floor
            ),
        }),
        _ => report.gates.push(Gate {
            name: "throughput",
            passed: false,
            detail: "refs_per_sec missing from one side".into(),
        }),
    }

    // The parallel gate reads the *fresh* run's host_threads: the gate
    // asks whether the engine scales on the machine that just measured
    // it, and a 1-vCPU runner cannot answer that question.
    let host_threads = new
        .get("host_threads")
        .and_then(Json::as_f64)
        .unwrap_or(1.0);
    let speedup = new.get("parallel_speedup_4t").and_then(Json::as_f64);
    report.gates.push(match (host_threads >= 4.0, speedup) {
        (true, Some(sp)) => Gate {
            name: "parallel-speedup",
            passed: sp >= cfg.parallel_speedup_floor,
            detail: format!(
                "{sp:.3}x at 4 threads (floor {:.2}x)",
                cfg.parallel_speedup_floor
            ),
        },
        (false, sp) => Gate {
            name: "parallel-speedup",
            passed: true,
            detail: format!(
                "skipped: {host_threads:.0} host thread(s), measured {:?}",
                sp.unwrap_or(f64::NAN)
            ),
        },
        (true, None) => Gate {
            name: "parallel-speedup",
            passed: false,
            detail: "parallel_speedup_4t missing from current run".into(),
        },
    });

    // Coverage is deterministic (the epoch plan is host and
    // thread-count invariant), so these gates never skip and take no
    // noise tolerance: a fresh value below baseline means the planner
    // admits fewer references than it used to. The same rule gates the
    // synthetic probe (`parallel_phase_coverage`, lockstep sssp) and
    // the bursty replayed trace (`replay_parallel_phase_coverage`),
    // which exercises the leader-dwell regime the synthetics cannot.
    report.gates.push(coverage_gate(
        "parallel-coverage",
        "parallel_phase_coverage",
        base,
        new,
    ));
    report.gates.push(coverage_gate(
        "replay-coverage",
        "replay_parallel_phase_coverage",
        base,
        new,
    ));

    report
}

/// Builds the exact deterministic coverage gate for one top-level
/// fraction field: current must be ≥ baseline, missing-from-current
/// fails, missing-from-baseline is informational (so pre-regeneration
/// baselines keep passing when a new field ships).
fn coverage_gate(name: &'static str, field: &str, base: &Json, new: &Json) -> Gate {
    let base_cov = base.get(field).and_then(Json::as_f64);
    let new_cov = new.get(field).and_then(Json::as_f64);
    match (base_cov, new_cov) {
        (Some(b), Some(n)) => Gate {
            name,
            passed: n >= b - 1e-9,
            detail: format!(
                "{:.2}% of refs retired in epoch shards vs baseline {:.2}%",
                n * 100.0,
                b * 100.0
            ),
        },
        (Some(_), None) => Gate {
            name,
            passed: false,
            detail: format!("{field} missing from current run"),
        },
        (None, n) => Gate {
            name,
            passed: true,
            detail: format!(
                "baseline has no coverage entry, measured {:?}",
                n.unwrap_or(f64::NAN)
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(sched_ns: f64, rps: f64) -> Json {
        Json::parse(&format!(
            r#"{{
  "schema": "deact-microbench-v1",
  "host_threads": 8,
  "entries": [
    {{"label": "set_assoc_cache_get", "ns_per_op": 2.6}},
    {{"label": "sched_per_ref/4_cores", "ns_per_op": {sched_ns}}}
  ],
  "parallel_speedup_4t": 1.25,
  "parallel_phase_coverage": 0.0156,
  "throughput": {{"refs_per_sec": {rps}}}
}}"#
        ))
        .unwrap()
    }

    #[test]
    fn unchanged_artifact_passes() {
        let base = artifact(1360.0, 726_000.0);
        let report = diff(&base, &base, &DiffConfig::default());
        assert!(report.passed(), "{}", report.to_markdown());
        assert!(report.rows.iter().all(|r| r.verdict == Verdict::Ok));
    }

    #[test]
    fn injected_2x_slowdown_fails_the_gate() {
        let base = artifact(1360.0, 726_000.0);
        let slow = artifact(2720.0, 726_000.0);
        let report = diff(&base, &slow, &DiffConfig::default());
        assert!(!report.passed());
        let row = report
            .rows
            .iter()
            .find(|r| r.label == "sched_per_ref/4_cores")
            .unwrap();
        assert_eq!(row.verdict, Verdict::Fail);
        assert!(report.to_markdown().contains("**FAIL**"));
    }

    #[test]
    fn throughput_collapse_fails_even_with_clean_entries() {
        let base = artifact(1360.0, 726_000.0);
        let slow = artifact(1360.0, 300_000.0);
        let report = diff(&base, &slow, &DiffConfig::default());
        assert!(!report.passed());
        let gate = report
            .gates
            .iter()
            .find(|g| g.name == "throughput")
            .unwrap();
        assert!(!gate.passed);
    }

    #[test]
    fn nanosecond_entries_warn_before_failing() {
        let base = artifact(1360.0, 726_000.0);
        // 2x on a 2.6 ns loop: within the noise tolerance -> warn.
        let mut jittery = artifact(1360.0, 726_000.0);
        if let Json::Obj(m) = &mut jittery {
            if let Some(Json::Arr(entries)) = m.get_mut("entries") {
                if let Json::Obj(e) = &mut entries[0] {
                    e.insert("ns_per_op".into(), Json::Num(5.2));
                }
            }
        }
        let report = diff(&base, &jittery, &DiffConfig::default());
        assert!(report.passed(), "{}", report.to_markdown());
        let row = report
            .rows
            .iter()
            .find(|r| r.label == "set_assoc_cache_get")
            .unwrap();
        assert_eq!(row.verdict, Verdict::Warn);
        // 4x on the same loop: past the noise tolerance -> fail.
        if let Json::Obj(m) = &mut jittery {
            if let Some(Json::Arr(entries)) = m.get_mut("entries") {
                if let Json::Obj(e) = &mut entries[0] {
                    e.insert("ns_per_op".into(), Json::Num(10.4));
                }
            }
        }
        assert!(!diff(&base, &jittery, &DiffConfig::default()).passed());
    }

    #[test]
    fn missing_entry_fails_and_new_entry_informs() {
        let base = artifact(1360.0, 726_000.0);
        let renamed = Json::parse(
            r#"{
  "schema": "deact-microbench-v1",
  "host_threads": 8,
  "entries": [
    {"label": "set_assoc_cache_get", "ns_per_op": 2.6},
    {"label": "sched_per_ref/8_cores", "ns_per_op": 1500.0}
  ],
  "parallel_speedup_4t": 1.25,
  "throughput": {"refs_per_sec": 726000.0}
}"#,
        )
        .unwrap();
        let report = diff(&base, &renamed, &DiffConfig::default());
        assert!(!report.passed());
        assert!(report
            .rows
            .iter()
            .any(|r| r.label == "sched_per_ref/4_cores" && r.verdict == Verdict::Missing));
        assert!(report
            .rows
            .iter()
            .any(|r| r.label == "sched_per_ref/8_cores" && r.verdict == Verdict::New));
    }

    #[test]
    fn coverage_drop_fails_even_on_a_single_thread_host() {
        let base = artifact(1360.0, 726_000.0);
        let mut dropped = artifact(1360.0, 726_000.0);
        if let Json::Obj(m) = &mut dropped {
            // Deterministic metric on a 1-vCPU runner: the speedup
            // gate skips, the coverage gate must not.
            m.insert("host_threads".into(), Json::Num(1.0));
            m.insert("parallel_phase_coverage".into(), Json::Num(0.009));
        }
        let report = diff(&base, &dropped, &DiffConfig::default());
        assert!(!report.passed(), "{}", report.to_markdown());
        let gate = report
            .gates
            .iter()
            .find(|g| g.name == "parallel-coverage")
            .unwrap();
        assert!(!gate.passed);
    }

    #[test]
    fn missing_coverage_entry_fails_when_baseline_has_one() {
        let base = artifact(1360.0, 726_000.0);
        let mut gone = artifact(1360.0, 726_000.0);
        if let Json::Obj(m) = &mut gone {
            m.remove("parallel_phase_coverage");
        }
        let report = diff(&base, &gone, &DiffConfig::default());
        assert!(!report.passed());
        // The reverse direction (old baseline, new field) is
        // informational, so pre-regeneration baselines keep passing.
        let report = diff(&gone, &base, &DiffConfig::default());
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn replay_coverage_gate_mirrors_the_parallel_one() {
        let with_replay = |cov: f64| {
            let mut doc = artifact(1360.0, 726_000.0);
            if let Json::Obj(m) = &mut doc {
                m.insert("replay_parallel_phase_coverage".into(), Json::Num(cov));
            }
            doc
        };
        let base = with_replay(0.21);
        // Equal coverage passes; a drop fails even on a 1-vCPU host.
        assert!(diff(&base, &with_replay(0.21), &DiffConfig::default()).passed());
        let report = diff(&base, &with_replay(0.15), &DiffConfig::default());
        assert!(!report.passed(), "{}", report.to_markdown());
        let gate = report
            .gates
            .iter()
            .find(|g| g.name == "replay-coverage")
            .unwrap();
        assert!(!gate.passed);
        // Field vanishing from the current run fails; a baseline
        // predating the field is informational.
        assert!(!diff(&base, &artifact(1360.0, 726_000.0), &DiffConfig::default()).passed());
        assert!(diff(&artifact(1360.0, 726_000.0), &base, &DiffConfig::default()).passed());
    }

    #[test]
    fn single_thread_host_skips_the_parallel_gate() {
        let base = artifact(1360.0, 726_000.0);
        let mut one_cpu = artifact(1360.0, 726_000.0);
        if let Json::Obj(m) = &mut one_cpu {
            m.insert("host_threads".into(), Json::Num(1.0));
            m.insert("parallel_speedup_4t".into(), Json::Num(0.4));
        }
        let report = diff(&base, &one_cpu, &DiffConfig::default());
        assert!(report.passed(), "{}", report.to_markdown());
    }
}
