//! The paper's reported values, for side-by-side comparison.
//!
//! Values marked *text* are quoted exactly from the paper's prose;
//! the rest are digitized from the figures and are approximate (the
//! figures have no data tables). Where a bar is unreadable we carry
//! our best estimate and mark the whole series approximate.

/// Paper values for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Fig. 3: slowdown of I-FAM wrt E-FAM (text gives 11.6 / 18.7 /
    /// 9.1 / 20.6 for cactus / canl / ccsv / sssp).
    pub fig3_ifam_slowdown: f64,
    /// Fig. 4: % AT requests at FAM under E-FAM (text: canl 44.36,
    /// cactus 1.81).
    pub fig4_efam_at_pct: f64,
    /// Fig. 4: % AT requests at FAM under I-FAM (text: canl 84.13,
    /// cactus 53.69).
    pub fig4_ifam_at_pct: f64,
    /// Fig. 9: ACM hit % in I-FAM (≈ digitized).
    pub fig9_ifam: f64,
    /// Fig. 9: ACM hit % in DeACT-W.
    pub fig9_w: f64,
    /// Fig. 9: ACM hit % in DeACT-N (text: cactus ≈76).
    pub fig9_n: f64,
    /// Fig. 10: FAM AT hit % in I-FAM (text: canl 46.44).
    pub fig10_ifam: f64,
    /// Fig. 10: FAM AT hit % in DeACT (text: canl 95.88).
    pub fig10_deact: f64,
    /// Fig. 12: normalized performance wrt E-FAM (text: mcf I-FAM
    /// 0.39, DeACT-W 0.70, DeACT-N 0.92; canl DeACT-N 0.14).
    pub fig12_ifam: f64,
    /// Fig. 12: DeACT-W normalized performance.
    pub fig12_w: f64,
    /// Fig. 12: DeACT-N normalized performance.
    pub fig12_n: f64,
}

/// Per-benchmark paper values (rows in Table III order).
pub fn rows() -> Vec<PaperRow> {
    vec![
        PaperRow {
            name: "mcf",
            fig3_ifam_slowdown: 2.5,
            fig4_efam_at_pct: 12.0,
            fig4_ifam_at_pct: 40.0,
            fig9_ifam: 82.0,
            fig9_w: 88.0,
            fig9_n: 97.0,
            fig10_ifam: 75.0,
            fig10_deact: 94.0,
            fig12_ifam: 0.39,
            fig12_w: 0.70,
            fig12_n: 0.92,
        },
        PaperRow {
            name: "cactus",
            fig3_ifam_slowdown: 11.6,
            fig4_efam_at_pct: 1.81,
            fig4_ifam_at_pct: 53.69,
            fig9_ifam: 52.0,
            fig9_w: 55.0,
            fig9_n: 76.0,
            fig10_ifam: 55.0,
            fig10_deact: 92.0,
            fig12_ifam: 0.09,
            fig12_w: 0.25,
            fig12_n: 0.41,
        },
        PaperRow {
            name: "astar",
            fig3_ifam_slowdown: 1.5,
            fig4_efam_at_pct: 8.0,
            fig4_ifam_at_pct: 30.0,
            fig9_ifam: 92.0,
            fig9_w: 94.0,
            fig9_n: 99.0,
            fig10_ifam: 93.0,
            fig10_deact: 97.0,
            fig12_ifam: 0.67,
            fig12_w: 0.78,
            fig12_n: 0.88,
        },
        PaperRow {
            name: "frqm",
            fig3_ifam_slowdown: 2.0,
            fig4_efam_at_pct: 10.0,
            fig4_ifam_at_pct: 38.0,
            fig9_ifam: 90.0,
            fig9_w: 92.0,
            fig9_n: 98.0,
            fig10_ifam: 88.0,
            fig10_deact: 96.0,
            fig12_ifam: 0.50,
            fig12_w: 0.72,
            fig12_n: 0.85,
        },
        PaperRow {
            name: "canl",
            fig3_ifam_slowdown: 18.7,
            fig4_efam_at_pct: 44.36,
            fig4_ifam_at_pct: 84.13,
            fig9_ifam: 48.0,
            fig9_w: 50.0,
            fig9_n: 72.0,
            fig10_ifam: 46.44,
            fig10_deact: 95.88,
            fig12_ifam: 0.05,
            fig12_w: 0.11,
            fig12_n: 0.14,
        },
        PaperRow {
            name: "bc",
            fig3_ifam_slowdown: 2.2,
            fig4_efam_at_pct: 10.0,
            fig4_ifam_at_pct: 35.0,
            fig9_ifam: 88.0,
            fig9_w: 90.0,
            fig9_n: 98.0,
            fig10_ifam: 85.0,
            fig10_deact: 95.0,
            fig12_ifam: 0.45,
            fig12_w: 0.60,
            fig12_n: 0.72,
        },
        PaperRow {
            name: "cc",
            fig3_ifam_slowdown: 2.8,
            fig4_efam_at_pct: 12.0,
            fig4_ifam_at_pct: 42.0,
            fig9_ifam: 85.0,
            fig9_w: 88.0,
            fig9_n: 97.0,
            fig10_ifam: 80.0,
            fig10_deact: 94.0,
            fig12_ifam: 0.38,
            fig12_w: 0.58,
            fig12_n: 0.70,
        },
        PaperRow {
            name: "ccsv",
            fig3_ifam_slowdown: 9.1,
            fig4_efam_at_pct: 25.0,
            fig4_ifam_at_pct: 70.0,
            fig9_ifam: 60.0,
            fig9_w: 62.0,
            fig9_n: 80.0,
            fig10_ifam: 60.0,
            fig10_deact: 93.0,
            fig12_ifam: 0.11,
            fig12_w: 0.22,
            fig12_n: 0.30,
        },
        PaperRow {
            name: "sssp",
            fig3_ifam_slowdown: 20.6,
            fig4_efam_at_pct: 30.0,
            fig4_ifam_at_pct: 80.0,
            fig9_ifam: 55.0,
            fig9_w: 57.0,
            fig9_n: 75.0,
            fig10_ifam: 50.0,
            fig10_deact: 93.0,
            fig12_ifam: 0.05,
            fig12_w: 0.10,
            fig12_n: 0.13,
        },
        PaperRow {
            name: "pf",
            fig3_ifam_slowdown: 2.6,
            fig4_efam_at_pct: 9.0,
            fig4_ifam_at_pct: 36.0,
            fig9_ifam: 87.0,
            fig9_w: 90.0,
            fig9_n: 98.0,
            fig10_ifam: 85.0,
            fig10_deact: 95.0,
            fig12_ifam: 0.38,
            fig12_w: 0.62,
            fig12_n: 0.75,
        },
        PaperRow {
            name: "dc",
            fig3_ifam_slowdown: 3.0,
            fig4_efam_at_pct: 14.0,
            fig4_ifam_at_pct: 45.0,
            fig9_ifam: 80.0,
            fig9_w: 84.0,
            fig9_n: 95.0,
            fig10_ifam: 75.0,
            fig10_deact: 93.0,
            fig12_ifam: 0.33,
            fig12_w: 0.55,
            fig12_n: 0.68,
        },
        PaperRow {
            name: "lu",
            fig3_ifam_slowdown: 1.4,
            fig4_efam_at_pct: 4.0,
            fig4_ifam_at_pct: 18.0,
            fig9_ifam: 96.0,
            fig9_w: 97.0,
            fig9_n: 99.0,
            fig10_ifam: 96.0,
            fig10_deact: 97.0,
            fig12_ifam: 0.72,
            fig12_w: 0.74,
            fig12_n: 0.78,
        },
        PaperRow {
            name: "mg",
            fig3_ifam_slowdown: 1.5,
            fig4_efam_at_pct: 3.0,
            fig4_ifam_at_pct: 15.0,
            fig9_ifam: 97.0,
            fig9_w: 97.0,
            fig9_n: 99.0,
            fig10_ifam: 97.0,
            fig10_deact: 98.0,
            fig12_ifam: 0.70,
            fig12_w: 0.70,
            fig12_n: 0.73,
        },
        PaperRow {
            name: "sp",
            fig3_ifam_slowdown: 1.6,
            fig4_efam_at_pct: 4.0,
            fig4_ifam_at_pct: 17.0,
            fig9_ifam: 96.0,
            fig9_w: 96.0,
            fig9_n: 99.0,
            fig10_ifam: 96.0,
            fig10_deact: 97.0,
            fig12_ifam: 0.68,
            fig12_w: 0.68,
            fig12_n: 0.71,
        },
    ]
}

/// Paper value for one benchmark, if listed.
pub fn row(name: &str) -> Option<PaperRow> {
    rows().into_iter().find(|r| r.name == name)
}

/// Fig. 11 averages quoted in the text: AT requests at FAM fall from
/// 23.97% (I-FAM) to 11.82% (DeACT-W) to 1.77% (DeACT-N).
pub const FIG11_AVERAGES: (f64, f64, f64) = (23.97, 11.82, 1.77);

/// §V-C text: average performance drop wrt E-FAM is 69.7% for I-FAM
/// and 35.3% for DeACT (i.e. normalized performance 0.303 vs 0.647),
/// an 80% improvement; headline speedup up to 4.59x, 1.8x on average.
pub const FIG12_AVG_IFAM: f64 = 0.303;
/// See [`FIG12_AVG_IFAM`].
pub const FIG12_AVG_DEACT: f64 = 0.647;
/// Headline: maximum DeACT speedup over I-FAM.
pub const HEADLINE_MAX_SPEEDUP: f64 = 4.59;
/// Headline: average DeACT speedup over I-FAM.
pub const HEADLINE_AVG_SPEEDUP: f64 = 1.8;

/// Fig. 13 text points: dc speedup 4.68x at 256 STU entries; PARSEC
/// geomean falls 3.45x → 1.75x from 256 to 4096 entries.
pub const FIG13_TEXT: &str = "paper: dc 4.68x @256; PARSEC 3.45x @256 -> 1.75x @4096";

/// §V-D1 associativity text points.
pub const ASSOC_TEXT: &str =
    "paper: dc 3.26x @4-way, 2.66x @32-way, 2.5x @>32; PARSEC 2.18x / 1.83x / 1.81x";

/// §V-D2 text: SPEC improves 2.62x / 2.52x / 1.85x as DeACT-N holds
/// one / two / three tag+ACM pairs per way (8-bit ACM experiment).
pub const FIG14_TEXT: &str =
    "paper: SPEC speedup 2.62x / 2.52x / 1.85x for 1 / 2 / 3 pairs per way; DeACT-W flat across 8/16/32-bit ACM";

/// §V-D3 text points for the fabric-latency sweep.
pub const FIG15_TEXT: &str = "paper: >=1.79x even at 100 ns; up to 3.3x for pf at 6 us";

/// §V-D4 text points for the node-count sweep.
pub const FIG16_TEXT: &str = "paper: dc 2.92x @1 node -> 3.26x @8 nodes";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_table3_roster() {
        let names: Vec<&str> = rows().iter().map(|r| r.name).collect();
        assert_eq!(names.len(), 14);
        assert!(names.contains(&"sssp"));
    }

    #[test]
    fn text_quoted_values_are_exact() {
        let canl = row("canl").unwrap();
        assert_eq!(canl.fig3_ifam_slowdown, 18.7);
        assert_eq!(canl.fig4_efam_at_pct, 44.36);
        assert_eq!(canl.fig4_ifam_at_pct, 84.13);
        assert_eq!(canl.fig10_ifam, 46.44);
        assert_eq!(canl.fig10_deact, 95.88);
        let sssp = row("sssp").unwrap();
        assert_eq!(sssp.fig3_ifam_slowdown, 20.6);
        let mcf = row("mcf").unwrap();
        assert_eq!(mcf.fig12_ifam, 0.39);
        assert_eq!(mcf.fig12_n, 0.92);
    }

    #[test]
    fn unknown_benchmark_has_no_row() {
        assert!(row("doom").is_none());
    }
}
