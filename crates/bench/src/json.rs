//! A minimal JSON reader for the benchmark artifacts.
//!
//! The workspace builds hermetically (no external crates), and the
//! only JSON this harness ever reads is the `deact-microbench-v1`
//! schema its own `microbench --out` writer produces: flat objects,
//! one array of records, ASCII strings, finite numbers. This parser
//! covers full JSON anyway — escapes, nesting, scientific notation —
//! so a hand-edited baseline cannot silently mis-parse.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; stored as `f64`, which is exact for every count the
    /// microbench schema emits (all well below 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` so traversal order is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses `text` as one JSON document (trailing whitespace only).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.fail("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, msg: &str) -> String {
        format!("json: {msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.fail("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.fail("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.fail("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs don't appear in the
                            // microbench schema; map them to the
                            // replacement character rather than error.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.fail("bad escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().ok_or_else(|| self.fail("bad utf-8"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse()
            .map(Json::Num)
            .map_err(|_| self.fail("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_microbench_schema() {
        let doc = r#"{
  "schema": "deact-microbench-v1",
  "iters": 2000000,
  "host_threads": 4,
  "entries": [
    {"label": "tlb_lookup", "ns_per_op": 15.423},
    {"label": "sched_per_ref/4_cores", "ns_per_op": 1360.451}
  ],
  "parallel_speedup_4t": 0.973,
  "throughput": {"refs_per_sec": 726451.7}
}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("deact-microbench-v1")
        );
        let entries = v.get("entries").and_then(Json::as_array).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[1].get("ns_per_op").and_then(Json::as_f64),
            Some(1360.451)
        );
        assert_eq!(
            v.get("throughput")
                .and_then(|t| t.get("refs_per_sec"))
                .and_then(Json::as_f64),
            Some(726451.7)
        );
    }

    #[test]
    fn full_json_round_trips_escapes_and_nesting() {
        let v = Json::parse(r#"{"a": [1, -2.5e3, "x\n\"yA", true, null, {}]}"#).unwrap();
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a[1], Json::Num(-2500.0));
        assert_eq!(a[2], Json::Str("x\n\"yA".into()));
        assert_eq!(a[3], Json::Bool(true));
        assert_eq!(a[4], Json::Null);
        assert_eq!(a[5], Json::Obj(Default::default()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
