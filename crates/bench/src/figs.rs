//! One function per table/figure; the `fig*` binaries are thin
//! wrappers so `--bin all` can regenerate everything in one process.

use deact::{Scheme, SystemConfig};
use fam_broker::AcmWidth;
use fam_sim::stats::geomean;
use fam_workloads::table3;

use crate::{
    benchmarks, cell, heading, paper, refs_from_env, row, run_matrix, suite_speedup, SUITE_GROUPS,
};

fn base_cfg(default_refs: u64) -> SystemConfig {
    SystemConfig::paper_default().with_refs_per_core(refs_from_env(default_refs))
}

/// Table I: qualitative scheme comparison.
pub fn table1() {
    heading("Table I", "FAM architectures comparison");
    row(
        "scheme",
        &["perf".into(), "no-OS-mods".into(), "security".into()],
    );
    let tick = |b: bool| if b { "yes" } else { "no" }.to_string();
    for s in [Scheme::EFam, Scheme::IFam, Scheme::DeactN] {
        let label = if s == Scheme::DeactN {
            "DeACT"
        } else {
            s.name()
        };
        row(
            label,
            &[
                tick(s.has_good_performance()),
                tick(s.avoids_os_changes()),
                tick(s.is_secure()),
            ],
        );
    }
}

/// Table II: system configuration in force.
pub fn table2() {
    heading("Table II", "system configuration");
    let c = SystemConfig::paper_default();
    let items: Vec<(&str, String)> = vec![
        (
            "CPU",
            format!(
                "{} OoO cores, {}, {} issues/cycle, {} outstanding",
                c.cores_per_node,
                c.frequency(),
                c.issue_width,
                c.core_outstanding
            ),
        ),
        (
            "TLB",
            format!(
                "2 levels, L1 {} entries, L2 {} entries",
                c.tlb.l1_entries, c.tlb.l2_entries
            ),
        ),
        (
            "L1",
            format!(
                "private, 64B blocks, {} KB, LRU",
                c.hierarchy.l1_bytes / 1024
            ),
        ),
        (
            "L2",
            format!(
                "private, 64B blocks, {} KB, LRU",
                c.hierarchy.l2_bytes / 1024
            ),
        ),
        (
            "L3",
            format!("shared, 64B blocks, {} MB, LRU", c.hierarchy.l3_bytes >> 20),
        ),
        (
            "Local mem",
            format!("DRAM, {} GB, {} ns", c.dram_bytes >> 30, c.dram_access_ns),
        ),
        (
            "STU cache",
            format!("{} entries, associativity {}", c.stu_entries, c.stu_ways),
        ),
        (
            "Fabric",
            format!("{} ns one-way latency", c.fabric.latency_ns),
        ),
        (
            "FAM (NVM)",
            format!(
                "{} GB, read {} ns, write {} ns, {} banks, {} outstanding",
                c.fam_bytes >> 30,
                c.nvm.read_ns,
                c.nvm.write_ns,
                c.nvm.banks,
                c.nvm.max_outstanding
            ),
        ),
        (
            "FAM tcache",
            format!("{} KB in DRAM (DeACT)", c.translation_cache_bytes >> 10),
        ),
    ];
    for (k, v) in items {
        println!("{k:>10}  {v}");
    }
}

/// Table III: applications with paper vs measured MPKI.
pub fn table3_bin() {
    heading(
        "Table III",
        "applications (paper MPKI vs measured on E-FAM)",
    );
    let cfg = base_cfg(40_000).with_scheme(Scheme::EFam);
    let m = run_matrix(&benchmarks(), &[Scheme::EFam], cfg);
    row(
        "bench",
        &["suite".into(), "paper".into(), "measured".into()],
    );
    for w in table3() {
        let r = &m[&(w.name.to_string(), Scheme::EFam)];
        row(
            w.name,
            &[
                w.suite.name().into(),
                format!("{}", w.paper_mpki),
                format!("{:.0}", r.mpki),
            ],
        );
    }
}

/// Fig. 3: slowdown of I-FAM wrt E-FAM.
pub fn fig03() {
    heading("Fig. 3", "slowdown of I-FAM wrt E-FAM");
    let cfg = base_cfg(100_000);
    let m = run_matrix(&benchmarks(), &[Scheme::EFam, Scheme::IFam], cfg);
    row("bench", &["measured".into(), "paper".into()]);
    let mut slowdowns = Vec::new();
    for b in benchmarks() {
        let e = &m[&(b.to_string(), Scheme::EFam)];
        let i = &m[&(b.to_string(), Scheme::IFam)];
        let slowdown = e.ipc / i.ipc;
        slowdowns.push(slowdown);
        let p = paper::row(b)
            .map(|p| p.fig3_ifam_slowdown)
            .unwrap_or(f64::NAN);
        row(b, &[format!("{slowdown:.1}x"), format!("{p:.1}x")]);
    }
    println!("geomean slowdown: {:.2}x", geomean(&slowdowns));
}

/// Fig. 4: breakdown of AT vs non-AT requests at the FAM.
pub fn fig04() {
    heading(
        "Fig. 4",
        "% address-translation requests at FAM (E-FAM vs I-FAM)",
    );
    let cfg = base_cfg(100_000);
    let m = run_matrix(&benchmarks(), &[Scheme::EFam, Scheme::IFam], cfg);
    row(
        "bench",
        &[
            "E-FAM".into(),
            "paper".into(),
            "I-FAM".into(),
            "paper".into(),
        ],
    );
    for b in benchmarks() {
        let e = m[&(b.to_string(), Scheme::EFam)].fam.at_percent();
        let i = m[&(b.to_string(), Scheme::IFam)].fam.at_percent();
        let p = paper::row(b).unwrap();
        row(
            b,
            &[
                cell(e),
                cell(p.fig4_efam_at_pct),
                cell(i),
                cell(p.fig4_ifam_at_pct),
            ],
        );
    }
}

/// Fig. 9: ACM hit rate at the STU across organisations.
pub fn fig09() {
    heading("Fig. 9", "access-control-metadata hit rate (%)");
    let cfg = base_cfg(100_000);
    let m = run_matrix(
        &benchmarks(),
        &[Scheme::IFam, Scheme::DeactW, Scheme::DeactN],
        cfg,
    );
    row(
        "bench",
        &[
            "I-FAM".into(),
            "paper".into(),
            "DeACT-W".into(),
            "paper".into(),
            "DeACT-N".into(),
            "paper".into(),
        ],
    );
    for b in benchmarks() {
        let get = |s: Scheme| m[&(b.to_string(), s)].acm_hit_rate.unwrap() * 100.0;
        let p = paper::row(b).unwrap();
        row(
            b,
            &[
                cell(get(Scheme::IFam)),
                cell(p.fig9_ifam),
                cell(get(Scheme::DeactW)),
                cell(p.fig9_w),
                cell(get(Scheme::DeactN)),
                cell(p.fig9_n),
            ],
        );
    }
}

/// Fig. 10: FAM address-translation hit rate, I-FAM vs DeACT.
pub fn fig10() {
    heading("Fig. 10", "FAM address-translation hit rate (%)");
    let cfg = base_cfg(100_000);
    let m = run_matrix(&benchmarks(), &[Scheme::IFam, Scheme::DeactN], cfg);
    row(
        "bench",
        &[
            "I-FAM".into(),
            "paper".into(),
            "DeACT".into(),
            "paper".into(),
        ],
    );
    for b in benchmarks() {
        let i = m[&(b.to_string(), Scheme::IFam)]
            .translation_hit_rate
            .unwrap()
            * 100.0;
        let d = m[&(b.to_string(), Scheme::DeactN)]
            .translation_hit_rate
            .unwrap()
            * 100.0;
        let p = paper::row(b).unwrap();
        row(
            b,
            &[cell(i), cell(p.fig10_ifam), cell(d), cell(p.fig10_deact)],
        );
    }
}

/// Fig. 11: percentage of AT requests at the FAM across schemes.
pub fn fig11() {
    heading("Fig. 11", "% address-translation requests at FAM");
    let cfg = base_cfg(100_000);
    let m = run_matrix(
        &benchmarks(),
        &[Scheme::IFam, Scheme::DeactW, Scheme::DeactN],
        cfg,
    );
    row(
        "bench",
        &["I-FAM".into(), "DeACT-W".into(), "DeACT-N".into()],
    );
    let mut sums = [0.0f64; 3];
    for b in benchmarks() {
        let vals: Vec<f64> = [Scheme::IFam, Scheme::DeactW, Scheme::DeactN]
            .iter()
            .map(|s| m[&(b.to_string(), *s)].fam.at_percent())
            .collect();
        for (a, v) in sums.iter_mut().zip(&vals) {
            *a += v;
        }
        row(b, &vals.iter().map(|v| cell(*v)).collect::<Vec<_>>());
    }
    let n = benchmarks().len() as f64;
    println!(
        "averages: I-FAM {:.2}%, DeACT-W {:.2}%, DeACT-N {:.2}%  (paper: {:.2} / {:.2} / {:.2})",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        paper::FIG11_AVERAGES.0,
        paper::FIG11_AVERAGES.1,
        paper::FIG11_AVERAGES.2,
    );
}

/// Fig. 12: normalized performance wrt E-FAM, all four schemes.
pub fn fig12() {
    heading("Fig. 12", "normalized performance wrt E-FAM");
    let cfg = base_cfg(100_000);
    let m = run_matrix(&benchmarks(), &Scheme::ALL, cfg);
    row(
        "bench",
        &[
            "I-FAM".into(),
            "paper".into(),
            "DeACT-W".into(),
            "paper".into(),
            "DeACT-N".into(),
            "paper".into(),
        ],
    );
    let mut norms: Vec<(f64, f64, f64)> = Vec::new();
    let mut speedups = Vec::new();
    for b in benchmarks() {
        let e = &m[&(b.to_string(), Scheme::EFam)];
        let i = m[&(b.to_string(), Scheme::IFam)].normalized_to(e);
        let w = m[&(b.to_string(), Scheme::DeactW)].normalized_to(e);
        let n = m[&(b.to_string(), Scheme::DeactN)].normalized_to(e);
        norms.push((i, w, n));
        speedups.push(n / i);
        let p = paper::row(b).unwrap();
        row(
            b,
            &[
                cell(i),
                cell(p.fig12_ifam),
                cell(w),
                cell(p.fig12_w),
                cell(n),
                cell(p.fig12_n),
            ],
        );
    }
    let count = norms.len() as f64;
    let avg_i: f64 = norms.iter().map(|n| n.0).sum::<f64>() / count;
    let avg_n: f64 = norms.iter().map(|n| n.2).sum::<f64>() / count;
    let max_speedup = speedups.iter().cloned().fold(0.0, f64::max);
    println!(
        "averages wrt E-FAM: I-FAM {avg_i:.3}, DeACT-N {avg_n:.3}  (paper: {:.3} / {:.3})",
        paper::FIG12_AVG_IFAM,
        paper::FIG12_AVG_DEACT,
    );
    println!(
        "DeACT-N speedup over I-FAM: max {max_speedup:.2}x, geomean {:.2}x  (paper headline: up to {:.2}x, {:.1}x average)",
        geomean(&speedups),
        paper::HEADLINE_MAX_SPEEDUP,
        paper::HEADLINE_AVG_SPEEDUP,
    );
}

/// The sensitivity sweeps print suite geomeans + pf + dc of DeACT-N
/// speedup over I-FAM, like Figs. 13–16.
fn sweep_rows(header: &str, points: &[(String, SystemConfig)], note: &str) {
    let mut labels: Vec<String> = vec![header.into()];
    labels.extend(SUITE_GROUPS.iter().map(|s| s.to_string()));
    row(&labels[0], &labels[1..]);
    let benches: Vec<&str> = SUITE_GROUPS
        .iter()
        .flat_map(|s| crate::suite_members(s))
        .collect();
    for (label, cfg) in points {
        let m = run_matrix(&benches, &[Scheme::IFam, Scheme::DeactN], *cfg);
        let cells: Vec<String> = SUITE_GROUPS
            .iter()
            .map(|s| format!("{:.2}x", suite_speedup(&m, s, Scheme::DeactN)))
            .collect();
        row(label, &cells);
    }
    println!("{note}");
}

/// Fig. 13: speedup over I-FAM vs STU cache size.
pub fn fig13() {
    heading("Fig. 13", "DeACT-N speedup wrt I-FAM vs STU cache entries");
    let cfg = base_cfg(40_000);
    let points: Vec<(String, SystemConfig)> = [256usize, 512, 1024, 2048, 4096]
        .iter()
        .map(|&e| (format!("{e}"), cfg.with_stu_entries(e)))
        .collect();
    sweep_rows("entries", &points, paper::FIG13_TEXT);
}

/// §V-D1 (text): speedup over I-FAM vs STU associativity.
pub fn assoc() {
    heading("§V-D1", "DeACT-N speedup wrt I-FAM vs STU associativity");
    let cfg = base_cfg(40_000);
    let points: Vec<(String, SystemConfig)> = [4usize, 8, 16, 32, 64]
        .iter()
        .map(|&w| (format!("{w}-way"), cfg.with_stu_ways(w)))
        .collect();
    sweep_rows("assoc", &points, paper::ASSOC_TEXT);
}

/// Fig. 14: ACM width (8/16/32-bit) and DeACT-N pairs-per-way.
pub fn fig14() {
    heading("Fig. 14", "metadata size effect on DeACT speedup wrt I-FAM");
    let cfg = base_cfg(40_000);
    println!("-- DeACT-W across ACM widths --");
    let points: Vec<(String, SystemConfig)> = [
        ("8-bit", AcmWidth::W8),
        ("16-bit", AcmWidth::W16),
        ("32-bit", AcmWidth::W32),
    ]
    .iter()
    .map(|(l, w)| {
        (
            l.to_string(),
            cfg.with_acm_width(*w).with_scheme(Scheme::DeactW),
        )
    })
    .collect();
    let benches: Vec<&str> = SUITE_GROUPS
        .iter()
        .flat_map(|s| crate::suite_members(s))
        .collect();
    let mut labels: Vec<String> = vec!["width".into()];
    labels.extend(SUITE_GROUPS.iter().map(|s| s.to_string()));
    row(&labels[0], &labels[1..]);
    for (label, c) in &points {
        let m = run_matrix(&benches, &[Scheme::IFam, Scheme::DeactW], *c);
        let cells: Vec<String> = SUITE_GROUPS
            .iter()
            .map(|s| format!("{:.2}x", suite_speedup(&m, s, Scheme::DeactW)))
            .collect();
        row(label, &cells);
    }
    println!("-- DeACT-N, 8-bit ACM, pairs per way --");
    let pair_points: Vec<(String, SystemConfig)> = [1usize, 2, 3]
        .iter()
        .map(|&p| {
            (
                format!("{p} pair"),
                cfg.with_acm_width(AcmWidth::W8).with_deact_n_pairs(Some(p)),
            )
        })
        .collect();
    sweep_rows("pairs", &pair_points, paper::FIG14_TEXT);
}

/// Fig. 15: fabric-latency sweep.
pub fn fig15() {
    heading("Fig. 15", "DeACT-N speedup wrt I-FAM vs fabric latency");
    let cfg = base_cfg(40_000);
    let points: Vec<(String, SystemConfig)> = [100u64, 250, 500, 750, 1000, 3000, 6000]
        .iter()
        .map(|&ns| {
            let label = if ns >= 1000 {
                format!("{}us", ns / 1000)
            } else {
                format!("{ns}ns")
            };
            (label, cfg.with_fabric_latency_ns(ns))
        })
        .collect();
    sweep_rows("latency", &points, paper::FIG15_TEXT);
}

/// Fig. 16: node-count sweep (pf and dc).
pub fn fig16() {
    heading("Fig. 16", "DeACT-N speedup wrt I-FAM vs number of nodes");
    let cfg = base_cfg(25_000);
    row("nodes", &["pf".into(), "dc".into()]);
    for nodes in [1usize, 2, 4, 8] {
        // Fig. 16 keeps FAM pools proportional to the node count.
        let point = cfg.with_nodes(nodes).with_fam_modules(nodes);
        let m = run_matrix(&["pf", "dc"], &[Scheme::IFam, Scheme::DeactN], point);
        let cells: Vec<String> = ["pf", "dc"]
            .iter()
            .map(|b| {
                let d = &m[&(b.to_string(), Scheme::DeactN)];
                let i = &m[&(b.to_string(), Scheme::IFam)];
                format!("{:.2}x", d.speedup_over(i))
            })
            .collect();
        row(&nodes.to_string(), &cells);
    }
    println!("{}", paper::FIG16_TEXT);
}

/// Extension ablations beyond the paper's figures (DESIGN.md §6).
pub fn ablation() {
    heading(
        "Ablation",
        "design-choice studies beyond the paper's figures",
    );
    let cfg = base_cfg(40_000);

    println!("-- in-DRAM translation-cache capacity (DeACT-N, canl/sssp) --");
    row("size", &["canl".into(), "sssp".into()]);
    for kb in [256u64, 512, 1024, 2048, 4096] {
        let mut c = cfg;
        c.translation_cache_bytes = kb << 10;
        let m = run_matrix(&["canl", "sssp"], &[Scheme::IFam, Scheme::DeactN], c);
        let cells: Vec<String> = ["canl", "sssp"]
            .iter()
            .map(|b| {
                let d = &m[&(b.to_string(), Scheme::DeactN)];
                let i = &m[&(b.to_string(), Scheme::IFam)];
                format!("{:.2}x", d.speedup_over(i))
            })
            .collect();
        row(&format!("{kb}KB"), &cells);
    }

    println!("-- §VI shared pages: bitmap traffic vs shared fraction (DeACT-N, 2 nodes) --");
    {
        row("shared", &["bitmap rd".into(), "AT %".into(), "ipc".into()]);
        for shared in [0.0f64, 0.1, 0.25, 0.5] {
            let mut w = fam_workloads::Workload::by_name("dc").expect("table3 name");
            w.shared_fraction = shared;
            w.shared_pages = 128;
            let c = cfg
                .with_scheme(Scheme::DeactN)
                .with_nodes(2)
                .with_refs_per_core(refs_from_env(15_000))
                .with_shared_segment_pages(128);
            let r = deact::System::new(c, &w).run();
            row(
                &format!("{:.0}%", shared * 100.0),
                &[
                    format!("{}", r.fam.at_bitmap_reads),
                    format!("{:.1}", r.fam.at_percent()),
                    format!("{:.3}", r.ipc),
                ],
            );
        }
        println!("(shared pages are vetted through the 1 GB-region bitmaps of Fig. 5; the entry's\n all-ones node field redirects verification to the bitmap)");
    }

    println!("-- §III-C translation-cache replacement: random vs LRU --");
    {
        row(
            "policy",
            &["canl thit".into(), "canl norm".into(), "dram wr".into()],
        );
        let efam =
            run_matrix(&["canl"], &[Scheme::EFam], cfg)[&("canl".into(), Scheme::EFam)].clone();
        for (label, lru) in [("random", false), ("LRU", true)] {
            let c = cfg.with_translation_cache_lru(lru);
            let r = run_matrix(&["canl"], &[Scheme::DeactN], c)[&("canl".into(), Scheme::DeactN)]
                .clone();
            row(
                label,
                &[
                    format!("{:.1}%", r.translation_hit_rate.unwrap() * 100.0),
                    format!("{:.2}", r.normalized_to(&efam)),
                    format!("{}", r.dram_writes),
                ],
            );
        }
        println!("(LRU buys a slightly better hit rate at the cost of a DRAM write per FAM access — the paper's §III-C trade)");
    }

    println!("-- §VI large pages: TLB reach if data were 2 MB-mapped --");
    {
        use fam_vm::{PtFlags, Pte, TlbConfig, TlbHierarchy};
        row("bench", &["4KB hit%".into(), "2MB hit%".into()]);
        for name in ["canl", "sssp", "mg"] {
            let w = fam_workloads::Workload::by_name(name).expect("table3 name");
            let mut small = TlbHierarchy::new(TlbConfig::default());
            let mut huge = TlbHierarchy::new(TlbConfig::default());
            let mut gen = w.generator(11);
            for _ in 0..200_000 {
                let vpage = gen.next_ref().vaddr.page();
                let fill = Pte {
                    target_page: vpage,
                    flags: PtFlags::rw(),
                };
                if small.lookup(vpage).2.is_none() {
                    small.fill(vpage, fill);
                }
                let region = vpage >> 9; // 2 MB granule
                if huge.lookup(region).2.is_none() {
                    huge.fill(region, fill);
                }
            }
            row(
                name,
                &[
                    format!("{:.1}", small.stats().percent()),
                    format!("{:.1}", huge.stats().percent()),
                ],
            );
        }
        println!(
            "(2 MB pages would fix TLB reach, but §VI's objections stand: local DRAM hosts\n fewer large pages, sparse use wastes it, and hot small pages scatter across them)"
        );
    }

    println!("-- §II-B walk accounting: 1-D vs nested 2-D translation --");
    {
        use fam_vm::{PageTable, PageWalker, PtFlags, PtwCache, TwoDimWalker};
        let mut guest = PageTable::new(0);
        let mut next = 0x100_0000u64;
        let mut alloc = |_: usize| {
            let a = next;
            next += 4096;
            a
        };
        guest.map(7, 0x5000, PtFlags::rw(), &mut alloc);
        let mut nested = PageTable::new(0x800_0000);
        let mut next2 = 0x900_0000u64;
        let mut alloc2 = |_: usize| {
            let a = next2;
            next2 += 4096;
            a
        };
        for p in 0..0x6000u64 {
            nested.map(p, p, PtFlags::rw(), &mut alloc2);
        }
        let one_d = PageWalker::plan(&guest, None, 7).reads();
        let two_d = TwoDimWalker::plan(&guest, &nested, None, 7).reads();
        let mut ptw = PtwCache::new(32);
        TwoDimWalker::plan(&guest, &nested, Some(&mut ptw), 7);
        let two_d_cached = TwoDimWalker::plan(&guest, &nested, Some(&mut ptw), 7).reads();
        println!(
            "  native walk: {one_d} reads; nested 2-D walk: {two_d} reads (paper: 4 vs 24); with warm nested-PTW cache: {two_d_cached}"
        );
    }

    println!("-- §III-A encrypted-memory read bypass (DeACT-N) --");
    row("mode", &["canl".into(), "bc".into(), "dc".into()]);
    for (label, skip) in [("verify-all", false), ("skip-reads", true)] {
        let c = cfg.with_skip_read_checks(skip);
        let m = run_matrix(&["canl", "bc", "dc"], &[Scheme::EFam, Scheme::DeactN], c);
        let cells: Vec<String> = ["canl", "bc", "dc"]
            .iter()
            .map(|b| {
                let d = &m[&(b.to_string(), Scheme::DeactN)];
                let e = &m[&(b.to_string(), Scheme::EFam)];
                format!("{:.2}", d.normalized_to(e))
            })
            .collect();
        row(label, &cells);
    }
    println!("(normalized performance wrt E-FAM; reads dominate, so skipping read checks narrows the gap)");
}

/// Runs everything in figure order.
pub fn all() {
    table1();
    table2();
    table3_bin();
    fig03();
    fig04();
    fig09();
    fig10();
    fig11();
    fig12();
    fig13();
    assoc();
    fig14();
    fig15();
    fig16();
    ablation();
}
