//! Criterion micro-benchmarks on the hot data structures of the
//! simulation: these bound how fast the full-system experiments run
//! and double as regression guards on the substrate implementations.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deact::FamTranslator;
use fam_broker::{AcmWidth, FamLayout};
use fam_mem::{CacheConfig, CacheHierarchy, HierarchyConfig, Replacement, SetAssocCache};
use fam_stu::{StuCache, StuConfig, StuOrganization};
use fam_vm::{FamAddr, PageTable, PageWalker, PtFlags, PtwCache, TlbConfig, TlbHierarchy};
use fam_workloads::Workload;

fn bench_set_assoc_cache(c: &mut Criterion) {
    let mut cache: SetAssocCache<u64> =
        SetAssocCache::new(CacheConfig::new(128, 8, Replacement::Lru));
    for k in 0..1024u64 {
        cache.insert(k, k);
    }
    let mut key = 0u64;
    c.bench_function("set_assoc_cache_get", |b| {
        b.iter(|| {
            key = (key + 7) % 2048;
            black_box(cache.get(black_box(key)).copied())
        })
    });
}

fn bench_cache_hierarchy(c: &mut Criterion) {
    let mut h = CacheHierarchy::new(4, HierarchyConfig::default());
    let mut line = 0u64;
    c.bench_function("cache_hierarchy_access", |b| {
        b.iter(|| {
            line = (line + 97) % 100_000;
            black_box(h.access(0, black_box(line), false))
        })
    });
}

fn bench_tlb(c: &mut Criterion) {
    let mut tlb = TlbHierarchy::new(TlbConfig::default());
    for p in 0..256u64 {
        tlb.fill(
            p,
            fam_vm::Pte {
                target_page: p,
                flags: PtFlags::rw(),
            },
        );
    }
    let mut p = 0u64;
    c.bench_function("tlb_lookup", |b| {
        b.iter(|| {
            p = (p + 3) % 512;
            black_box(tlb.lookup(black_box(p)))
        })
    });
}

fn bench_page_walk(c: &mut Criterion) {
    let mut pt = PageTable::new(0);
    let mut next = 0x100_0000u64;
    let mut alloc = |_: usize| {
        let a = next;
        next += 4096;
        a
    };
    for v in 0..10_000u64 {
        pt.map(v * 13, v, PtFlags::rw(), &mut alloc);
    }
    let mut ptw = PtwCache::new(32);
    let mut v = 0u64;
    c.bench_function("page_walk_planned", |b| {
        b.iter(|| {
            v = (v + 1) % 10_000;
            black_box(PageWalker::plan(&pt, Some(&mut ptw), black_box(v * 13)))
        })
    });
}

fn bench_stu_organisations(c: &mut Criterion) {
    let mut group = c.benchmark_group("stu_acm_lookup");
    for (label, org) in [
        ("deact_w", StuOrganization::DeactW),
        ("deact_n", StuOrganization::DeactN),
    ] {
        let mut stu = StuCache::new(StuConfig {
            organization: org,
            ..StuConfig::default()
        });
        for p in 0..2048u64 {
            stu.acm_fill(p * 31);
        }
        let mut p = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                p = (p + 1) % 4096;
                black_box(stu.acm_lookup(black_box(p * 31)))
            })
        });
    }
    group.finish();
}

fn bench_translator(c: &mut Criterion) {
    let mut t = FamTranslator::new(1 << 20, 0x3000_0000, 128, 5);
    for p in 0..65_536u64 {
        t.install(p, p + 9);
    }
    let mut p = 0u64;
    c.bench_function("fam_translator_lookup", |b| {
        b.iter(|| {
            p = (p + 11) % 131_072;
            black_box(t.lookup(black_box(p)))
        })
    });
}

fn bench_acm_address_arithmetic(c: &mut Criterion) {
    let layout = FamLayout::new(16 << 30, AcmWidth::W16);
    let mut addr = 0u64;
    c.bench_function("acm_addr_derivation", |b| {
        b.iter(|| {
            addr = (addr + 4096) % layout.usable_bytes();
            black_box(layout.acm_addr(FamAddr(black_box(addr))))
        })
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut gen = Workload::by_name("sssp").unwrap().generator(3);
    c.bench_function("trace_generator_next_ref", |b| {
        b.iter(|| black_box(gen.next_ref()))
    });
}

criterion_group!(
    micro,
    bench_set_assoc_cache,
    bench_cache_hierarchy,
    bench_tlb,
    bench_page_walk,
    bench_stu_organisations,
    bench_translator,
    bench_acm_address_arithmetic,
    bench_trace_generation,
);
criterion_main!(micro);
