//! End-to-end simulation throughput per scheme: how many simulated
//! references per second the full stack sustains. This is the number
//! that decides how long the figure regeneration takes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deact::{Scheme, System, SystemConfig};
use fam_workloads::Workload;

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_2k_refs_per_core");
    group.sample_size(10);
    let workload = Workload::by_name("mcf").unwrap();
    for scheme in Scheme::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &scheme| {
                let cfg = SystemConfig::paper_default()
                    .with_scheme(scheme)
                    .with_refs_per_core(2_000);
                b.iter(|| System::new(cfg, &workload).run());
            },
        );
    }
    group.finish();
}

fn bench_workload_classes(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_classes_deact_n");
    group.sample_size(10);
    for bench in ["mg", "bc", "sssp"] {
        let workload = Workload::by_name(bench).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(bench), bench, |b, _| {
            let cfg = SystemConfig::paper_default()
                .with_scheme(Scheme::DeactN)
                .with_refs_per_core(2_000);
            b.iter(|| System::new(cfg, &workload).run());
        });
    }
    group.finish();
}

criterion_group!(end_to_end, bench_schemes, bench_workload_classes);
criterion_main!(end_to_end);
