//! Randomized property tests for the sharded-resource substrate:
//! [`Resource`], [`BankedResource`] and the fixed-capacity interval
//! ring ([`fam_sim::timeline`]) that backs them.
//!
//! The parallel engine's correctness argument leans on three
//! properties these tests pin with a deterministic LCG-driven stream
//! (no external dependencies, same verdict on every host):
//!
//! 1. **Reference-model equivalence through ring wraparound** — a
//!    `Resource` behaves exactly like an obviously-correct flat-`Vec`
//!    model with the same retention policy, across thousands of mixed
//!    in-order/backfill requests, far past [`MAX_INTERVALS`] so the
//!    ring wraps many times over.
//! 2. **Interleave-key determinism** — bank selection is a pure
//!    function of the key for power-of-two (mask) and non-power-of-two
//!    (divide) bank counts alike: a banked device replays exactly as
//!    independent per-bank resources fed the per-bank subsequences.
//! 3. **Merge-order invariance of per-shard reservations** — requests
//!    to different banks commute: applying per-bank subsequences
//!    bank-by-bank, in any bank order, yields the same service starts
//!    and the same final timelines as the fully interleaved stream.
//!    This is the commutation fact that lets an epoch shard own some
//!    module timelines while the commit phase drives the rest.

use fam_sim::timeline::MAX_INTERVALS;
use fam_sim::{BankedResource, Cycle, Duration, Resource, SimRng};

/// An obviously-correct flat-`Vec` twin of [`Resource`]: sorted,
/// non-overlapping busy intervals, earliest-fitting-gap backfill,
/// neighbour coalescing, and the same bounded-retention policy (drop
/// the oldest when full; a new oldest-of-a-full-ring is forgotten).
struct NaiveResource {
    intervals: Vec<(u64, u64)>,
}

impl NaiveResource {
    fn new() -> NaiveResource {
        NaiveResource {
            intervals: Vec::new(),
        }
    }

    fn acquire_for(&mut self, now: u64, occ: u64) -> u64 {
        if occ == 0 {
            return now;
        }
        // Earliest gap of length `occ` at or after `now`.
        let mut start = now;
        let mut idx = self.intervals.len();
        for (i, &(s, e)) in self.intervals.iter().enumerate() {
            if start + occ <= s {
                idx = i;
                break;
            }
            if e > start {
                start = e;
            }
        }
        let end = start + occ;
        let abuts_prev = idx > 0 && self.intervals[idx - 1].1 == start;
        let abuts_next = idx < self.intervals.len() && self.intervals[idx].0 == end;
        match (abuts_prev, abuts_next) {
            (true, true) => {
                self.intervals[idx - 1].1 = self.intervals[idx].1;
                self.intervals.remove(idx);
            }
            (true, false) => self.intervals[idx - 1].1 = end,
            (false, true) => self.intervals[idx].0 = start,
            (false, false) => {
                if self.intervals.len() == MAX_INTERVALS {
                    if idx == 0 {
                        // Would immediately be the forgotten oldest.
                        return start;
                    }
                    self.intervals.remove(0);
                    self.intervals.insert(idx - 1, (start, end));
                } else {
                    self.intervals.insert(idx, (start, end));
                }
            }
        }
        start
    }

    fn next_free(&self) -> u64 {
        self.intervals.last().map_or(0, |&(_, e)| e)
    }
}

/// A deterministic stream of `(arrival, occupancy)` pairs: the base
/// time drifts forward (so the ring eventually wraps) while individual
/// arrivals jitter backwards past the frontier (so backfills, gap
/// fits, coalescing and the deep-search fallback all trigger).
fn request_stream(seed: u64, len: usize) -> Vec<(u64, u64)> {
    let mut rng = SimRng::seeded(seed);
    let mut base = 0u64;
    (0..len)
        .map(|_| {
            base += rng.below(40);
            let back = rng.below(500);
            let at = base.saturating_sub(back);
            let occ = rng.below(13); // 0..=12, zero included on purpose
            (at, occ)
        })
        .collect()
}

#[test]
fn resource_matches_the_naive_model_through_ring_wraparound() {
    for seed in [1u64, 0xDEAC7, 0xB0B] {
        let mut real = Resource::new(10);
        let mut naive = NaiveResource::new();
        // Far past MAX_INTERVALS requests, mostly disjoint: the ring
        // wraps several times while the naive Vec prunes in lockstep.
        for (i, (at, occ)) in request_stream(seed, 8 * MAX_INTERVALS)
            .into_iter()
            .enumerate()
        {
            let got = real.acquire_for(Cycle(at), Duration(occ));
            let want = naive.acquire_for(at, occ);
            assert_eq!(
                got.0, want,
                "seed {seed}, request {i} (at={at}, occ={occ}) diverged"
            );
        }
        assert_eq!(
            real.next_free().0,
            naive.next_free(),
            "seed {seed}: frontier diverged"
        );
    }
}

#[test]
fn banked_interleave_key_is_deterministic_for_any_bank_count() {
    // 8 banks exercises the power-of-two mask path, 6 the divide path;
    // both must agree with an explicit per-bank replay.
    for banks in [8usize, 6] {
        let mut banked = BankedResource::new(banks, 25);
        let mut replay: Vec<Resource> = (0..banks).map(|_| Resource::new(25)).collect();
        let mut rng = SimRng::seeded(0x5EED ^ banks as u64);
        for (at, occ) in request_stream(7, 2_000) {
            let key = rng.next_u64();
            let got = banked.acquire_for(Cycle(at), key, Duration(occ));
            let want = replay[(key % banks as u64) as usize].acquire_for(Cycle(at), Duration(occ));
            assert_eq!(got, want, "banks {banks}: key {key} routed differently");
        }
        assert_eq!(banked.requests(), 2_000);
        assert_eq!(
            banked.busy_cycles(),
            replay.iter().map(Resource::busy_cycles).sum::<Duration>()
        );
    }
}

#[test]
fn per_bank_reservations_commute_across_merge_order() {
    const BANKS: usize = 4;
    let stream: Vec<(u64, u64, u64)> = {
        let mut rng = SimRng::seeded(0xCAFE);
        request_stream(11, 3_000)
            .into_iter()
            .map(|(at, occ)| (at, occ, rng.next_u64()))
            .collect()
    };
    // Interleaved application, in stream order.
    let mut interleaved = BankedResource::new(BANKS, 30);
    let mut starts = vec![Vec::new(); BANKS];
    for &(at, occ, key) in &stream {
        let s = interleaved.acquire_for(Cycle(at), key, Duration(occ));
        starts[(key % BANKS as u64) as usize].push(s);
    }
    // Bank-by-bank application of the per-bank subsequences, in
    // several different bank orders (the per-bank order — the analogue
    // of per-resource key order in the engine — is always preserved).
    for order in [[0usize, 1, 2, 3], [3, 2, 1, 0], [2, 0, 3, 1]] {
        let mut split = BankedResource::new(BANKS, 30);
        let mut split_starts = vec![Vec::new(); BANKS];
        for &bank in &order {
            for &(at, occ, key) in &stream {
                if (key % BANKS as u64) as usize == bank {
                    let s = split.acquire_for(Cycle(at), key, Duration(occ));
                    split_starts[bank].push(s);
                }
            }
        }
        assert_eq!(
            starts, split_starts,
            "bank order {order:?}: service starts diverged"
        );
        assert_eq!(split.requests(), interleaved.requests());
        assert_eq!(split.busy_cycles(), interleaved.busy_cycles());
    }
}
