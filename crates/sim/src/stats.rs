//! Counters, ratios and histograms for simulation statistics.
//!
//! Every figure in the paper is a counter ratio (hit rates, request
//! percentages) or a derived performance number (IPC). Components
//! accumulate into these types and the experiment harness reads them
//! out at the end of a run.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use fam_sim::stats::Counter;
///
/// let mut c = Counter::new();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Counter {
        Counter(0)
    }

    /// Adds one, saturating at `u64::MAX` so billion-ref runs can
    /// never wrap silently.
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl From<u64> for Counter {
    /// Creates a counter holding `value` — used by registry
    /// snapshot/diff arithmetic.
    fn from(value: u64) -> Counter {
        Counter(value)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A hit/miss style ratio.
///
/// # Examples
///
/// ```
/// use fam_sim::stats::Ratio;
///
/// let mut r = Ratio::new();
/// r.hit();
/// r.hit();
/// r.miss();
/// assert_eq!(r.total(), 3);
/// assert!((r.rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    hits: u64,
    misses: u64,
}

impl Ratio {
    /// Creates an empty ratio.
    pub fn new() -> Ratio {
        Ratio::default()
    }

    /// Creates a ratio from pre-counted hit/miss totals — used by
    /// registry snapshot/diff arithmetic.
    pub fn from_parts(hits: u64, misses: u64) -> Ratio {
        Ratio { hits, misses }
    }

    /// Records a hit.
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss.
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Records a hit or a miss.
    pub fn record(&mut self, is_hit: bool) {
        if is_hit {
            self.hit();
        } else {
            self.miss();
        }
    }

    /// Number of hits.
    pub fn hits(self) -> u64 {
        self.hits
    }

    /// Number of misses.
    pub fn misses(self) -> u64 {
        self.misses
    }

    /// Total events.
    pub fn total(self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; `1.0` for an empty ratio (no accesses means
    /// nothing ever missed, which is the convention hit-rate plots use).
    pub fn rate(self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Hit rate as a percentage in `[0, 100]`.
    pub fn percent(self) -> f64 {
        self.rate() * 100.0
    }

    /// Merges another ratio into this one.
    pub fn merge(&mut self, other: Ratio) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Resets both counts.
    pub fn reset(&mut self) {
        *self = Ratio::default();
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} ({:.2}%)", self.hits, self.total(), self.percent())
    }
}

/// A fixed-bucket histogram of `u64` samples (power-of-two buckets),
/// used for latency distributions.
///
/// # Examples
///
/// ```
/// use fam_sim::stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(1);
/// h.record(100);
/// h.record(100);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.max(), 100);
/// assert!((h.mean() - 67.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>, // bucket i counts samples in [2^(i-1), 2^i), bucket 0 = {0}
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let b = if sample == 0 {
            0
        } else {
            64 - sample.leading_zeros() as usize
        };
        self.buckets[b] = self.buckets[b].saturating_add(1);
        self.count = self.count.saturating_add(1);
        // Saturating: a billion-ref run summing large latencies must
        // degrade to a pinned mean, never wrap to a tiny one.
        self.sum = self.sum.saturating_add(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (zero if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (zero if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An approximate quantile (`q` in `[0,1]`) from the bucket
    /// boundaries; exact enough for reporting tail latencies.
    ///
    /// Returns the *upper* bound of the bucket holding the target
    /// sample (clamped to the observed maximum), so tails are never
    /// underestimated: a quantile is a value at least `q` of the
    /// samples sit at or below, and only the upper bound guarantees
    /// that for every sample in the bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                // Bucket i covers [2^(i-1), 2^i); its inclusive upper
                // bound is 2^i - 1 (bucket 0 holds only zero). The
                // last bucket's nominal bound overflows u64, but the
                // max clamp keeps the result meaningful there too.
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one, bucket by bucket —
    /// the aggregation step that folds per-core and per-node stage
    /// histograms into a run-level latency breakdown.
    ///
    /// # Examples
    ///
    /// ```
    /// use fam_sim::stats::Histogram;
    ///
    /// let mut a = Histogram::new();
    /// a.record(4);
    /// let mut b = Histogram::new();
    /// b.record(100);
    /// a.merge(&b);
    /// assert_eq!(a.count(), 2);
    /// assert_eq!(a.sum(), 104);
    /// assert_eq!(a.max(), 100);
    /// ```
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Bucket-wise saturating difference `self - base`, for diffing a
    /// later snapshot against an earlier one of the same histogram.
    ///
    /// `max` is carried over from `self`: buckets and sums are
    /// monotonic under `record` so subtraction recovers the interval
    /// exactly, but the interval's true maximum is not recoverable —
    /// the carried value is an upper bound.
    pub fn saturating_diff(&self, base: &Histogram) -> Histogram {
        let mut out = self.clone();
        for (mine, theirs) in out.buckets.iter_mut().zip(&base.buckets) {
            *mine = mine.saturating_sub(*theirs);
        }
        out.count = self.count.saturating_sub(base.count);
        out.sum = self.sum.saturating_sub(base.sum);
        out
    }

    /// Resets all buckets.
    pub fn reset(&mut self) {
        *self = Histogram::new();
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p99={} max={}",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max
        )
    }
}

/// Geometric mean of a slice of positive values; `1.0` for an empty
/// slice. The paper reports suite-level sensitivity results as
/// geometric means (§V-D).
///
/// # Examples
///
/// ```
/// let g = fam_sim::stats::geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.value(), 10);
        c.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(Counter::new().to_string(), "0");
    }

    #[test]
    fn ratio_rates() {
        let mut r = Ratio::new();
        assert_eq!(r.rate(), 1.0, "empty ratio counts as all-hit");
        for _ in 0..3 {
            r.hit();
        }
        r.miss();
        assert_eq!(r.hits(), 3);
        assert_eq!(r.misses(), 1);
        assert!((r.percent() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_record_and_merge() {
        let mut a = Ratio::new();
        a.record(true);
        a.record(false);
        let mut b = Ratio::new();
        b.record(true);
        b.merge(a);
        assert_eq!(b.hits(), 2);
        assert_eq!(b.total(), 3);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 4, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.sum(), 1039);
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    #[test]
    fn histogram_quantile_monotone() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max());
    }

    #[test]
    fn histogram_quantile_is_bucket_upper_bound() {
        let mut h = Histogram::new();
        // 100 samples of 1000: every quantile lands in the bucket
        // [512, 1024), whose inclusive upper bound is 1023 — the old
        // lower-bound answer of 512 underestimated every sample.
        for _ in 0..100 {
            h.record(1000);
        }
        assert_eq!(h.quantile(0.5), 1000, "clamped to the observed max");
        let mut h = Histogram::new();
        h.record(600);
        h.record(2000);
        assert_eq!(h.quantile(0.5), 1023, "upper bound of [512, 1024)");
        assert!(h.quantile(0.5) >= 600, "never below the covered sample");
        assert_eq!(h.quantile(1.0), 2000);
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.quantile(0.25), 0);
        assert_eq!(h.quantile(1.0), u64::MAX, "top bucket clamps, not wraps");
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = Histogram::new();
        for v in [0, 3, 700] {
            a.record(v);
        }
        let mut b = Histogram::new();
        for v in [5, 5000] {
            b.record(v);
        }
        let mut whole = Histogram::new();
        for v in [0, 3, 700, 5, 5000] {
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole, "merge equals recording everything in one");
        let empty = Histogram::new();
        let before = a.clone();
        a.merge(&empty);
        assert_eq!(a, before, "merging an empty histogram is a no-op");
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn geomean_matches_definition() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_edge_cases_stay_finite() {
        // Empty slice is the multiplicative identity.
        assert_eq!(geomean(&[]), 1.0);
        // Zeros are clamped to the smallest positive double instead of
        // producing -inf logs: the result is finite, non-negative, and
        // effectively zero.
        let g = geomean(&[0.0, 0.0, 0.0]);
        assert!(g.is_finite() && (0.0..1e-300).contains(&g), "got {g}");
        // A single zero drags the mean down but never poisons it.
        let g = geomean(&[0.0, 4.0, 16.0]);
        assert!(g.is_finite() && g >= 0.0, "got {g}");
        // Monotonicity spot check: replacing the zero with a positive
        // value can only increase the mean.
        assert!(g <= geomean(&[1.0, 4.0, 16.0]));
    }

    /// Property: merging shard histograms then asking for a quantile
    /// gives exactly the same answer as recording every sample into
    /// one histogram — merge must be lossless for every derived stat.
    #[test]
    fn histogram_merge_then_quantile_matches_record_all() {
        let mut rng = crate::SimRng::seeded(0xC0FFEE);
        for round in 0..50 {
            let shards = 1 + (round % 4);
            let mut merged = Histogram::new();
            let mut whole = Histogram::new();
            for _ in 0..shards {
                let mut shard = Histogram::new();
                let n = rng.below(200);
                for _ in 0..n {
                    // Spread samples across many buckets, including 0.
                    let sample = rng.next_u64() >> (rng.below(64) as u32);
                    shard.record(sample);
                    whole.record(sample);
                }
                merged.merge(&shard);
            }
            assert_eq!(merged, whole, "round {round}: merge must be lossless");
            for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(
                    merged.quantile(q),
                    whole.quantile(q),
                    "round {round}, q={q}"
                );
            }
            assert_eq!(merged.mean(), whole.mean(), "round {round}");
            assert_eq!(merged.max(), whole.max(), "round {round}");
        }
    }

    #[test]
    fn saturating_arithmetic_pins_instead_of_wrapping() {
        let mut c = Counter::from(u64::MAX - 1);
        c.add(100);
        assert_eq!(c.value(), u64::MAX);
        c.inc();
        assert_eq!(c.value(), u64::MAX);

        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum pins at the ceiling");
        assert_eq!(h.count(), 2);
        let mut other = Histogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn histogram_saturating_diff_recovers_interval() {
        let mut base = Histogram::new();
        for v in [1, 2, 3] {
            base.record(v);
        }
        let mut later = base.clone();
        for v in [10, 2000] {
            later.record(v);
        }
        let diff = later.saturating_diff(&base);
        assert_eq!(diff.count(), 2);
        assert_eq!(diff.sum(), 2010);
        let mut interval = Histogram::new();
        interval.record(10);
        interval.record(2000);
        assert_eq!(diff.quantile(0.5), interval.quantile(0.5));
    }
}
