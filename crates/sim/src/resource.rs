//! Contended hardware resources modelled as busy-interval timelines.

use crate::timeline::Timeline;
use crate::{Cycle, Duration};

/// A serially-occupied hardware unit: a DRAM channel, a fabric link, an
/// STU lookup port.
///
/// A request arriving at time `t` is *backfilled* into the earliest gap
/// of length `occupancy` at or after `t` in the resource's busy
/// timeline. Unlike a single `next_free` cursor, this tolerates
/// requests arriving out of simulated-time order — which path-oriented
/// simulation produces constantly (a multi-hop operation acquires
/// downstream resources at future times; the next operation's upstream
/// acquisition happens earlier). A future-time request must not block
/// an earlier one.
///
/// # Examples
///
/// ```
/// use fam_sim::{Cycle, Resource};
///
/// let mut link = Resource::new(4);
/// assert_eq!(link.acquire(Cycle(100)), Cycle(100)); // future request
/// // An earlier arrival backfills in front of it.
/// assert_eq!(link.acquire(Cycle(0)), Cycle(0));
/// // Contention still queues: same-time requests serialize.
/// assert_eq!(link.acquire(Cycle(0)), Cycle(4));
/// ```
#[derive(Debug, Clone)]
pub struct Resource {
    occupancy: Duration,
    /// Sorted, non-overlapping (start, end) busy intervals. Bounded:
    /// the oldest intervals are forgotten (treated as free) past
    /// [`crate::timeline::MAX_INTERVALS`], bounding memory for long runs.
    intervals: Timeline,
    busy: Duration,
    requests: u64,
}

impl Resource {
    /// Creates a resource that is busy for `occupancy` cycles per request.
    pub fn new(occupancy: u64) -> Resource {
        Resource {
            occupancy: Duration(occupancy),
            intervals: Timeline::new(),
            busy: Duration::ZERO,
            requests: 0,
        }
    }

    /// Claims the resource for one request arriving at `now`; returns
    /// the cycle at which service begins.
    pub fn acquire(&mut self, now: Cycle) -> Cycle {
        self.acquire_for(now, self.occupancy)
    }

    /// Claims the resource for a request with a non-default occupancy
    /// (e.g. a larger packet on a link).
    pub fn acquire_for(&mut self, now: Cycle, occupancy: Duration) -> Cycle {
        self.requests += 1;
        self.busy += occupancy;
        if occupancy.0 == 0 {
            return now;
        }
        let mut start = now.0;
        // Fast path: an arrival at or after the busy frontier appends a
        // fresh interval — no search, no mid-ring insertion. Back-to-back
        // service extends the frontier interval in place: the busy-set
        // is identical and the timeline stays short, which keeps every
        // later search and insertion cheap.
        match self.intervals.back() {
            Some((s, end)) if end == start => {
                self.intervals.set_back((s, start + occupancy.0));
                return Cycle(start);
            }
            Some((_, end)) if end < start => {
                self.intervals.push_back((start, start + occupancy.0));
                return Cycle(start);
            }
            None => {
                self.intervals.push_back((start, start + occupancy.0));
                return Cycle(start);
            }
            _ => {}
        }
        // Backfill: find the first interval that ends after our
        // candidate start (ends are strictly increasing across the
        // sorted timeline), then walk forward to the first gap that
        // fits. Backfills cluster a few intervals behind the frontier
        // (an outbound request slotting in under the return-leg
        // reservations), so a short contiguous walk back from the
        // newest interval beats a binary search's scattered probes;
        // the search is the fallback for the rare deep backfill.
        let mut idx = self.intervals.len();
        let floor = idx.saturating_sub(64);
        while idx > floor && self.intervals.get(idx - 1).1 > start {
            idx -= 1;
        }
        if idx == floor && idx > 0 && self.intervals.get(idx - 1).1 > start {
            idx = self.intervals.first_ending_after(start);
        }
        loop {
            let next_busy_start = if idx < self.intervals.len() {
                self.intervals.get(idx).0
            } else {
                u64::MAX
            };
            let end = start.saturating_add(occupancy.0);
            if end <= next_busy_start {
                // Coalesce with whichever neighbours this interval
                // abuts — the busy-set is unchanged, but runs of
                // back-to-back service collapse into single intervals
                // instead of fragmenting the timeline.
                let abuts_prev = idx > 0 && self.intervals.get(idx - 1).1 == start;
                let abuts_next = idx < self.intervals.len() && end == next_busy_start;
                match (abuts_prev, abuts_next) {
                    (true, true) => {
                        let merged = (self.intervals.get(idx - 1).0, self.intervals.get(idx).1);
                        self.intervals.set(idx - 1, merged);
                        self.intervals.remove(idx);
                    }
                    (true, false) => {
                        let prev = self.intervals.get(idx - 1);
                        self.intervals.set(idx - 1, (prev.0, end));
                    }
                    (false, true) => {
                        let next = self.intervals.get(idx);
                        self.intervals.set(idx, (start, next.1));
                    }
                    (false, false) => {
                        self.intervals.insert(idx, (start, end));
                    }
                }
                break;
            }
            start = self.intervals.get(idx).1;
            idx += 1;
        }
        Cycle(start)
    }

    /// The end of the latest busy interval (the resource is certainly
    /// free after this point).
    pub fn next_free(&self) -> Cycle {
        Cycle(self.intervals.back().map(|(_, e)| e).unwrap_or(0))
    }

    /// Total cycles this resource has been occupied.
    pub fn busy_cycles(&self) -> Duration {
        self.busy
    }

    /// Total requests serviced.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The configured default occupancy per request.
    pub fn occupancy(&self) -> Duration {
        self.occupancy
    }

    /// Resets the timeline and statistics, keeping the occupancy.
    pub fn reset(&mut self) {
        self.intervals.clear();
        self.busy = Duration::ZERO;
        self.requests = 0;
    }
}

/// A set of independently-occupied banks addressed by an interleaving
/// function — the FAM NVM's 32 banks in the paper (Table II).
///
/// Each bank is its own [`Resource`]; consecutive cache blocks map to
/// consecutive banks so streaming traffic spreads across the device.
///
/// # Examples
///
/// ```
/// use fam_sim::{BankedResource, Cycle};
///
/// let mut nvm = BankedResource::new(4, 100);
/// // Two requests to different banks proceed in parallel...
/// assert_eq!(nvm.acquire(Cycle(0), 0), Cycle(0));
/// assert_eq!(nvm.acquire(Cycle(0), 1), Cycle(0));
/// // ...but a second request to bank 0 queues.
/// assert_eq!(nvm.acquire(Cycle(0), 4), Cycle(100));
/// ```
#[derive(Debug, Clone)]
pub struct BankedResource {
    banks: Vec<Resource>,
    /// `banks - 1` when the bank count is a power of two, else 0 —
    /// interleaving is on every modelled device access, and an AND
    /// beats the hardware divide of `% banks`.
    bank_mask: u64,
}

impl BankedResource {
    /// Creates `banks` banks, each busy `occupancy` cycles per request.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(banks: usize, occupancy: u64) -> BankedResource {
        assert!(banks > 0, "need at least one bank");
        BankedResource {
            banks: vec![Resource::new(occupancy); banks],
            bank_mask: if banks.is_power_of_two() {
                banks as u64 - 1
            } else {
                0
            },
        }
    }

    /// Claims the bank selected by `interleave_key % banks` for a
    /// request arriving at `now`; returns the service start time.
    pub fn acquire(&mut self, now: Cycle, interleave_key: u64) -> Cycle {
        let idx = self.bank_index(interleave_key);
        self.banks[idx].acquire(now)
    }

    /// As [`BankedResource::acquire`] with an explicit occupancy.
    pub fn acquire_for(&mut self, now: Cycle, interleave_key: u64, occupancy: Duration) -> Cycle {
        let idx = self.bank_index(interleave_key);
        self.banks[idx].acquire_for(now, occupancy)
    }

    #[inline]
    fn bank_index(&self, interleave_key: u64) -> usize {
        if self.bank_mask != 0 {
            (interleave_key & self.bank_mask) as usize
        } else {
            (interleave_key % self.banks.len() as u64) as usize
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Total requests across all banks.
    pub fn requests(&self) -> u64 {
        self.banks.iter().map(Resource::requests).sum()
    }

    /// Total busy cycles across all banks.
    pub fn busy_cycles(&self) -> Duration {
        self.banks.iter().map(Resource::busy_cycles).sum()
    }

    /// Resets every bank's timeline and statistics.
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            b.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_requests_queue() {
        let mut r = Resource::new(10);
        assert_eq!(r.acquire(Cycle(0)), Cycle(0));
        assert_eq!(r.acquire(Cycle(0)), Cycle(10));
        assert_eq!(r.acquire(Cycle(5)), Cycle(20));
        assert_eq!(r.requests(), 3);
        assert_eq!(r.busy_cycles(), Duration(30));
    }

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = Resource::new(10);
        r.acquire(Cycle(0));
        assert_eq!(r.acquire(Cycle(1000)), Cycle(1000));
    }

    #[test]
    fn earlier_arrival_backfills_before_future_reservation() {
        let mut r = Resource::new(10);
        assert_eq!(r.acquire(Cycle(5000)), Cycle(5000));
        // A request arriving earlier is not blocked by the future one.
        assert_eq!(r.acquire(Cycle(0)), Cycle(0));
        // A gap-sized request fits between the two.
        assert_eq!(r.acquire(Cycle(2000)), Cycle(2000));
        // But a request overlapping the future interval queues behind it.
        assert_eq!(r.acquire(Cycle(4995)), Cycle(5010));
    }

    #[test]
    fn backfill_respects_gap_size() {
        let mut r = Resource::new(10);
        r.acquire(Cycle(0)); // busy [0,10)
        r.acquire(Cycle(15)); // busy [15,25)
                              // A 10-cycle job arriving at 8 does not fit in the 5-cycle gap.
        assert_eq!(r.acquire(Cycle(8)), Cycle(25));
        // But one arriving at 25+ starts immediately after.
        assert_eq!(r.acquire(Cycle(40)), Cycle(40));
    }

    #[test]
    fn acquire_for_custom_occupancy() {
        let mut r = Resource::new(10);
        assert_eq!(r.acquire_for(Cycle(0), Duration(3)), Cycle(0));
        assert_eq!(r.next_free(), Cycle(3));
        assert_eq!(r.busy_cycles(), Duration(3));
    }

    #[test]
    fn zero_occupancy_is_free() {
        let mut r = Resource::new(0);
        assert_eq!(r.acquire(Cycle(7)), Cycle(7));
        assert_eq!(r.acquire(Cycle(7)), Cycle(7));
        assert_eq!(r.busy_cycles(), Duration::ZERO);
    }

    #[test]
    fn interval_pruning_bounds_memory() {
        let mut r = Resource::new(1);
        for i in 0..10_000u64 {
            // Disjoint intervals so nothing merges.
            r.acquire(Cycle(i * 10));
        }
        assert_eq!(r.requests(), 10_000);
        assert!(r.next_free() > Cycle(99_000));
    }

    #[test]
    fn reset_clears_timeline() {
        let mut r = Resource::new(10);
        r.acquire(Cycle(0));
        r.reset();
        assert_eq!(r.next_free(), Cycle::ZERO);
        assert_eq!(r.requests(), 0);
        assert_eq!(r.occupancy(), Duration(10));
    }

    #[test]
    fn banks_are_independent() {
        let mut b = BankedResource::new(2, 50);
        assert_eq!(b.acquire(Cycle(0), 0), Cycle(0));
        assert_eq!(b.acquire(Cycle(0), 1), Cycle(0));
        assert_eq!(b.acquire(Cycle(0), 2), Cycle(50)); // bank 0 again
        assert_eq!(b.requests(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = BankedResource::new(0, 1);
    }
}
