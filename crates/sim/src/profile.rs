//! Scoped host-time profiler: where does the *simulator's* wall-clock
//! time go?
//!
//! The tracing module ([`crate::trace`]) attributes *simulated* cycles
//! to pipeline stages; this module attributes *host* nanoseconds to
//! simulator phases so perf work can be steered by data instead of
//! guesswork. It follows the same zero-overhead-when-off contract as
//! [`crate::FaultInjector`] and [`crate::Tracer`]:
//!
//! * disabled (the default), [`span`] is one relaxed atomic load and a
//!   branch — no allocation, no thread-local touch, no clock read;
//! * the profiler only ever reads the host clock
//!   ([`std::time::Instant`]), never the simulated clock, so enabling
//!   it cannot perturb simulated-cycle results *by construction* —
//!   a differential test in the integration suite pins this anyway.
//!
//! # Model
//!
//! A [`span`] opens an RAII scope for a fixed [`PhaseId`]; dropping it
//! records elapsed host time into a per-thread accumulator. Spans nest:
//! each phase accumulates *total* time (span open to close) and *self*
//! time (total minus time spent in child spans), and every distinct
//! call path (e.g. `fastpath-retire;tlb`) keeps its own self-time so
//! the report can be exported as a folded stack loadable by
//! `inferno-flamegraph` or [speedscope](https://speedscope.app).
//!
//! Per-thread accumulators flush into a process-global report when a
//! thread exits (covering the scoped workers of
//! [`crate::scoped_map_mut`]), periodically while the span stack is
//! empty, and explicitly from [`take_report`]. The global state means
//! one profiled run at a time: callers should [`take_report`] (or
//! [`reset`]) between runs, and only after any worker threads joined.
//!
//! # Examples
//!
//! ```
//! use fam_sim::profile::{self, PhaseId};
//!
//! profile::set_enabled(true);
//! {
//!     let _outer = profile::span(PhaseId::SchedDispatch);
//!     let _inner = profile::span(PhaseId::Tlb);
//! }
//! profile::set_enabled(false);
//! let report = profile::take_report();
//! assert_eq!(report.phase(PhaseId::Tlb).calls, 1);
//! assert!(report.to_folded().contains("sched-dispatch;tlb"));
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The fixed set of simulator phases host time is attributed to.
///
/// One variant per hot region of the engine and per component model;
/// the names (see [`PhaseId::name`]) are the frame labels in the
/// folded-stack export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhaseId {
    /// Workload batch generation (`RefBatch::refill`).
    BatchGen,
    /// Fast-path classification probes (is this ref provably node-local?).
    FastpathClassify,
    /// Fast-path batched retirement (`node_local_phase` from the fused engine).
    FastpathRetire,
    /// Event-queue scheduler pop + re-key bookkeeping.
    SchedPop,
    /// Full per-reference dispatch through the exact scheduler (`sim_ref`).
    SchedDispatch,
    /// TLB hierarchy lookups.
    Tlb,
    /// Cache hierarchy (L1/L2/LLC) accesses.
    CacheHierarchy,
    /// System Translation Unit verify / system-table walks.
    Stu,
    /// Page-table walks (walker planning + replay).
    PageWalk,
    /// Fabric traversals.
    Fabric,
    /// NVM module accesses.
    Nvm,
    /// Parallel engine: concurrent node-local phase (worker threads).
    ParallelLocal,
    /// Parallel engine: sequential commit phase.
    ParallelCommit,
    /// Broker quarantine + page evacuation after a permanent fault.
    Evacuation,
    /// System-wide translation shootdown walk.
    Shootdown,
    /// Sharded engine: sequential per-epoch admission scan (grant and
    /// barrier computation over staged references).
    ShardScan,
    /// Sharded engine: FAM references retired inside a shard against
    /// granted fabric-port/NVM-module resources.
    ShardFam,
    /// Streamed trace-replay chunk refill + decode (`TraceReader`).
    ReplayDecode,
}

impl PhaseId {
    /// Every phase, in declaration order (index order).
    pub const ALL: [PhaseId; PhaseId::COUNT] = [
        PhaseId::BatchGen,
        PhaseId::FastpathClassify,
        PhaseId::FastpathRetire,
        PhaseId::SchedPop,
        PhaseId::SchedDispatch,
        PhaseId::Tlb,
        PhaseId::CacheHierarchy,
        PhaseId::Stu,
        PhaseId::PageWalk,
        PhaseId::Fabric,
        PhaseId::Nvm,
        PhaseId::ParallelLocal,
        PhaseId::ParallelCommit,
        PhaseId::Evacuation,
        PhaseId::Shootdown,
        PhaseId::ShardScan,
        PhaseId::ShardFam,
        PhaseId::ReplayDecode,
    ];

    /// Number of phases.
    pub const COUNT: usize = 18;

    /// Dense index in `[0, COUNT)`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable kebab-case name used in reports and folded stacks.
    pub fn name(self) -> &'static str {
        match self {
            PhaseId::BatchGen => "batch-gen",
            PhaseId::FastpathClassify => "fastpath-classify",
            PhaseId::FastpathRetire => "fastpath-retire",
            PhaseId::SchedPop => "sched-pop",
            PhaseId::SchedDispatch => "sched-dispatch",
            PhaseId::Tlb => "tlb",
            PhaseId::CacheHierarchy => "cache-hierarchy",
            PhaseId::Stu => "stu",
            PhaseId::PageWalk => "page-walk",
            PhaseId::Fabric => "fabric",
            PhaseId::Nvm => "nvm",
            PhaseId::ParallelLocal => "parallel-local",
            PhaseId::ParallelCommit => "parallel-commit",
            PhaseId::Evacuation => "evacuation",
            PhaseId::Shootdown => "shootdown",
            PhaseId::ShardScan => "shard-scan",
            PhaseId::ShardFam => "shard-fam",
            PhaseId::ReplayDecode => "replay-decode",
        }
    }
}

/// Accumulated host time for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of spans closed for this phase.
    pub calls: u64,
    /// Total host nanoseconds, span open to close (includes children).
    pub total_ns: u64,
    /// Host nanoseconds minus time spent in nested child spans.
    pub self_ns: u64,
}

impl PhaseStat {
    const ZERO: PhaseStat = PhaseStat {
        calls: 0,
        total_ns: 0,
        self_ns: 0,
    };

    fn merge(&mut self, other: &PhaseStat) {
        self.calls = self.calls.saturating_add(other.calls);
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.self_ns = self.self_ns.saturating_add(other.self_ns);
    }
}

/// Self-time for one distinct call path (encoded as a string of 5-bit
/// phase codes, root in the most significant populated group).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PathStat {
    calls: u64,
    self_ns: u64,
}

/// Bits per phase code in a path key: codes run 1..=COUNT (0 marks the
/// empty path), so 5 bits hold up to 31 phases.
const PATH_BITS: u64 = 5;
const PATH_MASK: u64 = (1 << PATH_BITS) - 1;

/// Paths deeper than this stop extending the key and attribute to the
/// 12-phase prefix; real span nesting in the engine is ≤ 4 deep.
const MAX_DEPTH: usize = 12;

/// Span drops between opportunistic flushes of an empty-stack thread
/// accumulator into the global report (bounds staleness of long-lived
/// pool threads without taking a lock per span).
const FLUSH_EVERY: u32 = 4096;

static ENABLED: AtomicBool = AtomicBool::new(false);

static GLOBAL: Mutex<ProfileReport> = Mutex::new(ProfileReport::new());

/// Is the profiler currently enabled?
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables the profiler process-wide.
///
/// Spans opened while enabled record on close even if the profiler is
/// disabled in between, so toggling mid-run cannot unbalance the span
/// stack.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// An RAII guard for one timed phase scope; created by [`span`].
///
/// Dropping the guard records elapsed host time. When the profiler is
/// disabled the guard is inert and drop is a branch on a `None`.
#[derive(Debug)]
#[must_use = "a span measures the scope it is alive in; binding it to `_` drops it immediately"]
pub struct Span {
    phase: PhaseId,
    start: Option<Instant>,
}

/// Opens a timed scope for `phase`.
///
/// This is the single hot-path entry point: when the profiler is off
/// it is one relaxed atomic load and a branch.
#[inline(always)]
pub fn span(phase: PhaseId) -> Span {
    if !is_enabled() {
        return Span { phase, start: None };
    }
    enter(phase)
}

#[cold]
#[inline(never)]
fn enter(phase: PhaseId) -> Span {
    let _ = TLS.try_with(|t| t.borrow_mut().enter(phase));
    Span {
        phase,
        start: Some(Instant::now()),
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            exit(self.phase, start);
        }
    }
}

/// The enabled half of [`Span`]'s drop, kept out of line so a
/// disabled span's drop site compiles to a discriminant test and a
/// never-taken call — not an inlined copy of the TLS machinery at
/// every instrumentation point.
#[cold]
#[inline(never)]
fn exit(phase: PhaseId, start: Instant) {
    let elapsed = start.elapsed().as_nanos() as u64;
    let _ = TLS.try_with(|t| t.borrow_mut().exit(phase, elapsed));
}

/// Flushes the calling thread's accumulator into the global report.
///
/// The scoped-map helpers in this crate call this at the end of every
/// worker closure — `std::thread::scope` unblocks when closures
/// return, *before* thread-local destructors run, so the destructor
/// flush alone would race [`take_report`]. Custom worker threads that
/// record spans should do the same before signalling completion.
pub fn flush_thread() {
    let _ = TLS.try_with(|t| t.borrow_mut().flush());
}

/// Takes the accumulated report, resetting the profiler to empty.
///
/// Flushes the calling thread's accumulator first; call this only
/// after any profiled worker threads have finished (the pool helpers
/// flush workers deterministically via [`flush_thread`]).
pub fn take_report() -> ProfileReport {
    flush_thread();
    let mut global = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    std::mem::take(&mut *global)
}

/// Discards any accumulated profile data.
pub fn reset() {
    let _ = take_report();
}

struct Frame {
    phase: PhaseId,
    child_ns: u64,
    path: u64,
}

struct ThreadProfile {
    stack: Vec<Frame>,
    phases: [PhaseStat; PhaseId::COUNT],
    paths: BTreeMap<u64, PathStat>,
    drops_since_flush: u32,
}

thread_local! {
    static TLS: RefCell<ThreadProfile> = RefCell::new(ThreadProfile::new());
}

impl ThreadProfile {
    fn new() -> ThreadProfile {
        ThreadProfile {
            stack: Vec::with_capacity(MAX_DEPTH),
            phases: [PhaseStat::ZERO; PhaseId::COUNT],
            paths: BTreeMap::new(),
            drops_since_flush: 0,
        }
    }

    fn enter(&mut self, phase: PhaseId) {
        let parent = self.stack.last().map(|f| f.path).unwrap_or(0);
        let path = if self.stack.len() >= MAX_DEPTH {
            parent
        } else {
            (parent << PATH_BITS) | (phase.index() as u64 + 1)
        };
        self.stack.push(Frame {
            phase,
            child_ns: 0,
            path,
        });
    }

    fn exit(&mut self, phase: PhaseId, elapsed_ns: u64) {
        let frame = match self.stack.pop() {
            Some(f) => f,
            // A span opened before the profiler was enabled (inert) can
            // surround one opened after; never underflow the stack.
            None => return,
        };
        debug_assert_eq!(frame.phase, phase, "span drops must nest LIFO");
        let self_ns = elapsed_ns.saturating_sub(frame.child_ns);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(elapsed_ns);
        }
        let stat = &mut self.phases[phase.index()];
        stat.calls += 1;
        stat.total_ns = stat.total_ns.saturating_add(elapsed_ns);
        stat.self_ns = stat.self_ns.saturating_add(self_ns);
        let path = self.paths.entry(frame.path).or_default();
        path.calls += 1;
        path.self_ns = path.self_ns.saturating_add(self_ns);
        self.drops_since_flush += 1;
        if self.stack.is_empty() && self.drops_since_flush >= FLUSH_EVERY {
            self.flush();
        }
    }

    fn flush(&mut self) {
        self.drops_since_flush = 0;
        if self.phases.iter().all(|s| s.calls == 0) {
            return;
        }
        let shard = ProfileReport {
            phases: std::mem::replace(&mut self.phases, [PhaseStat::ZERO; PhaseId::COUNT]),
            paths: std::mem::take(&mut self.paths),
        };
        let mut global = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        global.merge(&shard);
    }
}

impl Drop for ThreadProfile {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A merged host-time profile: per-phase totals plus per-call-path
/// self-times.
///
/// Attached to the run report as a diagnostic excluded from equality
/// (host time is nondeterministic by nature) and exportable as a
/// folded stack ([`ProfileReport::to_folded`]) or a plain-text table
/// ([`ProfileReport::top_table`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    phases: [PhaseStat; PhaseId::COUNT],
    paths: BTreeMap<u64, PathStat>,
}

impl ProfileReport {
    /// Creates an empty report.
    pub const fn new() -> ProfileReport {
        ProfileReport {
            phases: [PhaseStat::ZERO; PhaseId::COUNT],
            paths: BTreeMap::new(),
        }
    }

    /// True if no span was ever recorded into this report.
    pub fn is_empty(&self) -> bool {
        self.phases.iter().all(|s| s.calls == 0)
    }

    /// Accumulated stats for one phase.
    pub fn phase(&self, phase: PhaseId) -> PhaseStat {
        self.phases[phase.index()]
    }

    /// Total attributed host nanoseconds (sum of per-phase self time;
    /// self times partition wall time, so nested spans are not double
    /// counted).
    pub fn total_self_ns(&self) -> u64 {
        self.phases
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.self_ns))
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &ProfileReport) {
        for (mine, theirs) in self.phases.iter_mut().zip(&other.phases) {
            mine.merge(theirs);
        }
        for (&path, stat) in &other.paths {
            let entry = self.paths.entry(path).or_default();
            entry.calls = entry.calls.saturating_add(stat.calls);
            entry.self_ns = entry.self_ns.saturating_add(stat.self_ns);
        }
    }

    fn decode_path(mut key: u64) -> Vec<PhaseId> {
        let mut rev = Vec::new();
        while key != 0 {
            let code = (key & PATH_MASK) as usize;
            if (1..=PhaseId::COUNT).contains(&code) {
                rev.push(PhaseId::ALL[code - 1]);
            }
            key >>= PATH_BITS;
        }
        rev.reverse();
        rev
    }

    /// Renders the report in folded-stack format — one line per call
    /// path, `root;child;leaf <self_ns>` — directly loadable by
    /// `inferno-flamegraph` or <https://speedscope.app>.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for (&key, stat) in &self.paths {
            let names: Vec<&str> = Self::decode_path(key).iter().map(|p| p.name()).collect();
            if names.is_empty() {
                continue;
            }
            let _ = writeln!(out, "{} {}", names.join(";"), stat.self_ns);
        }
        out
    }

    /// Renders a plain-text table of the top `n` phases by self time.
    pub fn top_table(&self, n: usize) -> String {
        let mut rows: Vec<(PhaseId, PhaseStat)> = PhaseId::ALL
            .iter()
            .map(|&p| (p, self.phase(p)))
            .filter(|(_, s)| s.calls > 0)
            .collect();
        rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        let total = self.total_self_ns().max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18} {:>12} {:>12} {:>12} {:>7}",
            "phase", "calls", "total_ms", "self_ms", "self%"
        );
        for (phase, stat) in rows {
            let _ = writeln!(
                out,
                "{:<18} {:>12} {:>12.3} {:>12.3} {:>6.1}%",
                phase.name(),
                stat.calls,
                stat.total_ns as f64 / 1e6,
                stat.self_ns as f64 / 1e6,
                stat.self_ns as f64 * 100.0 / total as f64,
            );
        }
        out
    }
}

impl Default for ProfileReport {
    fn default() -> ProfileReport {
        ProfileReport::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is process-global; serialize tests that enable it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        {
            let _s = span(PhaseId::Tlb);
            let _t = span(PhaseId::Nvm);
        }
        let report = take_report();
        assert!(report.is_empty());
        assert_eq!(report.to_folded(), "");
    }

    #[test]
    fn nesting_attributes_self_and_total() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        {
            let _outer = span(PhaseId::SchedDispatch);
            for _ in 0..3 {
                let _inner = span(PhaseId::Tlb);
            }
        }
        set_enabled(false);
        let report = take_report();
        assert!(!report.is_empty());
        let outer = report.phase(PhaseId::SchedDispatch);
        let inner = report.phase(PhaseId::Tlb);
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 3);
        assert_eq!(inner.total_ns, inner.self_ns, "leaf has no children");
        assert!(
            outer.self_ns <= outer.total_ns,
            "self excludes child time: self={} total={}",
            outer.self_ns,
            outer.total_ns
        );
        assert!(outer.total_ns >= inner.total_ns);
        let folded = report.to_folded();
        assert!(folded.contains("sched-dispatch "), "root line: {folded}");
        assert!(
            folded.contains("sched-dispatch;tlb "),
            "path line: {folded}"
        );
        let table = report.top_table(10);
        assert!(table.contains("sched-dispatch"));
        assert!(table.contains("tlb"));
    }

    #[test]
    fn worker_threads_flush_before_completion() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        // Raw threads flush explicitly, as the pool helpers do: scope()
        // unblocks on closure return, before TLS destructors run.
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    {
                        let _s = span(PhaseId::ParallelLocal);
                    }
                    flush_thread();
                });
            }
        });
        set_enabled(false);
        let report = take_report();
        assert_eq!(report.phase(PhaseId::ParallelLocal).calls, 2);
    }

    #[test]
    fn scoped_map_workers_flush_automatically() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        let mut items = vec![1u64, 2, 3, 4];
        crate::scoped_map_mut(2, &mut items, |_, item| {
            let _s = span(PhaseId::ParallelLocal);
            *item += 1;
        });
        let squares = crate::scoped_map(2, 3, |i| {
            let _s = span(PhaseId::ParallelCommit);
            (i as u64 + 1) * (i as u64 + 1)
        });
        set_enabled(false);
        let report = take_report();
        assert_eq!(report.phase(PhaseId::ParallelLocal).calls, 4);
        assert_eq!(report.phase(PhaseId::ParallelCommit).calls, 3);
        assert_eq!(items, vec![2, 3, 4, 5]);
        assert_eq!(squares, vec![1, 4, 9]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ProfileReport::new();
        let mut shard = ProfileReport::new();
        shard.phases[PhaseId::Fabric.index()] = PhaseStat {
            calls: 2,
            total_ns: 10,
            self_ns: 10,
        };
        shard.paths.insert(
            PhaseId::Fabric.index() as u64 + 1,
            PathStat {
                calls: 2,
                self_ns: 10,
            },
        );
        a.merge(&shard);
        a.merge(&shard);
        assert_eq!(a.phase(PhaseId::Fabric).calls, 4);
        assert_eq!(a.total_self_ns(), 20);
        assert!(a.to_folded().starts_with("fabric 20"));
    }

    #[test]
    fn phase_roster_is_dense_and_named() {
        for (i, &p) in PhaseId::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(!p.name().is_empty());
            assert!(p.name().is_ascii());
        }
    }
}
