//! A fixed-capacity ring of sorted busy intervals.
//!
//! [`Resource`](crate::Resource) timelines live on the simulation's
//! hottest path: every fabric traversal, DRAM access and NVM bank
//! claim searches and mutates one. A general-purpose `VecDeque` pays
//! for its flexibility in indexing arithmetic and growth bookkeeping,
//! so the timeline is a bespoke power-of-two ring: index masking is a
//! single AND, dropping the oldest interval is O(1), and the binary
//! search is a tight loop over masked loads.

/// Retained interval capacity. Must be a power of two (indexing relies
/// on masking); older intervals beyond it are forgotten — treated as
/// free — which bounds memory for arbitrarily long runs.
pub const MAX_INTERVALS: usize = 256;

const MASK: usize = MAX_INTERVALS - 1;

/// Sorted, non-overlapping `(start, end)` busy intervals in a ring.
///
/// The backing buffer is allocated lazily on first use so idle
/// resources (of which a system has hundreds) stay pointer-sized.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    buf: Vec<(u64, u64)>,
    head: usize,
    len: usize,
}

impl Timeline {
    /// An empty timeline; allocates nothing until the first push.
    pub fn new() -> Timeline {
        Timeline {
            buf: Vec::new(),
            head: 0,
            len: 0,
        }
    }

    /// Number of retained intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no intervals are retained.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot(&self, i: usize) -> usize {
        (self.head + i) & MASK
    }

    /// The `i`-th oldest interval.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> (u64, u64) {
        debug_assert!(i < self.len);
        self.buf[self.slot(i)]
    }

    /// Overwrites the `i`-th oldest interval.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` (debug builds).
    #[inline]
    pub fn set(&mut self, i: usize, v: (u64, u64)) {
        debug_assert!(i < self.len);
        let s = self.slot(i);
        self.buf[s] = v;
    }

    /// The newest interval, if any.
    #[inline]
    pub fn back(&self) -> Option<(u64, u64)> {
        if self.len == 0 {
            None
        } else {
            Some(self.get(self.len - 1))
        }
    }

    /// Overwrites the newest interval.
    ///
    /// # Panics
    ///
    /// Panics if the timeline is empty.
    pub fn set_back(&mut self, v: (u64, u64)) {
        assert!(self.len > 0, "set_back on empty timeline");
        let i = self.len - 1;
        self.set(i, v);
    }

    fn ensure_buf(&mut self) {
        if self.buf.is_empty() {
            self.buf = vec![(0, 0); MAX_INTERVALS];
        }
    }

    /// Appends a newest interval, dropping the oldest when full.
    pub fn push_back(&mut self, v: (u64, u64)) {
        self.ensure_buf();
        if self.len == MAX_INTERVALS {
            self.head = (self.head + 1) & MASK;
            self.len -= 1;
        }
        let s = self.slot(self.len);
        self.buf[s] = v;
        self.len += 1;
    }

    /// Inserts `v` so it becomes the `at`-th oldest interval. When the
    /// timeline is full the oldest interval is dropped first; inserting
    /// at position 0 of a full timeline is a no-op (the new interval
    /// would itself be the oldest and is forgotten immediately).
    pub fn insert(&mut self, at: usize, v: (u64, u64)) {
        debug_assert!(at <= self.len);
        self.ensure_buf();
        let mut at = at;
        if self.len == MAX_INTERVALS {
            if at == 0 {
                return;
            }
            self.head = (self.head + 1) & MASK;
            self.len -= 1;
            at -= 1;
        }
        let mut i = self.len;
        while i > at {
            let v = self.buf[self.slot(i - 1)];
            let s = self.slot(i);
            self.buf[s] = v;
            i -= 1;
        }
        let s = self.slot(at);
        self.buf[s] = v;
        self.len += 1;
    }

    /// Removes the `at`-th oldest interval.
    ///
    /// # Panics
    ///
    /// Panics if `at >= len`.
    pub fn remove(&mut self, at: usize) {
        assert!(at < self.len, "remove out of range");
        for i in at..self.len - 1 {
            let v = self.buf[self.slot(i + 1)];
            let s = self.slot(i);
            self.buf[s] = v;
        }
        self.len -= 1;
    }

    /// Index of the first interval whose end is after `t` — the
    /// earliest interval that could constrain an arrival at `t`. Ends
    /// are strictly increasing across the sorted timeline, so this is
    /// a plain binary search.
    pub fn first_ending_after(&self, t: u64) -> usize {
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.buf[self.slot(mid)].1 <= t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Forgets every interval.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_in_order() {
        let mut t = Timeline::new();
        for i in 0..10u64 {
            t.push_back((i * 10, i * 10 + 5));
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.get(0), (0, 5));
        assert_eq!(t.back(), Some((90, 95)));
    }

    #[test]
    fn push_past_capacity_drops_oldest() {
        let mut t = Timeline::new();
        for i in 0..(MAX_INTERVALS as u64 + 3) {
            t.push_back((i, i + 1));
        }
        assert_eq!(t.len(), MAX_INTERVALS);
        assert_eq!(t.get(0), (3, 4));
    }

    #[test]
    fn insert_shifts_newer_intervals() {
        let mut t = Timeline::new();
        t.push_back((0, 1));
        t.push_back((10, 11));
        t.insert(1, (5, 6));
        assert_eq!(t.get(0), (0, 1));
        assert_eq!(t.get(1), (5, 6));
        assert_eq!(t.get(2), (10, 11));
    }

    #[test]
    fn insert_into_full_timeline_drops_oldest() {
        let mut t = Timeline::new();
        for i in 0..MAX_INTERVALS as u64 {
            t.push_back((i * 10, i * 10 + 1));
        }
        t.insert(5, (44, 45));
        assert_eq!(t.len(), MAX_INTERVALS);
        assert_eq!(t.get(0), (10, 11), "oldest was dropped");
        assert_eq!(t.get(4), (44, 45), "insert index shifted by the drop");
    }

    #[test]
    fn insert_at_front_of_full_timeline_is_forgotten() {
        let mut t = Timeline::new();
        for i in 1..=MAX_INTERVALS as u64 {
            t.push_back((i * 10, i * 10 + 1));
        }
        t.insert(0, (0, 1));
        assert_eq!(t.len(), MAX_INTERVALS);
        assert_eq!(t.get(0), (10, 11));
    }

    #[test]
    fn remove_closes_the_gap() {
        let mut t = Timeline::new();
        t.push_back((0, 1));
        t.push_back((2, 3));
        t.push_back((4, 5));
        t.remove(1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1), (4, 5));
    }

    #[test]
    fn binary_search_finds_first_ending_after() {
        let mut t = Timeline::new();
        for i in 0..20u64 {
            t.push_back((i * 10, i * 10 + 5));
        }
        assert_eq!(t.first_ending_after(0), 0);
        assert_eq!(t.first_ending_after(5), 1);
        assert_eq!(t.first_ending_after(57), 6);
        assert_eq!(t.first_ending_after(10_000), 20);
    }

    #[test]
    fn search_is_correct_across_the_ring_seam() {
        let mut t = Timeline::new();
        // Force wrap-around: overfill, then query.
        for i in 0..(MAX_INTERVALS as u64 * 2) {
            t.push_back((i * 10, i * 10 + 5));
        }
        let oldest = t.get(0);
        assert_eq!(t.first_ending_after(oldest.0), 0);
        let mid = t.get(MAX_INTERVALS / 2);
        assert_eq!(t.first_ending_after(mid.1), MAX_INTERVALS / 2 + 1);
    }

    #[test]
    fn clear_forgets_everything() {
        let mut t = Timeline::new();
        t.push_back((0, 1));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.back(), None);
    }
}
