//! A bounded work-queue thread pool for the sweep engines.
//!
//! The experiment harness fans a benchmark × scheme matrix out across
//! worker threads. Spawning one OS thread per job (the seed behaviour)
//! oversubscribes the host as soon as a sweep has more points than the
//! machine has cores — a 14-benchmark × 4-scheme matrix spawned 56
//! threads at once. This module provides the two std-only primitives
//! the harness uses instead:
//!
//! * [`ThreadPool`] — a fixed set of workers draining a shared job
//!   queue; jobs are `'static` closures and results travel back through
//!   whatever channel the submitter provides.
//! * [`scoped_map`] — a bounded parallel map over `0..n` for borrowed
//!   data, built on `std::thread::scope`, returning results in index
//!   order regardless of completion order (determinism is preserved by
//!   construction).
//!
//! Worker-count policy lives in [`default_jobs`]: the `DEACT_JOBS`
//! environment variable wins, otherwise `available_parallelism`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

/// A fixed-size pool of worker threads draining a shared job queue.
///
/// Dropping the pool signals shutdown and joins every worker; jobs
/// already queued still run to completion first, so a submitter that
/// drops the pool after its result channel closes never loses work.
///
/// # Examples
///
/// ```
/// use fam_sim::ThreadPool;
/// use std::sync::mpsc;
///
/// let pool = ThreadPool::new(2);
/// let (tx, rx) = mpsc::channel();
/// for i in 0..8u64 {
///     let tx = tx.clone();
///     pool.execute(move || tx.send(i * i).unwrap());
/// }
/// drop(tx);
/// let mut squares: Vec<u64> = rx.iter().collect();
/// squares.sort_unstable();
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> ThreadPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut state = shared.state.lock().expect("pool state poisoned");
                        loop {
                            if let Some(job) = state.jobs.pop_front() {
                                break job;
                            }
                            if state.shutdown {
                                return;
                            }
                            state = shared.work_ready.wait(state).expect("pool state poisoned");
                        }
                    };
                    job();
                    // Long-lived workers publish any profiler spans the
                    // job recorded as soon as it completes.
                    if crate::profile::is_enabled() {
                        crate::profile::flush_thread();
                    }
                })
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job; some worker will run it.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        state.jobs.push_back(Box::new(job));
        drop(state);
        self.shared.work_ready.notify_one();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared
            .state
            .lock()
            .expect("pool state poisoned")
            .shutdown = true;
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            // A panicked job already unwound its worker; joining the
            // remains must not hide the submitter's own error handling.
            let _ = worker.join();
        }
    }
}

/// Worker count: `DEACT_JOBS` if set and positive, otherwise the host's
/// available parallelism.
pub fn default_jobs() -> usize {
    std::env::var("DEACT_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Intra-run simulation threads from `DEACT_SIM_THREADS`, defaulting
/// to 1 (the sequential engine). Like `DEACT_JOBS` this is a harness
/// knob, not a configuration field: the parallel engine is
/// bit-identical at any thread count, so the variable can change how
/// fast a run executes but never what it reports.
pub fn sim_threads_from_env() -> usize {
    std::env::var("DEACT_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Caps the intra-run `--sim-threads` level so `jobs × sim_threads`
/// fits the host's worker budget ([`default_jobs`]): with several runs
/// already in flight, oversubscribing the intra-run workers only adds
/// handoff latency, and reports are identical at any thread count.
///
/// When the cap actually bites, a note goes to stderr **once per
/// process** — sweeps apply the cap for every job they launch, and
/// repeating the identical warning per job buried the real output.
pub fn cap_sim_threads(jobs: usize, sim_threads: usize) -> usize {
    let host = default_jobs();
    let capped = sim_threads.min((host / jobs.max(1)).max(1));
    if capped < sim_threads {
        static NOTE: std::sync::Once = std::sync::Once::new();
        NOTE.call_once(|| {
            eprintln!(
                "note: capping --sim-threads {sim_threads} -> {capped} so --jobs {jobs} \
                 x sim-threads fits the host's {host} available threads (reports are \
                 identical either way)"
            );
        });
    }
    capped
}

/// Runs `f(0..n)` across at most `threads` scoped workers and returns
/// the results in index order.
///
/// Unlike [`ThreadPool`], `f` may borrow from the caller's stack: the
/// workers live inside a `std::thread::scope`. Work is handed out by an
/// atomic cursor, so the mapping of items to threads is dynamic but the
/// returned vector is always `[f(0), f(1), …, f(n-1)]` — parallelism
/// never changes the output.
///
/// # Panics
///
/// Propagates the first worker panic.
///
/// # Examples
///
/// ```
/// use fam_sim::scoped_map;
///
/// let inputs = vec![1u64, 2, 3, 4];
/// let doubled = scoped_map(2, inputs.len(), |i| inputs[i] * 2);
/// assert_eq!(doubled, vec![2, 4, 6, 8]);
/// ```
pub fn scoped_map<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(i);
                    *results[i].lock().expect("result slot poisoned") = Some(value);
                }
                // scope() unblocks on closure return, before TLS
                // destructors run — flush profiler spans explicitly so
                // the caller's take_report sees this worker's data.
                if crate::profile::is_enabled() {
                    crate::profile::flush_thread();
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was produced")
        })
        .collect()
}

/// Runs `f(i, &mut items[i])` across at most `threads` scoped workers
/// and returns the results in index order.
///
/// The mutable-borrow counterpart of [`scoped_map`]: each item is
/// visited exactly once, by exactly one worker, so handing each worker
/// a disjoint `&mut` is sound — the slice is split up front with
/// `split_first_mut`-style decomposition into per-item cells. Work is
/// still handed out by an atomic cursor (dynamic load balancing), and
/// the output vector is always `[f(0, ..), f(1, ..), …]` regardless of
/// which thread ran which item.
///
/// With `threads <= 1` (or a single item) the map runs serially on the
/// caller's thread with no synchronisation at all.
///
/// # Panics
///
/// Propagates the first worker panic.
///
/// # Examples
///
/// ```
/// use fam_sim::scoped_map_mut;
///
/// let mut counters = vec![10u64, 20, 30];
/// let before = scoped_map_mut(2, &mut counters, |i, c| {
///     let b = *c;
///     *c += i as u64;
///     b
/// });
/// assert_eq!(before, vec![10, 20, 30]);
/// assert_eq!(counters, vec![10, 21, 32]);
/// ```
pub fn scoped_map_mut<A, T, F>(threads: usize, items: &mut [A], f: F) -> Vec<T>
where
    A: Send,
    T: Send,
    F: Fn(usize, &mut A) -> T + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return items.iter_mut().enumerate().map(|(i, a)| f(i, a)).collect();
    }
    let next = AtomicUsize::new(0);
    // One cell per item: each holds the item's exclusive borrow until
    // the worker that wins index `i` takes it.
    let cells: Vec<Mutex<Option<&mut A>>> = items.iter_mut().map(|a| Mutex::new(Some(a))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = cells[i]
                        .lock()
                        .expect("item cell poisoned")
                        .take()
                        .expect("each index is claimed once");
                    let value = f(i, item);
                    *results[i].lock().expect("result slot poisoned") = Some(value);
                }
                // As in scoped_map: publish profiler spans before the
                // scope's completion signal, not in a TLS destructor.
                if crate::profile::is_enabled() {
                    crate::profile::flush_thread();
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was produced")
        })
        .collect()
}

/// A bounded free list recycling heap-backed scratch values (walk-plan
/// buffers, packet frames) across uses, so steady-state simulation
/// performs no per-operation allocation.
///
/// `get` hands out a recycled value or a fresh [`Default`] one; `put`
/// returns a value for reuse. The list is deliberately dumb: values are
/// returned as-is (callers reset them — e.g. `Vec::clear` — at the use
/// site, where the invariant is visible), and a value not `put` back is
/// simply dropped, so early returns and error paths need no cleanup.
///
/// # Examples
///
/// ```
/// use fam_sim::FreeList;
///
/// let mut pool: FreeList<Vec<u64>> = FreeList::new();
/// let mut buf = pool.get();
/// buf.extend([1, 2, 3]);
/// let cap = buf.capacity();
/// pool.put(buf);
/// let reused = pool.get();
/// assert_eq!(reused.capacity(), cap); // allocation recycled
/// ```
#[derive(Debug)]
pub struct FreeList<T> {
    items: Vec<T>,
}

/// Retention cap: beyond this the list drops returned values instead
/// of hoarding them (a burst of concurrent scratch buffers should not
/// pin memory forever).
const FREE_LIST_CAP: usize = 64;

impl<T: Default> FreeList<T> {
    /// Creates an empty free list.
    pub fn new() -> FreeList<T> {
        FreeList { items: Vec::new() }
    }

    /// A recycled value, or `T::default()` when the list is empty.
    pub fn get(&mut self) -> T {
        self.items.pop().unwrap_or_default()
    }

    /// Returns a value to the list for reuse (dropped if the list is
    /// at capacity).
    pub fn put(&mut self, item: T) {
        if self.items.len() < FREE_LIST_CAP {
            self.items.push(item);
        }
    }

    /// Values currently held for reuse.
    pub fn held(&self) -> usize {
        self.items.len()
    }
}

impl<T: Default> Default for FreeList<T> {
    fn default() -> FreeList<T> {
        FreeList::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn free_list_recycles_capacity() {
        let mut pool: FreeList<Vec<u8>> = FreeList::new();
        let mut v = pool.get();
        v.reserve(1024);
        let cap = v.capacity();
        pool.put(v);
        assert_eq!(pool.held(), 1);
        assert!(pool.get().capacity() >= cap);
        assert_eq!(pool.held(), 0);
    }

    #[test]
    fn free_list_bounds_retention() {
        let mut pool: FreeList<Vec<u8>> = FreeList::new();
        for _ in 0..(FREE_LIST_CAP + 10) {
            pool.put(Vec::new());
        }
        assert_eq!(pool.held(), FREE_LIST_CAP);
    }

    #[test]
    fn pool_runs_all_jobs() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.threads(), 3);
        let (tx, rx) = mpsc::channel();
        for i in 0..50u64 {
            let tx = tx.clone();
            pool.execute(move || tx.send(i).unwrap());
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pool_drop_drains_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(1);
            for _ in 0..20 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop joins
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let pool = ThreadPool::new(2);
        let (tx, rx) = mpsc::channel();
        pool.execute(|| panic!("job panic"));
        for i in 0..10u64 {
            let tx = tx.clone();
            pool.execute(move || tx.send(i).unwrap());
        }
        drop(tx);
        // The panicked worker is gone, but the surviving worker drains
        // the queue; the submitter sees a short result set only if jobs
        // were lost — which they must not be here.
        let got: Vec<u64> = rx.iter().collect();
        assert_eq!(got.len(), 10);
    }

    #[test]
    fn pool_zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn scoped_map_orders_results_by_index() {
        for threads in [1, 2, 8, 64] {
            let out = scoped_map(threads, 100, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scoped_map_empty_input() {
        let out: Vec<u64> = scoped_map(4, 0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn scoped_map_borrows_caller_data() {
        let data = [String::from("a"), String::from("bb")];
        let lens = scoped_map(2, data.len(), |i| data[i].len());
        assert_eq!(lens, vec![1, 2]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn scoped_map_mut_mutates_each_item_once() {
        for threads in [1, 2, 8] {
            let mut items: Vec<u64> = (0..97).collect();
            let out = scoped_map_mut(threads, &mut items, |i, v| {
                *v += 1;
                i as u64 * 2
            });
            assert_eq!(out, (0..97).map(|i| i * 2).collect::<Vec<_>>());
            assert_eq!(items, (1..98).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scoped_map_mut_empty_input() {
        let mut items: Vec<u64> = Vec::new();
        let out: Vec<()> = scoped_map_mut(4, &mut items, |_, _| unreachable!());
        assert!(out.is_empty());
    }
}
