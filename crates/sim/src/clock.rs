//! Cycle-granular simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute point in simulated time, measured in core clock cycles.
///
/// `Cycle` is an absolute timestamp; [`Duration`] is a span. The two are
/// kept distinct so that `Cycle + Cycle` (a meaningless operation) does
/// not type-check, mirroring `std::time::{Instant, Duration}`.
///
/// # Examples
///
/// ```
/// use fam_sim::{Cycle, Duration};
///
/// let t = Cycle(100) + Duration(20);
/// assert_eq!(t, Cycle(120));
/// assert_eq!(t - Cycle(100), Duration(20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

/// A span of simulated time, measured in core clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Cycle {
    /// The beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the later of two timestamps.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two timestamps.
    #[must_use]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// The span from `earlier` to `self`, saturating to zero if
    /// `earlier` is actually later.
    #[must_use]
    pub fn saturating_since(self, earlier: Cycle) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// A zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Multiplies the span by an integer factor.
    #[must_use]
    pub fn times(self, n: u64) -> Duration {
        Duration(self.0 * n)
    }
}

impl Add<Duration> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Duration) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Cycle {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = Duration;
    fn sub(self, rhs: Cycle) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// A clock frequency, used to convert wall-clock latencies (the paper
/// specifies memory and fabric latencies in nanoseconds) into cycles.
///
/// # Examples
///
/// ```
/// use fam_sim::{Duration, Frequency};
///
/// let f = Frequency::ghz(2);
/// assert_eq!(f.ns_to_cycles(500), Duration(1000)); // 500 ns at 2 GHz
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frequency {
    mhz: u64,
}

impl Frequency {
    /// Creates a frequency from a megahertz value.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    pub fn mhz(mhz: u64) -> Frequency {
        assert!(mhz > 0, "frequency must be non-zero");
        Frequency { mhz }
    }

    /// Creates a frequency from a gigahertz value.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is zero.
    pub fn ghz(ghz: u64) -> Frequency {
        Frequency::mhz(ghz * 1000)
    }

    /// The frequency in megahertz.
    pub fn as_mhz(self) -> u64 {
        self.mhz
    }

    /// Converts a nanosecond latency to cycles, rounding up so that a
    /// non-zero latency is never lost to truncation.
    pub fn ns_to_cycles(self, ns: u64) -> Duration {
        Duration((ns * self.mhz).div_ceil(1000))
    }

    /// Converts a picosecond latency to cycles, rounding up.
    pub fn ps_to_cycles(self, ps: u64) -> Duration {
        Duration((ps * self.mhz).div_ceil(1_000_000))
    }

    /// Converts a cycle count back to nanoseconds (rounded down).
    pub fn cycles_to_ns(self, d: Duration) -> u64 {
        d.0 * 1000 / self.mhz
    }
}

impl Default for Frequency {
    /// The paper's core frequency: 2 GHz (Table II).
    fn default() -> Frequency {
        Frequency::ghz(2)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.mhz.is_multiple_of(1000) {
            write!(f, "{} GHz", self.mhz / 1000)
        } else {
            write!(f, "{} MHz", self.mhz)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_duration_arithmetic() {
        let t = Cycle(10) + Duration(5);
        assert_eq!(t, Cycle(15));
        assert_eq!(t - Cycle(10), Duration(5));
        let mut u = Cycle(0);
        u += Duration(3);
        assert_eq!(u, Cycle(3));
    }

    #[test]
    fn cycle_max_min() {
        assert_eq!(Cycle(3).max(Cycle(7)), Cycle(7));
        assert_eq!(Cycle(3).min(Cycle(7)), Cycle(3));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Cycle(5).saturating_since(Cycle(9)), Duration::ZERO);
        assert_eq!(Cycle(9).saturating_since(Cycle(5)), Duration(4));
    }

    #[test]
    fn duration_sum_and_times() {
        let total: Duration = [Duration(1), Duration(2), Duration(3)].into_iter().sum();
        assert_eq!(total, Duration(6));
        assert_eq!(Duration(6).times(2), Duration(12));
    }

    #[test]
    fn frequency_conversions_round_up() {
        let f = Frequency::ghz(2);
        assert_eq!(f.ns_to_cycles(500), Duration(1000));
        assert_eq!(f.ns_to_cycles(1), Duration(2));
        assert_eq!(f.cycles_to_ns(Duration(1000)), 500);
        // A 0.3 ns event at 1 GHz still costs one cycle.
        let g = Frequency::ghz(1);
        assert_eq!(g.ps_to_cycles(300), Duration(1));
        assert_eq!(g.ps_to_cycles(0), Duration(0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_rejected() {
        let _ = Frequency::mhz(0);
    }

    #[test]
    fn default_frequency_is_paper_config() {
        assert_eq!(Frequency::default(), Frequency::ghz(2));
        assert_eq!(Frequency::default().to_string(), "2 GHz");
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(Cycle(7).to_string(), "cycle 7");
        assert_eq!(Duration(7).to_string(), "7 cycles");
        assert_eq!(Frequency::mhz(1500).to_string(), "1500 MHz");
    }
}
