//! A deterministic timestamped event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A priority queue of `(Cycle, T)` events ordered by time, with FIFO
/// ordering among events scheduled for the same cycle.
///
/// Determinism matters: the whole reproduction is seeded, and a heap
/// that broke ties arbitrarily would make runs non-reproducible. Each
/// pushed event receives a monotonically increasing sequence number
/// that breaks timestamp ties.
///
/// # Examples
///
/// ```
/// use fam_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(5), "b");
/// q.push(Cycle(1), "a");
/// q.push(Cycle(5), "c");
/// assert_eq!(q.pop(), Some((Cycle(1), "a")));
/// assert_eq!(q.pop(), Some((Cycle(5), "b"))); // FIFO among ties
/// assert_eq!(q.pop(), Some((Cycle(5), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    at: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event (and
        // lowest sequence number among ties) surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: Cycle, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> EventQueue<T> {
        EventQueue::new()
    }
}

impl<T> Extend<(Cycle, T)> for EventQueue<T> {
    fn extend<I: IntoIterator<Item = (Cycle, T)>>(&mut self, iter: I) {
        for (at, payload) in iter {
            self.push(at, payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), 3);
        q.push(Cycle(10), 1);
        q.push(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(7), i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle(9), ());
        q.push(Cycle(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle(4)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Cycle(9)));
    }

    #[test]
    fn extend_pushes_all() {
        let mut q = EventQueue::new();
        q.extend([(Cycle(2), 'b'), (Cycle(1), 'a')]);
        assert_eq!(q.pop(), Some((Cycle(1), 'a')));
        assert_eq!(q.pop(), Some((Cycle(2), 'b')));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), "e1");
        q.push(Cycle(3), "e2");
        assert_eq!(q.pop(), Some((Cycle(3), "e2")));
        q.push(Cycle(4), "e3");
        q.push(Cycle(5), "e4");
        assert_eq!(q.pop(), Some((Cycle(4), "e3")));
        assert_eq!(q.pop(), Some((Cycle(5), "e1")));
        assert_eq!(q.pop(), Some((Cycle(5), "e4")));
    }
}
