//! A unified, named metrics registry.
//!
//! Components accumulate into [`crate::stats`] types scattered across
//! the system model; this module gives them one flat, **named**
//! namespace (`node0/tlb`, `nvm2/reads`, `fabric/traversals`, …) so
//! tooling can snapshot a run's metrics, diff two snapshots, merge
//! shards, and — crucially — run cross-metric *conservation audits*
//! ("every reference generated was retired", "FAM traffic totals match
//! the per-module sums") without knowing where each number lives.
//!
//! Names are plain strings ordered lexicographically (a `BTreeMap`),
//! so iteration, [`fmt::Display`] and diffs are deterministic.
//!
//! # Examples
//!
//! ```
//! use fam_sim::registry::Registry;
//!
//! let mut before = Registry::new();
//! before.counter("fabric/traversals").add(10);
//! let mut after = before.snapshot();
//! after.counter("fabric/traversals").add(5);
//! let delta = after.diff(&before);
//! assert_eq!(delta.counter_value("fabric/traversals"), Some(5));
//! ```

use crate::stats::{Counter, Histogram, Ratio};
use std::collections::BTreeMap;
use std::fmt;

/// One named metric: a counter, a hit/miss ratio, or a histogram.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically increasing event count.
    Counter(Counter),
    /// A hit/miss ratio.
    Ratio(Ratio),
    /// A sample distribution.
    Histogram(Histogram),
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::Counter(c) => write!(f, "{c}"),
            Metric::Ratio(r) => write!(f, "{r}"),
            Metric::Histogram(h) => write!(f, "{h}"),
        }
    }
}

/// A flat name → metric map with snapshot / diff / merge.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    metrics: BTreeMap<String, Metric>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it zeroed
    /// on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different metric
    /// type — a name has exactly one type for the life of a registry.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", kind(other)),
        }
    }

    /// Returns the ratio registered under `name`, creating it empty on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different type.
    pub fn ratio(&mut self, name: &str) -> &mut Ratio {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Ratio(Ratio::new()))
        {
            Metric::Ratio(r) => r,
            other => panic!("metric `{name}` is a {}, not a ratio", kind(other)),
        }
    }

    /// Returns the histogram registered under `name`, creating it
    /// empty on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different type.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", kind(other)),
        }
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Convenience: the value of a counter, if `name` is a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(Metric::Counter(c)) => Some(c.value()),
            _ => None,
        }
    }

    /// Convenience: the registered ratio, if `name` is a ratio.
    pub fn ratio_value(&self, name: &str) -> Option<Ratio> {
        match self.metrics.get(name) {
            Some(Metric::Ratio(r)) => Some(*r),
            _ => None,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Registry {
        self.clone()
    }

    /// Merges another registry into this one: counters add, ratios
    /// merge, histograms merge; names absent here are inserted.
    ///
    /// # Panics
    ///
    /// Panics (in debug) if a shared name has mismatched types; in
    /// release the other side's value is ignored.
    pub fn merge(&mut self, other: &Registry) {
        for (name, theirs) in &other.metrics {
            match self.metrics.get_mut(name) {
                None => {
                    self.metrics.insert(name.clone(), theirs.clone());
                }
                Some(mine) => match (mine, theirs) {
                    (Metric::Counter(a), Metric::Counter(b)) => a.add(b.value()),
                    (Metric::Ratio(a), Metric::Ratio(b)) => a.merge(*b),
                    (Metric::Histogram(a), Metric::Histogram(b)) => a.merge(b),
                    (mine, _) => {
                        debug_assert!(
                            false,
                            "metric `{name}`: cannot merge {} into {}",
                            kind(theirs),
                            kind(mine)
                        );
                    }
                },
            }
        }
    }

    /// Saturating difference `self - base`, name by name: the metrics
    /// accumulated *between* two snapshots of the same system.
    ///
    /// Names absent from `base` pass through unchanged; names absent
    /// from `self` (or type-mismatched) are dropped.
    pub fn diff(&self, base: &Registry) -> Registry {
        let mut out = Registry::new();
        for (name, mine) in &self.metrics {
            let metric = match (mine, base.metrics.get(name)) {
                (m, None) => m.clone(),
                (Metric::Counter(a), Some(Metric::Counter(b))) => {
                    Metric::Counter(Counter::from(a.value().saturating_sub(b.value())))
                }
                (Metric::Ratio(a), Some(Metric::Ratio(b))) => Metric::Ratio(Ratio::from_parts(
                    a.hits().saturating_sub(b.hits()),
                    a.misses().saturating_sub(b.misses()),
                )),
                (Metric::Histogram(a), Some(Metric::Histogram(b))) => {
                    Metric::Histogram(a.saturating_diff(b))
                }
                _ => continue,
            };
            out.metrics.insert(name.clone(), metric);
        }
        out
    }
}

fn kind(m: &Metric) -> &'static str {
    match m {
        Metric::Counter(_) => "counter",
        Metric::Ratio(_) => "ratio",
        Metric::Histogram(_) => "histogram",
    }
}

impl fmt::Display for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, metric) in &self.metrics {
            writeln!(f, "{name:<32} {metric}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_create_on_first_use() {
        let mut r = Registry::new();
        r.counter("a/events").add(3);
        r.counter("a/events").inc();
        r.ratio("a/hits").record(true);
        r.histogram("a/lat").record(100);
        assert_eq!(r.len(), 3);
        assert_eq!(r.counter_value("a/events"), Some(4));
        assert_eq!(r.counter_value("a/hits"), None, "type-checked lookup");
        assert_eq!(r.ratio_value("a/hits").unwrap().hits(), 1);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_mismatch_panics() {
        let mut r = Registry::new();
        r.ratio("x").record(true);
        r.counter("x");
    }

    #[test]
    fn snapshot_diff_isolates_interval() {
        let mut r = Registry::new();
        r.counter("c").add(10);
        r.ratio("r").record(true);
        r.histogram("h").record(5);
        let before = r.snapshot();
        r.counter("c").add(7);
        r.ratio("r").record(false);
        r.histogram("h").record(9);
        r.counter("new").add(1);
        let delta = r.diff(&before);
        assert_eq!(delta.counter_value("c"), Some(7));
        let ratio = delta.ratio_value("r").unwrap();
        assert_eq!((ratio.hits(), ratio.misses()), (0, 1));
        assert_eq!(delta.counter_value("new"), Some(1));
        match delta.get("h").unwrap() {
            Metric::Histogram(h) => {
                assert_eq!(h.count(), 1);
                assert_eq!(h.sum(), 9);
            }
            other => panic!("expected histogram, got {other}"),
        }
    }

    #[test]
    fn merge_folds_shards() {
        let mut a = Registry::new();
        a.counter("c").add(1);
        a.ratio("r").record(true);
        let mut b = Registry::new();
        b.counter("c").add(2);
        b.counter("only-b").add(9);
        b.histogram("h").record(4);
        a.merge(&b);
        assert_eq!(a.counter_value("c"), Some(3));
        assert_eq!(a.counter_value("only-b"), Some(9));
        assert!(matches!(a.get("h"), Some(Metric::Histogram(_))));
        assert_eq!(a.ratio_value("r").unwrap().hits(), 1);
    }

    #[test]
    fn display_is_deterministic_name_order() {
        let mut r = Registry::new();
        r.counter("z/last").add(1);
        r.counter("a/first").add(2);
        let text = r.to_string();
        let a = text.find("a/first").unwrap();
        let z = text.find("z/last").unwrap();
        assert!(a < z);
    }
}
