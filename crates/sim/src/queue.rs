//! An indexed min-priority queue for event-driven scheduling.
//!
//! The simulation driver keeps one entry per simulated core, keyed on
//! the cycle at which that core's next staged reference could start.
//! Between two consecutive references only a handful of cores change
//! key (the core that just executed, plus any whose predicted start was
//! invalidated by resource contention), so the driver needs a queue
//! that supports *re-keying an identified entry* — not just push/pop —
//! in O(log n). That is exactly what an indexed binary heap provides,
//! and it is what turns the per-reference scheduling cost from a full
//! O(n) rescan into O(log n) heap maintenance.
//!
//! Determinism contract: ties are broken by the [`Ord`] of the key
//! itself, so callers embed their tie-break in the key (the system
//! driver keys on `(ready_cycle, node, core)`, reproducing the
//! first-wins order of a linear scan over nodes and cores).

use std::cmp::Ordering;

/// An indexed binary min-heap over dense slot ids `0..capacity`.
///
/// Each slot holds at most one entry; entries are ordered by their key
/// and the smallest key pops first. Unlike `BinaryHeap`, an entry can
/// be re-keyed or removed *by slot id* in O(log n), which is what an
/// event-driven scheduler needs when a resource conflict invalidates a
/// previously predicted start time.
///
/// # Examples
///
/// ```
/// use fam_sim::IndexedMinHeap;
///
/// let mut q: IndexedMinHeap<(u64, usize)> = IndexedMinHeap::new(4);
/// q.insert(0, (30, 0));
/// q.insert(1, (10, 1));
/// q.insert(2, (10, 2));
/// assert_eq!(q.pop(), Some((1, (10, 1)))); // smallest key wins...
/// q.update(2, (40, 2));                    // ...and entries can re-key
/// assert_eq!(q.pop(), Some((0, (30, 0))));
/// assert_eq!(q.pop(), Some((2, (40, 2))));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct IndexedMinHeap<K> {
    /// Heap array of slot ids, min-key at the root.
    heap: Vec<usize>,
    /// `pos[slot]` = index of `slot` in `heap`, or `ABSENT`.
    pos: Vec<usize>,
    /// `keys[slot]` = the key `slot` is currently ordered by.
    keys: Vec<Option<K>>,
}

const ABSENT: usize = usize::MAX;

impl<K: Ord> IndexedMinHeap<K> {
    /// Creates an empty heap accepting slot ids `0..capacity`.
    pub fn new(capacity: usize) -> IndexedMinHeap<K> {
        IndexedMinHeap {
            heap: Vec::with_capacity(capacity),
            pos: vec![ABSENT; capacity],
            keys: (0..capacity).map(|_| None).collect(),
        }
    }

    /// Number of entries currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap holds no entries.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether `slot` currently has an entry.
    pub fn contains(&self, slot: usize) -> bool {
        self.pos[slot] != ABSENT
    }

    /// The key `slot` is queued under, if present.
    pub fn key_of(&self, slot: usize) -> Option<&K> {
        self.keys[slot].as_ref()
    }

    /// Inserts `slot` with `key`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or already queued (re-keying an
    /// existing entry is [`IndexedMinHeap::update`]'s job — an insert
    /// over a live entry is always a scheduler bug).
    pub fn insert(&mut self, slot: usize, key: K) {
        assert!(
            self.pos[slot] == ABSENT,
            "slot {slot} is already queued; use update to re-key"
        );
        self.keys[slot] = Some(key);
        let i = self.heap.len();
        self.heap.push(slot);
        self.pos[slot] = i;
        self.sift_up(i);
    }

    /// Re-keys an existing entry, restoring heap order in O(log n).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not queued.
    pub fn update(&mut self, slot: usize, key: K) {
        let i = self.pos[slot];
        assert!(i != ABSENT, "slot {slot} is not queued");
        let went_down = matches!(
            key.cmp(self.keys[slot].as_ref().expect("queued slots have keys")),
            Ordering::Greater
        );
        self.keys[slot] = Some(key);
        if went_down {
            self.sift_down(i);
        } else {
            self.sift_up(i);
        }
    }

    /// Removes `slot`'s entry, returning its key, or `None` if absent.
    pub fn remove(&mut self, slot: usize) -> Option<K> {
        let i = self.pos[slot];
        if i == ABSENT {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(i, last);
        self.pos[self.heap[i]] = i;
        self.heap.pop();
        self.pos[slot] = ABSENT;
        let key = self.keys[slot].take();
        if i <= last && i < self.heap.len() {
            // The swapped-in entry may violate order in either
            // direction relative to its new parent/children.
            self.sift_down(i);
            self.sift_up(i);
        }
        key
    }

    /// Removes and returns the entry with the smallest key.
    pub fn pop(&mut self) -> Option<(usize, K)> {
        let slot = *self.heap.first()?;
        let key = self.remove(slot).expect("root entry exists");
        Some((slot, key))
    }

    /// The slot and key of the smallest entry without removing it.
    pub fn peek(&self) -> Option<(usize, &K)> {
        let slot = *self.heap.first()?;
        Some((slot, self.keys[slot].as_ref().expect("root has a key")))
    }

    fn less(&self, a: usize, b: usize) -> bool {
        let ka = self.keys[self.heap[a]].as_ref().expect("heaped key");
        let kb = self.keys[self.heap[b]].as_ref().expect("heaped key");
        ka < kb
    }

    fn swap_entries(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a]] = a;
        self.pos[self.heap[b]] = b;
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if !self.less(i, parent) {
                break;
            }
            self.swap_entries(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let mut smallest = left;
            if right < self.heap.len() && self.less(right, left) {
                smallest = right;
            }
            if !self.less(smallest, i) {
                break;
            }
            self.swap_entries(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order() {
        let mut q: IndexedMinHeap<u64> = IndexedMinHeap::new(8);
        for (slot, key) in [(3, 40u64), (0, 10), (5, 30), (1, 20)] {
            q.insert(slot, key);
        }
        let order: Vec<(usize, u64)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(0, 10), (1, 20), (5, 30), (3, 40)]);
    }

    #[test]
    fn tuple_keys_break_ties_like_a_scan() {
        // A linear scan over (node, core) picks the *first* minimum;
        // keying on (time, node, core) reproduces that order exactly.
        let mut q: IndexedMinHeap<(u64, usize, usize)> = IndexedMinHeap::new(8);
        q.insert(5, (7, 1, 1));
        q.insert(2, (7, 0, 2));
        q.insert(7, (7, 1, 3));
        assert_eq!(q.pop(), Some((2, (7, 0, 2))));
        assert_eq!(q.pop(), Some((5, (7, 1, 1))));
        assert_eq!(q.pop(), Some((7, (7, 1, 3))));
    }

    #[test]
    fn update_rekeys_both_directions() {
        let mut q: IndexedMinHeap<u64> = IndexedMinHeap::new(4);
        q.insert(0, 10);
        q.insert(1, 20);
        q.insert(2, 30);
        q.update(2, 5); // decrease: must rise to the root
        assert_eq!(q.peek(), Some((2, &5)));
        q.update(2, 50); // increase: must sink below the others
        assert_eq!(q.pop(), Some((0, 10)));
        assert_eq!(q.pop(), Some((1, 20)));
        assert_eq!(q.pop(), Some((2, 50)));
    }

    #[test]
    fn remove_arbitrary_entry() {
        let mut q: IndexedMinHeap<u64> = IndexedMinHeap::new(4);
        q.insert(0, 10);
        q.insert(1, 20);
        q.insert(2, 30);
        assert_eq!(q.remove(1), Some(20));
        assert!(!q.contains(1));
        assert_eq!(q.remove(1), None);
        assert_eq!(q.pop(), Some((0, 10)));
        assert_eq!(q.pop(), Some((2, 30)));
        assert!(q.is_empty());
    }

    #[test]
    fn reinsert_after_pop() {
        let mut q: IndexedMinHeap<u64> = IndexedMinHeap::new(2);
        q.insert(0, 1);
        q.insert(1, 2);
        assert_eq!(q.pop(), Some((0, 1)));
        q.insert(0, 9);
        assert_eq!(q.pop(), Some((1, 2)));
        assert_eq!(q.pop(), Some((0, 9)));
    }

    #[test]
    #[should_panic(expected = "already queued")]
    fn double_insert_rejected() {
        let mut q: IndexedMinHeap<u64> = IndexedMinHeap::new(2);
        q.insert(0, 1);
        q.insert(0, 2);
    }

    #[test]
    #[should_panic(expected = "not queued")]
    fn update_of_absent_slot_rejected() {
        let mut q: IndexedMinHeap<u64> = IndexedMinHeap::new(2);
        q.update(0, 1);
    }

    /// Randomized cross-check against a sorted reference model.
    #[test]
    fn matches_reference_model_under_churn() {
        let mut rng = crate::SimRng::seeded(42);
        let cap = 64;
        let mut q: IndexedMinHeap<(u64, usize)> = IndexedMinHeap::new(cap);
        let mut model: Vec<Option<(u64, usize)>> = vec![None; cap];
        for step in 0..10_000u64 {
            let slot = (rng.next_u64() % cap as u64) as usize;
            let key = (rng.next_u64() % 1000, slot);
            match rng.next_u64() % 4 {
                0 | 1 => {
                    if model[slot].is_none() {
                        q.insert(slot, key);
                        model[slot] = Some(key);
                    } else {
                        q.update(slot, key);
                        model[slot] = Some(key);
                    }
                }
                2 => {
                    assert_eq!(q.remove(slot), model[slot].take());
                }
                _ => {
                    let want = model
                        .iter()
                        .enumerate()
                        .filter_map(|(s, k)| k.map(|k| (k, s)))
                        .min();
                    let got = q.pop();
                    match want {
                        None => assert_eq!(got, None, "step {step}"),
                        Some((k, s)) => {
                            assert_eq!(got, Some((s, k)), "step {step}");
                            model[s] = None;
                        }
                    }
                }
            }
        }
    }
}
