//! Deterministic, dependency-free fast hashing for simulator maps.
//!
//! `std`'s default SipHash is keyed per process for HashDoS
//! resistance — protection the simulator's internal maps (keyed by
//! page numbers it generates itself) do not need, at a cost that
//! shows up on per-reference paths like ACM checks. This is a
//! Fibonacci multiply-mix: two multiplies per `u64`, deterministic
//! across runs, ample for page-number keys.

use std::hash::{BuildHasher, Hasher};

/// Hasher state; see [`FastHash`].
#[derive(Debug, Clone)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low-entropy keys spread across buckets.
        let mut h = self.0;
        h ^= h >> 32;
        h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        h ^ (h >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// [`BuildHasher`] for [`FastHasher`]; use as the third type
/// parameter of `HashMap`/`HashSet`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHash;

impl BuildHasher for FastHash {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher(0x517C_C1B7_2722_0A95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_across_builders() {
        let a = FastHash.hash_one(42u64);
        let b = FastHash.hash_one(42u64);
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let h1 = FastHash.hash_one(1000u64);
        let h2 = FastHash.hash_one(1001u64);
        assert_ne!(h1, h2);
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: HashMap<u64, u32, FastHash> = HashMap::default();
        for i in 0..1000 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.get(&500), Some(&1000));
    }
}
