//! Seedable randomness for reproducible simulations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A small, fast, seedable RNG wrapper.
///
/// Every stochastic choice in the workspace (workload address streams,
/// random cache replacement, FAM allocation shuffling) draws from a
/// `SimRng` constructed from an explicit seed, so any experiment can be
/// replayed bit-for-bit.
///
/// # Examples
///
/// ```
/// use fam_sim::SimRng;
///
/// let mut a = SimRng::seeded(42);
/// let mut b = SimRng::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates an RNG from an explicit seed.
    pub fn seeded(seed: u64) -> SimRng {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG, useful for giving each core or
    /// component its own stream without correlation.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::seeded(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        self.inner.gen_range(0..bound)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random index into a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }
}

impl rand::RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        rand::RngCore::next_u32(&mut self.inner)
    }
    fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        rand::RngCore::fill_bytes(&mut self.inner, dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        rand::RngCore::try_fill_bytes(&mut self.inner, dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(7);
        let mut b = SimRng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SimRng::seeded(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_stays_in_range() {
        let mut r = SimRng::seeded(4);
        for _ in 0..1000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seeded(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range p clamps rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn fork_is_deterministic_but_distinct() {
        let mut a = SimRng::seeded(9);
        let mut b = SimRng::seeded(9);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.next_u64(), fb.next_u64());
        let mut fc = SimRng::seeded(9).fork(2);
        assert_ne!(fa.next_u64(), fc.next_u64());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn below_zero_bound_rejected() {
        SimRng::seeded(0).below(0);
    }
}
