//! Seedable randomness for reproducible simulations.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna),
//! seeded through SplitMix64 so any `u64` seed — including zero —
//! yields a well-mixed state. Keeping the implementation local makes
//! the workspace hermetic: simulations replay bit-for-bit on any
//! toolchain without an external RNG crate pinning the stream.

/// A small, fast, seedable RNG.
///
/// Every stochastic choice in the workspace (workload address streams,
/// random cache replacement, FAM allocation shuffling, fault
/// injection) draws from a `SimRng` constructed from an explicit seed,
/// so any experiment can be replayed bit-for-bit.
///
/// # Examples
///
/// ```
/// use fam_sim::SimRng;
///
/// let mut a = SimRng::seeded(42);
/// let mut b = SimRng::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an RNG from an explicit seed.
    pub fn seeded(seed: u64) -> SimRng {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives an independent child RNG, useful for giving each core or
    /// component its own stream without correlation.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::seeded(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next uniformly random `u64` (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let s3b = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3b;
        s2 ^= t;
        self.state = [s0, s1, s2, s3b.rotate_left(45)];
        result
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift
    /// rejection, bias-free.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        let mut m = (self.next_u64() as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random index into a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(7);
        let mut b = SimRng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        // SplitMix64 expansion must not leave an all-zero (stuck) state.
        let mut r = SimRng::seeded(0);
        let distinct: std::collections::HashSet<u64> = (0..64).map(|_| r.next_u64()).collect();
        assert!(distinct.len() > 60);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SimRng::seeded(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_small_ranges_roughly_uniformly() {
        let mut r = SimRng::seeded(11);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[r.below(4) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn unit_stays_in_range() {
        let mut r = SimRng::seeded(4);
        for _ in 0..1000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seeded(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range p clamps rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn fork_is_deterministic_but_distinct() {
        let mut a = SimRng::seeded(9);
        let mut b = SimRng::seeded(9);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.next_u64(), fb.next_u64());
        let mut fc = SimRng::seeded(9).fork(2);
        assert_ne!(fa.next_u64(), fc.next_u64());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn below_zero_bound_rejected() {
        SimRng::seeded(0).below(0);
    }
}
