//! Discrete-event simulation substrate for the DeACT reproduction.
//!
//! This crate provides the building blocks every timing model in the
//! workspace is written against:
//!
//! * [`Cycle`] / [`Duration`] — a cycle-granular clock (the whole system
//!   is simulated in CPU cycles; [`Frequency`] converts nanoseconds to
//!   cycles at a configurable core frequency).
//! * [`EventQueue`] — a deterministic priority queue of timestamped
//!   events with FIFO tie-breaking.
//! * [`IndexedMinHeap`] — an indexed min-priority queue supporting
//!   O(log n) re-keying by slot id, the core of the event-driven
//!   reference scheduler.
//! * [`ThreadPool`] / [`scoped_map`] — a bounded work-queue thread pool
//!   and a scoped bounded parallel map, the substrate of the experiment
//!   harness's sweep engine.
//! * [`Resource`] / [`BankedResource`] / [`Window`] — contention
//!   primitives: a serially-occupied unit (a DRAM channel, a fabric
//!   link), a set of independently occupied banks (NVM banks), and a
//!   bounded window of outstanding operations (a core's outstanding
//!   request budget or a memory device's outstanding-request cap).
//! * [`stats`] — counters, ratios and histograms that every component
//!   uses to report the quantities the paper plots.
//! * [`SimRng`] — a small, seedable RNG so every simulation is
//!   reproducible.
//! * [`FaultInjector`] — deterministic, seed-driven fault injection
//!   (packet drop/corruption, link-down windows, STU stalls, stale
//!   translations) that is a zero-cost no-op when disabled.
//! * [`trace`] — request-lifecycle tracing: typed [`TraceEvent`]s in a
//!   bounded ring buffer with drop accounting, per-stage latency
//!   histograms, a Chrome trace-event exporter and a windowed time
//!   series; like the fault injector, a zero-cost no-op when disabled.
//! * [`profile`] — a scoped *host-time* profiler: RAII [`PhaseId`]
//!   spans accumulate per-thread into a hierarchical [`ProfileReport`]
//!   (self vs. children time, folded-stack export); one relaxed atomic
//!   load when disabled.
//! * [`registry`] — a unified named metrics [`Registry`] with
//!   snapshot/diff/merge, the substrate of end-of-run conservation
//!   audits.
//!
//! # Examples
//!
//! ```
//! use fam_sim::{Cycle, Resource};
//!
//! // A memory channel that is busy for 10 cycles per request.
//! let mut chan = Resource::new(10);
//! let start = chan.acquire(Cycle(0));
//! assert_eq!(start, Cycle(0));
//! // A second request issued at the same time queues behind the first.
//! let start2 = chan.acquire(Cycle(0));
//! assert_eq!(start2, Cycle(10));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod event;
mod fault;
pub mod hash;
mod pool;
pub mod profile;
mod queue;
pub mod registry;
mod resource;
mod rng;
pub mod stats;
pub mod timeline;
pub mod trace;
mod window;

pub use clock::{Cycle, Duration, Frequency};
pub use event::EventQueue;
pub use fault::{
    FabricFault, FaultConfig, FaultInjector, FaultStats, PersistentFault, PersistentSchedule,
};
pub use pool::{
    cap_sim_threads, default_jobs, scoped_map, scoped_map_mut, sim_threads_from_env, FreeList,
    ThreadPool,
};
pub use profile::{PhaseId, PhaseStat, ProfileReport};
pub use queue::IndexedMinHeap;
pub use registry::{Metric, Registry};
pub use resource::{BankedResource, Resource};
pub use rng::SimRng;
pub use trace::{
    LatencyBreakdown, RequestId, Stage, TraceConfig, TraceEvent, Tracer, Track, WindowSample,
    WindowSeries,
};
pub use window::Window;
