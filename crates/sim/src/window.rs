//! Bounded windows of outstanding operations.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A bounded set of in-flight operations tracked by completion time.
///
/// Models both a core's outstanding-request budget (32 in Table II) and
/// the FAM's outstanding-request cap (128 in Table II): a new operation
/// may only be admitted once fewer than `capacity` operations are still
/// in flight, so [`Window::admit`] returns the (possibly delayed) cycle
/// at which the operation can actually enter the window.
///
/// # Examples
///
/// ```
/// use fam_sim::{Cycle, Window};
///
/// let mut w = Window::new(2);
/// assert_eq!(w.admit(Cycle(0)), Cycle(0));
/// w.record_completion(Cycle(100));
/// assert_eq!(w.admit(Cycle(0)), Cycle(0));
/// w.record_completion(Cycle(50));
/// // Window full: the third op must wait for the first completion.
/// assert_eq!(w.admit(Cycle(0)), Cycle(50));
/// ```
#[derive(Debug, Clone)]
pub struct Window {
    capacity: usize,
    completions: BinaryHeap<Reverse<Cycle>>,
    peak: usize,
    admitted: u64,
    stalled: u64,
}

impl Window {
    /// Creates a window admitting at most `capacity` concurrent operations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Window {
        assert!(capacity > 0, "window capacity must be non-zero");
        Window {
            capacity,
            completions: BinaryHeap::new(),
            peak: 0,
            admitted: 0,
            stalled: 0,
        }
    }

    /// Admits an operation wanting to start at `now`, returning the
    /// cycle at which it may actually start (later than `now` if the
    /// window is full). Call [`Window::record_completion`] afterwards
    /// with the operation's completion time.
    pub fn admit(&mut self, now: Cycle) -> Cycle {
        // Drain operations that completed before `now`.
        while let Some(&Reverse(c)) = self.completions.peek() {
            if c <= now {
                self.completions.pop();
            } else {
                break;
            }
        }
        self.admitted += 1;
        if self.completions.len() < self.capacity {
            return now;
        }
        // Full: wait for the earliest in-flight completion.
        self.stalled += 1;
        let Reverse(earliest) = self
            .completions
            .pop()
            .expect("window full implies non-empty");
        earliest.max(now)
    }

    /// Records that the most recently admitted operation completes at
    /// `completes_at`.
    pub fn record_completion(&mut self, completes_at: Cycle) {
        self.completions.push(Reverse(completes_at));
        self.peak = self.peak.max(self.completions.len());
    }

    /// Earliest completion time among in-flight operations, if any.
    pub fn earliest_completion(&self) -> Option<Cycle> {
        self.completions.peek().map(|&Reverse(c)| c)
    }

    /// Predicts, without mutating, when an operation wanting to start
    /// at `now` would be admitted — `now` itself if a slot is free,
    /// otherwise the earliest in-flight completion. Lets a scheduler
    /// order work by true start time before committing to
    /// [`Window::admit`].
    pub fn would_start(&self, now: Cycle) -> Cycle {
        let mut live = 0usize;
        let mut earliest = Cycle(u64::MAX);
        for &Reverse(c) in self.completions.iter() {
            if c > now {
                live += 1;
                earliest = earliest.min(c);
            }
        }
        if live < self.capacity {
            now
        } else {
            earliest.max(now)
        }
    }

    /// As [`Window::would_start`], but drains operations that already
    /// completed at or before `now` so the prediction is an O(1) heap
    /// peek instead of a full scan. The only mutation is forgetting
    /// completed operations, which any later [`Window::admit`] at
    /// `now` or after would forget anyway; statistics are untouched,
    /// so the prediction and all observable behaviour match
    /// [`Window::would_start`] exactly. Callers must only use this
    /// when `now` never decreases between calls on the same window,
    /// which holds for a core's issue clock.
    pub fn would_start_mut(&mut self, now: Cycle) -> Cycle {
        while let Some(&Reverse(c)) = self.completions.peek() {
            if c <= now {
                self.completions.pop();
            } else {
                break;
            }
        }
        if self.completions.len() < self.capacity {
            now
        } else {
            let &Reverse(earliest) = self
                .completions
                .peek()
                .expect("window full implies non-empty");
            earliest.max(now)
        }
    }

    /// Latest completion time among in-flight operations, if any.
    pub fn drain_time(&self) -> Option<Cycle> {
        self.completions.iter().map(|&Reverse(c)| c).max()
    }

    /// Number of operations currently tracked as in flight.
    pub fn in_flight(&self) -> usize {
        self.completions.len()
    }

    /// The maximum concurrency observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total operations admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Operations that had to wait because the window was full.
    pub fn stalls(&self) -> u64 {
        self.stalled
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears in-flight state and statistics, keeping the capacity.
    pub fn reset(&mut self) {
        self.completions.clear();
        self.peak = 0;
        self.admitted = 0;
        self.stalled = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity_without_delay() {
        let mut w = Window::new(3);
        for _ in 0..3 {
            assert_eq!(w.admit(Cycle(0)), Cycle(0));
            w.record_completion(Cycle(1000));
        }
        assert_eq!(w.in_flight(), 3);
        assert_eq!(w.stalls(), 0);
    }

    #[test]
    fn full_window_delays_to_earliest_completion() {
        let mut w = Window::new(2);
        w.admit(Cycle(0));
        w.record_completion(Cycle(30));
        w.admit(Cycle(0));
        w.record_completion(Cycle(20));
        assert_eq!(w.admit(Cycle(0)), Cycle(20));
        assert_eq!(w.stalls(), 1);
    }

    #[test]
    fn completed_ops_free_slots() {
        let mut w = Window::new(1);
        w.admit(Cycle(0));
        w.record_completion(Cycle(10));
        // At cycle 50 the previous op has long completed.
        assert_eq!(w.admit(Cycle(50)), Cycle(50));
        assert_eq!(w.stalls(), 0);
    }

    #[test]
    fn peak_tracks_max_concurrency() {
        let mut w = Window::new(4);
        for i in 0..4 {
            w.admit(Cycle(0));
            w.record_completion(Cycle(100 + i));
        }
        assert_eq!(w.peak(), 4);
    }

    #[test]
    fn delayed_admit_never_before_now() {
        let mut w = Window::new(1);
        w.admit(Cycle(0));
        w.record_completion(Cycle(10));
        // Window full until 10, but we only ask at 40.
        assert_eq!(w.admit(Cycle(40)), Cycle(40));
    }

    #[test]
    fn would_start_predicts_admit() {
        let mut w = Window::new(2);
        assert_eq!(w.would_start(Cycle(5)), Cycle(5));
        w.admit(Cycle(0));
        w.record_completion(Cycle(30));
        w.admit(Cycle(0));
        w.record_completion(Cycle(20));
        // Full: prediction matches what admit would return.
        assert_eq!(w.would_start(Cycle(0)), Cycle(20));
        assert_eq!(w.admit(Cycle(0)), Cycle(20));
        // Ops completing before `now` don't count as in flight.
        let mut w2 = Window::new(1);
        w2.admit(Cycle(0));
        w2.record_completion(Cycle(10));
        assert_eq!(w2.would_start(Cycle(50)), Cycle(50));
    }

    #[test]
    fn reset_clears_state() {
        let mut w = Window::new(2);
        w.admit(Cycle(0));
        w.record_completion(Cycle(5));
        w.reset();
        assert_eq!(w.in_flight(), 0);
        assert_eq!(w.admitted(), 0);
        assert_eq!(w.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = Window::new(0);
    }
}
