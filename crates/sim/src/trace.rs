//! Request-lifecycle tracing and per-stage latency telemetry.
//!
//! Every memory reference the system simulates passes through a fixed
//! pipeline — node TLB, node page-table walk, the in-DRAM translation
//! cache, the fabric, the STU, the NVM device — and every figure in
//! the paper is ultimately a claim about where those cycles go. This
//! module makes the decomposition observable without re-deriving it by
//! hand: timing layers emit typed [`TraceEvent`]s (a request id, a
//! pipeline [`Stage`], a hardware [`Track`], start/end cycles) into a
//! [`Tracer`], which retains them in a bounded ring buffer with
//! explicit drop accounting and folds every event into a per-stage
//! [`LatencyBreakdown`] of [`Histogram`]s.
//!
//! Two sinks read the tracer out:
//!
//! * [`write_chrome_trace`] — the Chrome trace-event JSON format, one
//!   track per node / STU / fabric link / NVM module, loadable in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`;
//! * [`WindowSeries`] — a windowed time series (instructions, AT and
//!   total FAM traffic, retry/recovery counters per N-cycle interval)
//!   for plotting phase behaviour over a run.
//!
//! # The zero-overhead-off contract
//!
//! Like [`FaultInjector`](crate::FaultInjector), a disabled tracer is
//! a zero-cost no-op: every event site in the timing code is guarded
//! by one [`Tracer::is_enabled`] branch, a disabled tracer allocates
//! no ring storage and consumes nothing, and a fixed-seed run with
//! tracing off is bit-identical to the same run with the trace layer
//! compiled in — the integration tests pin this down the same way
//! `tests/tests/scheduler.rs` pins scheduler equivalence. Tracing is
//! pure observation: enabling it never changes a report's timing or
//! traffic fields, only the [`LatencyBreakdown`] it carries.

use std::fmt;
use std::io::{self, Write};

use crate::stats::Histogram;
use crate::Cycle;

/// Identity of one simulated memory reference, threaded through the
/// hot path (node → translator → fabric packet tag → STU → NVM) so
/// every event of one reference's lifetime can be correlated.
///
/// Id `0` is reserved: [`RequestId::UNTRACED`] marks requests issued
/// while tracing is off (the disabled tracer hands it out without
/// consuming a counter, so runs with tracing off stay bit-identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RequestId(pub u64);

impl RequestId {
    /// The id carried by requests issued while tracing is disabled.
    pub const UNTRACED: RequestId = RequestId(0);

    /// Whether this id belongs to a traced request.
    pub fn is_traced(self) -> bool {
        self.0 != 0
    }

    /// The low 16 bits, sized to the wire-packet `tag` field (the
    /// outstanding-request window is far smaller than 2^16, so the
    /// truncation is unambiguous among in-flight requests).
    pub fn wire_tag(self) -> u16 {
        self.0 as u16
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req {}", self.0)
    }
}

/// A pipeline stage of the FAM reference lifecycle — the axes of the
/// per-stage latency breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Node TLB lookup (hit or miss latency).
    TlbLookup,
    /// Node page-table walk (the PTW-cache-planned entry reads).
    PtWalk,
    /// Page-fault service (node first touch or system-level demand
    /// map), plus injected STU stalls.
    Fault,
    /// In-DRAM FAM translation-cache probe (DeACT ① of Fig. 6).
    TranslationCache,
    /// STU cache lookup (I-FAM coupled entry, DeACT ACM check).
    StuLookup,
    /// System page-table walk at the STU's FAM-PTW.
    StuWalk,
    /// ACM metadata-block (and sharing-bitmap) fetch from FAM.
    AcmFetch,
    /// Fabric traversal, node → FAM.
    FabricSend,
    /// Fabric traversal, FAM → node.
    FabricRecv,
    /// NVM device service.
    NvmAccess,
    /// Recovery wait after a detected fault (timeout expiry or NACK
    /// round trip).
    Retry,
    /// Exponential-backoff wait before a reissue.
    Backoff,
}

impl Stage {
    /// Every stage, in pipeline order — the column order of every
    /// breakdown table and CSV export.
    pub const ALL: [Stage; 12] = [
        Stage::TlbLookup,
        Stage::PtWalk,
        Stage::Fault,
        Stage::TranslationCache,
        Stage::StuLookup,
        Stage::StuWalk,
        Stage::AcmFetch,
        Stage::FabricSend,
        Stage::FabricRecv,
        Stage::NvmAccess,
        Stage::Retry,
        Stage::Backoff,
    ];

    /// Number of stages.
    pub const COUNT: usize = Stage::ALL.len();

    /// Dense index into [`Stage::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (CSV column suffixes, trace-event
    /// names).
    pub fn name(self) -> &'static str {
        match self {
            Stage::TlbLookup => "tlb_lookup",
            Stage::PtWalk => "pt_walk",
            Stage::Fault => "fault",
            Stage::TranslationCache => "translation_cache",
            Stage::StuLookup => "stu_lookup",
            Stage::StuWalk => "stu_walk",
            Stage::AcmFetch => "acm_fetch",
            Stage::FabricSend => "fabric_send",
            Stage::FabricRecv => "fabric_recv",
            Stage::NvmAccess => "nvm_access",
            Stage::Retry => "retry",
            Stage::Backoff => "backoff",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The hardware unit an event occurred on — one Perfetto track each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// A compute node (TLB, node PTW, translation cache, faults).
    Node(u16),
    /// A node's System Translation Unit.
    Stu(u16),
    /// A node's fabric link (sends, receives, retries, backoffs).
    Fabric(u16),
    /// A FAM NVM module.
    Nvm(u16),
}

impl Track {
    /// Human-readable track label (the Perfetto thread name).
    pub fn label(self) -> String {
        match self {
            Track::Node(n) => format!("node{n}"),
            Track::Stu(n) => format!("stu{n}"),
            Track::Fabric(n) => format!("fabric{n}"),
            Track::Nvm(m) => format!("nvm{m}"),
        }
    }

    /// The per-node breakdown this track's events aggregate into:
    /// node-side tracks fold into their node's histograms, device
    /// tracks into the shared device-side slot.
    fn node_index(self) -> Option<usize> {
        match self {
            Track::Node(n) | Track::Stu(n) | Track::Fabric(n) => Some(n as usize),
            Track::Nvm(_) => None,
        }
    }
}

impl fmt::Display for Track {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One traced span: request `req` occupied `track` doing `stage` from
/// `start` to `end` (inclusive of queueing, as the timing model sees
/// it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The request this event belongs to.
    pub req: RequestId,
    /// The pipeline stage.
    pub stage: Stage,
    /// The hardware unit.
    pub track: Track,
    /// Start cycle.
    pub start: Cycle,
    /// End cycle (`end >= start`).
    pub end: Cycle,
}

impl TraceEvent {
    /// The span length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end.0 - self.start.0
    }
}

/// Tracing configuration, carried inside the system configuration the
/// same way [`FaultConfig`](crate::FaultConfig) is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. Off (the default) makes the tracer a zero-cost
    /// no-op: one branch per event site, nothing recorded, reports
    /// bit-identical to a run without the trace layer.
    pub enabled: bool,
    /// Ring-buffer capacity in events. Once full, the oldest event is
    /// overwritten and counted in [`Tracer::dropped`]. `0` keeps the
    /// latency breakdown and time series but retains no individual
    /// events (breakdown-only mode, no drop accounting to do).
    pub ring_capacity: usize,
    /// Time-series window length in cycles; `0` disables the series.
    pub window_cycles: u64,
}

impl TraceConfig {
    /// Default ring capacity of [`TraceConfig::full`]: 64 Ki events.
    pub const DEFAULT_RING: usize = 1 << 16;

    /// Default window of [`TraceConfig::full`]: 1 M cycles (0.5 ms at
    /// the paper's 2 GHz).
    pub const DEFAULT_WINDOW: u64 = 1 << 20;

    /// Tracing off — the configuration default.
    pub fn disabled() -> TraceConfig {
        TraceConfig {
            enabled: false,
            ring_capacity: 0,
            window_cycles: 0,
        }
    }

    /// Full tracing: event ring, breakdown and time series.
    pub fn full() -> TraceConfig {
        TraceConfig {
            enabled: true,
            ring_capacity: Self::DEFAULT_RING,
            window_cycles: Self::DEFAULT_WINDOW,
        }
    }

    /// Latency breakdown only: no event retention, no time series —
    /// the cheapest enabled mode, used by batch sweeps that only want
    /// the per-stage histograms in their reports.
    pub fn breakdown_only() -> TraceConfig {
        TraceConfig {
            enabled: true,
            ring_capacity: 0,
            window_cycles: 0,
        }
    }

    /// Sets the ring capacity.
    #[must_use]
    pub fn with_ring_capacity(mut self, events: usize) -> TraceConfig {
        self.ring_capacity = events;
        self
    }

    /// Sets the time-series window length.
    #[must_use]
    pub fn with_window_cycles(mut self, cycles: u64) -> TraceConfig {
        self.window_cycles = cycles;
        self
    }
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig::disabled()
    }
}

/// Per-stage latency histograms — the run-level decomposition of where
/// a reference's cycles went.
///
/// Aggregation is hierarchical: the tracer keeps one breakdown per
/// node (plus one for the device side) and [`Histogram::merge`]s them
/// into the run-level breakdown at report time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyBreakdown {
    stages: [Histogram; Stage::COUNT],
}

impl LatencyBreakdown {
    /// An empty breakdown.
    pub fn new() -> LatencyBreakdown {
        LatencyBreakdown {
            stages: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// Records one span's length against its stage.
    pub fn record(&mut self, stage: Stage, cycles: u64) {
        self.stages[stage.index()].record(cycles);
    }

    /// The histogram of one stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage.index()]
    }

    /// Merges another breakdown into this one, stage by stage.
    pub fn merge(&mut self, other: &LatencyBreakdown) {
        for (mine, theirs) in self.stages.iter_mut().zip(&other.stages) {
            mine.merge(theirs);
        }
    }

    /// Total spans recorded across all stages.
    pub fn total_samples(&self) -> u64 {
        self.stages.iter().map(Histogram::count).sum()
    }

    /// Whether nothing has been recorded (the tracing-off state).
    pub fn is_empty(&self) -> bool {
        self.total_samples() == 0
    }
}

impl Default for LatencyBreakdown {
    fn default() -> LatencyBreakdown {
        LatencyBreakdown::new()
    }
}

impl fmt::Display for LatencyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for stage in Stage::ALL {
            let h = self.stage(stage);
            if h.count() > 0 {
                writeln!(f, "{:>18}  {h}", stage.name())?;
            }
        }
        Ok(())
    }
}

/// Counters accumulated over one time-series window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSample {
    /// Instructions retired by references completing in the window.
    pub instructions: u64,
    /// Address-translation FAM requests issued in the window.
    pub fam_at: u64,
    /// All FAM requests issued in the window.
    pub fam_total: u64,
    /// Retries performed in the window.
    pub retries: u64,
    /// Faulted requests that recovered in the window.
    pub recovered: u64,
}

impl WindowSample {
    /// AT requests as a percentage of the window's FAM requests.
    pub fn at_percent(&self) -> f64 {
        if self.fam_total == 0 {
            0.0
        } else {
            self.fam_at as f64 * 100.0 / self.fam_total as f64
        }
    }

    /// IPC over a window of `window_cycles`.
    pub fn ipc(&self, window_cycles: u64) -> f64 {
        self.instructions as f64 / window_cycles.max(1) as f64
    }

    fn accumulate(&mut self, other: WindowSample) {
        self.instructions += other.instructions;
        self.fam_at += other.fam_at;
        self.fam_total += other.fam_total;
        self.retries += other.retries;
        self.recovered += other.recovered;
    }
}

/// Window cap: a series never grows past this many windows; later
/// completions clip into the last window (and are counted) rather
/// than growing without bound on pathological window sizes.
const MAX_WINDOWS: usize = 1 << 16;

/// The windowed time series: one [`WindowSample`] per `window_cycles`
/// interval of simulated time, bucketed by completion cycle.
#[derive(Debug, Clone, Default)]
pub struct WindowSeries {
    window_cycles: u64,
    samples: Vec<WindowSample>,
    clipped: u64,
}

impl WindowSeries {
    fn new(window_cycles: u64) -> WindowSeries {
        WindowSeries {
            window_cycles,
            samples: Vec::new(),
            clipped: 0,
        }
    }

    fn record(&mut self, at: Cycle, sample: WindowSample) {
        let mut idx = (at.0 / self.window_cycles) as usize;
        if idx >= MAX_WINDOWS {
            idx = MAX_WINDOWS - 1;
            self.clipped += 1;
        }
        if idx >= self.samples.len() {
            self.samples.resize(idx + 1, WindowSample::default());
        }
        self.samples[idx].accumulate(sample);
    }

    /// Merges another series into this one, window by window (the
    /// samples are additive counters, so merging is order-free). An
    /// empty `other` is a no-op; otherwise both series must use the
    /// same window length.
    pub fn merge(&mut self, other: &WindowSeries) {
        if other.samples.is_empty() && other.clipped == 0 {
            return;
        }
        debug_assert_eq!(
            self.window_cycles, other.window_cycles,
            "window series merge needs a common window length"
        );
        if other.samples.len() > self.samples.len() {
            self.samples
                .resize(other.samples.len(), WindowSample::default());
        }
        for (mine, theirs) in self.samples.iter_mut().zip(&other.samples) {
            mine.accumulate(*theirs);
        }
        self.clipped += other.clipped;
    }

    /// The window length in cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// The samples, one per window from cycle 0 (empty windows are
    /// present and all-zero).
    pub fn samples(&self) -> &[WindowSample] {
        &self.samples
    }

    /// References that completed past the [`MAX_WINDOWS`] cap and were
    /// folded into the last window.
    pub fn clipped(&self) -> u64 {
        self.clipped
    }
}

/// The telemetry hub: a bounded event ring with drop accounting,
/// per-node latency breakdowns, and the windowed time series.
///
/// # Examples
///
/// ```
/// use fam_sim::trace::{Stage, TraceConfig, TraceEvent, Tracer, Track};
/// use fam_sim::Cycle;
///
/// let mut t = Tracer::new(TraceConfig::full(), 1);
/// let req = t.next_request();
/// t.record(TraceEvent {
///     req,
///     stage: Stage::NvmAccess,
///     track: Track::Nvm(0),
///     start: Cycle(100),
///     end: Cycle(220),
/// });
/// assert_eq!(t.recorded(), 1);
/// assert_eq!(t.breakdown().stage(Stage::NvmAccess).max(), 120);
///
/// // Disabled: one branch, nothing consumed.
/// let mut off = Tracer::disabled();
/// assert!(!off.is_enabled());
/// assert!(!off.next_request().is_traced());
/// ```
#[derive(Debug)]
pub struct Tracer {
    config: TraceConfig,
    ring: Vec<TraceEvent>,
    head: usize,
    recorded: u64,
    dropped: u64,
    next_req: u64,
    node_breakdowns: Vec<LatencyBreakdown>,
    device_breakdown: LatencyBreakdown,
    series: WindowSeries,
}

impl Tracer {
    /// Creates a tracer for a system of `nodes` nodes. A disabled
    /// configuration allocates nothing.
    pub fn new(config: TraceConfig, nodes: usize) -> Tracer {
        let enabled = config.enabled;
        Tracer {
            ring: Vec::with_capacity(if enabled { config.ring_capacity } else { 0 }),
            head: 0,
            recorded: 0,
            dropped: 0,
            next_req: 0,
            node_breakdowns: if enabled {
                vec![LatencyBreakdown::new(); nodes]
            } else {
                Vec::new()
            },
            device_breakdown: LatencyBreakdown::new(),
            series: WindowSeries::new(if enabled { config.window_cycles } else { 0 }),
            config,
        }
    }

    /// A disabled tracer (the default for every system).
    pub fn disabled() -> Tracer {
        Tracer::new(TraceConfig::disabled(), 0)
    }

    /// Re-bases the request-id counter so independent tracers (the
    /// per-node shards of the parallel engine) hand out ids from
    /// disjoint ranges. Ids only label events for correlation — they
    /// never influence timing — so the base is free to be arbitrary.
    #[must_use]
    pub fn with_request_base(mut self, base: u64) -> Tracer {
        self.next_req = base;
        self
    }

    /// The single branch every event site pays when tracing is off.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// Whether the time series is being collected.
    #[inline]
    pub fn wants_windows(&self) -> bool {
        self.config.enabled && self.config.window_cycles > 0
    }

    /// The configuration in force.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Hands out the next request id. Disabled tracers return
    /// [`RequestId::UNTRACED`] without consuming anything, so request
    /// numbering — like RNG state — is untouched by a disabled layer.
    pub fn next_request(&mut self) -> RequestId {
        if !self.config.enabled {
            return RequestId::UNTRACED;
        }
        self.next_req += 1;
        RequestId(self.next_req)
    }

    /// Request ids handed out so far.
    pub fn requests_issued(&self) -> u64 {
        self.next_req
    }

    /// Records one event: folds it into the owning breakdown and
    /// pushes it onto the ring (overwriting the oldest event, with
    /// drop accounting, once the ring is full).
    ///
    /// Callers guard with [`Tracer::is_enabled`]; recording on a
    /// disabled tracer is a no-op.
    pub fn record(&mut self, ev: TraceEvent) {
        if !self.config.enabled {
            return;
        }
        debug_assert!(ev.end >= ev.start, "trace span must not run backwards");
        self.recorded += 1;
        match ev.track.node_index() {
            Some(n) => self.node_breakdowns[n].record(ev.stage, ev.cycles()),
            None => self.device_breakdown.record(ev.stage, ev.cycles()),
        }
        self.push_ring(ev);
    }

    /// Ring push with overwrite-oldest drop accounting. Breakdown
    /// folding is the caller's job, so [`Tracer::absorb`] can replay
    /// already-aggregated events without double counting.
    fn push_ring(&mut self, ev: TraceEvent) {
        if self.config.ring_capacity == 0 {
            return;
        }
        if self.ring.len() < self.config.ring_capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.config.ring_capacity;
            self.dropped += 1;
        }
    }

    /// Folds another tracer's telemetry into this one — the merge step
    /// of the parallel engine, where each node shard records into its
    /// own tracer and the shards are absorbed into the run tracer at
    /// the end.
    ///
    /// Breakdowns and the time series merge additively (order-free, so
    /// the run-level [`Tracer::breakdown`] is independent of how work
    /// was sharded); the other tracer's retained events are replayed
    /// into this ring oldest-first and its drop count carried over, so
    /// `retained + dropped == recorded` keeps holding. The request-id
    /// counter is NOT advanced: shard ids come from disjoint
    /// [`Tracer::with_request_base`] ranges and never collide with this
    /// tracer's.
    pub fn absorb(&mut self, other: &Tracer) {
        if !self.config.enabled {
            return;
        }
        for (mine, theirs) in self.node_breakdowns.iter_mut().zip(&other.node_breakdowns) {
            mine.merge(theirs);
        }
        self.device_breakdown.merge(&other.device_breakdown);
        self.series.merge(&other.series);
        self.recorded += other.recorded;
        self.dropped += other.dropped;
        for ev in other.events() {
            self.push_ring(*ev);
        }
    }

    /// Adds one completed reference's counters to the time series.
    pub fn sample(&mut self, at: Cycle, sample: WindowSample) {
        if self.wants_windows() {
            self.series.record(at, sample);
        }
    }

    /// Events offered to the ring over the run.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events overwritten after the ring filled. `retained + dropped
    /// == recorded` whenever the ring has capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently held in the ring.
    pub fn retained(&self) -> usize {
        self.ring.len()
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring[self.head..].iter().chain(&self.ring[..self.head])
    }

    /// One node's latency breakdown (node + STU + fabric tracks).
    pub fn node_breakdown(&self, node: usize) -> &LatencyBreakdown {
        &self.node_breakdowns[node]
    }

    /// The device-side (NVM-track) breakdown.
    pub fn device_breakdown(&self) -> &LatencyBreakdown {
        &self.device_breakdown
    }

    /// The run-level breakdown: every per-node breakdown and the
    /// device-side breakdown merged ([`Histogram::merge`] per stage).
    pub fn breakdown(&self) -> LatencyBreakdown {
        let mut total = LatencyBreakdown::new();
        for b in &self.node_breakdowns {
            total.merge(b);
        }
        total.merge(&self.device_breakdown);
        total
    }

    /// The windowed time series.
    pub fn series(&self) -> &WindowSeries {
        &self.series
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::disabled()
    }
}

/// Escapes nothing: every string this writer emits (stage names, track
/// labels) is plain ASCII by construction, matching the workspace's
/// other hand-rolled JSON writers.
fn push_event(out: &mut String, first: &mut bool, ph: char, tid: usize, name: &str, rest: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(&format!(
        "    {{\"ph\": \"{ph}\", \"pid\": 0, \"tid\": {tid}, \"name\": \"{name}\"{rest}}}"
    ));
}

/// Writes the tracer's retained events as Chrome trace-event JSON
/// (the `traceEvents` array form), loadable in Perfetto or
/// `chrome://tracing`.
///
/// Each [`Track`] becomes one named thread (`"M"` metadata events);
/// each [`TraceEvent`] becomes one `"X"` complete event whose `ts` /
/// `dur` are microseconds derived from cycles at `frequency_mhz`, with
/// the request id in `args.req`. Drop accounting and the request count
/// ride along in `otherData`.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_chrome_trace<W: Write>(
    mut w: W,
    tracer: &Tracer,
    frequency_mhz: u64,
) -> io::Result<()> {
    let mhz = frequency_mhz.max(1) as f64;
    // Stable track → tid assignment, in Track's derived order.
    let mut tracks: Vec<Track> = tracer.events().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let tid_of = |t: Track| tracks.binary_search(&t).expect("track collected above") + 1;

    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ns\",\n");
    out.push_str(&format!(
        "  \"otherData\": {{\"schema\": \"deact-trace-v1\", \"recorded\": {}, \
         \"dropped\": {}, \"requests\": {}, \"frequency_mhz\": {frequency_mhz}}},\n",
        tracer.recorded(),
        tracer.dropped(),
        tracer.requests_issued()
    ));
    out.push_str("  \"traceEvents\": [\n");
    let mut first = true;
    push_event(
        &mut out,
        &mut first,
        'M',
        0,
        "process_name",
        ", \"args\": {\"name\": \"deact-sim\"}",
    );
    for &track in &tracks {
        push_event(
            &mut out,
            &mut first,
            'M',
            tid_of(track),
            "thread_name",
            &format!(", \"args\": {{\"name\": \"{}\"}}", track.label()),
        );
    }
    for ev in tracer.events() {
        let ts = ev.start.0 as f64 / mhz;
        let dur = ev.cycles() as f64 / mhz;
        push_event(
            &mut out,
            &mut first,
            'X',
            tid_of(ev.track),
            ev.stage.name(),
            &format!(
                ", \"cat\": \"{}\", \"ts\": {ts:.4}, \"dur\": {dur:.4}, \
                 \"args\": {{\"req\": {}, \"cycles\": {}}}",
                ev.track.label(),
                ev.req.0,
                ev.cycles()
            ),
        );
    }
    out.push_str("\n  ]\n}\n");
    w.write_all(out.as_bytes())
}

/// Validates that `text` is well-formed JSON whose top-level object
/// has a `traceEvents` array, returning the number of events in that
/// array — the workspace is dependency-free, so CI and the tests
/// validate the exporter with this hand-rolled recursive-descent
/// parser instead of a JSON crate.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax problem,
/// or of a missing `traceEvents` array.
pub fn validate_chrome_json(text: &str) -> Result<usize, String> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
        trace_events: None,
    };
    p.skip_ws();
    if p.peek() != Some(b'{') {
        return Err("top level must be an object".into());
    }
    p.object(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    p.trace_events
        .ok_or_else(|| "no traceEvents array at the top level".into())
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    trace_events: Option<usize>,
}

impl JsonParser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        self.pos += b.map_or(0, |_| 1);
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > 64 {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => {
                self.array(depth)?;
                Ok(())
            }
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key_start = self.pos;
            self.string()?;
            let key = &self.bytes[key_start + 1..self.pos - 1];
            self.expect(b':')?;
            if depth == 0 && key == b"traceEvents" {
                let n = self.array(depth + 1)?;
                self.trace_events = Some(n);
            } else {
                self.value(depth + 1)?;
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => return Err(format!("unterminated object at byte {}", self.pos)),
            }
        }
    }

    /// Parses an array, returning its element count.
    fn array(&mut self, depth: usize) -> Result<usize, String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(0);
        }
        let mut n = 0;
        loop {
            self.value(depth + 1)?;
            n += 1;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(n),
                _ => return Err(format!("unterminated array at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        if self.bump() != Some(b'"') {
            return Err(format!("expected string at byte {}", self.pos));
        }
        while let Some(b) = self.bump() {
            match b {
                b'"' => return Ok(()),
                b'\\' => {
                    self.bump();
                }
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("bad number at byte {start}"));
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(req: u64, stage: Stage, track: Track, start: u64, end: u64) -> TraceEvent {
        TraceEvent {
            req: RequestId(req),
            stage,
            track,
            start: Cycle(start),
            end: Cycle(end),
        }
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert!(!t.wants_windows());
        assert_eq!(t.next_request(), RequestId::UNTRACED);
        assert_eq!(t.next_request(), RequestId::UNTRACED, "no counter consumed");
        t.record(ev(1, Stage::TlbLookup, Track::Node(0), 0, 5));
        t.sample(Cycle(10), WindowSample::default());
        assert_eq!(t.recorded(), 0);
        assert_eq!(t.retained(), 0);
        assert!(t.breakdown().is_empty());
        assert!(t.series().samples().is_empty());
    }

    #[test]
    fn request_ids_are_sequential_and_tagged() {
        let mut t = Tracer::new(TraceConfig::full(), 1);
        let a = t.next_request();
        let b = t.next_request();
        assert_eq!(a, RequestId(1));
        assert_eq!(b, RequestId(2));
        assert!(a.is_traced());
        assert_eq!(RequestId(0x1_0007).wire_tag(), 7, "tag is the low 16 bits");
        assert_eq!(t.requests_issued(), 2);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_accounts() {
        let cfg = TraceConfig::full().with_ring_capacity(3);
        let mut t = Tracer::new(cfg, 1);
        for i in 0..5u64 {
            t.record(ev(
                i + 1,
                Stage::NvmAccess,
                Track::Nvm(0),
                i * 10,
                i * 10 + 1,
            ));
        }
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.retained(), 3);
        let kept: Vec<u64> = t.events().map(|e| e.req.0).collect();
        assert_eq!(kept, vec![3, 4, 5], "oldest events are overwritten first");
        // Breakdown still sees every event, dropped or not.
        assert_eq!(t.breakdown().stage(Stage::NvmAccess).count(), 5);
    }

    #[test]
    fn breakdown_only_mode_retains_nothing() {
        let mut t = Tracer::new(TraceConfig::breakdown_only(), 2);
        t.record(ev(1, Stage::FabricSend, Track::Fabric(1), 0, 100));
        assert_eq!(t.retained(), 0);
        assert_eq!(t.dropped(), 0, "no ring means no overflow to account");
        assert_eq!(t.recorded(), 1);
        assert_eq!(t.node_breakdown(1).stage(Stage::FabricSend).count(), 1);
    }

    #[test]
    fn breakdowns_aggregate_per_node_and_device() {
        let mut t = Tracer::new(TraceConfig::breakdown_only(), 2);
        t.record(ev(1, Stage::TlbLookup, Track::Node(0), 0, 2));
        t.record(ev(1, Stage::StuWalk, Track::Stu(0), 2, 12));
        t.record(ev(2, Stage::TlbLookup, Track::Node(1), 0, 4));
        t.record(ev(1, Stage::NvmAccess, Track::Nvm(0), 12, 42));
        assert_eq!(t.node_breakdown(0).total_samples(), 2);
        assert_eq!(t.node_breakdown(1).total_samples(), 1);
        assert_eq!(t.device_breakdown().total_samples(), 1);
        let run = t.breakdown();
        assert_eq!(run.total_samples(), 4);
        assert_eq!(run.stage(Stage::TlbLookup).count(), 2);
        assert_eq!(run.stage(Stage::TlbLookup).max(), 4);
        assert_eq!(run.stage(Stage::NvmAccess).sum(), 30);
    }

    #[test]
    fn window_series_buckets_by_completion() {
        let cfg = TraceConfig::full().with_window_cycles(100);
        let mut t = Tracer::new(cfg, 1);
        let s = |i: u64| WindowSample {
            instructions: i,
            fam_at: 1,
            fam_total: 2,
            ..WindowSample::default()
        };
        t.sample(Cycle(10), s(5));
        t.sample(Cycle(90), s(7));
        t.sample(Cycle(250), s(1));
        let windows = t.series().samples();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].instructions, 12);
        assert_eq!(windows[1].instructions, 0, "empty window present");
        assert_eq!(windows[2].instructions, 1);
        assert!((windows[0].at_percent() - 50.0).abs() < 1e-12);
        assert!((windows[0].ipc(100) - 0.12).abs() < 1e-12);
        assert_eq!(t.series().clipped(), 0);
    }

    #[test]
    fn request_base_gives_disjoint_id_ranges() {
        let mut main = Tracer::new(TraceConfig::full(), 2);
        let mut shard = Tracer::new(TraceConfig::full(), 2).with_request_base(1 << 48);
        assert_eq!(main.next_request(), RequestId(1));
        assert_eq!(shard.next_request(), RequestId((1 << 48) + 1));
        assert_eq!(shard.next_request(), RequestId((1 << 48) + 2));
    }

    #[test]
    fn window_series_merge_is_elementwise() {
        let cfg = TraceConfig::full().with_window_cycles(100);
        let mut a = Tracer::new(cfg, 1);
        let mut b = Tracer::new(cfg, 1);
        let s = |i: u64| WindowSample {
            instructions: i,
            ..WindowSample::default()
        };
        a.sample(Cycle(10), s(5));
        b.sample(Cycle(50), s(2));
        b.sample(Cycle(250), s(9));
        a.series.merge(b.series());
        let windows = a.series().samples();
        assert_eq!(windows.len(), 3, "merge grows to the longer series");
        assert_eq!(windows[0].instructions, 7);
        assert_eq!(windows[1].instructions, 0);
        assert_eq!(windows[2].instructions, 9);
        // Merging an empty (disabled) series is a no-op.
        a.series.merge(Tracer::disabled().series());
        assert_eq!(a.series().samples().len(), 3);
    }

    #[test]
    fn absorb_merges_breakdowns_series_and_ring() {
        let cfg = TraceConfig::full()
            .with_ring_capacity(4)
            .with_window_cycles(100);
        let mut main = Tracer::new(cfg, 2);
        let mut shard = Tracer::new(cfg, 2).with_request_base(1 << 48);
        let mr = main.next_request();
        main.record(ev(mr.0, Stage::TlbLookup, Track::Node(0), 0, 2));
        let sr = shard.next_request();
        shard.record(TraceEvent {
            req: sr,
            stage: Stage::TlbLookup,
            track: Track::Node(1),
            start: Cycle(5),
            end: Cycle(9),
        });
        shard.sample(
            Cycle(50),
            WindowSample {
                instructions: 3,
                ..WindowSample::default()
            },
        );
        main.absorb(&shard);
        assert_eq!(main.recorded(), 2);
        assert_eq!(main.retained(), 2);
        assert_eq!(main.dropped(), 0);
        assert_eq!(main.node_breakdown(0).total_samples(), 1);
        assert_eq!(main.node_breakdown(1).total_samples(), 1);
        let run = main.breakdown();
        assert_eq!(run.stage(Stage::TlbLookup).count(), 2);
        assert_eq!(run.stage(Stage::TlbLookup).max(), 4);
        assert_eq!(main.series().samples()[0].instructions, 3);
        // The shard's event arrived in the ring with its shard-range id.
        assert!(main.events().any(|e| e.req == sr));
        // The id counter did not move: the next main id is still 2.
        assert_eq!(main.next_request(), RequestId(2));
        // Absorbing into a disabled tracer is inert.
        let mut off = Tracer::disabled();
        off.absorb(&shard);
        assert_eq!(off.recorded(), 0);
    }

    #[test]
    fn stage_roster_is_dense_and_named() {
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
            assert!(!s.name().is_empty());
            assert_eq!(s.to_string(), s.name());
        }
        assert_eq!(Stage::COUNT, 12);
    }

    #[test]
    fn chrome_trace_is_valid_and_counts_events() {
        let mut t = Tracer::new(TraceConfig::full(), 1);
        t.record(ev(1, Stage::FabricSend, Track::Fabric(0), 0, 1000));
        t.record(ev(1, Stage::NvmAccess, Track::Nvm(0), 1000, 1120));
        t.record(ev(1, Stage::FabricRecv, Track::Fabric(0), 1120, 2120));
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &t, 2000).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // 1 process_name + 2 thread_name metadata + 3 "X" events.
        assert_eq!(validate_chrome_json(&text).unwrap(), 6);
        assert!(text.contains("\"name\": \"fabric0\""));
        assert!(text.contains("\"name\": \"nvm0\""));
        // 1000 cycles at 2 GHz = 0.5 us.
        assert!(text.contains("\"ts\": 0.0000, \"dur\": 0.5000"));
    }

    #[test]
    fn validator_accepts_general_json_and_rejects_garbage() {
        assert_eq!(
            validate_chrome_json(
                "{\"traceEvents\": [], \"x\": [1, -2.5e3, true, null, \"s\\\"t\"]}"
            )
            .unwrap(),
            0
        );
        assert!(validate_chrome_json("{\"traceEvents\": [}").is_err());
        assert!(validate_chrome_json("{}").is_err(), "traceEvents required");
        assert!(validate_chrome_json("[1, 2]").is_err(), "must be an object");
        assert!(validate_chrome_json("{\"a\": 1} junk").is_err());
        assert!(validate_chrome_json("{\"a\": \"unterminated").is_err());
    }

    #[test]
    fn event_span_arithmetic() {
        let e = ev(9, Stage::Backoff, Track::Fabric(3), 40, 100);
        assert_eq!(e.cycles(), 60);
        assert_eq!(e.track.to_string(), "fabric3");
        assert_eq!(e.req.to_string(), "req 9");
    }
}
