//! Deterministic, seed-driven fault injection for the simulation
//! substrate.
//!
//! Real fabric-attached-memory interconnects see transient link
//! errors, congestion-induced timeouts, and stale-mapping rejections;
//! a virtual-memory scheme for FAM is only credible if its recovery
//! half is exercised. This module provides the substrate-level
//! [`FaultInjector`]: timing models ask it whether a traversal is
//! dropped or corrupted, whether a link is inside a scheduled
//! down-window, whether the STU momentarily stalls, and whether a
//! cached translation has gone stale.
//!
//! Two properties are load-bearing:
//!
//! * **Determinism** — all probabilistic draws come from one seeded
//!   [`SimRng`] consumed in simulation order, and link-down windows are
//!   computed arithmetically from the seed (no RNG state consumed), so
//!   the same seed always yields a bit-identical fault schedule.
//! * **Zero cost when disabled** — a disabled injector is never
//!   consulted beyond one branch on [`FaultInjector::is_enabled`]; no
//!   RNG state advances and no timing changes, so runs with injection
//!   off are identical to runs built without the injector at all.

use crate::stats::Counter;
use crate::{Cycle, Duration, SimRng};

/// What happened to one fabric traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricFault {
    /// The request (or its response) vanished; the sender times out.
    Drop,
    /// The frame arrived with flipped bits; the receiver's CRC check
    /// rejects it and a corrupt-NACK travels back.
    Corrupt,
}

/// A fault that never heals, no matter how many times the requester
/// retries. Where [`FabricFault`]s model a flaky wire, these model a
/// dead one: the *virtual-memory* layer, not the retry loop, must
/// absorb them (quarantine, evacuation, shootdown, degraded mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PersistentFault {
    /// FAM module `module` dies outright. Both the data path and the
    /// media are gone: every page the module backs is lost.
    NodeDead {
        /// Index of the dead module in the FAM pool.
        module: usize,
    },
    /// A contiguous range of FAM pages fails at the media level
    /// (uncorrectable NVM wear-out). The module stays reachable; only
    /// the failed pages are lost.
    MediaFailed {
        /// First failed FAM page.
        first_page: u64,
        /// Number of consecutive failed pages.
        pages: u64,
    },
    /// The fabric link to module `module` is severed for good. The
    /// media is intact and the broker's management path still reaches
    /// it, so pages can be *evacuated* to surviving modules — but the
    /// data path never comes back.
    LinkSevered {
        /// Index of the unreachable module.
        module: usize,
    },
}

impl PersistentFault {
    /// The module this fault takes off the data path, if it is a
    /// whole-module fault.
    pub fn module(&self) -> Option<usize> {
        match *self {
            PersistentFault::NodeDead { module } | PersistentFault::LinkSevered { module } => {
                Some(module)
            }
            PersistentFault::MediaFailed { .. } => None,
        }
    }

    /// Whether affected pages can still be copied out through the
    /// broker's management path. Severed links strand reachable data;
    /// dead nodes and failed media destroy it.
    pub fn evacuable(&self) -> bool {
        matches!(self, PersistentFault::LinkSevered { .. })
    }
}

/// When a [`PersistentFault`] strikes: at the `after_fam_ops`-th FAM
/// operation (1-based) counted at the injector. Counting operations —
/// not cycles or references — keeps the strike point identical across
/// the sequential and parallel engines, whose per-cycle interleavings
/// legitimately differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistentSchedule {
    /// The fault that strikes.
    pub fault: PersistentFault,
    /// The 1-based FAM-operation ordinal at which it strikes.
    pub after_fam_ops: u64,
}

/// Injector knobs. The default is fully disabled and adds no cost.
///
/// Probabilities are per *fabric traversal* (or per translator hit for
/// `stale_prob`); the link-down schedule is periodic with a
/// seed-derived jitter per window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master switch; `false` makes every query a no-op.
    pub enabled: bool,
    /// Seed of the injector's private RNG (independent of the
    /// workload seed so fault schedules can be varied in isolation).
    pub seed: u64,
    /// Probability a traversal is silently dropped (recovered by
    /// timeout + retry).
    pub drop_prob: f64,
    /// Probability a traversal arrives corrupted (recovered by
    /// CRC-detect + NACK + retry).
    pub corrupt_prob: f64,
    /// Probability a node-cached FAM translation is stale when used
    /// (recovered by invalidate + full STU walk — DeACT's `V`-flag
    /// verification story).
    pub stale_prob: f64,
    /// Probability the STU stalls on a verification or walk request.
    pub stu_stall_prob: f64,
    /// Cycles one STU stall lasts.
    pub stu_stall_cycles: u64,
    /// Cycles between scheduled transient link-down windows
    /// (`0` = no windows).
    pub link_down_period: u64,
    /// Cycles each link-down window lasts.
    pub link_down_cycles: u64,
    /// An optional scheduled permanent failure. Unlike every other
    /// knob it is not probabilistic: it strikes exactly once, at a
    /// fixed FAM-operation ordinal, and never heals.
    pub persistent: Option<PersistentSchedule>,
}

impl FaultConfig {
    /// The all-off configuration (also [`Default`]).
    pub fn disabled() -> FaultConfig {
        FaultConfig {
            enabled: false,
            seed: 0,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            stale_prob: 0.0,
            stu_stall_prob: 0.0,
            stu_stall_cycles: 0,
            link_down_period: 0,
            link_down_cycles: 0,
            persistent: None,
        }
    }

    /// A transient-fault-only profile: every injected fault is
    /// recoverable with bounded retries — drops, corruptions, stale
    /// translations and short STU stalls at rates high enough to
    /// exercise every recovery path in a short run.
    pub fn transient(seed: u64) -> FaultConfig {
        FaultConfig {
            enabled: true,
            seed,
            drop_prob: 0.01,
            corrupt_prob: 0.01,
            stale_prob: 0.005,
            stu_stall_prob: 0.01,
            stu_stall_cycles: 200,
            link_down_period: 2_000_000,
            link_down_cycles: 10_000,
            persistent: None,
        }
    }

    /// A persistent-fault-only profile: no transient noise, just
    /// `fault` striking at the `after_fam_ops`-th FAM operation. Used
    /// by the `--kill-node` CLI knob and the chaos sweep.
    pub fn persistent_only(seed: u64, fault: PersistentFault, after_fam_ops: u64) -> FaultConfig {
        FaultConfig {
            enabled: true,
            seed,
            persistent: Some(PersistentSchedule {
                fault,
                after_fam_ops,
            }),
            ..FaultConfig::disabled()
        }
    }

    /// Adds a scheduled persistent fault to this profile (enabling the
    /// injector if it was off).
    pub fn with_persistent(self, fault: PersistentFault, after_fam_ops: u64) -> FaultConfig {
        FaultConfig {
            enabled: true,
            persistent: Some(PersistentSchedule {
                fault,
                after_fam_ops,
            }),
            ..self
        }
    }

    /// Checks knob ranges.
    ///
    /// # Panics
    ///
    /// Panics if any probability lies outside `[0, 1]`, or if the sum
    /// of drop and corrupt probabilities exceeds 1 (they are drawn
    /// from one partitioned uniform sample).
    pub fn validate(&self) {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("stale_prob", self.stale_prob),
            ("stu_stall_prob", self.stu_stall_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be a probability");
        }
        assert!(
            self.drop_prob + self.corrupt_prob <= 1.0,
            "drop_prob + corrupt_prob must not exceed 1"
        );
        if self.link_down_period > 0 {
            assert!(
                self.link_down_cycles < self.link_down_period,
                "link-down windows must be shorter than their period"
            );
        }
        if let Some(schedule) = self.persistent {
            assert!(
                self.enabled,
                "a persistent fault requires the injector to be enabled"
            );
            assert!(
                schedule.after_fam_ops >= 1,
                "after_fam_ops is a 1-based ordinal"
            );
            if let PersistentFault::MediaFailed { pages, .. } = schedule.fault {
                assert!(pages >= 1, "a media failure must cover at least one page");
            }
        }
    }
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::disabled()
    }
}

/// Counts of faults the injector actually produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Traversals dropped.
    pub drops: Counter,
    /// Traversals corrupted.
    pub corruptions: Counter,
    /// Translator entries declared stale.
    pub stale_marks: Counter,
    /// STU stalls injected.
    pub stu_stalls: Counter,
    /// Traversals that arrived during a link-down window and waited.
    pub link_down_waits: Counter,
}

/// The substrate fault injector. See the module docs for the
/// determinism and zero-cost-when-disabled contracts.
///
/// # Examples
///
/// ```
/// use fam_sim::{Cycle, FaultConfig, FaultInjector};
///
/// let mut a = FaultInjector::new(FaultConfig::transient(7));
/// let mut b = FaultInjector::new(FaultConfig::transient(7));
/// for _ in 0..1000 {
///     assert_eq!(a.fabric_fault(), b.fabric_fault());
/// }
///
/// let mut off = FaultInjector::disabled();
/// assert!(!off.is_enabled());
/// assert_eq!(off.fabric_fault(), None);
/// assert_eq!(off.link_up_at(Cycle(123)), Cycle(123));
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: SimRng,
    stats: FaultStats,
    /// 1-based ordinal of FAM operations seen so far; drives the
    /// persistent-fault schedule. Never advanced when no persistent
    /// fault is configured.
    fam_ops: u64,
}

/// Stateless 64-bit mix (SplitMix64 finalizer) for per-window jitter.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// Creates an injector.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range knobs (see [`FaultConfig::validate`]).
    pub fn new(config: FaultConfig) -> FaultInjector {
        config.validate();
        FaultInjector {
            rng: SimRng::seeded(config.seed ^ 0xFA_017),
            config,
            stats: FaultStats::default(),
            fam_ops: 0,
        }
    }

    /// An injector that never fires.
    pub fn disabled() -> FaultInjector {
        FaultInjector::new(FaultConfig::disabled())
    }

    /// Whether any fault can ever fire. Callers on hot paths branch on
    /// this once and skip all other queries when it is `false`.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// The configuration in force.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Draws the fate of one fabric traversal. `None` means delivered
    /// intact. Disabled injectors always deliver and consume no RNG
    /// state.
    pub fn fabric_fault(&mut self) -> Option<FabricFault> {
        if !self.config.enabled || (self.config.drop_prob == 0.0 && self.config.corrupt_prob == 0.0)
        {
            return None;
        }
        let u = self.rng.unit();
        if u < self.config.drop_prob {
            self.stats.drops.inc();
            Some(FabricFault::Drop)
        } else if u < self.config.drop_prob + self.config.corrupt_prob {
            self.stats.corruptions.inc();
            Some(FabricFault::Corrupt)
        } else {
            None
        }
    }

    /// Start of link-down window `k` (`k >= 1`): `k * period` plus a
    /// seed-derived jitter of up to a quarter period, so windows are
    /// scheduled, not metronomic, yet fully determined by the seed.
    fn window_start(&self, k: u64) -> u64 {
        let period = self.config.link_down_period;
        k * period + mix(self.config.seed ^ k) % (period / 4).max(1)
    }

    /// When the link is next usable at `now`: `now` itself if the link
    /// is up, otherwise the end of the scheduled down-window covering
    /// `now` (counted as a wait).
    pub fn link_up_at(&mut self, now: Cycle) -> Cycle {
        if !self.config.enabled || self.config.link_down_period == 0 {
            return now;
        }
        let k = now.0 / self.config.link_down_period;
        if k == 0 {
            return now;
        }
        let start = self.window_start(k);
        if now.0 >= start && now.0 < start + self.config.link_down_cycles {
            self.stats.link_down_waits.inc();
            Cycle(start + self.config.link_down_cycles)
        } else {
            now
        }
    }

    /// Draws whether the STU stalls on this request, and for how long.
    pub fn stu_stall(&mut self) -> Option<Duration> {
        if !self.config.enabled || self.config.stu_stall_prob == 0.0 {
            return None;
        }
        if self.rng.chance(self.config.stu_stall_prob) {
            self.stats.stu_stalls.inc();
            Some(Duration(self.config.stu_stall_cycles))
        } else {
            None
        }
    }

    /// Draws where to corrupt a frame of `frame_len` bytes: a byte
    /// position and a non-zero XOR mask. Callers apply it to the real
    /// encoded frame so corruption is *detected* by the wire checksum,
    /// not assumed.
    pub fn corruption_site(&mut self, frame_len: usize) -> (usize, u8) {
        let pos = self.rng.index(frame_len.max(1));
        let mask = 1 + self.rng.below(255) as u8;
        (pos, mask)
    }

    /// Draws whether a node-cached translation is stale when consumed
    /// (triggering the NACK-stale → invalidate → re-walk recovery).
    pub fn stale_translation(&mut self) -> bool {
        if !self.config.enabled || self.config.stale_prob == 0.0 {
            return false;
        }
        let stale = self.rng.chance(self.config.stale_prob);
        if stale {
            self.stats.stale_marks.inc();
        }
        stale
    }

    /// Advances the FAM-operation ordinal that drives the persistent
    /// schedule. Call exactly once per FAM operation, in simulation
    /// order; a no-op (and free) when no persistent fault is armed.
    pub fn note_fam_op(&mut self) {
        if self.config.persistent.is_some() {
            self.fam_ops += 1;
        }
    }

    /// The persistent fault now in force, if its strike ordinal has
    /// been reached. Purely arithmetic — consumes no RNG state.
    pub fn persistent_active(&self) -> Option<PersistentFault> {
        let schedule = self.config.persistent?;
        (self.fam_ops >= schedule.after_fam_ops).then_some(schedule.fault)
    }

    /// The armed persistent schedule, active or not.
    pub fn persistent_schedule(&self) -> Option<PersistentSchedule> {
        self.config.persistent
    }

    /// Counts of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Total faults of all kinds injected so far.
    pub fn injected_total(&self) -> u64 {
        let s = self.stats;
        s.drops.value() + s.corruptions.value() + s.stale_marks.value() + s.stu_stalls.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_is_inert_and_consumes_no_rng() {
        let mut i = FaultInjector::disabled();
        let before = i.rng.clone().next_u64();
        for _ in 0..100 {
            assert_eq!(i.fabric_fault(), None);
            assert!(!i.stale_translation());
            assert_eq!(i.stu_stall(), None);
            assert_eq!(i.link_up_at(Cycle(1_000_000)), Cycle(1_000_000));
        }
        assert_eq!(i.rng.next_u64(), before, "no RNG state consumed");
        assert_eq!(i.injected_total(), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultInjector::new(FaultConfig::transient(42));
        let mut b = FaultInjector::new(FaultConfig::transient(42));
        for t in 0..5000u64 {
            assert_eq!(a.fabric_fault(), b.fabric_fault());
            assert_eq!(a.stale_translation(), b.stale_translation());
            assert_eq!(a.link_up_at(Cycle(t * 997)), b.link_up_at(Cycle(t * 997)));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultInjector::new(FaultConfig::transient(1));
        let mut b = FaultInjector::new(FaultConfig::transient(2));
        let diverged = (0..2000).any(|_| a.fabric_fault() != b.fabric_fault());
        assert!(diverged);
    }

    #[test]
    fn fault_mix_tracks_probabilities() {
        let cfg = FaultConfig {
            drop_prob: 0.2,
            corrupt_prob: 0.1,
            ..FaultConfig::transient(3)
        };
        let mut i = FaultInjector::new(cfg);
        let n = 20_000;
        for _ in 0..n {
            i.fabric_fault();
        }
        let drops = i.stats().drops.value() as f64 / n as f64;
        let corr = i.stats().corruptions.value() as f64 / n as f64;
        assert!((drops - 0.2).abs() < 0.02, "drop rate {drops}");
        assert!((corr - 0.1).abs() < 0.02, "corrupt rate {corr}");
    }

    #[test]
    fn link_down_windows_cover_the_schedule() {
        let cfg = FaultConfig {
            enabled: true,
            link_down_period: 1000,
            link_down_cycles: 100,
            ..FaultConfig::disabled()
        };
        let mut i = FaultInjector::new(cfg);
        // Inside window 1 the caller is pushed to the window end.
        let start = i.window_start(1);
        let up = i.link_up_at(Cycle(start + 10));
        assert_eq!(up, Cycle(start + 100));
        // Clear of any window, time passes through.
        let free = Cycle(start + 500);
        assert_eq!(i.link_up_at(free), free);
        assert_eq!(i.stats().link_down_waits.value(), 1);
    }

    #[test]
    fn stall_duration_matches_config() {
        let cfg = FaultConfig {
            stu_stall_prob: 1.0,
            stu_stall_cycles: 77,
            ..FaultConfig::transient(5)
        };
        let mut i = FaultInjector::new(cfg);
        assert_eq!(i.stu_stall(), Some(Duration(77)));
    }

    #[test]
    fn persistent_schedule_is_ordinal_driven_and_rng_free() {
        let fault = PersistentFault::NodeDead { module: 2 };
        let mut i = FaultInjector::new(FaultConfig::persistent_only(9, fault, 3));
        let before = i.rng.clone().next_u64();
        assert_eq!(i.persistent_active(), None, "armed but not yet struck");
        i.note_fam_op();
        i.note_fam_op();
        assert_eq!(i.persistent_active(), None, "ordinal 2 < strike point 3");
        i.note_fam_op();
        assert_eq!(i.persistent_active(), Some(fault), "strikes at ordinal 3");
        i.note_fam_op();
        assert_eq!(i.persistent_active(), Some(fault), "never heals");
        // The persistent-only profile has zero transient probabilities,
        // so the fabric path stays clean and consumes no RNG.
        assert_eq!(i.fabric_fault(), None);
        assert_eq!(i.rng.next_u64(), before, "no RNG state consumed");
    }

    #[test]
    fn persistent_ordinal_never_advances_when_unarmed() {
        let mut i = FaultInjector::new(FaultConfig::transient(4));
        for _ in 0..100 {
            i.note_fam_op();
        }
        assert_eq!(i.fam_ops, 0, "ordinal is free when nothing is armed");
        assert_eq!(i.persistent_active(), None);
    }

    #[test]
    fn persistent_fault_classification() {
        let dead = PersistentFault::NodeDead { module: 1 };
        let media = PersistentFault::MediaFailed {
            first_page: 10,
            pages: 4,
        };
        let severed = PersistentFault::LinkSevered { module: 1 };
        assert_eq!(dead.module(), Some(1));
        assert_eq!(media.module(), None);
        assert_eq!(severed.module(), Some(1));
        assert!(!dead.evacuable());
        assert!(!media.evacuable());
        assert!(severed.evacuable(), "management path survives a cut link");
    }

    #[test]
    #[should_panic(expected = "1-based ordinal")]
    fn zero_strike_ordinal_rejected() {
        FaultInjector::new(FaultConfig::persistent_only(
            0,
            PersistentFault::NodeDead { module: 0 },
            0,
        ));
    }

    #[test]
    #[should_panic(expected = "injector to be enabled")]
    fn disabled_injector_with_persistent_fault_rejected() {
        FaultInjector::new(FaultConfig {
            enabled: false,
            persistent: Some(PersistentSchedule {
                fault: PersistentFault::LinkSevered { module: 0 },
                after_fam_ops: 1,
            }),
            ..FaultConfig::disabled()
        });
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn out_of_range_probability_rejected() {
        FaultInjector::new(FaultConfig {
            enabled: true,
            drop_prob: 1.5,
            ..FaultConfig::disabled()
        });
    }

    #[test]
    #[should_panic(expected = "shorter than their period")]
    fn degenerate_link_window_rejected() {
        FaultInjector::new(FaultConfig {
            enabled: true,
            link_down_period: 100,
            link_down_cycles: 100,
            ..FaultConfig::disabled()
        });
    }
}
