//! A 4-level x86-64-style radix page table.

use crate::addr::PAGE_BYTES;

/// Number of radix levels (PGD, PUD, PMD, PTE — §II-B).
pub const LEVELS: usize = 4;

/// Bits of index per level.
const INDEX_BITS: u32 = 9;
const INDEX_MASK: u64 = (1 << INDEX_BITS) - 1;
/// Slots per table node (`2^INDEX_BITS`, exactly as in hardware).
const NODE_SLOTS: usize = 1 << INDEX_BITS;
/// Bytes per page-table entry.
const ENTRY_BYTES: u64 = 8;

/// Access-permission flags carried in a page-table entry.
///
/// # Examples
///
/// ```
/// use fam_vm::PtFlags;
///
/// let f = PtFlags::rw();
/// assert!(f.writable() && !f.executable());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PtFlags(u8);

impl PtFlags {
    const READ: u8 = 0b001;
    const WRITE: u8 = 0b010;
    const EXEC: u8 = 0b100;

    /// Read-only mapping.
    pub fn ro() -> PtFlags {
        PtFlags(Self::READ)
    }

    /// Read/write mapping.
    pub fn rw() -> PtFlags {
        PtFlags(Self::READ | Self::WRITE)
    }

    /// Read/write/execute mapping.
    pub fn rwx() -> PtFlags {
        PtFlags(Self::READ | Self::WRITE | Self::EXEC)
    }

    /// Read/execute mapping.
    pub fn rx() -> PtFlags {
        PtFlags(Self::READ | Self::EXEC)
    }

    /// Whether reads are permitted.
    pub fn readable(self) -> bool {
        self.0 & Self::READ != 0
    }

    /// Whether writes are permitted.
    pub fn writable(self) -> bool {
        self.0 & Self::WRITE != 0
    }

    /// Whether instruction fetches are permitted.
    pub fn executable(self) -> bool {
        self.0 & Self::EXEC != 0
    }
}

/// A leaf page-table entry: the target physical page plus permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// The mapped physical page number (node-physical or FAM,
    /// depending on which table this is).
    pub target_page: u64,
    /// Access permissions.
    pub flags: PtFlags,
}

/// One step of a page-table walk: the memory read of a single entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStep {
    /// Level walked, `0` = PGD … `3` = PTE.
    pub level: usize,
    /// Physical byte address of the entry that was read.
    pub entry_addr: u64,
}

/// The full result of walking one virtual page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walk {
    /// Every entry read, in order. A complete walk has [`LEVELS`]
    /// steps; a walk that hits a non-present entry stops early.
    pub steps: Vec<WalkStep>,
    /// The final mapping, if the page is mapped.
    pub mapping: Option<Pte>,
}

#[derive(Debug, Clone)]
enum Slot {
    Table(usize),
    Leaf(Pte),
}

/// One table page. A page-table index is 9 bits, so instead of hashing
/// `u16` keys the node stores its 512 slots directly — a lookup is one
/// bounds-free array read, exactly the access a real table page does.
#[derive(Debug, Clone)]
struct Node {
    base_addr: u64,
    slots: Box<[Option<Slot>]>,
}

impl Node {
    fn new(base_addr: u64) -> Node {
        Node {
            base_addr,
            slots: vec![None; NODE_SLOTS].into_boxed_slice(),
        }
    }

    fn get(&self, idx: u16) -> Option<&Slot> {
        self.slots[idx as usize].as_ref()
    }

    fn get_mut(&mut self, idx: u16) -> Option<&mut Slot> {
        self.slots[idx as usize].as_mut()
    }

    fn set(&mut self, idx: u16, slot: Slot) -> Option<Slot> {
        self.slots[idx as usize].replace(slot)
    }

    fn take(&mut self, idx: u16) -> Option<Slot> {
        self.slots[idx as usize].take()
    }
}

/// A hierarchical 4-level page table whose interior nodes live at real
/// (simulated) physical addresses.
///
/// The point of modelling node placement is that a walk returns the
/// *physical addresses* of the entries it reads ([`Walk::steps`]), so
/// the timing model can send each step through the data caches and the
/// right memory device — which is exactly what distinguishes E-FAM,
/// I-FAM and DeACT traffic at the FAM (Fig. 4).
///
/// New interior nodes are placed by the caller-supplied allocator, so
/// the OS model decides whether page-table pages live in local DRAM or
/// FAM.
///
/// # Examples
///
/// ```
/// use fam_vm::{PageTable, PtFlags};
///
/// let mut pt = PageTable::new(0x1000);
/// let mut next = 0x10_0000u64;
/// let mut alloc = |_level| { let a = next; next += 4096; a };
/// pt.map(7, 99, PtFlags::rw(), &mut alloc);
/// assert_eq!(pt.translate(7).unwrap().target_page, 99);
/// assert_eq!(pt.walk(7).steps.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    nodes: Vec<Node>,
    mapped: u64,
}

impl PageTable {
    /// Creates an empty table whose root (PGD) page lives at
    /// `root_addr` (the simulated CR3 value).
    pub fn new(root_addr: u64) -> PageTable {
        PageTable {
            nodes: vec![Node::new(root_addr)],
            mapped: 0,
        }
    }

    fn index_at(vpage: u64, level: usize) -> u16 {
        debug_assert!(level < LEVELS);
        ((vpage >> (INDEX_BITS as usize * (LEVELS - 1 - level))) & INDEX_MASK) as u16
    }

    /// Maps `vpage → target_page` with `flags`, allocating interior
    /// node pages from `alloc_page`, which receives the depth of the
    /// node being created (1 = PUD … 3 = the PTE-level page) and must
    /// return the byte address of a fresh physical page — the hook the
    /// OS model uses to place PTE pages in DRAM or FAM. Returns the
    /// previous mapping if the page was already mapped.
    pub fn map(
        &mut self,
        vpage: u64,
        target_page: u64,
        flags: PtFlags,
        alloc_page: &mut dyn FnMut(usize) -> u64,
    ) -> Option<Pte> {
        let mut node = 0usize;
        for level in 0..LEVELS - 1 {
            let idx = Self::index_at(vpage, level);
            let next = match self.nodes[node].get(idx) {
                Some(Slot::Table(n)) => *n,
                Some(Slot::Leaf(_)) => {
                    panic!("region is huge-mapped; splitting is not supported")
                }
                None => {
                    let base_addr = alloc_page(level + 1);
                    let n = self.nodes.len();
                    self.nodes.push(Node::new(base_addr));
                    self.nodes[node].set(idx, Slot::Table(n));
                    n
                }
            };
            node = next;
        }
        let idx = Self::index_at(vpage, LEVELS - 1);
        let old = self.nodes[node].set(idx, Slot::Leaf(Pte { target_page, flags }));
        match old {
            Some(Slot::Leaf(pte)) => Some(pte),
            Some(Slot::Table(_)) => unreachable!("leaf level never holds tables"),
            None => {
                self.mapped += 1;
                None
            }
        }
    }

    /// Maps a *huge* page: a leaf installed at an interior level —
    /// `leaf_level` 2 is a 2 MB PMD mapping (covers 512 pages),
    /// `leaf_level` 1 is a 1 GB PUD mapping (covers 512² pages). The
    /// paper discusses (and rejects for non-shared data) large pages in
    /// §VI; this entry point supports that exploration.
    ///
    /// Returns the previous mapping at that slot, if any.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_level` is 0 or ≥ [`LEVELS`], if `vpage` is not
    /// aligned to the huge-page size, or if a smaller mapping already
    /// occupies the region (no splitting support — real kernels split
    /// lazily, the simulator forbids it).
    pub fn map_huge(
        &mut self,
        vpage: u64,
        target_page: u64,
        flags: PtFlags,
        leaf_level: usize,
        alloc_page: &mut dyn FnMut(usize) -> u64,
    ) -> Option<Pte> {
        assert!(
            (1..LEVELS).contains(&leaf_level),
            "huge leaves live at levels 1 (1 GB) or 2 (2 MB); level 3 is map()"
        );
        let span = 1u64 << (INDEX_BITS as usize * (LEVELS - 1 - leaf_level));
        assert_eq!(vpage % span, 0, "huge mapping must be size-aligned");
        let mut node = 0usize;
        for level in 0..leaf_level {
            let idx = Self::index_at(vpage, level);
            let next = match self.nodes[node].get(idx) {
                Some(Slot::Table(n)) => *n,
                Some(Slot::Leaf(_)) => panic!("region already huge-mapped at a higher level"),
                None => {
                    let base_addr = alloc_page(level + 1);
                    let n = self.nodes.len();
                    self.nodes.push(Node::new(base_addr));
                    self.nodes[node].set(idx, Slot::Table(n));
                    n
                }
            };
            node = next;
        }
        let idx = Self::index_at(vpage, leaf_level);
        match self.nodes[node].set(idx, Slot::Leaf(Pte { target_page, flags })) {
            Some(Slot::Leaf(pte)) => Some(pte),
            Some(Slot::Table(_)) => {
                panic!("region already holds smaller mappings; splitting is not supported")
            }
            None => {
                self.mapped += 1;
                None
            }
        }
    }

    /// Removes a huge mapping installed by [`PageTable::map_huge`].
    ///
    /// # Panics
    ///
    /// Panics if `leaf_level` is out of range (see `map_huge`).
    pub fn unmap_huge(&mut self, vpage: u64, leaf_level: usize) -> Option<Pte> {
        assert!((1..LEVELS).contains(&leaf_level));
        let mut node = 0usize;
        for level in 0..leaf_level {
            let idx = Self::index_at(vpage, level);
            match self.nodes[node].get(idx) {
                Some(Slot::Table(n)) => node = *n,
                _ => return None,
            }
        }
        let idx = Self::index_at(vpage, leaf_level);
        match self.nodes[node].take(idx) {
            Some(Slot::Leaf(pte)) => {
                self.mapped -= 1;
                Some(pte)
            }
            Some(slot) => {
                self.nodes[node].set(idx, slot);
                None
            }
            None => None,
        }
    }

    /// Translates `vpage`, also reporting the level the leaf was found
    /// at (3 for a 4 KB page, 2 for 2 MB, 1 for 1 GB).
    pub fn translate_with_level(&self, vpage: u64) -> Option<(Pte, usize)> {
        let walk = self.walk(vpage);
        walk.mapping.map(|pte| (pte, walk.steps.len() - 1))
    }

    /// Walks the table for `vpage`, recording the entry address read at
    /// each level. Stops at the first non-present entry.
    pub fn walk(&self, vpage: u64) -> Walk {
        let mut steps = Vec::with_capacity(LEVELS);
        let mapping = self.walk_with(vpage, |s| steps.push(s));
        Walk { steps, mapping }
    }

    /// As [`PageTable::walk`], but reports each entry read through
    /// `visit` instead of collecting a vector — the allocation-free
    /// form the per-reference hot path uses.
    pub fn walk_with(&self, vpage: u64, mut visit: impl FnMut(WalkStep)) -> Option<Pte> {
        let mut node = 0usize;
        for level in 0..LEVELS {
            let idx = Self::index_at(vpage, level);
            visit(WalkStep {
                level,
                entry_addr: self.nodes[node].base_addr + idx as u64 * ENTRY_BYTES,
            });
            match self.nodes[node].get(idx) {
                Some(Slot::Table(n)) => node = *n,
                Some(Slot::Leaf(pte)) => return Some(*pte),
                None => break,
            }
        }
        None
    }

    /// Entry address that a walk would read at `level` for `vpage`,
    /// if the walk reaches that level. Level 0 always resolves (the
    /// root is always present).
    pub fn entry_addr_at(&self, vpage: u64, level: usize) -> Option<u64> {
        let mut node = 0usize;
        for l in 0..=level {
            let idx = Self::index_at(vpage, l);
            let addr = self.nodes[node].base_addr + idx as u64 * ENTRY_BYTES;
            if l == level {
                return Some(addr);
            }
            match self.nodes[node].get(idx) {
                Some(Slot::Table(n)) => node = *n,
                _ => return None,
            }
        }
        None
    }

    /// Looks up a mapping without recording walk steps.
    pub fn translate(&self, vpage: u64) -> Option<Pte> {
        self.walk(vpage).mapping
    }

    /// Removes the mapping for `vpage`, returning it if present.
    /// Interior nodes are not reclaimed (as in real kernels, table
    /// pages are freed lazily if at all).
    pub fn unmap(&mut self, vpage: u64) -> Option<Pte> {
        let mut node = 0usize;
        for level in 0..LEVELS - 1 {
            let idx = Self::index_at(vpage, level);
            match self.nodes[node].get(idx) {
                Some(Slot::Table(n)) => node = *n,
                _ => return None,
            }
        }
        let idx = Self::index_at(vpage, LEVELS - 1);
        match self.nodes[node].take(idx) {
            Some(Slot::Leaf(pte)) => {
                self.mapped -= 1;
                Some(pte)
            }
            Some(slot) => {
                self.nodes[node].set(idx, slot);
                None
            }
            None => None,
        }
    }

    /// Updates the permissions of an existing mapping in place; returns
    /// `false` if the page is not mapped.
    pub fn protect(&mut self, vpage: u64, flags: PtFlags) -> bool {
        let mut node = 0usize;
        for level in 0..LEVELS - 1 {
            let idx = Self::index_at(vpage, level);
            match self.nodes[node].get(idx) {
                Some(Slot::Table(n)) => node = *n,
                _ => return false,
            }
        }
        let idx = Self::index_at(vpage, LEVELS - 1);
        match self.nodes[node].get_mut(idx) {
            Some(Slot::Leaf(pte)) => {
                pte.flags = flags;
                true
            }
            _ => false,
        }
    }

    /// Physical base addresses of every table page (root first), in
    /// creation order. Recovery code scans this to find table pages
    /// resident on failed media.
    pub fn table_page_addrs(&self) -> impl Iterator<Item = u64> + '_ {
        self.nodes.iter().map(|n| n.base_addr)
    }

    /// Moves the table page whose physical base is `old_base` to
    /// `new_base`, returning whether such a page existed. The *logical*
    /// structure is untouched — only the physical placement changes, so
    /// subsequent walks read their entries from the new address. This
    /// is the broker's table-rebuild primitive: when failed media takes
    /// out an interior page, the broker (which authored every entry)
    /// reconstructs it on a surviving page and repoints the parent.
    pub fn relocate_table_page(&mut self, old_base: u64, new_base: u64) -> bool {
        match self.nodes.iter_mut().find(|n| n.base_addr == old_base) {
            Some(node) => {
                node.base_addr = new_base;
                true
            }
            None => false,
        }
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    /// Number of table (interior + root) pages.
    pub fn table_pages(&self) -> usize {
        self.nodes.len()
    }

    /// The simulated CR3: the root page's physical address.
    pub fn root_addr(&self) -> u64 {
        self.nodes[0].base_addr
    }

    /// Total bytes of physical memory consumed by table pages.
    pub fn table_bytes(&self) -> u64 {
        self.nodes.len() as u64 * PAGE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bump_alloc(start: u64) -> impl FnMut(usize) -> u64 {
        let mut next = start;
        move |_level| {
            let a = next;
            next += PAGE_BYTES;
            a
        }
    }

    #[test]
    fn map_translate_roundtrip() {
        let mut pt = PageTable::new(0);
        let mut alloc = bump_alloc(0x10000);
        pt.map(0x12345, 0x42, PtFlags::rw(), &mut alloc);
        let pte = pt.translate(0x12345).unwrap();
        assert_eq!(pte.target_page, 0x42);
        assert!(pte.flags.writable());
        assert_eq!(pt.translate(0x12346), None);
    }

    #[test]
    fn full_walk_has_four_steps_with_distinct_addresses() {
        let mut pt = PageTable::new(0);
        let mut alloc = bump_alloc(0x10000);
        pt.map(1, 2, PtFlags::ro(), &mut alloc);
        let walk = pt.walk(1);
        assert_eq!(walk.steps.len(), LEVELS);
        assert!(walk.mapping.is_some());
        let mut addrs: Vec<u64> = walk.steps.iter().map(|s| s.entry_addr).collect();
        addrs.dedup();
        assert_eq!(addrs.len(), LEVELS, "each level reads a distinct entry");
        assert_eq!(
            walk.steps[0].entry_addr,
            pt.root_addr() + PageTable::index_at(1, 0) as u64 * 8
        );
    }

    #[test]
    fn unmapped_walk_stops_early() {
        let pt = PageTable::new(0);
        let walk = pt.walk(99);
        assert_eq!(walk.steps.len(), 1, "root entry read, found non-present");
        assert_eq!(walk.mapping, None);
    }

    #[test]
    fn neighbouring_pages_share_interior_nodes() {
        let mut pt = PageTable::new(0);
        let mut alloc = bump_alloc(0x10000);
        pt.map(0, 1, PtFlags::ro(), &mut alloc);
        let tables_before = pt.table_pages();
        pt.map(1, 2, PtFlags::ro(), &mut alloc);
        assert_eq!(pt.table_pages(), tables_before, "same PTE page reused");
        // A far-away page needs a whole new subtree.
        pt.map(1 << 27, 3, PtFlags::ro(), &mut alloc);
        assert_eq!(pt.table_pages(), tables_before + 3);
    }

    #[test]
    fn remap_returns_previous() {
        let mut pt = PageTable::new(0);
        let mut alloc = bump_alloc(0x10000);
        assert_eq!(pt.map(5, 10, PtFlags::ro(), &mut alloc), None);
        let old = pt.map(5, 11, PtFlags::rw(), &mut alloc).unwrap();
        assert_eq!(old.target_page, 10);
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn unmap_removes_mapping() {
        let mut pt = PageTable::new(0);
        let mut alloc = bump_alloc(0x10000);
        pt.map(5, 10, PtFlags::ro(), &mut alloc);
        assert_eq!(pt.unmap(5).unwrap().target_page, 10);
        assert_eq!(pt.translate(5), None);
        assert_eq!(pt.unmap(5), None);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn protect_updates_flags() {
        let mut pt = PageTable::new(0);
        let mut alloc = bump_alloc(0x10000);
        pt.map(5, 10, PtFlags::rw(), &mut alloc);
        assert!(pt.protect(5, PtFlags::ro()));
        assert!(!pt.translate(5).unwrap().flags.writable());
        assert!(!pt.protect(6, PtFlags::ro()));
    }

    #[test]
    fn entry_addr_at_matches_walk() {
        let mut pt = PageTable::new(0);
        let mut alloc = bump_alloc(0x10000);
        pt.map(0x777, 1, PtFlags::ro(), &mut alloc);
        let walk = pt.walk(0x777);
        for step in &walk.steps {
            assert_eq!(pt.entry_addr_at(0x777, step.level), Some(step.entry_addr));
        }
        assert_eq!(pt.entry_addr_at(0x888 << 18, 3), None, "subtree absent");
    }

    #[test]
    fn relocate_table_page_repoints_walk_addresses() {
        let mut pt = PageTable::new(0);
        let mut alloc = bump_alloc(0x10000);
        pt.map(0x777, 1, PtFlags::ro(), &mut alloc);
        let doomed = pt.walk(0x777).steps[2].entry_addr & !(PAGE_BYTES - 1);
        assert!(pt.table_page_addrs().any(|a| a == doomed));
        assert!(pt.relocate_table_page(doomed, 0xAB_0000));
        // Same logical translation, new physical entry address.
        assert_eq!(pt.translate(0x777).unwrap().target_page, 1);
        let step = pt.walk(0x777).steps[2];
        assert_eq!(step.entry_addr & !(PAGE_BYTES - 1), 0xAB_0000);
        assert!(
            !pt.relocate_table_page(doomed, 0xCD_0000),
            "old address no longer names a table page"
        );
    }

    #[test]
    fn flags_combinators() {
        assert!(PtFlags::ro().readable());
        assert!(!PtFlags::ro().writable());
        assert!(PtFlags::rwx().executable());
        assert!(PtFlags::rx().executable());
        assert!(!PtFlags::rx().writable());
    }

    #[test]
    fn table_bytes_counts_nodes() {
        let mut pt = PageTable::new(0);
        let mut alloc = bump_alloc(0x10000);
        pt.map(0, 1, PtFlags::ro(), &mut alloc);
        assert_eq!(pt.table_bytes(), 4 * PAGE_BYTES); // root + 3 interior
    }

    #[test]
    fn index_extraction_covers_36_bits() {
        // vpage with distinct 9-bit groups: 0b000000001_000000010_000000011_000000100
        let vpage = (1u64 << 27) | (2 << 18) | (3 << 9) | 4;
        assert_eq!(PageTable::index_at(vpage, 0), 1);
        assert_eq!(PageTable::index_at(vpage, 1), 2);
        assert_eq!(PageTable::index_at(vpage, 2), 3);
        assert_eq!(PageTable::index_at(vpage, 3), 4);
    }

    #[test]
    fn huge_2mb_mapping_covers_512_pages() {
        let mut pt = PageTable::new(0);
        let mut alloc = bump_alloc(0x10000);
        // 2 MB leaf at level 2: vpage must be 512-aligned.
        pt.map_huge(512, 0x9000, PtFlags::rw(), 2, &mut alloc);
        let (pte, level) = pt.translate_with_level(512 + 300).unwrap();
        assert_eq!(pte.target_page, 0x9000);
        assert_eq!(level, 2);
        // The walk is one step shorter than a 4 KB walk.
        assert_eq!(pt.walk(512 + 300).steps.len(), 3);
        // Outside the region: unmapped.
        assert_eq!(pt.translate(1024), None);
    }

    #[test]
    fn huge_1gb_mapping_at_pud_level() {
        let mut pt = PageTable::new(0);
        let mut alloc = bump_alloc(0x10000);
        let gb_pages = 512 * 512;
        pt.map_huge(gb_pages, 0x4_0000, PtFlags::ro(), 1, &mut alloc);
        let (_, level) = pt.translate_with_level(gb_pages + 98_765).unwrap();
        assert_eq!(level, 1);
        assert_eq!(pt.walk(gb_pages).steps.len(), 2);
    }

    #[test]
    fn unmap_huge_roundtrip() {
        let mut pt = PageTable::new(0);
        let mut alloc = bump_alloc(0x10000);
        pt.map_huge(512, 7, PtFlags::rw(), 2, &mut alloc);
        assert_eq!(pt.mapped_pages(), 1);
        assert_eq!(pt.unmap_huge(512, 2).unwrap().target_page, 7);
        assert_eq!(pt.translate(512 + 5), None);
        assert_eq!(pt.unmap_huge(512, 2), None);
    }

    #[test]
    #[should_panic(expected = "size-aligned")]
    fn unaligned_huge_mapping_rejected() {
        let mut pt = PageTable::new(0);
        let mut alloc = bump_alloc(0x10000);
        pt.map_huge(513, 7, PtFlags::rw(), 2, &mut alloc);
    }

    #[test]
    #[should_panic(expected = "splitting is not supported")]
    fn small_mapping_under_huge_rejected() {
        let mut pt = PageTable::new(0);
        let mut alloc = bump_alloc(0x10000);
        pt.map_huge(512, 7, PtFlags::rw(), 2, &mut alloc);
        pt.map(512 + 3, 9, PtFlags::rw(), &mut alloc);
    }

    #[test]
    #[should_panic(expected = "smaller mappings")]
    fn huge_over_small_rejected() {
        let mut pt = PageTable::new(0);
        let mut alloc = bump_alloc(0x10000);
        pt.map(512 + 3, 9, PtFlags::rw(), &mut alloc);
        pt.map_huge(512, 7, PtFlags::rw(), 2, &mut alloc);
    }
}
