//! Page-table-walker caches (Bhargava et al. [8]).

use fam_mem::{CacheConfig, Replacement, SetAssocCache};
use fam_sim::stats::Ratio;

use crate::page_table::LEVELS;

/// A small cache of *intermediate* page-table entries (PGD/PUD/PMD),
/// letting the walker skip upper levels of a walk — the PTW-cache
/// optimisation of Bhargava et al. that the paper grants its baselines (§IV uses 32
/// entries).
///
/// Keys combine the level with the virtual-page prefix that selects the
/// entry at that level; the PTE level is never cached here (that is the
/// TLB's job).
///
/// # Examples
///
/// ```
/// use fam_vm::PtwCache;
///
/// let mut c = PtwCache::new(32);
/// assert_eq!(c.deepest_cached(0x12345), None);
/// c.fill(0x12345, 2); // PMD entry now cached
/// assert_eq!(c.deepest_cached(0x12345), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct PtwCache {
    cache: SetAssocCache<()>,
    lookups: Ratio,
}

impl PtwCache {
    /// Creates a PTW cache with `entries` total entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> PtwCache {
        let ways = entries.min(4);
        PtwCache {
            cache: SetAssocCache::new(CacheConfig::new(
                (entries / ways).max(1),
                ways,
                Replacement::Lru,
            )),
            lookups: Ratio::new(),
        }
    }

    fn key(vpage: u64, level: usize) -> u64 {
        debug_assert!(level < LEVELS - 1, "PTE level is not PTW-cached");
        // Prefix that selects the entry at `level`: drop the index bits
        // of all deeper levels.
        let prefix = vpage >> (9 * (LEVELS - 1 - level));
        (level as u64) << 60 | prefix
    }

    /// The deepest intermediate level (0 = PGD … 2 = PMD) whose entry
    /// for `vpage` is cached, meaning the walk can start *below* it.
    /// Records one hit (if any level is cached) or miss in the stats.
    pub fn deepest_cached(&mut self, vpage: u64) -> Option<usize> {
        let mut deepest = None;
        for level in (0..LEVELS - 1).rev() {
            if self.cache.get(Self::key(vpage, level)).is_some() {
                deepest = Some(level);
                break;
            }
        }
        self.lookups.record(deepest.is_some());
        deepest
    }

    /// Caches the intermediate entries of a completed walk down to
    /// `deepest_level` (inclusive).
    pub fn fill(&mut self, vpage: u64, deepest_level: usize) {
        for level in 0..=deepest_level.min(LEVELS - 2) {
            self.cache.insert(Self::key(vpage, level), ());
        }
    }

    /// Invalidates all cached entries (shootdown).
    pub fn flush(&mut self) {
        self.cache.clear();
    }

    /// Hit/miss statistics of `deepest_cached` queries.
    pub fn stats(&self) -> Ratio {
        self.lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_misses() {
        let mut c = PtwCache::new(32);
        assert_eq!(c.deepest_cached(42), None);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn fill_makes_levels_visible() {
        let mut c = PtwCache::new(32);
        c.fill(42, 2);
        assert_eq!(c.deepest_cached(42), Some(2));
        assert_eq!(c.stats().hits(), 1);
    }

    #[test]
    fn partial_fill_reports_shallower_level() {
        let mut c = PtwCache::new(32);
        c.fill(42, 0); // only the PGD entry
        assert_eq!(c.deepest_cached(42), Some(0));
    }

    #[test]
    fn nearby_pages_share_interior_entries() {
        let mut c = PtwCache::new(32);
        c.fill(0x1000, 2);
        // Same PMD region (same vpage >> 9): hit at PMD level.
        assert_eq!(c.deepest_cached(0x1001), Some(2));
        // Same PUD region only (same vpage >> 18): hit at PUD level.
        assert_eq!(c.deepest_cached(0x1000 ^ (1 << 10)), Some(1));
        // Different PGD region entirely: miss.
        assert_eq!(c.deepest_cached(0x1000 ^ (1 << 30)), None);
    }

    #[test]
    fn flush_empties() {
        let mut c = PtwCache::new(32);
        c.fill(42, 2);
        c.flush();
        assert_eq!(c.deepest_cached(42), None);
    }

    #[test]
    fn capacity_bounds_entries() {
        let mut c = PtwCache::new(4);
        // Fill many disjoint regions; the cache can only keep a few.
        for i in 0..64u64 {
            c.fill(i << 30, 0);
        }
        let hits = (0..64u64)
            .filter(|i| c.deepest_cached(*i << 30).is_some())
            .count();
        assert!(hits <= 4 + 1, "tiny cache cannot retain all regions");
    }
}
