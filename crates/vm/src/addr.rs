//! Typed addresses for the three address spaces of a FAM system.
//!
//! A memory-centric system juggles three distinct address spaces
//! (§II-C): the application's *virtual* addresses, the node's imaginary
//! flat *node physical* addresses (two NUMA-like zones: low = local
//! DRAM, high = FAM), and the real *FAM* addresses assigned by the
//! memory broker. Mixing them up is exactly the class of bug DeACT's
//! access control exists to contain, so they are separate types here.

use std::fmt;

/// Page size used throughout the paper: 4 KB.
pub const PAGE_BYTES: u64 = 4096;

macro_rules! address_type {
    ($(#[$doc:meta])* $name:ident, $page_doc:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            #[doc = $page_doc]
            pub fn page(self) -> u64 {
                self.0 / PAGE_BYTES
            }

            /// Byte offset within the page.
            pub fn offset(self) -> u64 {
                self.0 % PAGE_BYTES
            }

            /// Reassembles an address from a page number and offset.
            ///
            /// # Panics
            ///
            /// Panics if `offset` is not smaller than the page size.
            pub fn from_page(page: u64, offset: u64) -> $name {
                assert!(offset < PAGE_BYTES, "offset must fit in a page");
                $name(page * PAGE_BYTES + offset)
            }

            /// The cache-line address (64-byte granularity).
            pub fn line(self) -> u64 {
                fam_mem::line_of(self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({:#x})", stringify!($name), self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<$name> for u64 {
            fn from(a: $name) -> u64 {
                a.0
            }
        }
    };
}

address_type!(
    /// An application virtual address, translated by the node MMU.
    VirtAddr,
    "The virtual page number."
);

address_type!(
    /// A node physical address — the flat space each node's OS manages,
    /// oblivious to the real FAM layout (§III-A). Low addresses are the
    /// local-DRAM zone; high addresses are the FAM zone.
    NodePhysAddr,
    "The node physical page number."
);

address_type!(
    /// A real fabric-attached-memory address, only meaningful at
    /// system level. Produced by the STU or the FAM translator; the
    /// node OS never manages these.
    FamAddr,
    "The FAM page number."
);

impl VirtAddr {
    /// The virtual page number (alias of `page`, reads better at call
    /// sites that deal in several page-number spaces at once).
    pub fn vpage(self) -> u64 {
        self.page()
    }
}

/// Identifies a compute node at system level.
///
/// ACM entries carry a 14-bit node id (Fig. 5), so ids range over
/// `0..16383`; the all-ones pattern is reserved to mark shared pages.
///
/// # Examples
///
/// ```
/// use fam_vm::NodeId;
///
/// let n = NodeId::new(7);
/// assert_eq!(n.index(), 7);
/// assert!(NodeId::new(16382).index() < NodeId::SHARED_MARKER as usize);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u16);

impl NodeId {
    /// The 14-bit all-ones pattern that marks a shared page in ACM
    /// (`0x3FFF`; the paper writes the full 16-bit field as `0xfffd`
    /// for a shared read/execute page).
    pub const SHARED_MARKER: u16 = 0x3FFF;

    /// Creates a node id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not fit in 14 bits or equals the reserved
    /// shared-page marker (so at most 16383 nodes, as in §III-A).
    pub fn new(id: u16) -> NodeId {
        assert!(
            id < Self::SHARED_MARKER,
            "node id must be < 0x3FFF (the shared-page marker)"
        );
        NodeId(id)
    }

    /// The raw 14-bit value.
    pub fn raw(self) -> u16 {
        self.0
    }

    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_and_offset_roundtrip() {
        let a = VirtAddr(5 * PAGE_BYTES + 123);
        assert_eq!(a.page(), 5);
        assert_eq!(a.offset(), 123);
        assert_eq!(VirtAddr::from_page(5, 123), a);
    }

    #[test]
    fn line_uses_64_byte_blocks() {
        assert_eq!(FamAddr(0).line(), 0);
        assert_eq!(FamAddr(64).line(), 1);
        assert_eq!(FamAddr(4096).line(), 64);
    }

    #[test]
    fn address_types_are_distinct() {
        // This is a compile-time property; the test documents it.
        fn takes_fam(_: FamAddr) {}
        takes_fam(FamAddr(1));
        // takes_fam(NodePhysAddr(1)); // would not compile
    }

    #[test]
    fn display_and_hex() {
        assert_eq!(VirtAddr(0x1000).to_string(), "VirtAddr(0x1000)");
        assert_eq!(format!("{:x}", NodePhysAddr(255)), "ff");
        assert_eq!(u64::from(FamAddr(9)), 9);
    }

    #[test]
    fn node_id_bounds() {
        assert_eq!(NodeId::new(0).index(), 0);
        assert_eq!(NodeId::new(16382).raw(), 16382);
    }

    #[test]
    #[should_panic(expected = "shared-page marker")]
    fn shared_marker_is_not_a_node_id() {
        let _ = NodeId::new(NodeId::SHARED_MARKER);
    }

    #[test]
    #[should_panic(expected = "fit in a page")]
    fn oversized_offset_rejected() {
        let _ = VirtAddr::from_page(0, PAGE_BYTES);
    }
}
