//! Virtual-memory substrate for the DeACT reproduction.
//!
//! Implements the node-side virtual memory machinery of §II-B:
//!
//! * [`addr`] — typed addresses: [`VirtAddr`], [`NodePhysAddr`],
//!   [`FamAddr`] and [`NodeId`]. The three address spaces are distinct
//!   types so a node address can never be handed to the FAM without
//!   passing through a translation step.
//! * [`PageTable`] — a 4-level x86-64-style radix page table whose
//!   intermediate nodes occupy simulated physical pages, so a walk
//!   yields the exact sequence of memory reads the hardware would
//!   perform.
//! * [`TlbHierarchy`] — the two-level TLB of Table II (32 + 256
//!   entries).
//! * [`PageWalker`] + [`PtwCache`] — the MMU page-table walker with the
//!   intermediate-level walker caches of Bhargava et al.
//! * [`TwoDimWalker`] — nested (2-D) walk accounting for virtualized
//!   two-level translation (Fig. 1b), used for analysis and ablations.
//!
//! # Examples
//!
//! ```
//! use fam_vm::{PageTable, PtFlags, VirtAddr};
//!
//! let mut pt = PageTable::new(0x100_0000);
//! let mut next = 0x200_0000u64;
//! let mut alloc = |_level| { let a = next; next += 4096; a };
//! pt.map(VirtAddr(0x7000_0000).vpage(), 0x42, PtFlags::rw(), &mut alloc);
//! let walk = pt.walk(VirtAddr(0x7000_0000).vpage());
//! assert_eq!(walk.mapping.unwrap().target_page, 0x42);
//! assert_eq!(walk.steps.len(), 4); // PGD, PUD, PMD, PTE
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
mod page_table;
mod ptw_cache;
mod tlb;
mod walker;

pub use addr::{FamAddr, NodeId, NodePhysAddr, VirtAddr, PAGE_BYTES};
pub use page_table::{PageTable, PtFlags, Pte, Walk, WalkStep, LEVELS};
pub use ptw_cache::PtwCache;
pub use tlb::{TlbConfig, TlbHierarchy, TlbHit};
pub use walker::{PageWalker, TwoDimWalker, WalkAccess, WalkPlan};
