//! The node's two-level TLB (Table II: 32 + 256 entries).

use fam_mem::{CacheConfig, Replacement, SetAssocCache};
use fam_sim::stats::Ratio;
use fam_sim::Duration;

use crate::Pte;

/// Which TLB level serviced a translation, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlbHit {
    /// First-level TLB.
    L1,
    /// Second-level TLB.
    L2,
    /// Both levels missed: a page-table walk is required.
    Miss,
}

/// Geometry and latencies of the TLB hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// L1 TLB entries (paper: 32).
    pub l1_entries: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 lookup latency in cycles.
    pub l1_latency: u64,
    /// L2 TLB entries (paper: 256).
    pub l2_entries: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 lookup latency in cycles.
    pub l2_latency: u64,
}

impl Default for TlbConfig {
    /// The paper's TLB configuration (Table II) with conventional
    /// latencies (1 / 7 cycles).
    fn default() -> TlbConfig {
        TlbConfig {
            l1_entries: 32,
            l1_ways: 4,
            l1_latency: 1,
            l2_entries: 256,
            l2_ways: 8,
            l2_latency: 7,
        }
    }
}

/// A two-level TLB caching virtual-page → PTE translations.
///
/// # Examples
///
/// ```
/// use fam_vm::{Pte, PtFlags, TlbConfig, TlbHierarchy, TlbHit};
///
/// let mut tlb = TlbHierarchy::new(TlbConfig::default());
/// let pte = Pte { target_page: 9, flags: PtFlags::rw() };
/// assert_eq!(tlb.lookup(5).0, TlbHit::Miss);
/// tlb.fill(5, pte);
/// assert_eq!(tlb.lookup(5).0, TlbHit::L1);
/// ```
#[derive(Debug, Clone)]
pub struct TlbHierarchy {
    l1: SetAssocCache<Pte>,
    l2: SetAssocCache<Pte>,
    config: TlbConfig,
    overall: Ratio,
}

impl TlbHierarchy {
    /// Creates an empty TLB hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if any entry count does not divide by its associativity.
    pub fn new(config: TlbConfig) -> TlbHierarchy {
        assert_eq!(config.l1_entries % config.l1_ways, 0);
        assert_eq!(config.l2_entries % config.l2_ways, 0);
        TlbHierarchy {
            l1: SetAssocCache::new(CacheConfig::new(
                config.l1_entries / config.l1_ways,
                config.l1_ways,
                Replacement::Lru,
            )),
            l2: SetAssocCache::new(CacheConfig::new(
                config.l2_entries / config.l2_ways,
                config.l2_ways,
                Replacement::Lru,
            )),
            config,
            overall: Ratio::new(),
        }
    }

    /// Looks up `vpage`; on an L2 hit the entry is promoted to L1.
    /// Returns the hit level, the lookup latency, and the PTE if found.
    pub fn lookup(&mut self, vpage: u64) -> (TlbHit, Duration, Option<Pte>) {
        let _prof = fam_sim::profile::span(fam_sim::profile::PhaseId::Tlb);
        let mut latency = Duration(self.config.l1_latency);
        if let Some(pte) = self.l1.get(vpage).copied() {
            self.overall.hit();
            return (TlbHit::L1, latency, Some(pte));
        }
        latency += Duration(self.config.l2_latency);
        if let Some(pte) = self.l2.get(vpage).copied() {
            self.overall.hit();
            self.l1.insert(vpage, pte);
            return (TlbHit::L2, latency, Some(pte));
        }
        self.overall.miss();
        (TlbHit::Miss, latency, None)
    }

    /// Checks whether `vpage` is resident at either level, without
    /// updating recency, promotion, or statistics. `probe(v).is_some()`
    /// exactly predicts whether an immediately following
    /// [`TlbHierarchy::lookup`] of the same `v` would hit, and the
    /// returned PTE is the one that lookup would observe.
    pub fn probe(&self, vpage: u64) -> Option<Pte> {
        self.l1.peek(vpage).or_else(|| self.l2.peek(vpage)).copied()
    }

    /// Installs a translation after a walk (fills both levels).
    pub fn fill(&mut self, vpage: u64, pte: Pte) {
        self.l2.insert(vpage, pte);
        self.l1.insert(vpage, pte);
    }

    /// Invalidates one page (single-page shootdown).
    pub fn invalidate(&mut self, vpage: u64) {
        self.l1.invalidate(vpage);
        self.l2.invalidate(vpage);
    }

    /// Invalidates every entry whose cached PTE fails `pred`, at both
    /// levels, returning how many entries were removed. This is the
    /// broadcast-shootdown primitive for permanent-failure recovery:
    /// the initiator knows which *frames* went away, not which virtual
    /// pages each surviving core happens to have mapped to them, so
    /// the match is on the cached payload.
    pub fn invalidate_stale(&mut self, mut pred: impl FnMut(&Pte) -> bool) -> usize {
        self.l1.retain(|_, pte| !pred(pte)) + self.l2.retain(|_, pte| !pred(pte))
    }

    /// Flushes everything (full shootdown / context switch).
    pub fn flush(&mut self) {
        self.l1.clear();
        self.l2.clear();
    }

    /// Combined hit/miss statistics (a hit at either level counts).
    pub fn stats(&self) -> Ratio {
        self.overall
    }

    /// The configured geometry.
    pub fn config(&self) -> TlbConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PtFlags;

    fn pte(p: u64) -> Pte {
        Pte {
            target_page: p,
            flags: PtFlags::rw(),
        }
    }

    #[test]
    fn miss_fill_hit() {
        let mut t = TlbHierarchy::new(TlbConfig::default());
        let (h, lat, _) = t.lookup(1);
        assert_eq!(h, TlbHit::Miss);
        assert_eq!(lat, Duration(8)); // both levels probed
        t.fill(1, pte(10));
        let (h, lat, p) = t.lookup(1);
        assert_eq!(h, TlbHit::L1);
        assert_eq!(lat, Duration(1));
        assert_eq!(p.unwrap().target_page, 10);
    }

    #[test]
    fn l2_hit_promotes_to_l1() {
        let cfg = TlbConfig {
            l1_entries: 2,
            l1_ways: 2,
            l2_entries: 8,
            l2_ways: 8,
            ..TlbConfig::default()
        };
        let mut t = TlbHierarchy::new(cfg);
        t.fill(1, pte(1));
        t.fill(2, pte(2));
        t.fill(3, pte(3)); // evicts 1 from tiny L1, still in L2
        let (h, _, _) = t.lookup(1);
        assert_eq!(h, TlbHit::L2);
        let (h, _, _) = t.lookup(1);
        assert_eq!(h, TlbHit::L1, "promoted after L2 hit");
    }

    #[test]
    fn invalidate_and_flush() {
        let mut t = TlbHierarchy::new(TlbConfig::default());
        t.fill(1, pte(1));
        t.fill(2, pte(2));
        t.invalidate(1);
        assert_eq!(t.lookup(1).0, TlbHit::Miss);
        assert_eq!(t.lookup(2).0, TlbHit::L1);
        t.flush();
        assert_eq!(t.lookup(2).0, TlbHit::Miss);
    }

    #[test]
    fn stats_accumulate() {
        let mut t = TlbHierarchy::new(TlbConfig::default());
        t.lookup(1);
        t.fill(1, pte(1));
        t.lookup(1);
        assert_eq!(t.stats().hits(), 1);
        assert_eq!(t.stats().misses(), 1);
    }

    #[test]
    fn probe_predicts_lookup_without_side_effects() {
        let mut t = TlbHierarchy::new(TlbConfig::default());
        assert_eq!(t.probe(1), None);
        assert_eq!(t.stats().total(), 0, "probe records no statistics");
        t.fill(1, pte(10));
        assert_eq!(t.probe(1).unwrap().target_page, 10);
        assert_eq!(t.stats().total(), 0);
        // Exercise the L2-only path: evict 1 from a tiny L1.
        let cfg = TlbConfig {
            l1_entries: 2,
            l1_ways: 2,
            l2_entries: 8,
            l2_ways: 8,
            ..TlbConfig::default()
        };
        let mut t = TlbHierarchy::new(cfg);
        t.fill(1, pte(1));
        t.fill(2, pte(2));
        t.fill(3, pte(3)); // 1 falls out of L1, stays in L2
        let probed = t.probe(1);
        let (hit, _, looked) = t.lookup(1);
        assert_eq!(hit, TlbHit::L2);
        assert_eq!(probed, looked, "probe returns what lookup observes");
    }

    #[test]
    fn invalidate_stale_matches_on_ptes_at_both_levels() {
        // Tiny L1 so entry 1 lives only in L2 — the shootdown must
        // reach both levels.
        let cfg = TlbConfig {
            l1_entries: 2,
            l1_ways: 2,
            l2_entries: 8,
            l2_ways: 8,
            ..TlbConfig::default()
        };
        let mut t = TlbHierarchy::new(cfg);
        t.fill(1, pte(100)); // doomed, L2-only after evictions
        t.fill(2, pte(100)); // doomed, resident in both levels
        t.fill(3, pte(3)); // survivor
        let removed = t.invalidate_stale(|p| p.target_page == 100);
        assert!(removed >= 2, "both doomed vpages leave ({removed} ways)");
        assert_eq!(t.probe(1), None);
        assert_eq!(t.probe(2), None);
        assert_eq!(t.probe(3).unwrap().target_page, 3, "survivor untouched");
    }

    #[test]
    fn paper_default_capacity() {
        let t = TlbHierarchy::new(TlbConfig::default());
        assert_eq!(t.config().l1_entries, 32);
        assert_eq!(t.config().l2_entries, 256);
    }
}
