//! The MMU page-table walker, one- and two-dimensional.

use crate::page_table::{PageTable, Pte, LEVELS};
use crate::PtwCache;

/// A single memory read a walk must perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkAccess {
    /// The page-table level being read (0 = PGD … 3 = PTE).
    pub level: usize,
    /// Whether this read belongs to the nested (second-dimension)
    /// table of a 2-D walk.
    pub nested: bool,
    /// Physical byte address of the entry.
    pub entry_addr: u64,
}

/// The memory-access plan for translating one virtual page: the exact
/// ordered reads the hardware walker would issue. The timing layer
/// replays these through the caches and memory devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkPlan {
    /// Ordered entry reads.
    pub accesses: Vec<WalkAccess>,
    /// The resulting mapping, if the page is mapped.
    pub mapping: Option<Pte>,
}

impl WalkPlan {
    /// Number of memory reads in the plan.
    pub fn reads(&self) -> usize {
        self.accesses.len()
    }
}

/// A one-dimensional page-table walker with an optional PTW cache.
///
/// # Examples
///
/// ```
/// use fam_vm::{PageTable, PageWalker, PtFlags, PtwCache};
///
/// let mut pt = PageTable::new(0);
/// let mut next = 0x10_0000u64;
/// let mut alloc = |_level| { let a = next; next += 4096; a };
/// pt.map(7, 99, PtFlags::rw(), &mut alloc);
///
/// let mut cache = PtwCache::new(32);
/// let cold = PageWalker::plan(&pt, Some(&mut cache), 7);
/// assert_eq!(cold.reads(), 4);
/// // The interior levels are now PTW-cached: only the PTE is read.
/// let warm = PageWalker::plan(&pt, Some(&mut cache), 7);
/// assert_eq!(warm.reads(), 1);
/// ```
#[derive(Debug)]
pub struct PageWalker;

impl PageWalker {
    /// Plans the walk of `vpage` through `table`, consulting and
    /// updating `ptw_cache` if provided.
    pub fn plan(table: &PageTable, ptw_cache: Option<&mut PtwCache>, vpage: u64) -> WalkPlan {
        let mut accesses = Vec::new();
        let mapping = PageWalker::plan_into(table, ptw_cache, vpage, &mut accesses);
        WalkPlan { accesses, mapping }
    }

    /// As [`PageWalker::plan`], but writes the access list into a
    /// caller-supplied buffer (cleared first) and returns the mapping
    /// directly. With a recycled buffer this plans a walk without
    /// allocating — the form the simulation hot path uses.
    pub fn plan_into(
        table: &PageTable,
        ptw_cache: Option<&mut PtwCache>,
        vpage: u64,
        out: &mut Vec<WalkAccess>,
    ) -> Option<Pte> {
        let _prof = fam_sim::profile::span(fam_sim::profile::PhaseId::PageWalk);
        out.clear();
        match ptw_cache {
            None => table.walk_with(vpage, |s| {
                out.push(WalkAccess {
                    level: s.level,
                    nested: false,
                    entry_addr: s.entry_addr,
                })
            }),
            Some(cache) => {
                let start_level = match cache.deepest_cached(vpage) {
                    Some(l) => l + 1,
                    None => 0,
                };
                let mapping = table.walk_with(vpage, |s| {
                    if s.level >= start_level {
                        out.push(WalkAccess {
                            level: s.level,
                            nested: false,
                            entry_addr: s.entry_addr,
                        })
                    }
                });
                if mapping.is_some() {
                    // A complete walk warms every interior level.
                    cache.fill(vpage, LEVELS - 2);
                }
                mapping
            }
        }
    }
}

/// A two-dimensional (nested) walker for virtualized two-level
/// translation (Fig. 1b): every guest-table entry is itself read at a
/// guest-physical address that must be translated by the nested table,
/// giving up to 24 reads per translation (§II-B).
///
/// The guest table maps virtual pages to guest-physical pages; the
/// nested table maps guest-physical pages to system-physical pages.
/// This is the structure the paper analogises I-FAM against, and it
/// backs the two-dimensional ablation bench.
#[derive(Debug)]
pub struct TwoDimWalker;

impl TwoDimWalker {
    /// Plans the 2-D walk of `vpage`, optionally accelerating the
    /// nested dimension with a PTW cache (nested-PTW caching of Bhargava et al.).
    ///
    /// The returned mapping is the final *system*-physical PTE
    /// composed from both dimensions.
    pub fn plan(
        guest: &PageTable,
        nested: &PageTable,
        mut nested_ptw: Option<&mut PtwCache>,
        vpage: u64,
    ) -> WalkPlan {
        let guest_walk = guest.walk(vpage);
        let mut accesses = Vec::new();

        // Each guest level's entry read requires translating the
        // guest-physical page that holds the entry via the nested
        // table.
        for step in &guest_walk.steps {
            let gpa_page = step.entry_addr / crate::PAGE_BYTES;
            let nested_plan = PageWalker::plan(nested, nested_ptw.as_deref_mut(), gpa_page);
            for a in nested_plan.accesses {
                accesses.push(WalkAccess {
                    level: a.level,
                    nested: true,
                    entry_addr: a.entry_addr,
                });
            }
            accesses.push(WalkAccess {
                level: step.level,
                nested: false,
                entry_addr: step.entry_addr,
            });
        }

        // Finally the guest-physical target page itself is translated.
        let mapping = match guest_walk.mapping {
            None => None,
            Some(gpte) => {
                let nested_plan = PageWalker::plan(nested, nested_ptw, gpte.target_page);
                for a in nested_plan.accesses {
                    accesses.push(WalkAccess {
                        level: a.level,
                        nested: true,
                        entry_addr: a.entry_addr,
                    });
                }
                nested_plan.mapping.map(|npte| Pte {
                    target_page: npte.target_page,
                    flags: gpte.flags,
                })
            }
        };

        WalkPlan { accesses, mapping }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PtFlags, PAGE_BYTES};

    fn bump_alloc(start: u64) -> impl FnMut(usize) -> u64 {
        let mut next = start;
        move |_level| {
            let a = next;
            next += PAGE_BYTES;
            a
        }
    }

    fn mapped_table(vpage: u64, target: u64) -> PageTable {
        let mut pt = PageTable::new(0);
        let mut alloc = bump_alloc(0x100_0000);
        pt.map(vpage, target, PtFlags::rw(), &mut alloc);
        pt
    }

    #[test]
    fn uncached_walk_reads_four_levels() {
        let pt = mapped_table(7, 99);
        let plan = PageWalker::plan(&pt, None, 7);
        assert_eq!(plan.reads(), 4);
        assert_eq!(plan.mapping.unwrap().target_page, 99);
        assert!(plan.accesses.iter().all(|a| !a.nested));
    }

    #[test]
    fn ptw_cache_skips_interior_levels() {
        let pt = mapped_table(7, 99);
        let mut cache = PtwCache::new(32);
        assert_eq!(PageWalker::plan(&pt, Some(&mut cache), 7).reads(), 4);
        let warm = PageWalker::plan(&pt, Some(&mut cache), 7);
        assert_eq!(warm.reads(), 1);
        assert_eq!(warm.accesses[0].level, 3);
    }

    #[test]
    fn failed_walk_is_not_cached() {
        let pt = mapped_table(7, 99);
        let mut cache = PtwCache::new(32);
        // Page in an unmapped PGD region: one read, nothing cached.
        let missing = 7 | (1 << 30);
        let plan = PageWalker::plan(&pt, Some(&mut cache), missing);
        assert!(plan.mapping.is_none());
        assert_eq!(plan.reads(), 1);
        let again = PageWalker::plan(&pt, Some(&mut cache), missing);
        assert_eq!(again.reads(), 1, "failure did not warm the cache");
    }

    /// Builds a nested table that identity-maps every guest-physical
    /// page the guest table's own pages and targets occupy.
    fn nested_for(_guest: &PageTable, extra_pages: &[u64]) -> PageTable {
        let mut nested = PageTable::new(0x800_0000);
        let mut alloc = bump_alloc(0x900_0000);
        // Identity-map a generous range covering guest table pages.
        for p in 0..0x3000u64 {
            nested.map(p, p, PtFlags::rw(), &mut alloc);
        }
        for &p in extra_pages {
            nested.map(p, p + 1, PtFlags::rw(), &mut alloc);
        }
        nested
    }

    #[test]
    fn two_dim_walk_reads_24_entries_cold() {
        let guest = mapped_table(7, 0x5000);
        let nested = nested_for(&guest, &[0x5000]);
        let plan = TwoDimWalker::plan(&guest, &nested, None, 7);
        // 4 guest levels x (4 nested + 1 guest read) + 4 nested for the
        // final target = 24 reads, the figure quoted in §II-B.
        assert_eq!(plan.reads(), 24);
        let m = plan.mapping.unwrap();
        assert_eq!(m.target_page, 0x5001, "composed through nested table");
    }

    #[test]
    fn nested_ptw_cache_shrinks_two_dim_walks() {
        let guest = mapped_table(7, 0x5000);
        let nested = nested_for(&guest, &[0x5000]);
        let mut cache = PtwCache::new(64);
        let cold = TwoDimWalker::plan(&guest, &nested, Some(&mut cache), 7);
        let warm = TwoDimWalker::plan(&guest, &nested, Some(&mut cache), 7);
        assert!(warm.reads() < cold.reads());
        // Guest dimension is never skipped (no guest PTW cache here):
        assert_eq!(warm.accesses.iter().filter(|a| !a.nested).count(), 4);
    }

    #[test]
    fn two_dim_unmapped_guest_truncates() {
        let guest = mapped_table(7, 0x5000);
        let nested = nested_for(&guest, &[0x5000]);
        let plan = TwoDimWalker::plan(&guest, &nested, None, 7 | (1 << 30));
        assert!(plan.mapping.is_none());
        assert!(plan.reads() < 24);
    }

    #[test]
    fn two_dim_unmapped_nested_target_yields_none() {
        let guest = mapped_table(7, 0xF_FFFF); // target outside nested range
        let nested = nested_for(&guest, &[]);
        let plan = TwoDimWalker::plan(&guest, &nested, None, 7);
        assert!(plan.mapping.is_none());
    }
}
