//! The memory-reference stream generator.

use fam_sim::SimRng;
use fam_vm::{VirtAddr, PAGE_BYTES};

use crate::Workload;

/// One off-core memory reference emitted by a generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Virtual address touched (line-granular).
    pub vaddr: VirtAddr,
    /// Whether this is a store.
    pub is_write: bool,
    /// Whether this reference depends on the previous one (pointer
    /// chasing): it cannot issue until the previous reference's data
    /// returns.
    pub dependent: bool,
    /// Non-memory instructions retired before this reference.
    pub gap_instrs: u32,
}

/// An endless, deterministic reference stream for one rank of a
/// [`Workload`].
///
/// The generation model:
///
/// 1. Each page visit starts a *run* of `seq_run`-ish consecutive
///    64-byte lines (geometrically distributed around the mean).
/// 2. When a run ends, the next page is chosen: with probability
///    `hot_fraction` uniformly from the hot set, otherwise by the
///    sweep rule — `stride_pages` forward for strided profiles, or
///    uniformly at random over the whole footprint.
/// 3. Each reference flips the dependent/write coins and draws an
///    instruction gap around the profile's mean density.
///
/// # Examples
///
/// ```
/// use fam_workloads::Workload;
///
/// let mut g = Workload::by_name("mcf").unwrap().generator(7);
/// let a = g.next_ref();
/// let b = g.next_ref();
/// assert_ne!((a.vaddr, a.gap_instrs, b.vaddr), (b.vaddr, 0, a.vaddr));
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: Workload,
    va_base: u64,
    rng: SimRng,
    current_page: u64,
    /// Base of the page currently being run over: the private heap or
    /// the shared segment.
    current_base: u64,
    line_in_page: u64,
    run_left: u32,
    sweep_page: u64,
    emitted: u64,
}

impl TraceGenerator {
    /// Creates a generator for `profile` with its heap at `va_base`.
    pub fn new(profile: Workload, va_base: u64, seed: u64) -> TraceGenerator {
        let mut rng = SimRng::seeded(seed ^ 0x57AC_E5EE_D000);
        let current_page = rng.below(profile.footprint_pages);
        TraceGenerator {
            profile,
            va_base,
            rng,
            current_page,
            current_base: va_base,
            line_in_page: 0,
            run_left: profile.seq_run,
            sweep_page: 0,
            emitted: 0,
        }
    }

    /// The workload this generator models.
    pub fn profile(&self) -> &Workload {
        &self.profile
    }

    /// References emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn pick_next_page(&mut self) -> u64 {
        let p = &self.profile;
        let roll = self.rng.unit();
        if roll < p.hot_fraction {
            self.rng.below(p.hot_pages.max(1))
        } else if roll < p.hot_fraction + p.warm_fraction {
            p.hot_pages + self.rng.below(p.warm_pages.max(1))
        } else if p.stride_pages > 1 {
            // Grid sweep: march through the footprint with a fixed
            // page stride, wrapping with a +1 offset so successive
            // sweeps cover different pages (cactus-style).
            self.sweep_page += p.stride_pages;
            if self.sweep_page >= p.footprint_pages {
                self.sweep_page %= p.footprint_pages;
                self.sweep_page += 1;
            }
            self.sweep_page
        } else {
            self.rng.below(p.footprint_pages)
        }
    }

    /// Draws a geometric-ish run length with the profile mean.
    fn draw_run(&mut self) -> u32 {
        let mean = self.profile.seq_run.max(1);
        if mean == 1 {
            return 1;
        }
        // Uniform in [1, 2*mean): mean ≈ seq_run without heavy tails.
        1 + self.rng.below(2 * mean as u64 - 1) as u32
    }

    /// Produces the next reference in the stream.
    pub fn next_ref(&mut self) -> MemRef {
        let p = self.profile;
        if self.run_left == 0 {
            if p.shared_fraction > 0.0 && self.rng.chance(p.shared_fraction) {
                self.current_base = crate::SHARED_VA_BASE;
                self.current_page = self.rng.below(p.shared_pages.max(1));
            } else {
                self.current_base = self.va_base;
                self.current_page = self.pick_next_page();
            }
            self.run_left = self.draw_run();
            self.line_in_page = self.rng.below(64);
        }
        self.run_left -= 1;

        let vaddr = VirtAddr(
            self.current_base + self.current_page * PAGE_BYTES + (self.line_in_page % 64) * 64,
        );
        self.line_in_page += 1;

        let mean_gap = p.mean_gap_instrs() as u64;
        let gap_instrs = (1 + self.rng.below(2 * mean_gap)) as u32;

        self.emitted += 1;
        MemRef {
            vaddr,
            is_write: self.rng.chance(p.write_fraction),
            dependent: self.rng.chance(p.dep_fraction),
            gap_instrs,
        }
    }

    /// Emits the next `n` references into a vector.
    pub fn take_refs(&mut self, n: usize) -> Vec<MemRef> {
        (0..n).map(|_| self.next_ref()).collect()
    }
}

impl Iterator for TraceGenerator {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        Some(self.next_ref())
    }
}

/// Phase-rotating bursty reference source for one rank: cycles
/// through the three [`crate::burst_phases`] generators (scan →
/// chase → dwell) every [`crate::trace::BurstConfig::phase_refs`]
/// references, starting at phase `rank % 3` so concurrent ranks are
/// never in lockstep. Used by [`crate::trace::synthesize_bursty`].
#[derive(Debug, Clone)]
pub struct BurstSynth {
    gens: [TraceGenerator; 3],
    phase: usize,
    left: u64,
    phase_refs: u64,
    emitted: u64,
}

impl BurstSynth {
    /// Creates the source for one rank, with per-rank per-phase
    /// derived seeds.
    #[must_use]
    pub fn new(cfg: &crate::trace::BurstConfig, rank: u16, va_base: u64) -> BurstSynth {
        let rank_seed = cfg
            .seed
            .wrapping_add(u64::from(rank).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let phases = crate::burst_phases();
        let gens = std::array::from_fn(|i| {
            TraceGenerator::new(phases[i], va_base, rank_seed ^ (i as u64 + 1))
        });
        BurstSynth {
            gens,
            phase: usize::from(rank) % 3,
            left: cfg.phase_refs,
            phase_refs: cfg.phase_refs,
            emitted: 0,
        }
    }

    /// The next reference, rotating phases on schedule.
    pub fn next_ref(&mut self) -> MemRef {
        if self.left == 0 {
            self.phase = (self.phase + 1) % 3;
            self.left = self.phase_refs;
        }
        self.left -= 1;
        self.emitted += 1;
        self.gens[self.phase].next_ref()
    }

    /// References emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{table3, VA_BASE};
    use std::collections::HashSet;

    fn gen(name: &str) -> TraceGenerator {
        Workload::by_name(name).unwrap().generator(1)
    }

    #[test]
    fn deterministic_per_seed() {
        let w = Workload::by_name("mcf").unwrap();
        let a = w.generator(9).take_refs(1000);
        let b = w.generator(9).take_refs(1000);
        assert_eq!(a, b);
        let c = w.generator(10).take_refs(1000);
        assert_ne!(a, c);
    }

    #[test]
    fn addresses_stay_in_footprint() {
        for w in table3() {
            let mut g = w.generator(3);
            for _ in 0..5000 {
                let r = g.next_ref();
                assert!(r.vaddr.0 >= VA_BASE, "{}", w.name);
                assert!(
                    r.vaddr.0 < VA_BASE + w.footprint_bytes(),
                    "{} escaped footprint",
                    w.name
                );
            }
        }
    }

    #[test]
    fn addresses_are_line_aligned() {
        let mut g = gen("sssp");
        for _ in 0..1000 {
            assert_eq!(g.next_ref().vaddr.0 % 64, 0);
        }
    }

    #[test]
    fn dep_fraction_is_respected() {
        let w = Workload::by_name("canl").unwrap();
        let mut g = w.generator(1);
        let deps = (0..20_000).filter(|_| g.next_ref().dependent).count();
        let frac = deps as f64 / 20_000.0;
        assert!((frac - w.dep_fraction).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn write_fraction_is_respected() {
        let mut g = gen("sp"); // writes 0.40
        let w = (0..20_000).filter(|_| g.next_ref().is_write).count();
        let frac = w as f64 / 20_000.0;
        assert!((frac - 0.40).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn mean_gap_tracks_density() {
        let mut g = gen("bc"); // 230 refs/kinstr -> mean gap 4
        let total: u64 = (0..10_000).map(|_| g.next_ref().gap_instrs as u64).sum();
        let mean = total as f64 / 10_000.0;
        let expected = Workload::by_name("bc").unwrap().mean_gap_instrs() as f64 + 0.5;
        assert!((mean - expected).abs() < 0.5, "mean {mean} vs {expected}");
    }

    #[test]
    fn streaming_profiles_have_long_runs() {
        let mut g = gen("mg");
        // Count same-page successors: streaming should mostly stay.
        let mut same = 0;
        let mut prev = g.next_ref().vaddr.page();
        for _ in 0..10_000 {
            let page = g.next_ref().vaddr.page();
            if page == prev {
                same += 1;
            }
            prev = page;
        }
        assert!(same > 9000, "mg is a streaming profile, got {same}");
    }

    #[test]
    fn pointer_chasers_scatter_pages() {
        // sssp jumps pages nearly every reference; the cold tail (the
        // share outside the hot/warm tiers) spreads over thousands of
        // distinct pages.
        let w = Workload::by_name("sssp").unwrap();
        let mut g = w.generator(1);
        let pages: HashSet<u64> = (0..10_000).map(|_| g.next_ref().vaddr.page()).collect();
        let cold_share = 1.0 - w.hot_fraction - w.warm_fraction;
        let expected_min = (10_000.0 * cold_share * 0.6) as usize;
        assert!(
            pages.len() > expected_min,
            "distinct pages {} vs expected > {expected_min}",
            pages.len()
        );
    }

    #[test]
    fn hot_set_profiles_concentrate() {
        let w = Workload::by_name("bc").unwrap();
        let mut g = w.generator(5);
        let tier_limit = VA_BASE / PAGE_BYTES + w.hot_pages + w.warm_pages;
        let hot = (0..20_000)
            .filter(|_| g.next_ref().vaddr.page() < tier_limit)
            .count();
        let frac = hot as f64 / 20_000.0;
        assert!(
            frac > 0.7,
            "bc hot+warm fraction 0.80 (plus cold re-hits), measured {frac}"
        );
    }

    #[test]
    fn warm_tier_is_disjoint_from_hot() {
        // A profile with no cold tail would confine pages to the two
        // tiers; check the tier arithmetic by constructing one.
        let mut w = Workload::by_name("bc").unwrap();
        w.hot_fraction = 0.5;
        w.warm_fraction = 0.5;
        let mut g = TraceGenerator::new(w, VA_BASE, 3);
        let base = VA_BASE / PAGE_BYTES;
        let mut saw_hot = false;
        let mut saw_warm = false;
        for _ in 0..5000 {
            let page = g.next_ref().vaddr.page() - base;
            // The very first run starts on a random page; every page
            // *jump* afterwards must land in a tier.
            assert!(page < w.hot_pages + w.warm_pages || g.emitted() <= u64::from(2 * w.seq_run));
            if page < w.hot_pages {
                saw_hot = true;
            } else {
                saw_warm = true;
            }
        }
        assert!(saw_hot && saw_warm);
    }

    #[test]
    fn strided_sweep_covers_distinct_pages() {
        let mut g = gen("cactus");
        let pages: Vec<u64> = (0..1000).map(|_| g.next_ref().vaddr.page()).collect();
        let distinct: HashSet<_> = pages.iter().collect();
        assert!(
            distinct.len() > 300,
            "cactus touches many distinct pages: {}",
            distinct.len()
        );
    }

    #[test]
    fn iterator_interface_is_endless() {
        let g = gen("dc");
        assert_eq!(g.take(100).count(), 100);
    }
}
