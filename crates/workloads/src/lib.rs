//! Synthetic workloads calibrated to the paper's benchmark suite
//! (Table III).
//!
//! The paper drives SST with SPEC 2006, PARSEC, GAP, Mantevo and NAS
//! binaries. We do not have the binaries or an x86 front-end, so each
//! benchmark is replaced by a *memory-reference generator* whose
//! stream statistics — footprint, page-level temporal locality,
//! intra-page spatial runs, pointer-chasing (dependence) fraction, and
//! reference density — are tuned so the simulated system reproduces
//! the benchmark's published MPKI class and its sensitivity to
//! two-level translation (the per-benchmark shapes of Figs. 3–12).
//! DESIGN.md §1 documents this substitution.
//!
//! # Examples
//!
//! ```
//! use fam_workloads::{table3, Workload};
//!
//! let sssp = Workload::by_name("sssp").unwrap();
//! let mut gen = sssp.generator(42);
//! let r = gen.next_ref();
//! assert!(r.vaddr.0 >= fam_workloads::VA_BASE);
//! assert_eq!(table3().len(), 14);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod generator;
mod profiles;
pub mod trace;

pub use batch::RefBatch;
pub use generator::{BurstSynth, MemRef, TraceGenerator};
pub use profiles::{burst_phases, table3, Suite, Workload};
pub use trace::{RefStream, StreamedReplay, TraceReader, TraceReplay, TraceWriter};

/// Base virtual address of the synthetic heap every generator walks.
pub const VA_BASE: u64 = 0x1000_0000;

/// Base virtual address of the cross-node shared segment. Common to
/// every rank (unlike the per-core private slices), far above any
/// private heap.
pub const SHARED_VA_BASE: u64 = 0x7000_0000_0000;
