//! On-disk trace format and replay.
//!
//! The synthetic generators stand in for the paper's benchmark
//! binaries (DESIGN.md §1), but a user with real application traces —
//! from a PIN tool, from SST's Ariel, from perf — should be able to
//! feed them through the same system model. This module defines a
//! compact binary trace format and a replaying reference source.
//!
//! Format (little-endian): magic `FAMT`, version `u16`, record count
//! `u64`, then per record: virtual address `u64`, flags `u8`
//! (bit 0 = write, bit 1 = dependent), instruction gap `u32`.

use std::io::{self, Read, Write};

use fam_vm::VirtAddr;

use crate::{MemRef, TraceGenerator};

/// File magic.
const MAGIC: &[u8; 4] = b"FAMT";
/// Format version.
const VERSION: u16 = 1;
/// Bytes per encoded record.
const RECORD_BYTES: usize = 13;

/// Serialises a reference stream to a writer.
///
/// Returns the number of records written.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use fam_workloads::{trace, Workload};
///
/// let refs = Workload::by_name("pf").unwrap().generator(1).take_refs(100);
/// let mut buf = Vec::new();
/// trace::write_trace(&mut buf, &refs).unwrap();
/// let back = trace::read_trace(&mut buf.as_slice()).unwrap();
/// assert_eq!(back, refs);
/// ```
pub fn write_trace<W: Write>(mut w: W, refs: &[MemRef]) -> io::Result<u64> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(refs.len() as u64).to_le_bytes())?;
    for r in refs {
        w.write_all(&r.vaddr.0.to_le_bytes())?;
        let flags = (r.is_write as u8) | ((r.dependent as u8) << 1);
        w.write_all(&[flags])?;
        w.write_all(&r.gap_instrs.to_le_bytes())?;
    }
    Ok(refs.len() as u64)
}

/// Deserialises a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns `InvalidData` for a bad magic, unsupported version, or a
/// truncated body, and propagates reader errors.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Vec<MemRef>> {
    let mut header = [0u8; 14];
    r.read_exact(&mut header)?;
    if &header[0..4] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a FAMT trace",
        ));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let count = u64::from_le_bytes(header[6..14].try_into().expect("8 bytes"));
    let mut body = Vec::new();
    r.read_to_end(&mut body)?;
    if body.len() as u64 != count * RECORD_BYTES as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trace body length does not match record count",
        ));
    }
    let mut refs = Vec::with_capacity(count as usize);
    for chunk in body.chunks_exact(RECORD_BYTES) {
        let vaddr = u64::from_le_bytes(chunk[0..8].try_into().expect("8 bytes"));
        let flags = chunk[8];
        let gap = u32::from_le_bytes(chunk[9..13].try_into().expect("4 bytes"));
        refs.push(MemRef {
            vaddr: VirtAddr(vaddr),
            is_write: flags & 1 != 0,
            dependent: flags & 2 != 0,
            gap_instrs: gap,
        });
    }
    Ok(refs)
}

/// Replays a recorded trace, wrapping around at the end so runs longer
/// than the trace keep executing (like looping a kernel).
#[derive(Debug, Clone)]
pub struct TraceReplay {
    refs: Vec<MemRef>,
    pos: usize,
    emitted: u64,
}

impl TraceReplay {
    /// Creates a replay source.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace.
    pub fn new(refs: Vec<MemRef>) -> TraceReplay {
        assert!(!refs.is_empty(), "cannot replay an empty trace");
        TraceReplay {
            refs,
            pos: 0,
            emitted: 0,
        }
    }

    /// The next reference, wrapping at the end of the trace.
    pub fn next_ref(&mut self) -> MemRef {
        let r = self.refs[self.pos];
        self.pos = (self.pos + 1) % self.refs.len();
        self.emitted += 1;
        r
    }

    /// Records in the underlying trace.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the trace is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// References emitted so far (counting wrap-arounds).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

/// A reference source: either a synthetic generator or a trace replay.
/// This is what each simulated core consumes.
#[derive(Debug, Clone)]
pub enum RefStream {
    /// Synthetic Table III generator.
    Synthetic(TraceGenerator),
    /// Recorded-trace replay.
    Replay(TraceReplay),
}

impl RefStream {
    /// The next reference from the stream.
    pub fn next_ref(&mut self) -> MemRef {
        match self {
            RefStream::Synthetic(g) => g.next_ref(),
            RefStream::Replay(r) => r.next_ref(),
        }
    }

    /// References emitted so far.
    pub fn emitted(&self) -> u64 {
        match self {
            RefStream::Synthetic(g) => g.emitted(),
            RefStream::Replay(r) => r.emitted(),
        }
    }
}

impl From<TraceGenerator> for RefStream {
    fn from(g: TraceGenerator) -> RefStream {
        RefStream::Synthetic(g)
    }
}

impl From<TraceReplay> for RefStream {
    fn from(r: TraceReplay) -> RefStream {
        RefStream::Replay(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    fn sample_refs(n: usize) -> Vec<MemRef> {
        Workload::by_name("mcf").unwrap().generator(3).take_refs(n)
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let refs = sample_refs(500);
        let mut buf = Vec::new();
        assert_eq!(write_trace(&mut buf, &refs).unwrap(), 500);
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, refs);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert!(read_trace(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_refs(1)).unwrap();
        buf[4] = 99;
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_body_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_refs(10)).unwrap();
        buf.pop();
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn replay_wraps_around() {
        let refs = sample_refs(5);
        let mut replay = TraceReplay::new(refs.clone());
        for i in 0..12 {
            assert_eq!(replay.next_ref(), refs[i % 5]);
        }
        assert_eq!(replay.emitted(), 12);
        assert_eq!(replay.len(), 5);
    }

    #[test]
    fn ref_stream_dispatches() {
        let mut synth: RefStream = Workload::by_name("pf").unwrap().generator(1).into();
        let mut replay: RefStream = TraceReplay::new(sample_refs(3)).into();
        synth.next_ref();
        replay.next_ref();
        assert_eq!(synth.emitted(), 1);
        assert_eq!(replay.emitted(), 1);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_replay_rejected() {
        let _ = TraceReplay::new(Vec::new());
    }
}
