//! On-disk trace format, streamed readers, and replay sources.
//!
//! The synthetic generators stand in for the paper's benchmark
//! binaries (DESIGN.md §1), but a user with real application traces —
//! from a PIN tool, from SST's Ariel, from perf — should be able to
//! feed them through the same system model. This module defines a
//! compact binary trace format (`FAMT`), one-shot and streamed
//! decoders, and replaying reference sources that plug into every
//! engine through [`RefStream`].
//!
//! # Format (little-endian)
//!
//! Version 1 (single-stream): magic `FAMT`, version `u16 = 1`, record
//! count `u64`; then per 13-byte record: virtual address `u64`, flags
//! `u8` (bit 0 = write, bit 1 = dependent), instruction gap `u32`.
//!
//! Version 2 (multi-rank): magic `FAMT`, version `u16 = 2`, record
//! count `u64`, rank count `u16`; then per 15-byte record the v1
//! fields plus a trailing rank `u16`. A *rank* is a global core index
//! (`node * cores_per_node + core`), so one file drives an N-node
//! system: each core replays exactly the records carrying its rank,
//! in file order. Records for different ranks may be interleaved
//! arbitrarily; [`record_streams`] and [`synthesize_bursty`] write
//! them round-robin so every per-rank subsequence is in program
//! order.
//!
//! # Readers
//!
//! [`read_trace`] / [`read_records`] are one-shot (whole body in
//! memory). [`TraceReader`] streams records through a bounded chunk
//! buffer, so arbitrarily long traces replay in constant memory —
//! [`StreamedReplay`] wraps it into a wrapping per-rank [`RefStream`]
//! source backed by a file on disk.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use fam_vm::VirtAddr;

use crate::{BurstSynth, MemRef, TraceGenerator, VA_BASE};

/// File magic.
const MAGIC: &[u8; 4] = b"FAMT";
/// Single-stream format version.
const VERSION: u16 = 1;
/// Multi-rank format version.
const VERSION_V2: u16 = 2;
/// Bytes per encoded v1 record.
const RECORD_BYTES: usize = 13;
/// Bytes per encoded v2 record (v1 plus a trailing rank `u16`).
const RECORD_BYTES_V2: usize = 15;
/// Bytes in a v1 header (magic + version + count).
const HEADER_V1: usize = 14;
/// Bytes in a v2 header (v1 plus a rank count `u16`).
const HEADER_V2: usize = 16;
/// Default streaming chunk: large enough to amortize syscalls, small
/// enough that a few thousand concurrent readers stay cache-friendly.
const DEFAULT_CHUNK: usize = 64 * 1024;
/// One-shot decode preallocates at most this many records before
/// letting `Vec` grow naturally — a forged header's count cannot force
/// a huge up-front allocation.
const PREALLOC_CAP: u64 = 1 << 20;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Bytes per record for a given format version.
fn record_bytes(version: u16) -> usize {
    if version == VERSION_V2 {
        RECORD_BYTES_V2
    } else {
        RECORD_BYTES
    }
}

/// A decoded trace header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version (1 or 2).
    pub version: u16,
    /// Records in the body.
    pub count: u64,
    /// Ranks the trace addresses (always 1 for v1 files).
    pub ranks: u16,
}

/// One trace record: a memory reference tagged with the rank (global
/// core index) that issued it. V1 files carry no ranks; their records
/// decode with rank 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global core index `node * cores_per_node + core`.
    pub rank: u16,
    /// The memory reference.
    pub mem: MemRef,
}

fn decode_mem(chunk: &[u8]) -> MemRef {
    let vaddr = u64::from_le_bytes(chunk[0..8].try_into().expect("8 bytes"));
    let flags = chunk[8];
    let gap = u32::from_le_bytes(chunk[9..13].try_into().expect("4 bytes"));
    MemRef {
        vaddr: VirtAddr(vaddr),
        is_write: flags & 1 != 0,
        dependent: flags & 2 != 0,
        gap_instrs: gap,
    }
}

fn decode_record(version: u16, chunk: &[u8]) -> TraceRecord {
    let rank = if version == VERSION_V2 {
        u16::from_le_bytes([chunk[13], chunk[14]])
    } else {
        0
    };
    TraceRecord {
        rank,
        mem: decode_mem(chunk),
    }
}

fn encode_mem(r: &MemRef, out: &mut [u8; RECORD_BYTES]) {
    out[0..8].copy_from_slice(&r.vaddr.0.to_le_bytes());
    out[8] = (r.is_write as u8) | ((r.dependent as u8) << 1);
    out[9..13].copy_from_slice(&r.gap_instrs.to_le_bytes());
}

/// Serialises a single reference stream to a writer (format v1).
///
/// Returns the number of records written.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use fam_workloads::{trace, Workload};
///
/// let refs = Workload::by_name("pf").unwrap().generator(1).take_refs(100);
/// let mut buf = Vec::new();
/// trace::write_trace(&mut buf, &refs).unwrap();
/// let back = trace::read_trace(&mut buf.as_slice()).unwrap();
/// assert_eq!(back, refs);
/// ```
pub fn write_trace<W: Write>(mut w: W, refs: &[MemRef]) -> io::Result<u64> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(refs.len() as u64).to_le_bytes())?;
    let mut rec = [0u8; RECORD_BYTES];
    for r in refs {
        encode_mem(r, &mut rec);
        w.write_all(&rec)?;
    }
    Ok(refs.len() as u64)
}

/// Streams a v2 (multi-rank) trace to a writer without buffering the
/// records, for record paths whose traces may not fit in memory. The
/// record count is declared up front (it lives in the header) and
/// [`TraceWriter::finish`] verifies the promise was kept.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    ranks: u16,
    declared: u64,
    written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes a v2 header declaring `count` records across `ranks`
    /// ranks and returns the open writer.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when `ranks == 0`; otherwise propagates writer
    /// errors.
    pub fn v2(mut w: W, ranks: u16, count: u64) -> io::Result<TraceWriter<W>> {
        if ranks == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a trace needs at least one rank",
            ));
        }
        w.write_all(MAGIC)?;
        w.write_all(&VERSION_V2.to_le_bytes())?;
        w.write_all(&count.to_le_bytes())?;
        w.write_all(&ranks.to_le_bytes())?;
        Ok(TraceWriter {
            w,
            ranks,
            declared: count,
            written: 0,
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when the record's rank is out of range or the
    /// declared count is already written; otherwise writer errors.
    pub fn push(&mut self, rec: &TraceRecord) -> io::Result<()> {
        if rec.rank >= self.ranks {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "record rank {} out of range (ranks {})",
                    rec.rank, self.ranks
                ),
            ));
        }
        if self.written == self.declared {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "more records pushed than the header declares",
            ));
        }
        let mut buf = [0u8; RECORD_BYTES_V2];
        encode_mem(
            &rec.mem,
            (&mut buf[..RECORD_BYTES]).try_into().expect("13 bytes"),
        );
        buf[13..15].copy_from_slice(&rec.rank.to_le_bytes());
        self.w.write_all(&buf)?;
        self.written += 1;
        Ok(())
    }

    /// Flushes and returns the record count.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when fewer records were pushed than declared;
    /// otherwise writer errors.
    pub fn finish(mut self) -> io::Result<u64> {
        if self.written != self.declared {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "header declares {} records but {} were written",
                    self.declared, self.written
                ),
            ));
        }
        self.w.flush()?;
        Ok(self.written)
    }
}

/// Serialises tagged records to a writer in format v2.
///
/// Returns the number of records written.
///
/// # Errors
///
/// `InvalidInput` for `ranks == 0` or an out-of-range record rank;
/// otherwise propagates writer errors.
pub fn write_trace_v2<W: Write>(w: W, ranks: u16, records: &[TraceRecord]) -> io::Result<u64> {
    let mut tw = TraceWriter::v2(w, ranks, records.len() as u64)?;
    for rec in records {
        tw.push(rec)?;
    }
    tw.finish()
}

/// One-shot decode of a v1 or v2 trace into untagged references
/// (ranks, if present, are dropped — see [`read_records`] to keep
/// them).
///
/// # Errors
///
/// Returns `InvalidData` for a truncated or bad header, an
/// unsupported version, an overflowing record count, or a body whose
/// length does not match the header count; propagates reader errors.
pub fn read_trace<R: Read>(r: R) -> io::Result<Vec<MemRef>> {
    Ok(read_records(r)?.into_iter().map(|t| t.mem).collect())
}

/// One-shot decode of a v1 or v2 trace into rank-tagged records (v1
/// records decode with rank 0).
///
/// # Errors
///
/// Same contract as [`read_trace`].
pub fn read_records<R: Read>(mut r: R) -> io::Result<Vec<TraceRecord>> {
    let mut header = [0u8; HEADER_V1];
    r.read_exact(&mut header).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            invalid("truncated trace header")
        } else {
            e
        }
    })?;
    if &header[0..4] != MAGIC {
        return Err(invalid("not a FAMT trace"));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION && version != VERSION_V2 {
        return Err(invalid(format!("unsupported trace version {version}")));
    }
    let count = u64::from_le_bytes(header[6..14].try_into().expect("8 bytes"));
    let mut ranks = 1u16;
    if version == VERSION_V2 {
        let mut ext = [0u8; 2];
        r.read_exact(&mut ext).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                invalid("truncated trace header")
            } else {
                e
            }
        })?;
        ranks = u16::from_le_bytes(ext);
    }
    let rb = record_bytes(version);
    // A forged header must not be able to wrap this multiplication
    // (and sneak a bogus small body past the length check) or force a
    // count-sized preallocation.
    let body_len = count
        .checked_mul(rb as u64)
        .ok_or_else(|| invalid("trace record count overflows the body length"))?;
    let mut body = Vec::new();
    r.read_to_end(&mut body)?;
    if body.len() as u64 != body_len {
        return Err(invalid("trace body length does not match record count"));
    }
    let mut records = Vec::with_capacity(count.min(PREALLOC_CAP) as usize);
    for chunk in body.chunks_exact(rb) {
        let rec = decode_record(version, chunk);
        if rec.rank >= ranks {
            return Err(invalid(format!(
                "record rank {} out of range (ranks {ranks})",
                rec.rank
            )));
        }
        records.push(rec);
    }
    Ok(records)
}

/// Streamed chunked decoder for v1 and v2 traces.
///
/// Holds at most one chunk (plus a partial record) in memory, so
/// traces far larger than RAM replay fine. Agrees byte-for-byte with
/// the one-shot [`read_records`] on every well-formed and malformed
/// input (pinned by a randomized property test).
///
/// # Examples
///
/// ```
/// use fam_workloads::{trace, Workload};
///
/// let refs = Workload::by_name("pf").unwrap().generator(1).take_refs(10);
/// let mut buf = Vec::new();
/// trace::write_trace(&mut buf, &refs).unwrap();
/// let mut rd = trace::TraceReader::new(buf.as_slice()).unwrap();
/// assert_eq!(rd.header().count, 10);
/// assert_eq!(rd.next_record().unwrap().unwrap().mem, refs[0]);
/// ```
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    src: R,
    /// Read granularity: at most this many bytes per `read` call.
    chunk: usize,
    buf: Box<[u8]>,
    start: usize,
    end: usize,
    header: TraceHeader,
    delivered: u64,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a reader with the default chunk size, decoding the
    /// header.
    ///
    /// # Errors
    ///
    /// `InvalidData` for a truncated/bad header or unsupported
    /// version; reader errors otherwise.
    pub fn new(src: R) -> io::Result<TraceReader<R>> {
        TraceReader::with_chunk_size(src, DEFAULT_CHUNK)
    }

    /// Opens a reader that reads at most `chunk` bytes at a time
    /// (clamped to at least 1). The internal buffer is
    /// `max(chunk, 16)` bytes — the bounded-memory guarantee.
    ///
    /// # Errors
    ///
    /// Same contract as [`TraceReader::new`].
    pub fn with_chunk_size(src: R, chunk: usize) -> io::Result<TraceReader<R>> {
        let chunk = chunk.max(1);
        let cap = chunk.max(HEADER_V2);
        let mut rd = TraceReader {
            src,
            chunk,
            buf: vec![0u8; cap].into_boxed_slice(),
            start: 0,
            end: 0,
            header: TraceHeader {
                version: 0,
                count: 0,
                ranks: 0,
            },
            delivered: 0,
            done: false,
        };
        rd.read_header()?;
        Ok(rd)
    }

    fn read_header(&mut self) -> io::Result<()> {
        if !self.fill(HEADER_V1)? {
            return Err(invalid("truncated trace header"));
        }
        let h = &self.buf[self.start..self.start + HEADER_V1];
        if &h[0..4] != MAGIC {
            return Err(invalid("not a FAMT trace"));
        }
        let version = u16::from_le_bytes([h[4], h[5]]);
        if version != VERSION && version != VERSION_V2 {
            return Err(invalid(format!("unsupported trace version {version}")));
        }
        let count = u64::from_le_bytes(h[6..14].try_into().expect("8 bytes"));
        // Reject counts whose body length cannot be represented, like
        // the one-shot reader does — a stream never trips this while
        // delivering records, but the contract should not depend on
        // which decoder the caller picked.
        count
            .checked_mul(record_bytes(version) as u64)
            .ok_or_else(|| invalid("trace record count overflows the body length"))?;
        let mut ranks = 1u16;
        self.start += HEADER_V1;
        if version == VERSION_V2 {
            if !self.fill(2)? {
                return Err(invalid("truncated trace header"));
            }
            ranks = u16::from_le_bytes([self.buf[self.start], self.buf[self.start + 1]]);
            self.start += 2;
        }
        self.header = TraceHeader {
            version,
            count,
            ranks,
        };
        Ok(())
    }

    /// The decoded header.
    #[must_use]
    pub fn header(&self) -> TraceHeader {
        self.header
    }

    /// Bytes of buffer this reader holds — constant for its lifetime,
    /// independent of trace length.
    #[must_use]
    pub fn buffer_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Ensures at least `need` bytes are buffered. Returns `Ok(false)`
    /// on end-of-input with fewer than `need` bytes left.
    fn fill(&mut self, need: usize) -> io::Result<bool> {
        if self.end - self.start >= need {
            return Ok(true);
        }
        let _prof = fam_sim::profile::span(fam_sim::profile::PhaseId::ReplayDecode);
        // Compact the partial tail to the front, then top up in
        // chunk-sized reads.
        self.buf.copy_within(self.start..self.end, 0);
        self.end -= self.start;
        self.start = 0;
        while self.end < need {
            let upper = self.buf.len().min(self.end + self.chunk);
            let n = self.src.read(&mut self.buf[self.end..upper])?;
            if n == 0 {
                return Ok(false);
            }
            self.end += n;
        }
        Ok(true)
    }

    /// Decodes the next record, or `Ok(None)` at a clean end of
    /// trace.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the body is truncated, carries trailing
    /// bytes beyond the declared count, or a v2 record's rank is out
    /// of range; reader errors otherwise.
    pub fn next_record(&mut self) -> io::Result<Option<TraceRecord>> {
        if self.done {
            return Ok(None);
        }
        if self.delivered == self.header.count {
            if self.end - self.start > 0 || self.fill(1)? {
                return Err(invalid("trace body length does not match record count"));
            }
            self.done = true;
            return Ok(None);
        }
        let rb = record_bytes(self.header.version);
        if !self.fill(rb)? {
            return Err(invalid("trace body length does not match record count"));
        }
        let rec = decode_record(self.header.version, &self.buf[self.start..self.start + rb]);
        if rec.rank >= self.header.ranks {
            return Err(invalid(format!(
                "record rank {} out of range (ranks {})",
                rec.rank, self.header.ranks
            )));
        }
        self.start += rb;
        self.delivered += 1;
        Ok(Some(rec))
    }
}

/// Replays a recorded trace held in memory, wrapping around at the end
/// so runs longer than the trace keep executing (like looping a
/// kernel).
#[derive(Debug, Clone)]
pub struct TraceReplay {
    refs: Vec<MemRef>,
    pos: usize,
    emitted: u64,
}

impl TraceReplay {
    /// Creates a replay source.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace.
    pub fn new(refs: Vec<MemRef>) -> TraceReplay {
        assert!(!refs.is_empty(), "cannot replay an empty trace");
        TraceReplay {
            refs,
            pos: 0,
            emitted: 0,
        }
    }

    /// The next reference, wrapping at the end of the trace.
    pub fn next_ref(&mut self) -> MemRef {
        let r = self.refs[self.pos];
        self.pos = (self.pos + 1) % self.refs.len();
        self.emitted += 1;
        r
    }

    /// Records in the underlying trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the trace is empty (never true for a constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// References emitted so far (counting wrap-arounds).
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

/// Replays one rank's records from a trace file through a streamed
/// [`TraceReader`], wrapping around at the end of the file. Memory
/// held is one chunk buffer regardless of trace length.
///
/// Construction makes one validation pass over the file (header,
/// rank-in-range, at least one matching record); after that the
/// source is infallible like every [`RefStream`] — a file that turns
/// unreadable *mid-replay* (deleted, truncated under us) panics with
/// the offending path, since the simulation cannot continue and has
/// no per-ref error channel.
#[derive(Debug)]
pub struct StreamedReplay {
    path: PathBuf,
    /// `Some(r)` replays only rank `r`'s records; `None` replays every
    /// record (how v1 single-stream files drive each core).
    rank: Option<u16>,
    chunk: usize,
    reader: TraceReader<File>,
    header: TraceHeader,
    /// Records per pass that match `rank`.
    matching: u64,
    emitted: u64,
}

impl StreamedReplay {
    /// Opens a replay source over `path` with the default chunk size.
    ///
    /// # Errors
    ///
    /// `InvalidData` for malformed traces, a rank not addressed by the
    /// file (v2), a rank filter on a v1 file, or a filter matching
    /// zero records; I/O errors otherwise.
    pub fn open(path: impl AsRef<Path>, rank: Option<u16>) -> io::Result<StreamedReplay> {
        StreamedReplay::open_with_chunk(path, rank, DEFAULT_CHUNK)
    }

    /// Opens a replay source reading `chunk` bytes at a time.
    ///
    /// # Errors
    ///
    /// Same contract as [`StreamedReplay::open`].
    pub fn open_with_chunk(
        path: impl AsRef<Path>,
        rank: Option<u16>,
        chunk: usize,
    ) -> io::Result<StreamedReplay> {
        let path = path.as_ref().to_path_buf();
        // Validation pass: walk the whole file once so replay-time
        // errors can only come from the file changing under us.
        let mut scan = TraceReader::with_chunk_size(File::open(&path)?, chunk)?;
        let header = scan.header();
        if let Some(r) = rank {
            if header.version == VERSION {
                return Err(invalid("v1 traces carry no ranks to filter on"));
            }
            if r >= header.ranks {
                return Err(invalid(format!(
                    "rank {r} not addressed by the trace (ranks {})",
                    header.ranks
                )));
            }
        }
        let mut matching = 0u64;
        while let Some(rec) = scan.next_record()? {
            if rank.is_none_or(|r| rec.rank == r) {
                matching += 1;
            }
        }
        if matching == 0 {
            return Err(invalid(match rank {
                Some(r) => format!("trace has no records for rank {r}"),
                None => "cannot replay an empty trace".to_string(),
            }));
        }
        let reader = TraceReader::with_chunk_size(File::open(&path)?, chunk)?;
        Ok(StreamedReplay {
            path,
            rank,
            chunk,
            reader,
            header,
            matching,
            emitted: 0,
        })
    }

    /// The trace file's header.
    #[must_use]
    pub fn header(&self) -> TraceHeader {
        self.header
    }

    /// Records matching this source's rank filter per pass over the
    /// file.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.matching
    }

    /// Whether a pass yields no records (never true for a constructed
    /// value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.matching == 0
    }

    /// References emitted so far (counting wrap-arounds).
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Completed passes over the file.
    #[must_use]
    pub fn wraps(&self) -> u64 {
        self.emitted / self.matching
    }

    /// The next reference, wrapping at the end of the file.
    ///
    /// # Panics
    ///
    /// Panics if the validated file turns unreadable or malformed
    /// mid-replay.
    pub fn next_ref(&mut self) -> MemRef {
        loop {
            match self.reader.next_record() {
                Ok(Some(rec)) => {
                    if self.rank.is_none_or(|r| rec.rank == r) {
                        self.emitted += 1;
                        return rec.mem;
                    }
                }
                Ok(None) => self.rewind(),
                Err(e) => panic!("replaying {}: {e}", self.path.display()),
            }
        }
    }

    fn rewind(&mut self) {
        let file = File::open(&self.path)
            .unwrap_or_else(|e| panic!("reopening {}: {e}", self.path.display()));
        self.reader = TraceReader::with_chunk_size(file, self.chunk)
            .unwrap_or_else(|e| panic!("replaying {}: {e}", self.path.display()));
    }
}

impl Clone for StreamedReplay {
    /// Reopens the file and fast-forwards to the same position within
    /// the current pass (engines clone stream matrices when probing
    /// configurations).
    fn clone(&self) -> StreamedReplay {
        let mut c = StreamedReplay::open_with_chunk(&self.path, self.rank, self.chunk)
            .unwrap_or_else(|e| panic!("reopening {}: {e}", self.path.display()));
        for _ in 0..(self.emitted % self.matching) {
            c.next_ref();
        }
        c.emitted = self.emitted;
        c
    }
}

/// A reference source: a synthetic generator, an in-memory trace
/// replay, or a streamed on-disk trace replay. This is what each
/// simulated core consumes.
#[derive(Debug, Clone)]
pub enum RefStream {
    /// Synthetic Table III generator.
    Synthetic(TraceGenerator),
    /// Recorded-trace replay from memory.
    Replay(TraceReplay),
    /// Recorded-trace replay streamed from a file.
    Streamed(StreamedReplay),
}

impl RefStream {
    /// The next reference from the stream.
    pub fn next_ref(&mut self) -> MemRef {
        match self {
            RefStream::Synthetic(g) => g.next_ref(),
            RefStream::Replay(r) => r.next_ref(),
            RefStream::Streamed(r) => r.next_ref(),
        }
    }

    /// References emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        match self {
            RefStream::Synthetic(g) => g.emitted(),
            RefStream::Replay(r) => r.emitted(),
            RefStream::Streamed(r) => r.emitted(),
        }
    }

    /// Completed passes over the backing trace (0 for synthetic
    /// sources, which never wrap).
    #[must_use]
    pub fn wraps(&self) -> u64 {
        match self {
            RefStream::Synthetic(_) => 0,
            RefStream::Replay(r) => r.emitted() / r.len() as u64,
            RefStream::Streamed(r) => r.wraps(),
        }
    }
}

impl From<TraceGenerator> for RefStream {
    fn from(g: TraceGenerator) -> RefStream {
        RefStream::Synthetic(g)
    }
}

impl From<TraceReplay> for RefStream {
    fn from(r: TraceReplay) -> RefStream {
        RefStream::Replay(r)
    }
}

impl From<StreamedReplay> for RefStream {
    fn from(r: StreamedReplay) -> RefStream {
        RefStream::Streamed(r)
    }
}

/// Records `refs_per_stream` references from every stream into a v2
/// trace, interleaved round-robin across ranks so each rank's
/// subsequence is in program order. Streams are flattened node-major:
/// rank = `node * cores_per_node + core`, matching
/// [`replay_streams`].
///
/// # Errors
///
/// `InvalidInput` for an empty or >65536-stream matrix; writer errors
/// otherwise.
pub fn record_streams<W: Write>(
    w: W,
    streams: &mut [Vec<RefStream>],
    refs_per_stream: u64,
) -> io::Result<u64> {
    let mut flat: Vec<&mut RefStream> = streams.iter_mut().flatten().collect();
    if flat.is_empty() || flat.len() > usize::from(u16::MAX) + 1 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("rank count {} not in 1..=65536", flat.len()),
        ));
    }
    let ranks = flat.len() as u16;
    let mut tw = TraceWriter::v2(w, ranks, refs_per_stream * u64::from(ranks))?;
    for _ in 0..refs_per_stream {
        for (rank, s) in flat.iter_mut().enumerate() {
            tw.push(&TraceRecord {
                rank: rank as u16,
                mem: s.next_ref(),
            })?;
        }
    }
    tw.finish()
}

/// Builds a `nodes × cores_per_node` stream matrix replaying `path`:
/// a v2 trace must address exactly `nodes * cores_per_node` ranks and
/// each core replays its own rank's records; a v1 trace has a single
/// stream, which every core replays in full (identical address
/// streams per core, like looping one kernel everywhere).
///
/// # Errors
///
/// `InvalidData` for malformed traces or a v2 rank count that does
/// not match the topology; I/O errors otherwise.
pub fn replay_streams(
    path: impl AsRef<Path>,
    nodes: usize,
    cores_per_node: usize,
) -> io::Result<Vec<Vec<RefStream>>> {
    let path = path.as_ref();
    let header = TraceReader::new(File::open(path)?)?.header();
    (0..nodes)
        .map(|n| {
            (0..cores_per_node)
                .map(|c| {
                    let rank = if header.version == VERSION_V2 {
                        let want = nodes * cores_per_node;
                        if usize::from(header.ranks) != want {
                            return Err(invalid(format!(
                                "trace addresses {} ranks but the topology has {want} \
                                 ({nodes} nodes x {cores_per_node} cores)",
                                header.ranks
                            )));
                        }
                        Some((n * cores_per_node + c) as u16)
                    } else {
                        None
                    };
                    Ok(RefStream::from(StreamedReplay::open(path, rank)?))
                })
                .collect()
        })
        .collect()
}

/// Knobs for the bursty phase-structured trace synthesizer.
///
/// Real GAP/SPEC address streams are not stationary: they alternate
/// streaming scans, pointer-chase bursts, and dwell periods in a hot
/// working set. [`BurstSynth`] rotates through the three
/// [`crate::burst_phases`] profiles every `phase_refs` references,
/// with each rank's rotation offset by `rank % 3` — so at any instant
/// some ranks are FAM-latency-bound (chase) while others run
/// cache-local (dwell), the asymmetry that lets the sharded engine's
/// epoch leader hold the front for many consecutive FAM references.
#[derive(Debug, Clone, Copy)]
pub struct BurstConfig {
    /// References per phase before rotating to the next.
    pub phase_refs: u64,
    /// Base RNG seed; each rank and phase derives its own.
    pub seed: u64,
}

impl BurstConfig {
    /// Default knobs (512-ref phases) with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> BurstConfig {
        BurstConfig {
            phase_refs: 512,
            seed,
        }
    }

    /// Overrides the phase length.
    #[must_use]
    pub fn with_phase_refs(mut self, phase_refs: u64) -> BurstConfig {
        self.phase_refs = phase_refs.max(1);
        self
    }
}

/// Synthesizes a bursty phase-structured v2 trace for a
/// `nodes × cores_per_node` topology: `refs_per_rank` references per
/// rank, interleaved round-robin. Returns the total record count.
///
/// # Errors
///
/// `InvalidInput` for a degenerate topology (zero or >65536 ranks);
/// writer errors otherwise.
pub fn synthesize_bursty<W: Write>(
    w: W,
    cfg: &BurstConfig,
    nodes: usize,
    cores_per_node: usize,
    refs_per_rank: u64,
) -> io::Result<u64> {
    let ranks = nodes * cores_per_node;
    if ranks == 0 || ranks > usize::from(u16::MAX) + 1 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("rank count {ranks} not in 1..=65536"),
        ));
    }
    let mut synths: Vec<BurstSynth> = (0..ranks)
        .map(|r| {
            let va_base = VA_BASE + (((r % cores_per_node) as u64) << 40);
            BurstSynth::new(cfg, r as u16, va_base)
        })
        .collect();
    let mut tw = TraceWriter::v2(w, ranks as u16, refs_per_rank * ranks as u64)?;
    for _ in 0..refs_per_rank {
        for (r, s) in synths.iter_mut().enumerate() {
            tw.push(&TraceRecord {
                rank: r as u16,
                mem: s.next_ref(),
            })?;
        }
    }
    tw.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    fn sample_refs(n: usize) -> Vec<MemRef> {
        Workload::by_name("mcf").unwrap().generator(3).take_refs(n)
    }

    fn sample_records(n: usize, ranks: u16) -> Vec<TraceRecord> {
        sample_refs(n)
            .into_iter()
            .enumerate()
            .map(|(i, mem)| TraceRecord {
                rank: (i % ranks as usize) as u16,
                mem,
            })
            .collect()
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("famt-unit-{}-{tag}.famt", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let refs = sample_refs(500);
        let mut buf = Vec::new();
        assert_eq!(write_trace(&mut buf, &refs).unwrap(), 500);
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, refs);
    }

    #[test]
    fn v2_roundtrip_preserves_ranks() {
        let records = sample_records(120, 4);
        let mut buf = Vec::new();
        assert_eq!(write_trace_v2(&mut buf, 4, &records).unwrap(), 120);
        assert_eq!(read_records(buf.as_slice()).unwrap(), records);
        // Untagged read drops ranks but keeps every mem field.
        let mems: Vec<MemRef> = records.iter().map(|r| r.mem).collect();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), mems);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert!(read_trace(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_refs(1)).unwrap();
        buf[4] = 99;
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_body_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_refs(10)).unwrap();
        buf.pop();
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn streamed_reader_matches_one_shot() {
        let records = sample_records(300, 3);
        let mut buf = Vec::new();
        write_trace_v2(&mut buf, 3, &records).unwrap();
        let mut rd = TraceReader::with_chunk_size(buf.as_slice(), 7).unwrap();
        assert_eq!(
            rd.header(),
            TraceHeader {
                version: 2,
                count: 300,
                ranks: 3
            }
        );
        let mut streamed = Vec::new();
        while let Some(rec) = rd.next_record().unwrap() {
            streamed.push(rec);
        }
        assert_eq!(streamed, records);
        // Buffer stays bounded at max(chunk, header) bytes.
        assert_eq!(rd.buffer_bytes(), 16);
    }

    #[test]
    fn streamed_reader_rejects_trailing_bytes() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_refs(4)).unwrap();
        buf.push(0xAB);
        let mut rd = TraceReader::new(buf.as_slice()).unwrap();
        for _ in 0..4 {
            rd.next_record().unwrap().unwrap();
        }
        assert!(rd.next_record().is_err());
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn writer_enforces_declared_count_and_rank_range() {
        let records = sample_records(8, 2);
        let mut tw = TraceWriter::v2(Vec::new(), 2, 9).unwrap();
        for rec in &records {
            tw.push(rec).unwrap();
        }
        assert!(tw.finish().is_err()); // 8 written, 9 declared
        let mut tw = TraceWriter::v2(Vec::new(), 2, 1).unwrap();
        assert!(tw
            .push(&TraceRecord {
                rank: 2,
                mem: records[0].mem
            })
            .is_err());
    }

    #[test]
    fn replay_wraps_around() {
        let refs = sample_refs(5);
        let mut replay = TraceReplay::new(refs.clone());
        for i in 0..12 {
            assert_eq!(replay.next_ref(), refs[i % 5]);
        }
        assert_eq!(replay.emitted(), 12);
        assert_eq!(replay.len(), 5);
    }

    #[test]
    fn streamed_replay_filters_ranks_and_wraps() {
        let records = sample_records(30, 3);
        let path = temp_path("filter");
        write_trace_v2(File::create(&path).unwrap(), 3, &records).unwrap();
        let mut replay = StreamedReplay::open(&path, Some(1)).unwrap();
        assert_eq!(replay.len(), 10);
        let rank1: Vec<MemRef> = records
            .iter()
            .filter(|r| r.rank == 1)
            .map(|r| r.mem)
            .collect();
        for i in 0..25 {
            assert_eq!(replay.next_ref(), rank1[i % 10]);
        }
        assert_eq!(replay.emitted(), 25);
        assert_eq!(replay.wraps(), 2);
        // Clone resumes at the same in-pass position.
        let mut a = replay.clone();
        for _ in 0..7 {
            assert_eq!(a.next_ref(), replay.next_ref());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streamed_replay_rejects_missing_rank() {
        let records = sample_records(10, 2);
        let path = temp_path("missing-rank");
        write_trace_v2(File::create(&path).unwrap(), 2, &records).unwrap();
        assert!(StreamedReplay::open(&path, Some(2)).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_then_replay_streams_are_identical() {
        let w = Workload::by_name("mcf").unwrap();
        let mut live: Vec<Vec<RefStream>> = (0..2)
            .map(|n| {
                (0..2)
                    .map(|c| RefStream::from(TraceGenerator::new(w, VA_BASE, (n * 2 + c) as u64)))
                    .collect()
            })
            .collect();
        let mut recorded = live.clone();
        let path = temp_path("roundtrip");
        record_streams(File::create(&path).unwrap(), &mut recorded, 40).unwrap();
        let mut replayed = replay_streams(&path, 2, 2).unwrap();
        for n in 0..2 {
            for c in 0..2 {
                for _ in 0..40 {
                    assert_eq!(replayed[n][c].next_ref(), live[n][c].next_ref());
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_streams_checks_topology() {
        let records = sample_records(12, 4);
        let path = temp_path("topology");
        write_trace_v2(File::create(&path).unwrap(), 4, &records).unwrap();
        assert!(replay_streams(&path, 3, 1).is_err());
        assert!(replay_streams(&path, 2, 2).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_trace_drives_every_core_with_the_whole_file() {
        let refs = sample_refs(6);
        let path = temp_path("v1-all");
        write_trace(File::create(&path).unwrap(), &refs).unwrap();
        let mut streams = replay_streams(&path, 1, 2).unwrap();
        for core in &mut streams[0] {
            for r in &refs {
                assert_eq!(core.next_ref(), *r);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bursty_synthesizer_is_deterministic_and_staggered() {
        let cfg = BurstConfig::new(9).with_phase_refs(16);
        let mut a = Vec::new();
        let mut b = Vec::new();
        synthesize_bursty(&mut a, &cfg, 2, 2, 64).unwrap();
        synthesize_bursty(&mut b, &cfg, 2, 2, 64).unwrap();
        assert_eq!(a, b);
        let records = read_records(a.as_slice()).unwrap();
        assert_eq!(records.len(), 256);
        // Ranks staggered by rank % 3 start in different phases, so
        // their first references differ.
        assert_ne!(records[0].mem, records[1].mem);
    }

    #[test]
    fn ref_stream_dispatches() {
        let mut synth: RefStream = Workload::by_name("pf").unwrap().generator(1).into();
        let mut replay: RefStream = TraceReplay::new(sample_refs(3)).into();
        synth.next_ref();
        replay.next_ref();
        assert_eq!(synth.emitted(), 1);
        assert_eq!(replay.emitted(), 1);
        assert_eq!(synth.wraps(), 0);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_replay_rejected() {
        let _ = TraceReplay::new(Vec::new());
    }
}
