//! Per-benchmark generator parameters (Table III).

use crate::{generator::TraceGenerator, VA_BASE};

/// Benchmark suite of origin (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU 2006.
    Spec2006,
    /// PARSEC.
    Parsec,
    /// Intel GAP graph-analytics suite.
    Gap,
    /// Mantevo mini-apps.
    Mantevo,
    /// NAS parallel benchmarks.
    Nas,
}

impl Suite {
    /// Display name matching the paper's grouping in §V-D.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Spec2006 => "SPEC",
            Suite::Parsec => "PARSEC",
            Suite::Gap => "GAP",
            Suite::Mantevo => "pf",
            Suite::Nas => "NPB",
        }
    }
}

/// A benchmark profile: identity plus the generator parameters that
/// reproduce its memory behaviour.
///
/// The knobs map onto the behaviours that matter for translation
/// studies:
///
/// * `footprint_pages` — how much of the FAM a rank touches; beyond
///   the STU's 4 MB reach (1024 entries × 4 KB) this drives I-FAM's
///   system-level misses.
/// * `hot_fraction` / `hot_pages` — page-level temporal locality; a
///   small hot set keeps TLBs and the STU effective even at high MPKI
///   (bc), a flat distribution defeats them (sssp, ccsv).
/// * `seq_run` — consecutive 64-byte lines touched within a page
///   before jumping; long runs (mg, sp, lu) amortise one translation
///   over many lines.
/// * `stride_pages` — non-unit *page* stride for grid sweeps
///   (cactus), which is translation-hostile but regular.
/// * `dep_fraction` — pointer-chasing probability: a dependent
///   reference cannot issue until the previous one returns, exposing
///   full FAM latency (canl, sssp).
/// * `refs_per_kilo_instr` — off-core reference density; together
///   with the locality knobs this calibrates MPKI to Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Short name as used in the paper's figures.
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// LLC misses per kilo-instruction reported in Table III. (`lu`
    /// appears in the paper's figures but not in Table III; we carry
    /// the NPB-class value measured in our calibration.)
    pub paper_mpki: u32,
    /// Pages of FAM-resident data a rank touches.
    pub footprint_pages: u64,
    /// Probability a page jump lands in the hot set.
    pub hot_fraction: f64,
    /// Size of the hot page set.
    pub hot_pages: u64,
    /// Probability a page jump lands in the warm set (graph workloads
    /// have power-law vertex popularity: a tiny hot core, a warm
    /// middle tier, and a huge cold tail).
    pub warm_fraction: f64,
    /// Size of the warm page set (disjoint tier above the hot set).
    pub warm_pages: u64,
    /// Probability a page jump lands in the cross-node shared segment
    /// (0 for the paper's single-tenant benchmarks; the shared-pages
    /// studies of §VI set it together with
    /// `SystemConfig::shared_segment_pages`).
    pub shared_fraction: f64,
    /// Pages in the shared segment the generator addresses.
    pub shared_pages: u64,
    /// Mean consecutive lines touched per page visit.
    pub seq_run: u32,
    /// Page stride for sweep patterns (1 = dense).
    pub stride_pages: u64,
    /// Probability a reference depends on the previous one.
    pub dep_fraction: f64,
    /// Probability a reference is a store.
    pub write_fraction: f64,
    /// Off-core references per 1000 instructions.
    pub refs_per_kilo_instr: u32,
}

/// The paper's 14 evaluated benchmarks (Table III) with generator
/// parameters.
///
/// Footprints are scaled down from the applications' real footprints
/// (hundreds of MB) to 16–56 MB, exactly as the paper itself scales
/// memory sizes "given slow simulation speeds" (§IV footnote 3). What
/// matters for every figure is the footprint's position *relative to
/// the hardware reaches*, which is preserved: TLB reach (1 MB) ≪ LLC
/// (1 MB) ≪ STU reach (4 MB) ≪ footprint ≪ FAM translation-cache
/// reach (256 MB).
pub fn table3() -> Vec<Workload> {
    vec![
        Workload {
            name: "mcf",
            suite: Suite::Spec2006,
            paper_mpki: 73,
            footprint_pages: 8192,
            hot_fraction: 0.30,
            hot_pages: 192,
            warm_fraction: 0.35,
            warm_pages: 896,
            shared_fraction: 0.0,
            shared_pages: 0,
            seq_run: 3,
            stride_pages: 1,
            dep_fraction: 0.40,
            write_fraction: 0.25,
            refs_per_kilo_instr: 170,
        },
        Workload {
            name: "cactus",
            suite: Suite::Spec2006,
            paper_mpki: 60,
            footprint_pages: 12288,
            hot_fraction: 0.10,
            hot_pages: 128,
            warm_fraction: 0.22,
            warm_pages: 896,
            shared_fraction: 0.0,
            shared_pages: 0,
            seq_run: 2,
            stride_pages: 17,
            dep_fraction: 0.10,
            write_fraction: 0.30,
            refs_per_kilo_instr: 120,
        },
        Workload {
            name: "astar",
            suite: Suite::Spec2006,
            paper_mpki: 9,
            footprint_pages: 4096,
            hot_fraction: 0.45,
            hot_pages: 128,
            warm_fraction: 0.40,
            warm_pages: 768,
            shared_fraction: 0.0,
            shared_pages: 0,
            seq_run: 6,
            stride_pages: 1,
            dep_fraction: 0.40,
            write_fraction: 0.20,
            refs_per_kilo_instr: 45,
        },
        Workload {
            name: "frqm",
            suite: Suite::Parsec,
            paper_mpki: 16,
            footprint_pages: 6144,
            hot_fraction: 0.40,
            hot_pages: 192,
            warm_fraction: 0.35,
            warm_pages: 896,
            shared_fraction: 0.0,
            shared_pages: 0,
            seq_run: 5,
            stride_pages: 1,
            dep_fraction: 0.30,
            write_fraction: 0.25,
            refs_per_kilo_instr: 60,
        },
        Workload {
            name: "canl",
            suite: Suite::Parsec,
            paper_mpki: 57,
            footprint_pages: 12288,
            hot_fraction: 0.2,
            hot_pages: 128,
            warm_fraction: 0.4,
            warm_pages: 832,
            shared_fraction: 0.0,
            shared_pages: 0,
            seq_run: 1,
            stride_pages: 1,
            dep_fraction: 0.35,
            write_fraction: 0.20,
            refs_per_kilo_instr: 75,
        },
        Workload {
            name: "bc",
            suite: Suite::Gap,
            paper_mpki: 113,
            footprint_pages: 8192,
            hot_fraction: 0.45,
            hot_pages: 224,
            warm_fraction: 0.4,
            warm_pages: 640,
            shared_fraction: 0.0,
            shared_pages: 0,
            seq_run: 2,
            stride_pages: 1,
            dep_fraction: 0.25,
            write_fraction: 0.15,
            refs_per_kilo_instr: 230,
        },
        Workload {
            name: "cc",
            suite: Suite::Gap,
            paper_mpki: 56,
            footprint_pages: 8192,
            hot_fraction: 0.30,
            hot_pages: 192,
            warm_fraction: 0.35,
            warm_pages: 640,
            shared_fraction: 0.0,
            shared_pages: 0,
            seq_run: 2,
            stride_pages: 1,
            dep_fraction: 0.35,
            write_fraction: 0.20,
            refs_per_kilo_instr: 110,
        },
        Workload {
            name: "ccsv",
            suite: Suite::Gap,
            paper_mpki: 130,
            footprint_pages: 10240,
            hot_fraction: 0.24,
            hot_pages: 128,
            warm_fraction: 0.42,
            warm_pages: 832,
            shared_fraction: 0.0,
            shared_pages: 0,
            seq_run: 1,
            stride_pages: 1,
            dep_fraction: 0.3,
            write_fraction: 0.25,
            refs_per_kilo_instr: 190,
        },
        Workload {
            name: "sssp",
            suite: Suite::Gap,
            paper_mpki: 144,
            footprint_pages: 14336,
            hot_fraction: 0.2,
            hot_pages: 128,
            warm_fraction: 0.4,
            warm_pages: 896,
            shared_fraction: 0.0,
            shared_pages: 0,
            seq_run: 1,
            stride_pages: 1,
            dep_fraction: 0.32,
            write_fraction: 0.20,
            refs_per_kilo_instr: 210,
        },
        Workload {
            name: "pf",
            suite: Suite::Mantevo,
            paper_mpki: 41,
            footprint_pages: 6144,
            hot_fraction: 0.35,
            hot_pages: 192,
            warm_fraction: 0.35,
            warm_pages: 704,
            shared_fraction: 0.0,
            shared_pages: 0,
            seq_run: 4,
            stride_pages: 1,
            dep_fraction: 0.25,
            write_fraction: 0.30,
            refs_per_kilo_instr: 95,
        },
        Workload {
            name: "dc",
            suite: Suite::Nas,
            paper_mpki: 49,
            footprint_pages: 10240,
            hot_fraction: 0.25,
            hot_pages: 160,
            warm_fraction: 0.30,
            warm_pages: 768,
            shared_fraction: 0.0,
            shared_pages: 0,
            seq_run: 2,
            stride_pages: 1,
            dep_fraction: 0.45,
            write_fraction: 0.35,
            refs_per_kilo_instr: 90,
        },
        Workload {
            name: "lu",
            suite: Suite::Nas,
            paper_mpki: 65,
            footprint_pages: 8192,
            hot_fraction: 0.15,
            hot_pages: 128,
            warm_fraction: 0.15,
            warm_pages: 512,
            shared_fraction: 0.0,
            shared_pages: 0,
            seq_run: 40,
            stride_pages: 1,
            dep_fraction: 0.05,
            write_fraction: 0.40,
            refs_per_kilo_instr: 70,
        },
        Workload {
            name: "mg",
            suite: Suite::Nas,
            paper_mpki: 99,
            footprint_pages: 10240,
            hot_fraction: 0.10,
            hot_pages: 96,
            warm_fraction: 0.10,
            warm_pages: 512,
            shared_fraction: 0.0,
            shared_pages: 0,
            seq_run: 56,
            stride_pages: 1,
            dep_fraction: 0.05,
            write_fraction: 0.35,
            refs_per_kilo_instr: 105,
        },
        Workload {
            name: "sp",
            suite: Suite::Nas,
            paper_mpki: 141,
            footprint_pages: 12288,
            hot_fraction: 0.08,
            hot_pages: 96,
            warm_fraction: 0.12,
            warm_pages: 640,
            shared_fraction: 0.0,
            shared_pages: 0,
            seq_run: 48,
            stride_pages: 1,
            dep_fraction: 0.08,
            write_fraction: 0.40,
            refs_per_kilo_instr: 150,
        },
    ]
}

/// The three phase profiles the bursty trace synthesizer rotates
/// through ([`crate::BurstSynth`]): a streaming scan (long sequential
/// runs sweeping a large footprint), a pointer-chase burst (dependent
/// single-line visits over a flat huge footprint — translation-hostile
/// and FAM-latency-bound), and a hot-set dwell (almost every reference
/// lands in a few dozen pages — TLB- and LLC-resident, node-local).
/// These are not Table III benchmarks ([`Workload::by_name`] does not
/// find them); they model the *intra-benchmark* phase behavior real
/// GAP/SPEC streams show and lockstep synthetics do not.
pub fn burst_phases() -> [Workload; 3] {
    [
        Workload {
            name: "burst-scan",
            suite: Suite::Gap,
            paper_mpki: 0,
            footprint_pages: 16384,
            hot_fraction: 0.02,
            hot_pages: 32,
            warm_fraction: 0.03,
            warm_pages: 64,
            shared_fraction: 0.0,
            shared_pages: 0,
            seq_run: 48,
            stride_pages: 1,
            dep_fraction: 0.02,
            write_fraction: 0.30,
            refs_per_kilo_instr: 120,
        },
        Workload {
            name: "burst-chase",
            suite: Suite::Gap,
            paper_mpki: 0,
            footprint_pages: 32768,
            hot_fraction: 0.05,
            hot_pages: 64,
            warm_fraction: 0.10,
            warm_pages: 512,
            shared_fraction: 0.0,
            shared_pages: 0,
            seq_run: 1,
            stride_pages: 1,
            dep_fraction: 0.85,
            write_fraction: 0.05,
            refs_per_kilo_instr: 200,
        },
        Workload {
            name: "burst-dwell",
            suite: Suite::Gap,
            paper_mpki: 0,
            footprint_pages: 4096,
            hot_fraction: 0.92,
            hot_pages: 48,
            warm_fraction: 0.05,
            warm_pages: 128,
            shared_fraction: 0.0,
            shared_pages: 0,
            seq_run: 8,
            stride_pages: 1,
            dep_fraction: 0.10,
            write_fraction: 0.25,
            refs_per_kilo_instr: 150,
        },
    ]
}

impl Workload {
    /// Finds a Table III workload by its figure name.
    pub fn by_name(name: &str) -> Option<Workload> {
        table3().into_iter().find(|w| w.name == name)
    }

    /// Creates a reference generator for one rank of this workload.
    pub fn generator(&self, seed: u64) -> TraceGenerator {
        TraceGenerator::new(*self, VA_BASE, seed)
    }

    /// Footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_pages * fam_vm::PAGE_BYTES
    }

    /// Mean non-memory instructions between off-core references.
    pub fn mean_gap_instrs(&self) -> u32 {
        (1000 / self.refs_per_kilo_instr).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper_roster() {
        let names: Vec<&str> = table3().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            [
                "mcf", "cactus", "astar", "frqm", "canl", "bc", "cc", "ccsv", "sssp", "pf", "dc",
                "lu", "mg", "sp"
            ]
        );
    }

    #[test]
    fn paper_mpki_values_match_table3() {
        let get = |n: &str| Workload::by_name(n).unwrap().paper_mpki;
        assert_eq!(get("mcf"), 73);
        assert_eq!(get("cactus"), 60);
        assert_eq!(get("astar"), 9);
        assert_eq!(get("frqm"), 16);
        assert_eq!(get("canl"), 57);
        assert_eq!(get("bc"), 113);
        assert_eq!(get("cc"), 56);
        assert_eq!(get("ccsv"), 130);
        assert_eq!(get("sssp"), 144);
        assert_eq!(get("pf"), 41);
        assert_eq!(get("dc"), 49);
        assert_eq!(get("mg"), 99);
        assert_eq!(get("sp"), 141);
    }

    #[test]
    fn all_profiles_have_sane_parameters() {
        for w in table3() {
            assert!(w.footprint_pages > 0, "{}", w.name);
            assert!(w.hot_pages <= w.footprint_pages, "{}", w.name);
            assert!(
                w.hot_pages + w.warm_pages <= w.footprint_pages,
                "{}",
                w.name
            );
            assert!((0.0..=1.0).contains(&w.hot_fraction), "{}", w.name);
            assert!(
                (0.0..=1.0).contains(&(w.hot_fraction + w.warm_fraction)),
                "{}",
                w.name
            );
            assert!((0.0..=1.0).contains(&w.dep_fraction), "{}", w.name);
            assert!((0.0..=1.0).contains(&w.write_fraction), "{}", w.name);
            assert!(w.seq_run >= 1, "{}", w.name);
            assert!(w.stride_pages >= 1, "{}", w.name);
            assert!(
                w.refs_per_kilo_instr >= 5,
                "{}: selection criterion",
                w.name
            );
        }
    }

    #[test]
    fn selection_criterion_minimum_mpki() {
        // §IV: every selected benchmark has >= 5 MPKI.
        for w in table3() {
            assert!(w.paper_mpki >= 5, "{}", w.name);
        }
    }

    #[test]
    fn by_name_unknown_is_none() {
        assert!(Workload::by_name("doom").is_none());
    }

    #[test]
    fn mean_gap_inverse_of_density() {
        let sssp = Workload::by_name("sssp").unwrap();
        assert_eq!(sssp.mean_gap_instrs(), 1000 / 210);
    }

    #[test]
    fn suite_names() {
        assert_eq!(Suite::Spec2006.name(), "SPEC");
        assert_eq!(Suite::Gap.name(), "GAP");
    }
}
