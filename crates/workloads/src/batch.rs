//! Struct-of-arrays reference batching.
//!
//! Drawing references one at a time through [`RefStream`] pays an enum
//! dispatch plus a non-inlinable call per reference — measurable
//! (≈29 ns/ref in `BENCH_baseline.json`) against component costs of
//! the same order. A [`RefBatch`] refill resolves the stream variant
//! once and then runs the concrete generator in a tight monomorphized
//! loop, storing the fields column-wise so the per-reference pop is a
//! few indexed loads. Generation order is exactly the order
//! [`RefStream::next_ref`] would have produced, so consumers that
//! switch to batching are bit-identical to consumers that do not.

use fam_vm::VirtAddr;

use crate::{MemRef, RefStream};

/// Write flag bit in the packed per-reference flag byte.
const FLAG_WRITE: u8 = 1;
/// Dependent flag bit in the packed per-reference flag byte.
const FLAG_DEP: u8 = 1 << 1;

/// A column-wise buffer of pre-generated memory references.
///
/// # Examples
///
/// ```
/// use fam_workloads::{RefBatch, RefStream, Workload};
///
/// let mut stream = RefStream::from(Workload::by_name("sssp").unwrap().generator(7));
/// let mut reference = RefStream::from(Workload::by_name("sssp").unwrap().generator(7));
/// let mut batch = RefBatch::new();
/// batch.refill(&mut stream, 16);
/// for _ in 0..16 {
///     assert_eq!(batch.pop(), Some(reference.next_ref()));
/// }
/// assert_eq!(batch.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RefBatch {
    vaddrs: Vec<u64>,
    gaps: Vec<u32>,
    flags: Vec<u8>,
    head: usize,
}

impl RefBatch {
    /// Default refill length: long enough to amortize the dispatch,
    /// short enough that pre-generated state stays cache-resident.
    pub const DEFAULT_LEN: usize = 64;

    /// Creates an empty batch.
    pub fn new() -> RefBatch {
        RefBatch::default()
    }

    /// References still buffered.
    pub fn len(&self) -> usize {
        self.vaddrs.len() - self.head
    }

    /// Whether the batch is drained.
    pub fn is_empty(&self) -> bool {
        self.head == self.vaddrs.len()
    }

    /// The next buffered reference, front to back.
    pub fn pop(&mut self) -> Option<MemRef> {
        if self.is_empty() {
            return None;
        }
        let i = self.head;
        self.head += 1;
        let flags = self.flags[i];
        Some(MemRef {
            vaddr: VirtAddr(self.vaddrs[i]),
            is_write: flags & FLAG_WRITE != 0,
            dependent: flags & FLAG_DEP != 0,
            gap_instrs: self.gaps[i],
        })
    }

    /// Discards any remainder and refills with the next `n` references
    /// of `stream`, resolving the stream variant once for the whole
    /// batch.
    pub fn refill(&mut self, stream: &mut RefStream, n: usize) {
        let _prof = fam_sim::profile::span(fam_sim::profile::PhaseId::BatchGen);
        self.vaddrs.clear();
        self.gaps.clear();
        self.flags.clear();
        self.head = 0;
        match stream {
            RefStream::Synthetic(g) => {
                for _ in 0..n {
                    self.push(g.next_ref());
                }
            }
            RefStream::Replay(r) => {
                for _ in 0..n {
                    self.push(r.next_ref());
                }
            }
            RefStream::Streamed(r) => {
                for _ in 0..n {
                    self.push(r.next_ref());
                }
            }
        }
    }

    fn push(&mut self, r: MemRef) {
        self.vaddrs.push(r.vaddr.0);
        self.gaps.push(r.gap_instrs);
        self.flags
            .push((r.is_write as u8) | ((r.dependent as u8) << 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    fn stream(seed: u64) -> RefStream {
        RefStream::from(Workload::by_name("mcf").unwrap().generator(seed))
    }

    #[test]
    fn batched_stream_matches_unbatched() {
        let mut batched = stream(11);
        let mut plain = stream(11);
        let mut batch = RefBatch::new();
        for _ in 0..10 {
            batch.refill(&mut batched, RefBatch::DEFAULT_LEN);
            while let Some(r) = batch.pop() {
                assert_eq!(r, plain.next_ref());
            }
        }
    }

    #[test]
    fn refill_discards_remainder() {
        let mut s = stream(3);
        let mut batch = RefBatch::new();
        batch.refill(&mut s, 8);
        batch.pop();
        batch.refill(&mut s, 8);
        assert_eq!(batch.len(), 8);
    }

    #[test]
    fn flags_roundtrip_both_bits() {
        // sp writes 40% and mcf chases pointers; across enough refs
        // both flag bits must surface set and clear.
        let mut s = RefStream::from(Workload::by_name("sp").unwrap().generator(5));
        let mut batch = RefBatch::new();
        batch.refill(&mut s, 4096);
        let mut writes = 0;
        let mut deps = 0;
        let n = batch.len();
        while let Some(r) = batch.pop() {
            writes += r.is_write as usize;
            deps += r.dependent as usize;
        }
        assert!(writes > 0 && writes < n);
        assert!(deps > 0 && deps < n);
    }

    #[test]
    fn empty_batch_pops_none() {
        assert_eq!(RefBatch::new().pop(), None);
    }
}
